// Adversarial framing tests against a live TcpServer: truncated prefixes,
// lying length fields, connections dying mid-frame, and deliberately
// corrupted frames. The server must tear the connection down cleanly (no
// hangs, no crashes), classify the failure (corrupted vs rejected), and
// keep serving well-formed clients afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "reldev/net/tcp/framing.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::net::tcp {
namespace {

constexpr std::uint32_t kMagic = 0x52444d47;  // mirrors framing.cpp

class EchoHandler : public MessageHandler {
 public:
  Message handle(const Message&) override {
    calls.fetch_add(1);
    return Message{0, StateInfo{SiteState::kAvailable, 0, {}}};
  }
  void handle_oneway(const Message&) override {}
  std::atomic<int> calls{0};
};

/// Serving happens on a background thread; poll until it has reacted.
bool eventually(const std::function<bool()>& condition) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return condition();
}

/// A complete well-formed frame (prefix + payload + CRC trailer) carrying
/// arbitrary payload bytes.
std::vector<std::byte> raw_frame(const std::vector<std::byte>& payload) {
  BufferWriter writer(8 + payload.size() + 4);
  writer.put_u32(kMagic);
  writer.put_u32(static_cast<std::uint32_t>(payload.size()));
  writer.put_raw(payload);
  writer.put_u32(crc32c(writer.bytes()));
  const auto bytes = writer.bytes();
  return {bytes.begin(), bytes.end()};
}

class FramingNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = TcpServer::start(0, &handler_).value();
  }

  /// The server must still answer a well-formed client after abuse.
  void expect_still_serving() {
    TcpChannel channel("127.0.0.1", server_->port());
    auto reply = channel.call(Message{1, StateInquiry{}});
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  }

  EchoHandler handler_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(FramingNegativeTest, TruncatedLengthPrefixTearsDownCleanly) {
  auto socket = Socket::connect("127.0.0.1", server_->port()).value();
  // Half a prefix: a valid magic, then silence.
  BufferWriter writer(4);
  writer.put_u32(kMagic);
  ASSERT_TRUE(socket.write_all(writer.bytes()).is_ok());
  socket.close();
  expect_still_serving();
  EXPECT_EQ(handler_.calls.load(), 1);  // the garbage never became a call
}

TEST_F(FramingNegativeTest, OversizedDeclaredLengthRejected) {
  auto socket = Socket::connect("127.0.0.1", server_->port()).value();
  BufferWriter writer(8);
  writer.put_u32(kMagic);
  writer.put_u32(64u << 20);  // 64 MiB: four times the frame cap
  ASSERT_TRUE(socket.write_all(writer.bytes()).is_ok());
  // The server must refuse the length up front — not try to read 64 MiB.
  EXPECT_TRUE(eventually([&] { return server_->rejected_frames() == 1; }));
  expect_still_serving();
  EXPECT_EQ(handler_.calls.load(), 1);
}

TEST_F(FramingNegativeTest, MidFrameCloseDoesNotHangTheServer) {
  auto socket = Socket::connect("127.0.0.1", server_->port()).value();
  const auto frame = raw_frame(std::vector<std::byte>(100, std::byte{0x5a}));
  // Deliver the prefix and a sliver of payload, then vanish.
  const std::span<const std::byte> partial(frame.data(), 8 + 10);
  ASSERT_TRUE(socket.write_all(partial).is_ok());
  socket.close();
  expect_still_serving();
  EXPECT_EQ(handler_.calls.load(), 1);
}

TEST_F(FramingNegativeTest, BadMagicCountsAsCorruption) {
  auto socket = Socket::connect("127.0.0.1", server_->port()).value();
  const std::vector<std::byte> junk(12, std::byte{0x77});
  ASSERT_TRUE(socket.write_all(junk).is_ok());
  EXPECT_TRUE(eventually([&] { return server_->corrupted_frames() == 1; }));
  expect_still_serving();
}

TEST_F(FramingNegativeTest, CorruptedFrameRejectedAndCounted) {
  auto socket = Socket::connect("127.0.0.1", server_->port()).value();
  auto frame = raw_frame(std::vector<std::byte>(64, std::byte{0x42}));
  frame[8 + 17] ^= std::byte{0xff};  // flip one payload byte in flight
  ASSERT_TRUE(socket.write_all(frame).is_ok());
  EXPECT_TRUE(eventually([&] { return server_->corrupted_frames() == 1; }));
  // The garbled frame never reached the handler...
  EXPECT_EQ(handler_.calls.load(), 0);
  // ...and a well-formed connection is served and counted afterwards.
  expect_still_serving();
  EXPECT_GE(server_->served_frames(), 1u);
}

TEST_F(FramingNegativeTest, GarbledLengthFieldCaughtByTrailer) {
  // Corrupt the length itself but keep it under the cap: the frame still
  // "parses", yet the prefix-covering CRC trailer must catch the lie.
  auto frame = raw_frame(std::vector<std::byte>(64, std::byte{0x42}));
  frame[4] ^= std::byte{0x01};  // length 64 -> 65
  auto socket = Socket::connect("127.0.0.1", server_->port()).value();
  ASSERT_TRUE(socket.write_all(frame).is_ok());
  socket.close();
  // One trailing byte is missing from the stream, so this surfaces as
  // either a CRC mismatch or a mid-frame EOF — never as a handler call.
  expect_still_serving();
  EXPECT_EQ(handler_.calls.load(), 1);
}

TEST_F(FramingNegativeTest, RandomGarbageNeverHangs) {
  // Deterministic pseudo-random garbage blasts; the server must shrug all
  // of them off and keep serving.
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(state >> 56);
  };
  for (int round = 0; round < 8; ++round) {
    auto socket = Socket::connect("127.0.0.1", server_->port()).value();
    std::vector<std::byte> garbage(1 + next() % 200);
    for (auto& b : garbage) b = static_cast<std::byte>(next());
    (void)socket.write_all(garbage);
    socket.close();
  }
  expect_still_serving();
  EXPECT_EQ(handler_.calls.load(), 1);
}

}  // namespace
}  // namespace reldev::net::tcp
