// Concurrency behaviour of the TCP transport's parallel fan-out: a
// multicast round costs the slowest peer (not the sum), an early-stop
// quorum returns before the straggler (whose reply is still metered), and
// a dead peer costs one bounded deadline instead of a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"

namespace reldev::net::tcp {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

/// Replies StateInfo after an injected per-call delay.
class DelayHandler : public MessageHandler {
 public:
  explicit DelayHandler(std::chrono::milliseconds delay) : delay_(delay) {}
  Message handle(const Message&) override {
    calls.fetch_add(1);
    std::this_thread::sleep_for(delay_);
    return Message{0, StateInfo{SiteState::kAvailable, 1, {}}};
  }
  void handle_oneway(const Message&) override {}
  std::atomic<int> calls{0};

 private:
  std::chrono::milliseconds delay_;
};

std::chrono::milliseconds elapsed_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start);
}

TEST(TcpFanOutTest, MulticastCallOverlapsPerPeerDelays) {
  constexpr auto kDelay = 150ms;
  constexpr int kPeers = 4;
  DelayHandler handler(kDelay);
  std::vector<std::unique_ptr<TcpServer>> servers;
  TcpPeerTransport transport;
  SiteSet peers;
  for (SiteId site = 1; site <= kPeers; ++site) {
    servers.push_back(TcpServer::start(0, &handler).value());
    transport.set_endpoint(site, "127.0.0.1", servers.back()->port());
    peers.insert(site);
  }

  const auto start = Clock::now();
  auto replies = transport.multicast_call(0, peers, Message{0, StateInquiry{}});
  const auto elapsed = elapsed_since(start);

  EXPECT_EQ(replies.size(), static_cast<std::size_t>(kPeers));
  // Sequential fan-out would cost kPeers * kDelay = 600ms. Parallel is one
  // delay plus overhead; 3x one delay is a generous CI margin.
  EXPECT_LT(elapsed, 3 * kDelay) << "fan-out did not overlap peer delays";
}

TEST(TcpFanOutTest, EarlyStopReturnsBeforeStragglerAndStillMetersIt) {
  constexpr auto kStragglerDelay = 1000ms;
  DelayHandler fast(0ms);
  DelayHandler slow(kStragglerDelay);
  auto s1 = TcpServer::start(0, &fast).value();
  auto s2 = TcpServer::start(0, &fast).value();
  auto s3 = TcpServer::start(0, &slow).value();

  TrafficMeter meter;
  {
    TcpPeerTransport transport;
    transport.set_traffic_meter(&meter);
    transport.set_endpoint(1, "127.0.0.1", s1->port());
    transport.set_endpoint(2, "127.0.0.1", s2->port());
    transport.set_endpoint(3, "127.0.0.1", s3->port());

    const auto start = Clock::now();
    auto replies = transport.multicast_call(
        0, SiteSet{1, 2, 3}, Message{0, StateInquiry{}},
        [](const std::vector<GatherReply>& so_far) {
          return so_far.size() >= 2;
        });
    const auto elapsed = elapsed_since(start);

    EXPECT_EQ(replies.size(), 2u);
    for (const auto& [site, reply] : replies) {
      EXPECT_NE(site, 3u) << "straggler reply should not be gathered";
    }
    EXPECT_LT(elapsed, kStragglerDelay)
        << "early-stop gather waited for the straggler";
    // The transport destructor drains the straggler task before the meter
    // goes out of scope.
  }
  // 3 requests + 3 replies: the straggler's late reply crossed the network
  // and must be metered even though it was never gathered.
  EXPECT_EQ(meter.total(), 6u);
  EXPECT_EQ(slow.calls.load(), 1);
}

TEST(TcpFanOutTest, DeadPeerCostsOneBoundedTimeout) {
  // An acceptor whose backlog takes the connection but which never serves
  // it: the call's recv blocks until the deadline, not forever.
  auto acceptor = Acceptor::listen(0).value();
  DelayHandler fast(0ms);
  auto live = TcpServer::start(0, &fast).value();

  TcpPeerTransport transport;
  transport.set_call_timeout(250ms);
  transport.set_endpoint(1, "127.0.0.1", live->port());
  transport.set_endpoint(2, "127.0.0.1", acceptor.port());

  const auto start = Clock::now();
  auto replies =
      transport.multicast_call(0, SiteSet{1, 2}, Message{0, StateInquiry{}});
  const auto elapsed = elapsed_since(start);

  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, 1u);
  EXPECT_LT(elapsed, 2500ms) << "dead peer stalled the whole gather";

  auto direct = transport.call(0, 2, Message{0, StateInquiry{}});
  EXPECT_EQ(direct.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST(TcpFanOutTest, ConcurrentCallsToOnePeerDoNotSerialize) {
  constexpr auto kDelay = 150ms;
  constexpr int kCallers = 3;
  DelayHandler handler(kDelay);
  auto server = TcpServer::start(0, &handler).value();
  TcpPeerTransport transport;
  transport.set_endpoint(1, "127.0.0.1", server->port());

  std::atomic<int> ok{0};
  const auto start = Clock::now();
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&transport, &ok] {
      if (transport.call(0, 1, Message{0, StateInquiry{}}).is_ok()) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  const auto elapsed = elapsed_since(start);

  EXPECT_EQ(ok.load(), kCallers);
  // One shared socket would serialize to kCallers * kDelay = 450ms; the
  // per-endpoint pool runs them concurrently.
  EXPECT_LT(elapsed, 2 * kDelay) << "channel pool serialized concurrent calls";
  EXPECT_EQ(handler.calls.load(), kCallers);
}

TEST(TcpFanOutTest, ChannelPoolReusesConnections) {
  DelayHandler handler(0ms);
  auto server = TcpServer::start(0, &handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
  }
  EXPECT_EQ(handler.calls.load(), 20);
}

TEST(TcpFanOutTest, MeterSwapDuringConcurrentCallsLosesNoCounts) {
  // Regression: meter_ was a plain pointer, so set_traffic_meter racing
  // with the count() reads in concurrent call()s was a data race (TSan
  // catches the old code on this very test). With the atomic, every
  // transmission lands in whichever meter was installed at count time —
  // the sum across both meters must be exact.
  DelayHandler handler(1ms);
  auto server = TcpServer::start(0, &handler).value();
  TcpPeerTransport transport;
  transport.set_endpoint(1, "127.0.0.1", server->port());

  TrafficMeter meter_a;
  TrafficMeter meter_b;
  transport.set_traffic_meter(&meter_a);

  constexpr int kCallers = 4;
  constexpr int kCallsPerCaller = 25;
  std::atomic<bool> done{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      for (int call = 0; call < kCallsPerCaller; ++call) {
        if (transport.call(0, 1, Message{0, StateInquiry{}}).is_ok()) {
          ok.fetch_add(1);
        }
      }
    });
  }
  std::thread swapper([&] {
    bool use_a = false;
    while (!done.load()) {
      transport.set_traffic_meter(use_a ? &meter_a : &meter_b);
      use_a = !use_a;
      std::this_thread::sleep_for(1ms);
    }
  });
  for (auto& caller : callers) caller.join();
  done.store(true);
  swapper.join();

  EXPECT_EQ(ok.load(), kCallers * kCallsPerCaller);
  // Every successful call is 1 request + 1 reply transmission; each must
  // have been counted in exactly one of the two meters.
  EXPECT_EQ(meter_a.total() + meter_b.total(),
            2u * static_cast<std::uint64_t>(kCallers) * kCallsPerCaller);
}

TEST(TcpFanOutTest, StragglerMetersIntoTheMeterActiveAtMulticastTime) {
  // The fan-out contract: multicast_call snapshots the meter once, so a
  // straggler's late reply is charged to the meter that was active when
  // the round started — not whatever was installed afterwards.
  constexpr auto kStragglerDelay = 400ms;
  DelayHandler fast(0ms);
  DelayHandler slow(kStragglerDelay);
  auto s1 = TcpServer::start(0, &fast).value();
  auto s2 = TcpServer::start(0, &slow).value();

  TrafficMeter round_meter;
  TrafficMeter later_meter;
  {
    TcpPeerTransport transport;
    transport.set_traffic_meter(&round_meter);
    transport.set_endpoint(1, "127.0.0.1", s1->port());
    transport.set_endpoint(2, "127.0.0.1", s2->port());

    auto replies = transport.multicast_call(
        0, SiteSet{1, 2}, Message{0, StateInquiry{}},
        [](const std::vector<GatherReply>& so_far) { return !so_far.empty(); });
    ASSERT_EQ(replies.size(), 1u);

    // Gather returned early; the straggler is still in flight. Swapping
    // the meter now must not redirect (or race with) its reply count.
    transport.set_traffic_meter(&later_meter);
    // Destructor drains the straggler.
  }
  EXPECT_EQ(round_meter.total(), 4u);  // 2 requests + 2 replies
  EXPECT_EQ(later_meter.total(), 0u);
  EXPECT_EQ(slow.calls.load(), 1);
}

TEST(TcpFanOutTest, TransportDestructorWaitsForStragglers) {
  DelayHandler fast(0ms);
  DelayHandler slow(400ms);
  auto s1 = TcpServer::start(0, &fast).value();
  auto s2 = TcpServer::start(0, &slow).value();
  {
    TcpPeerTransport transport;
    transport.set_endpoint(1, "127.0.0.1", s1->port());
    transport.set_endpoint(2, "127.0.0.1", s2->port());
    auto replies = transport.multicast_call(
        0, SiteSet{1, 2}, Message{0, StateInquiry{}},
        [](const std::vector<GatherReply>& so_far) { return !so_far.empty(); });
    EXPECT_EQ(replies.size(), 1u);
  }
  // If the destructor returned early the straggler would still be using
  // freed channels; reaching this line without crashing (and under TSan
  // without a race) is the assertion.
  EXPECT_EQ(slow.calls.load(), 1);
}

}  // namespace
}  // namespace reldev::net::tcp
