// Decoder robustness: Message::decode must never crash, throw, or accept
// garbage silently — whatever bytes arrive. Three generators: pure random
// bytes, random truncations of valid messages, and random single-byte
// mutations of valid messages (which the frame CRC would normally catch;
// the decoder must still be safe on its own).
#include <gtest/gtest.h>

#include "reldev/net/message.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::net {
namespace {

std::vector<Message> sample_messages() {
  storage::VersionVector vv(4);
  vv.set(2, 9);
  BlockData data(64, std::byte{0x7e});
  std::vector<Message> samples;
  samples.push_back({0, VoteRequest{AccessKind::kRead, 1}});
  samples.push_back({1, VoteReply{7, 1000}});
  samples.push_back({2, BlockFetchReply{3, data}});
  samples.push_back({3, WriteAllRequest{1, 2, data, SiteSet{0, 1}}});
  samples.push_back({4, StateInfo{SiteState::kComatose, 42, SiteSet{2}}});
  samples.push_back({5, RepairRequest{vv}});
  samples.push_back(
      {6, RepairReply{vv, {BlockUpdate{0, 1, data}, BlockUpdate{2, 9, data}}}});
  samples.push_back({7, WasAvailableUpdate{SiteSet{0, 1, 2}, true}});
  samples.push_back({8, ClientWriteRequest{3, data}});
  samples.push_back({9, ErrorReply{2, "boom"}});
  samples.push_back({10, MultiBlockReadRequest{4, 3}});
  samples.push_back({11, MultiBlockReadReply{0, data}});
  samples.push_back({12, MultiBlockWriteRequest{2, data}});
  samples.push_back({13, MultiBlockWriteAck{1}});
  samples.push_back({14, RangeVoteRequest{AccessKind::kWrite, 0, 4}});
  samples.push_back({15, RangeVoteReply{1000, {1, 2, 3, 4}}});
  samples.push_back({16, BatchFetchRequest{{0, 2, 5}}});
  samples.push_back(
      {17, BatchFetchReply{{BlockUpdate{0, 1, data}, BlockUpdate{5, 2, data}}}});
  samples.push_back(
      {18, BatchWriteRequest{{BlockUpdate{1, 3, data}}, SiteSet{0, 2}}});
  samples.push_back({19, DigestRequest{8, 32}});
  samples.push_back(
      {20, DigestReply{8, {1, 0, 9}, {0xabad1dea, 0x0, 0x5eedc0de}}});
  return samples;
}

TEST(MessageFuzzTest, RandomBytesNeverCrash) {
  reldev::Rng rng(4242);
  int accepted = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto size = static_cast<std::size_t>(rng.uniform_u64(0, 96));
    std::vector<std::byte> noise(size);
    for (auto& b : noise) {
      b = static_cast<std::byte>(rng.uniform_u64(0, 255));
    }
    auto decoded = Message::decode(noise);  // must not throw
    if (decoded.is_ok()) ++accepted;
  }
  // Random bytes occasionally form a tiny valid message (e.g. a
  // StateInquiry is 5 bytes); what matters is that nothing crashed and
  // acceptance is rare.
  EXPECT_LT(accepted, 600);
}

TEST(MessageFuzzTest, TruncationsAlwaysRejected) {
  for (const auto& message : sample_messages()) {
    const auto encoded = message.encode();
    for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
      std::vector<std::byte> prefix(encoded.begin(),
                                    encoded.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
      auto decoded = Message::decode(prefix);
      EXPECT_FALSE(decoded.is_ok())
          << message.name() << " accepted a " << cut << "-byte prefix of "
          << encoded.size() << " bytes";
    }
  }
}

TEST(MessageFuzzTest, SingleByteMutationsNeverCrash) {
  reldev::Rng rng(777);
  for (const auto& message : sample_messages()) {
    const auto encoded = message.encode();
    for (int trial = 0; trial < 300; ++trial) {
      auto mutated = encoded;
      const auto position =
          static_cast<std::size_t>(rng.uniform_u64(0, mutated.size() - 1));
      mutated[position] ^=
          static_cast<std::byte>(rng.uniform_u64(1, 255));
      (void)Message::decode(mutated);  // outcome may be either; no crash
    }
  }
}

TEST(MessageFuzzTest, AppendedGarbageRejected) {
  reldev::Rng rng(99);
  for (const auto& message : sample_messages()) {
    auto encoded = message.encode();
    encoded.push_back(static_cast<std::byte>(rng.uniform_u64(0, 255)));
    EXPECT_FALSE(Message::decode(encoded).is_ok()) << message.name();
  }
}

TEST(MessageFuzzTest, EncodeDecodeIsStableUnderReencoding) {
  for (const auto& message : sample_messages()) {
    auto decoded = Message::decode(message.encode());
    ASSERT_TRUE(decoded.is_ok()) << message.name();
    EXPECT_EQ(decoded.value().encode(), message.encode()) << message.name();
  }
}

}  // namespace
}  // namespace reldev::net
