#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>

#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"

namespace reldev::net::tcp {
namespace {

/// Thread-safe counting echo: replies StateInfo to StateInquiry and echoes
/// ClientWriteRequests with an ok ClientWriteReply.
class EchoHandler : public MessageHandler {
 public:
  Message handle(const Message& request) override {
    calls.fetch_add(1);
    if (request.holds<ClientWriteRequest>()) {
      return Message{0, ClientWriteReply{0}};
    }
    return Message{0, StateInfo{SiteState::kAvailable, 7, {}}};
  }
  void handle_oneway(const Message&) override {}
  std::atomic<int> calls{0};
};

TEST(TcpSocketTest, ConnectToClosedPortFails) {
  // Port 1 on localhost is essentially never listening.
  auto socket = Socket::connect("127.0.0.1", 1);
  EXPECT_FALSE(socket.is_ok());
  EXPECT_EQ(socket.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST(TcpSocketTest, BadAddressRejected) {
  auto socket = Socket::connect("not-an-address", 80);
  EXPECT_EQ(socket.status().code(), reldev::ErrorCode::kInvalidArgument);
}

/// The three server execution configurations every server-facing test must
/// hold under: reactor over epoll, reactor over io_uring (skipped where the
/// kernel lacks it), and the thread-per-connection baseline.
struct ServerConfig {
  const char* name;
  ServerOptions options;
};

class TcpServerModeTest : public ::testing::TestWithParam<ServerConfig> {
 protected:
  void SetUp() override {
    const ServerOptions& options = GetParam().options;
    if (options.mode == ServerOptions::Mode::kReactor &&
        options.backend == EventLoop::Backend::kIoUring &&
        !EventLoop::io_uring_available()) {
      GTEST_SKIP() << "io_uring not available on this kernel/build";
    }
  }

  [[nodiscard]] static Result<std::unique_ptr<TcpServer>> start_server(
      MessageHandler* handler) {
    return TcpServer::start(0, handler, GetParam().options);
  }
};

TEST_P(TcpServerModeTest, EphemeralPortAssigned) {
  EchoHandler handler;
  auto server = start_server(&handler);
  ASSERT_TRUE(server.is_ok());
  EXPECT_GT(server.value()->port(), 0);
  EXPECT_EQ(server.value()->mode(), GetParam().options.mode);
}

TEST_P(TcpServerModeTest, RoundTripCall) {
  EchoHandler handler;
  auto server = start_server(&handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  auto reply = channel.call(Message{9, StateInquiry{}});
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_TRUE(reply.value().holds<StateInfo>());
  EXPECT_EQ(reply.value().as<StateInfo>().version_total, 7u);
  EXPECT_EQ(handler.calls.load(), 1);
  EXPECT_EQ(server->served_frames(), 1u);
}

TEST_P(TcpServerModeTest, ManySequentialCallsOnOneConnection) {
  EchoHandler handler;
  auto server = start_server(&handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(channel.call(Message{1, StateInquiry{}}).is_ok());
  }
  EXPECT_EQ(handler.calls.load(), 50);
}

TEST_P(TcpServerModeTest, LargePayloadSurvives) {
  EchoHandler handler;
  auto server = start_server(&handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  BlockData big(256 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i & 0xff);
  }
  auto reply = channel.call(Message{1, ClientWriteRequest{0, big}});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().holds<ClientWriteReply>());
}

TEST_P(TcpServerModeTest, MultipleClients) {
  EchoHandler handler;
  auto server = start_server(&handler).value();
  TcpChannel a("127.0.0.1", server->port());
  TcpChannel b("127.0.0.1", server->port());
  EXPECT_TRUE(a.call(Message{1, StateInquiry{}}).is_ok());
  EXPECT_TRUE(b.call(Message{2, StateInquiry{}}).is_ok());
  EXPECT_TRUE(a.call(Message{1, StateInquiry{}}).is_ok());
  EXPECT_EQ(handler.calls.load(), 3);
}

TEST_P(TcpServerModeTest, ChannelReconnectsAfterDisconnect) {
  EchoHandler handler;
  auto server = start_server(&handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  ASSERT_TRUE(channel.call(Message{1, StateInquiry{}}).is_ok());
  channel.disconnect();
  ASSERT_TRUE(channel.call(Message{1, StateInquiry{}}).is_ok());
  EXPECT_EQ(handler.calls.load(), 2);
}

TEST_P(TcpServerModeTest, CallAfterServerStopFails) {
  EchoHandler handler;
  auto server = start_server(&handler).value();
  const std::uint16_t port = server->port();
  TcpChannel channel("127.0.0.1", port);
  ASSERT_TRUE(channel.call(Message{1, StateInquiry{}}).is_ok());
  server->stop();
  auto reply = channel.call(Message{1, StateInquiry{}});
  EXPECT_FALSE(reply.is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, TcpServerModeTest,
    ::testing::Values(
        ServerConfig{"ReactorEpoll",
                     ServerOptions{.mode = ServerOptions::Mode::kReactor,
                                   .backend = EventLoop::Backend::kEpoll}},
        ServerConfig{"ReactorIoUring",
                     ServerOptions{.mode = ServerOptions::Mode::kReactor,
                                   .backend = EventLoop::Backend::kIoUring}},
        ServerConfig{
            "ThreadPerConnection",
            ServerOptions{.mode = ServerOptions::Mode::kThreadPerConnection}}),
    [](const ::testing::TestParamInfo<ServerConfig>& param) {
      return param.param.name;
    });

TEST(TcpPeerTransportTest, RoutesPerSite) {
  EchoHandler h1;
  EchoHandler h2;
  auto s1 = TcpServer::start(0, &h1).value();
  auto s2 = TcpServer::start(0, &h2).value();
  TcpPeerTransport transport;
  transport.set_endpoint(1, "127.0.0.1", s1->port());
  transport.set_endpoint(2, "127.0.0.1", s2->port());

  ASSERT_TRUE(transport.call(0, 1, Message{0, StateInquiry{}}).is_ok());
  ASSERT_TRUE(transport.call(0, 2, Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(h1.calls.load(), 1);
  EXPECT_EQ(h2.calls.load(), 1);
}

TEST(TcpPeerTransportTest, MulticastCallSkipsDeadPeers) {
  EchoHandler h1;
  auto s1 = TcpServer::start(0, &h1).value();
  TcpPeerTransport transport;
  transport.set_endpoint(1, "127.0.0.1", s1->port());
  transport.set_endpoint(2, "127.0.0.1", 1);  // nothing listens there

  auto replies = transport.multicast_call(0, SiteSet{1, 2},
                                          Message{0, StateInquiry{}});
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, 1u);
}

TEST(TcpPeerTransportTest, UnknownSiteIsUnavailable) {
  TcpPeerTransport transport;
  auto reply = transport.call(0, 5, Message{0, StateInquiry{}});
  EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kUnavailable);
}

/// Builds a connected stream-socket pair for framing tests.
std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

TEST(FramingTest, RoundTrip) {
  auto [a, b] = socket_pair();
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2},
                                       std::byte{3}};
  ASSERT_TRUE(write_frame(a, payload).is_ok());
  auto read = read_frame(b);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value(), payload);
}

TEST(FramingTest, EmptyPayloadFrame) {
  auto [a, b] = socket_pair();
  ASSERT_TRUE(write_frame(a, {}).is_ok());
  auto read = read_frame(b);
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read.value().empty());
}

TEST(FramingTest, CorruptPayloadRejected) {
  auto [a, b] = socket_pair();
  const std::vector<std::byte> payload(100, std::byte{0x42});
  ASSERT_TRUE(write_frame(a, payload).is_ok());
  // Flip a payload byte in flight by reading raw and re-sending garbled.
  std::vector<std::byte> raw(12 + 100);
  ASSERT_TRUE(b.read_exact(raw).is_ok());
  raw[50] ^= std::byte{0xFF};
  auto [c, d] = socket_pair();
  ASSERT_TRUE(c.write_all(raw).is_ok());
  auto read = read_frame(d);
  EXPECT_EQ(read.status().code(), reldev::ErrorCode::kCorruption);
}

TEST(FramingTest, BadMagicRejected) {
  auto [a, b] = socket_pair();
  const std::vector<std::byte> junk(12, std::byte{0x11});
  ASSERT_TRUE(a.write_all(junk).is_ok());
  auto read = read_frame(b);
  EXPECT_EQ(read.status().code(), reldev::ErrorCode::kCorruption);
}

TEST(FramingTest, CleanEofIsUnavailable) {
  auto [a, b] = socket_pair();
  a.close();
  auto read = read_frame(b);
  EXPECT_EQ(read.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST(FramingTest, EofMidFrameIsIoError) {
  auto [a, b] = socket_pair();
  // A valid header promising 100 bytes, then nothing.
  const std::vector<std::byte> payload(100, std::byte{0x01});
  ASSERT_TRUE(write_frame(a, payload).is_ok());
  std::vector<std::byte> partial(12 + 10);
  ASSERT_TRUE(b.read_exact(partial).is_ok());
  auto [c, d] = socket_pair();
  ASSERT_TRUE(c.write_all(partial).is_ok());
  c.close();
  auto read = read_frame(d);
  EXPECT_EQ(read.status().code(), reldev::ErrorCode::kIoError);
}

}  // namespace
}  // namespace reldev::net::tcp
