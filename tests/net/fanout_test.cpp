#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "reldev/net/fanout.hpp"
#include "reldev/net/traffic.hpp"

namespace reldev::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

TEST(FanOutTest, RunsEverySubmittedTask) {
  FanOut pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  // The destructor drains the queue; construct/destruct in a scope.
  const auto deadline = Clock::now() + 5s;
  while (ran.load() < 100 && Clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(FanOutTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    FanOut pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(FanOutTest, TasksRunConcurrently) {
  FanOut pool(4);
  // Four tasks that each block until all four have started can only finish
  // if they run at the same time.
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&started, &finished] {
      started.fetch_add(1);
      const auto deadline = Clock::now() + 5s;
      while (started.load() < 4 && Clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
      }
      if (started.load() >= 4) finished.fetch_add(1);
    });
  }
  const auto deadline = Clock::now() + 5s;
  while (finished.load() < 4 && Clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(finished.load(), 4);
}

TEST(FanOutTest, SharedPoolIsUsable) {
  std::atomic<bool> ran{false};
  FanOut::shared().submit([&ran] { ran.store(true); });
  const auto deadline = Clock::now() + 5s;
  while (!ran.load() && Clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(ran.load());
  EXPECT_GE(FanOut::shared().thread_count(), 1u);
}

TEST(FanOutTest, SharedPoolCanBeResized) {
  FanOut::set_shared_thread_count(3);
  EXPECT_EQ(FanOut::shared().thread_count(), 3u);
  // The replacement pool still executes work.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    FanOut::shared().submit([&ran] { ran.fetch_add(1); });
  }
  const auto deadline = Clock::now() + 5s;
  while (ran.load() < 8 && Clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), 8);
  // Restore the default size for any test running after this one.
  FanOut::set_shared_thread_count(FanOut::default_thread_count());
  EXPECT_EQ(FanOut::shared().thread_count(), FanOut::default_thread_count());
}

TEST(TrafficMeterConcurrencyTest, ConcurrentAddForIsLossless) {
  TrafficMeter meter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&meter] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        meter.add_for(OpKind::kRead, 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(meter.count(OpKind::kRead),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(TrafficMeterConcurrencyTest, AddForLandsInTheCapturedBucket) {
  TrafficMeter meter;
  meter.set_current_op(OpKind::kWrite);
  // A straggler reporting under the kind captured at dispatch must not be
  // affected by what the engine thread switched to since.
  const OpKind captured = meter.current_op();
  meter.set_current_op(OpKind::kRecovery);
  meter.add_for(captured, 3);
  EXPECT_EQ(meter.count(OpKind::kWrite), 3u);
  EXPECT_EQ(meter.count(OpKind::kRecovery), 0u);
}

}  // namespace
}  // namespace reldev::net
