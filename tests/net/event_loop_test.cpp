// EventLoop backend tests. Every test is parameterized over the available
// backends (epoll always; io_uring when the kernel supports it) so both
// implementations honour the same contract: one-shot ops, loop-thread
// arming, cancel-means-never-fires, cross-thread post/stop.
#include "reldev/net/tcp/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "reldev/net/tcp/socket.hpp"

namespace reldev::net::tcp {
namespace {

using namespace std::chrono_literals;

class EventLoopTest : public ::testing::TestWithParam<EventLoop::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == EventLoop::Backend::kIoUring &&
        !EventLoop::io_uring_available()) {
      GTEST_SKIP() << "io_uring not available on this kernel/build";
    }
    auto loop = EventLoop::create(GetParam());
    ASSERT_TRUE(loop.is_ok()) << loop.status().to_string();
    loop_ = std::move(loop).value();
    ASSERT_EQ(loop_->backend(), GetParam());
    thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_ != nullptr) loop_->stop();
    if (thread_.joinable()) thread_.join();
  }

  /// Run `fn` on the loop thread and wait for it to finish.
  void on_loop(EventLoop::Task fn) {
    std::promise<void> done;
    auto fut = done.get_future();
    loop_->post([&] {
      fn();
      done.set_value();
    });
    ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  }

  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
};

TEST_P(EventLoopTest, PostRunsTaskOnLoopThread) {
  std::atomic<bool> ran{false};
  std::thread::id loop_tid;
  on_loop([&] {
    loop_tid = std::this_thread::get_id();
    ran = true;
  });
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(loop_tid, thread_.get_id());
  EXPECT_NE(loop_tid, std::this_thread::get_id());
}

TEST_P(EventLoopTest, TimerFiresAfterDelay) {
  std::promise<void> fired;
  auto fut = fired.get_future();
  const auto start = std::chrono::steady_clock::now();
  on_loop([&] { loop_->add_timer(30ms, [&] { fired.set_value(); }); });
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST_P(EventLoopTest, CancelledTimerNeverFires) {
  std::atomic<bool> cancelled_fired{false};
  std::promise<void> sentinel;
  auto fut = sentinel.get_future();
  on_loop([&] {
    const auto id = loop_->add_timer(20ms, [&] { cancelled_fired = true; });
    loop_->cancel_timer(id);
    // A later sentinel timer brackets the cancelled one's deadline.
    loop_->add_timer(60ms, [&] { sentinel.set_value(); });
  });
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  EXPECT_FALSE(cancelled_fired.load());
}

TEST_P(EventLoopTest, TimersFireInDeadlineOrder) {
  std::vector<int> order;
  std::promise<void> done;
  auto fut = done.get_future();
  on_loop([&] {
    loop_->add_timer(40ms, [&] {
      order.push_back(2);
      done.set_value();
    });
    loop_->add_timer(10ms, [&] { order.push_back(1); });
  });
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EventLoopTest, AcceptReadWriteRoundTrip) {
  auto acceptor = Acceptor::listen(0);
  ASSERT_TRUE(acceptor.is_ok());
  ASSERT_TRUE(acceptor.value().set_nonblocking(true).is_ok());

  std::promise<int> accepted;
  auto accepted_fut = accepted.get_future();
  on_loop([&] {
    loop_->async_accept(acceptor.value().fd(), [&](Result<int> fd) {
      ASSERT_TRUE(fd.is_ok()) << fd.status().to_string();
      accepted.set_value(fd.value());
    });
  });

  auto client = Socket::connect("127.0.0.1", acceptor.value().port(), 1s);
  ASSERT_TRUE(client.is_ok());
  ASSERT_EQ(accepted_fut.wait_for(5s), std::future_status::ready);
  const int server_fd = accepted_fut.get();

  // Echo one buffer through the loop: async_readv then async_writev.
  std::array<std::byte, 64> inbox{};
  std::promise<std::size_t> echoed;
  auto echoed_fut = echoed.get_future();
  on_loop([&] {
    iovec iov{inbox.data(), inbox.size()};
    loop_->async_readv(server_fd, std::span<const iovec>(&iov, 1),
                       [&, server_fd](Result<std::size_t> n) {
                         ASSERT_TRUE(n.is_ok()) << n.status().to_string();
                         iovec out{inbox.data(), n.value()};
                         loop_->async_writev(
                             server_fd, std::span<const iovec>(&out, 1),
                             [&](Result<std::size_t> wrote) {
                               ASSERT_TRUE(wrote.is_ok());
                               echoed.set_value(wrote.value());
                             });
                       });
  });

  const std::string message = "hello, reactor";
  ASSERT_TRUE(client.value()
                  .write_all(std::as_bytes(std::span(message.data(),
                                                     message.size())))
                  .is_ok());
  ASSERT_EQ(echoed_fut.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(echoed_fut.get(), message.size());

  std::vector<std::byte> reply(message.size());
  ASSERT_TRUE(client.value().read_exact(reply).is_ok());
  EXPECT_EQ(std::memcmp(reply.data(), message.data(), message.size()), 0);
  on_loop([&] {
    loop_->cancel(server_fd);
    loop_->cancel(acceptor.value().fd());
  });
  ::close(server_fd);
}

TEST_P(EventLoopTest, ReadSeesEofAsZero) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  std::promise<std::size_t> got;
  auto fut = got.get_future();
  std::array<std::byte, 16> buf{};
  on_loop([&] {
    iovec iov{buf.data(), buf.size()};
    loop_->async_readv(fds[0], std::span<const iovec>(&iov, 1),
                       [&](Result<std::size_t> n) {
                         ASSERT_TRUE(n.is_ok());
                         got.set_value(n.value());
                       });
  });
  ::close(fds[1]);
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(fut.get(), 0u);
  on_loop([&] { loop_->cancel(fds[0]); });
  ::close(fds[0]);
}

TEST_P(EventLoopTest, ScatterGatherCoversAllIovecs) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  const std::string a = "alpha";
  const std::string b = "beta";
  std::promise<std::size_t> wrote;
  auto wrote_fut = wrote.get_future();
  on_loop([&] {
    std::array<iovec, 2> iov{
        iovec{const_cast<char*>(a.data()), a.size()},
        iovec{const_cast<char*>(b.data()), b.size()},
    };
    loop_->async_writev(fds[0], iov, [&](Result<std::size_t> n) {
      ASSERT_TRUE(n.is_ok());
      wrote.set_value(n.value());
    });
  });
  ASSERT_EQ(wrote_fut.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(wrote_fut.get(), a.size() + b.size());

  std::array<char, 16> half1{};
  std::array<char, 16> half2{};
  std::promise<std::size_t> read_back;
  auto read_fut = read_back.get_future();
  on_loop([&] {
    std::array<iovec, 2> iov{
        iovec{half1.data(), a.size()},
        iovec{half2.data(), b.size()},
    };
    loop_->async_readv(fds[1], iov, [&](Result<std::size_t> n) {
      ASSERT_TRUE(n.is_ok());
      read_back.set_value(n.value());
    });
  });
  ASSERT_EQ(read_fut.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(read_fut.get(), a.size() + b.size());
  EXPECT_EQ(std::string(half1.data(), a.size()), a);
  EXPECT_EQ(std::string(half2.data(), b.size()), b);
  on_loop([&] {
    loop_->cancel(fds[0]);
    loop_->cancel(fds[1]);
  });
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventLoopTest, CancelledOpNeverFiresItsHandler) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  std::atomic<bool> fired{false};
  std::array<std::byte, 16> buf{};
  std::promise<void> after;
  auto after_fut = after.get_future();
  on_loop([&] {
    iovec iov{buf.data(), buf.size()};
    // Nothing is written to fds[1], so this read stays pending until the
    // cancel drops it.
    loop_->async_readv(fds[0], std::span<const iovec>(&iov, 1),
                       [&](Result<std::size_t>) { fired = true; });
    loop_->cancel(fds[0]);
  });
  // Write after cancelling; a surviving op would now complete. The sentinel
  // timer gives a cancelled-but-still-armed op time to misfire.
  const char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  on_loop([&] { loop_->add_timer(50ms, [&] { after.set_value(); }); });
  ASSERT_EQ(after_fut.wait_for(5s), std::future_status::ready);
  EXPECT_FALSE(fired.load());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_P(EventLoopTest, StopFromAnotherThreadUnblocksRun) {
  // SetUp started run(); stopping here must make the thread joinable fast.
  loop_->stop();
  thread_.join();
  SUCCEED();
}

TEST_P(EventLoopTest, PartialWriteContinuation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  // Shrink the send buffer so a large write cannot complete in one syscall.
  const int small = 4096;
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)),
            0);
  const std::vector<std::byte> blob(512 * 1024, std::byte{0xAB});
  std::atomic<std::size_t> sent{0};
  std::promise<void> all_sent;
  auto sent_fut = all_sent.get_future();

  // Writer state machine: re-arm with the remaining suffix on every
  // completion, exactly as the server's reply path does.
  std::function<void()> send_more = [&] {
    const std::size_t offset = sent.load();
    if (offset == blob.size()) {
      all_sent.set_value();
      return;
    }
    iovec iov{const_cast<std::byte*>(blob.data() + offset),
              blob.size() - offset};
    loop_->async_writev(fds[0], std::span<const iovec>(&iov, 1),
                        [&](Result<std::size_t> n) {
                          ASSERT_TRUE(n.is_ok()) << n.status().to_string();
                          sent += n.value();
                          send_more();
                        });
  };
  on_loop([&] { send_more(); });

  // Drain from a plain blocking thread.
  std::thread drainer([&] {
    std::vector<std::byte> sink(64 * 1024);
    std::size_t total = 0;
    while (total < blob.size()) {
      const ssize_t n = ::recv(fds[1], sink.data(), sink.size(), MSG_WAITALL);
      if (n <= 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
        break;
      }
      total += static_cast<std::size_t>(n);
    }
  });
  ASSERT_EQ(sent_fut.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(sent.load(), blob.size());
  drainer.join();
  on_loop([&] { loop_->cancel(fds[0]); });
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopFactoryTest, IoUringPreferenceFallsBackCleanly) {
  auto loop = EventLoop::create(EventLoop::Backend::kIoUring);
  ASSERT_TRUE(loop.is_ok()) << loop.status().to_string();
  if (EventLoop::io_uring_available()) {
    EXPECT_EQ(loop.value()->backend(), EventLoop::Backend::kIoUring);
  } else {
    EXPECT_EQ(loop.value()->backend(), EventLoop::Backend::kEpoll);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EventLoopTest,
    ::testing::Values(EventLoop::Backend::kEpoll,
                      EventLoop::Backend::kIoUring),
    [](const ::testing::TestParamInfo<EventLoop::Backend>& param) {
      return param.param == EventLoop::Backend::kEpoll ? "Epoll" : "IoUring";
    });

}  // namespace
}  // namespace reldev::net::tcp
