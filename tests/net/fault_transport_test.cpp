#include "reldev/net/fault_transport.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "reldev/net/inproc_transport.hpp"

namespace reldev::net {
namespace {

class EchoHandler : public MessageHandler {
 public:
  explicit EchoHandler(SiteId self) : self_(self) {}

  Message handle(const Message& request) override {
    ++calls;
    last_from = request.from;
    return Message{self_, StateInfo{SiteState::kAvailable, 0, {}}};
  }
  void handle_oneway(const Message& message) override {
    ++oneways;
    last_from = message.from;
  }

  SiteId self_;
  int calls = 0;
  int oneways = 0;
  SiteId last_from = 999;
};

class FaultTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (SiteId s = 0; s < 4; ++s) {
      handlers_.push_back(std::make_unique<EchoHandler>(s));
      inner_.bind(s, handlers_.back().get());
    }
  }

  InProcTransport inner_{AddressingMode::kMulticast};
  FaultInjectingTransport faults_{inner_, 42};
  std::vector<std::unique_ptr<EchoHandler>> handlers_;
};

TEST_F(FaultTransportTest, PassThroughWithNoRules) {
  auto reply = faults_.call(0, 1, Message{0, StateInquiry{}});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().holds<StateInfo>());
  ASSERT_TRUE(faults_.send(0, 2, Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(handlers_[2]->oneways, 1);
  auto replies =
      faults_.multicast_call(0, SiteSet{1, 2, 3}, Message{0, StateInquiry{}});
  EXPECT_EQ(replies.size(), 3u);
  EXPECT_EQ(faults_.stats().dropped, 0u);
  EXPECT_EQ(faults_.stats().corrupted, 0u);
}

TEST_F(FaultTransportTest, BlockedLinkIsOneWay) {
  faults_.block_link(0, 1);
  auto blocked = faults_.call(0, 1, Message{0, StateInquiry{}});
  EXPECT_EQ(blocked.status().code(), reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(handlers_[1]->calls, 0);
  // The reverse direction still works: the partition is one-way.
  auto reverse = faults_.call(1, 0, Message{1, StateInquiry{}});
  EXPECT_TRUE(reverse.is_ok());
  EXPECT_EQ(faults_.stats().blocked, 1u);
}

TEST_F(FaultTransportTest, BlockPairCutsBothDirections) {
  faults_.block_pair(0, 1);
  EXPECT_FALSE(faults_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
  EXPECT_FALSE(faults_.call(1, 0, Message{1, StateInquiry{}}).is_ok());
  // Third parties are untouched.
  EXPECT_TRUE(faults_.call(0, 2, Message{0, StateInquiry{}}).is_ok());
}

TEST_F(FaultTransportTest, HealRestoresEverything) {
  FaultRule lossy;
  lossy.drop = 1.0;
  faults_.set_default_rule(lossy);
  faults_.block_link(0, 1);
  EXPECT_FALSE(faults_.call(0, 2, Message{0, StateInquiry{}}).is_ok());
  faults_.heal();
  EXPECT_TRUE(faults_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
  EXPECT_TRUE(faults_.call(0, 2, Message{0, StateInquiry{}}).is_ok());
}

TEST_F(FaultTransportTest, CertainDropIsTimeoutAndCountsBothHalves) {
  FaultRule lossy;
  lossy.drop = 1.0;
  faults_.set_link_rule(0, 1, lossy);
  int request_lost = 0;
  int reply_lost = 0;
  for (int i = 0; i < 40; ++i) {
    const int calls_before = handlers_[1]->calls;
    auto reply = faults_.call(0, 1, Message{0, StateInquiry{}});
    EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kTimeout);
    // A lost reply means the peer executed the request anyway.
    (handlers_[1]->calls > calls_before ? reply_lost : request_lost)++;
  }
  EXPECT_EQ(faults_.stats().dropped, 40u);
  // Both halves of the at-most-once ambiguity occur.
  EXPECT_GT(request_lost, 0);
  EXPECT_GT(reply_lost, 0);
}

TEST_F(FaultTransportTest, CertainCorruptionIsTypedCorruption) {
  FaultRule garbled;
  garbled.corrupt = 1.0;
  faults_.set_link_rule(0, 1, garbled);
  auto reply = faults_.call(0, 1, Message{0, StateInquiry{}});
  EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kCorruption);
  EXPECT_EQ(faults_.stats().corrupted, 1u);
}

TEST_F(FaultTransportTest, DuplicateDeliversTwiceAndStillAnswers) {
  FaultRule chatty;
  chatty.duplicate = 1.0;
  faults_.set_link_rule(0, 1, chatty);
  auto reply = faults_.call(0, 1, Message{0, StateInquiry{}});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(handlers_[1]->calls, 2);  // at-least-once delivery
  ASSERT_TRUE(faults_.send(0, 1, Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(handlers_[1]->oneways, 2);
  EXPECT_EQ(faults_.stats().duplicated, 2u);
}

TEST_F(FaultTransportTest, DroppedSendVanishesSilently) {
  FaultRule lossy;
  lossy.drop = 1.0;
  faults_.set_link_rule(0, 1, lossy);
  ASSERT_TRUE(faults_.send(0, 1, Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(handlers_[1]->oneways, 0);
}

TEST_F(FaultTransportTest, MulticastCallOnlyGathersSurvivingLinks) {
  FaultRule lossy;
  lossy.drop = 1.0;
  faults_.set_link_rule(0, 2, lossy);
  faults_.block_link(0, 3);
  auto replies =
      faults_.multicast_call(0, SiteSet{1, 2, 3}, Message{0, StateInquiry{}});
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, 1u);
  EXPECT_EQ(handlers_[3]->calls, 0);  // blocked: never executed
}

TEST_F(FaultTransportTest, LostAckStillExecutesOnThePeer) {
  // Force the reply-lost half of a drop by drawing fates until one lands:
  // with drop = 1.0 every call is dropped; across a batch of multicasts the
  // peer must have executed at least once (reply-lost cases execute).
  FaultRule lossy;
  lossy.drop = 1.0;
  faults_.set_link_rule(0, 2, lossy);
  for (int i = 0; i < 20; ++i) {
    (void)faults_.multicast_call(0, SiteSet{1, 2},
                                 Message{0, StateInquiry{}});
  }
  EXPECT_GT(handlers_[2]->calls, 0);   // applied-but-unacknowledged
  EXPECT_EQ(handlers_[1]->calls, 20);  // healthy link unaffected
}

TEST_F(FaultTransportTest, SameSeedReplaysSameSchedule) {
  FaultRule flaky;
  flaky.drop = 0.5;
  auto run = [&](std::uint64_t seed) {
    FaultInjectingTransport transport(inner_, seed);
    transport.set_default_rule(flaky);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          transport.call(0, 1, Message{0, StateInquiry{}}).is_ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(FaultTransportTest, ReseedRestartsTheSchedule) {
  FaultRule flaky;
  flaky.drop = 0.5;
  faults_.set_default_rule(flaky);
  auto sample = [&] {
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          faults_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
    }
    return outcomes;
  };
  faults_.reseed(123);
  const auto first = sample();
  faults_.reseed(123);
  EXPECT_EQ(first, sample());
}

TEST_F(FaultTransportTest, RulesFlipMidRun) {
  FaultRule lossy;
  lossy.drop = 1.0;
  faults_.set_link_rule(0, 1, lossy);
  EXPECT_FALSE(faults_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
  faults_.clear_link_rule(0, 1);
  EXPECT_TRUE(faults_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
}

}  // namespace
}  // namespace reldev::net
