#include "reldev/net/inproc_transport.hpp"

#include <gtest/gtest.h>

namespace reldev::net {
namespace {

/// Echo handler: replies to StateInquiry with its fixed state; records
/// one-way deliveries.
class EchoHandler : public MessageHandler {
 public:
  explicit EchoHandler(SiteId self) : self_(self) {}

  Message handle(const Message& request) override {
    ++calls;
    last_from = request.from;
    return Message{self_, StateInfo{SiteState::kAvailable, 0, {}}};
  }
  void handle_oneway(const Message& message) override {
    ++oneways;
    last_from = message.from;
  }

  SiteId self_;
  int calls = 0;
  int oneways = 0;
  SiteId last_from = 999;
};

class InProcTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (SiteId s = 0; s < 3; ++s) {
      handlers_.push_back(std::make_unique<EchoHandler>(s));
      transport_.bind(s, handlers_.back().get());
    }
    transport_.set_traffic_meter(&meter_);
  }

  InProcTransport transport_{AddressingMode::kMulticast};
  TrafficMeter meter_;
  std::vector<std::unique_ptr<EchoHandler>> handlers_;
};

TEST_F(InProcTransportTest, CallDeliversAndReturnsReply) {
  auto reply = transport_.call(0, 1, Message{0, StateInquiry{}});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().holds<StateInfo>());
  EXPECT_EQ(handlers_[1]->calls, 1);
  EXPECT_EQ(handlers_[1]->last_from, 0u);
  EXPECT_EQ(meter_.total(), 2u);  // request + reply
}

TEST_F(InProcTransportTest, CallToDownSiteFails) {
  transport_.set_up(1, false);
  auto reply = transport_.call(0, 1, Message{0, StateInquiry{}});
  EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(handlers_[1]->calls, 0);
  // The attempt still cost one transmission.
  EXPECT_EQ(meter_.total(), 1u);
}

TEST_F(InProcTransportTest, CallToUnboundSiteFails) {
  auto reply = transport_.call(0, 7, Message{0, StateInquiry{}});
  EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST_F(InProcTransportTest, SendDeliversOneWay) {
  ASSERT_TRUE(transport_.send(0, 2, Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(handlers_[2]->oneways, 1);
  EXPECT_EQ(meter_.total(), 1u);
}

TEST_F(InProcTransportTest, SendToDownSiteIsSilentlyDropped) {
  transport_.set_up(2, false);
  ASSERT_TRUE(transport_.send(0, 2, Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(handlers_[2]->oneways, 0);
}

TEST_F(InProcTransportTest, MulticastCountsOneTransmission) {
  ASSERT_TRUE(
      transport_.multicast(0, SiteSet{1, 2}, Message{0, StateInquiry{}})
          .is_ok());
  EXPECT_EQ(handlers_[1]->oneways, 1);
  EXPECT_EQ(handlers_[2]->oneways, 1);
  EXPECT_EQ(meter_.total(), 1u);  // one broadcast
}

TEST_F(InProcTransportTest, MulticastSkipsSelfAndDownSites) {
  transport_.set_up(1, false);
  ASSERT_TRUE(
      transport_.multicast(0, SiteSet{0, 1, 2}, Message{0, StateInquiry{}})
          .is_ok());
  EXPECT_EQ(handlers_[0]->oneways, 0);
  EXPECT_EQ(handlers_[1]->oneways, 0);
  EXPECT_EQ(handlers_[2]->oneways, 1);
}

TEST_F(InProcTransportTest, MulticastCallGathersLiveReplies) {
  transport_.set_up(1, false);
  auto replies =
      transport_.multicast_call(0, SiteSet{1, 2}, Message{0, StateInquiry{}});
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, 2u);
  // One broadcast + one reply.
  EXPECT_EQ(meter_.total(), 2u);
}

TEST_F(InProcTransportTest, UniqueAddressingCountsPerDestination) {
  InProcTransport unique(AddressingMode::kUnique);
  TrafficMeter meter;
  unique.set_traffic_meter(&meter);
  std::vector<std::unique_ptr<EchoHandler>> handlers;
  for (SiteId s = 0; s < 4; ++s) {
    handlers.push_back(std::make_unique<EchoHandler>(s));
    unique.bind(s, handlers.back().get());
  }
  auto replies =
      unique.multicast_call(0, SiteSet{1, 2, 3}, Message{0, StateInquiry{}});
  EXPECT_EQ(replies.size(), 3u);
  // 3 addressed requests + 3 replies.
  EXPECT_EQ(meter.total(), 6u);

  meter.reset();
  ASSERT_TRUE(
      unique.multicast(0, SiteSet{1, 2, 3}, Message{0, StateInquiry{}})
          .is_ok());
  EXPECT_EQ(meter.total(), 3u);
}

TEST_F(InProcTransportTest, PartitionBlocksCrossGroupTraffic) {
  transport_.set_partition_group(0, 1);
  // 0 is alone in partition 1; 1 and 2 remain in partition 0.
  auto reply = transport_.call(0, 1, Message{0, StateInquiry{}});
  EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kUnavailable);
  auto peer_reply = transport_.call(1, 2, Message{1, StateInquiry{}});
  EXPECT_TRUE(peer_reply.is_ok());

  transport_.clear_partitions();
  EXPECT_TRUE(transport_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
}

TEST_F(InProcTransportTest, RecoverySetsUpAgain) {
  transport_.set_up(1, false);
  EXPECT_FALSE(transport_.is_up(1));
  transport_.set_up(1, true);
  EXPECT_TRUE(transport_.is_up(1));
  EXPECT_TRUE(transport_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
}

TEST_F(InProcTransportTest, UnbindRemovesSite) {
  transport_.unbind(2);
  auto reply = transport_.call(0, 2, Message{0, StateInquiry{}});
  EXPECT_EQ(reply.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST_F(InProcTransportTest, WorksWithoutMeter) {
  transport_.set_traffic_meter(nullptr);
  EXPECT_TRUE(transport_.call(0, 1, Message{0, StateInquiry{}}).is_ok());
}

TEST_F(InProcTransportTest, EarlyStopGathersSubset) {
  auto replies = transport_.multicast_call(
      0, SiteSet{1, 2}, Message{0, StateInquiry{}},
      [](const std::vector<GatherReply>& so_far) { return so_far.size() >= 1; });
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].first, 1u);
}

TEST_F(InProcTransportTest, EarlyStopStillDeliversAndMetersStragglers) {
  auto replies = transport_.multicast_call(
      0, SiteSet{1, 2}, Message{0, StateInquiry{}},
      [](const std::vector<GatherReply>& so_far) { return so_far.size() >= 1; });
  EXPECT_EQ(replies.size(), 1u);
  // The request reached both sites and both answered; the straggler's
  // reply is metered even though the gather returned without it.
  EXPECT_EQ(handlers_[1]->calls, 1);
  EXPECT_EQ(handlers_[2]->calls, 1);
  EXPECT_EQ(meter_.total(), 3u);  // one broadcast + two replies
}

TEST_F(InProcTransportTest, NullEarlyStopGathersEverything) {
  auto replies = transport_.multicast_call(0, SiteSet{1, 2},
                                           Message{0, StateInquiry{}},
                                           EarlyStop{});
  EXPECT_EQ(replies.size(), 2u);
}

}  // namespace
}  // namespace reldev::net
