#include "reldev/net/traffic.hpp"

#include <gtest/gtest.h>

namespace reldev::net {
namespace {

TEST(TrafficMeterTest, StartsEmpty) {
  TrafficMeter meter;
  EXPECT_EQ(meter.total(), 0u);
  EXPECT_EQ(meter.count(OpKind::kRead), 0u);
  EXPECT_EQ(meter.current_op(), OpKind::kOther);
}

TEST(TrafficMeterTest, CountsIntoCurrentOp) {
  TrafficMeter meter;
  meter.set_current_op(OpKind::kWrite);
  meter.add(3);
  meter.set_current_op(OpKind::kRead);
  meter.add(1);
  EXPECT_EQ(meter.count(OpKind::kWrite), 3u);
  EXPECT_EQ(meter.count(OpKind::kRead), 1u);
  EXPECT_EQ(meter.total(), 4u);
}

TEST(TrafficMeterTest, ResetClearsCounts) {
  TrafficMeter meter;
  meter.add(5);
  meter.reset();
  EXPECT_EQ(meter.total(), 0u);
}

TEST(OpScopeTest, RestoresPreviousOp) {
  TrafficMeter meter;
  meter.set_current_op(OpKind::kRecovery);
  {
    OpScope scope(meter, OpKind::kWrite);
    EXPECT_EQ(meter.current_op(), OpKind::kWrite);
    meter.add(2);
  }
  EXPECT_EQ(meter.current_op(), OpKind::kRecovery);
  EXPECT_EQ(meter.count(OpKind::kWrite), 2u);
  EXPECT_EQ(meter.count(OpKind::kRecovery), 0u);
}

TEST(OpScopeTest, Nests) {
  TrafficMeter meter;
  OpScope outer(meter, OpKind::kRead);
  {
    OpScope inner(meter, OpKind::kWrite);
    meter.add(1);
  }
  meter.add(1);
  EXPECT_EQ(meter.count(OpKind::kRead), 1u);
  EXPECT_EQ(meter.count(OpKind::kWrite), 1u);
}

TEST(TrafficTest, OpKindNames) {
  EXPECT_STREQ(op_kind_name(OpKind::kRead), "read");
  EXPECT_STREQ(op_kind_name(OpKind::kWrite), "write");
  EXPECT_STREQ(op_kind_name(OpKind::kRecovery), "recovery");
  EXPECT_STREQ(op_kind_name(OpKind::kOther), "other");
}

}  // namespace
}  // namespace reldev::net
