#include "reldev/net/message.hpp"

#include <gtest/gtest.h>

namespace reldev::net {
namespace {

BlockData payload(std::size_t size, std::uint8_t seed) {
  BlockData data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed + 3 * i) & 0xff);
  }
  return data;
}

template <typename T>
T round_trip(SiteId from, T value) {
  const Message original{from, std::move(value)};
  const auto encoded = original.encode();
  auto decoded = Message::decode(encoded);
  EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().from, from);
  EXPECT_TRUE(decoded.value().template holds<T>())
      << "decoded as " << decoded.value().name();
  return decoded.value().template as<T>();
}

TEST(MessageTest, VoteRequestRoundTrip) {
  const auto m = round_trip(1, VoteRequest{AccessKind::kWrite, 42});
  EXPECT_EQ(m.access, AccessKind::kWrite);
  EXPECT_EQ(m.block, 42u);
}

TEST(MessageTest, VoteReplyRoundTrip) {
  const auto m = round_trip(2, VoteReply{17, 1001});
  EXPECT_EQ(m.version, 17u);
  EXPECT_EQ(m.weight_millivotes, 1001u);
}

TEST(MessageTest, BlockFetchRoundTrip) {
  const auto req = round_trip(0, BlockFetchRequest{5});
  EXPECT_EQ(req.block, 5u);
  const auto rep = round_trip(3, BlockFetchReply{9, payload(64, 1)});
  EXPECT_EQ(rep.version, 9u);
  EXPECT_EQ(rep.data, payload(64, 1));
}

TEST(MessageTest, BlockUpdateRoundTrip) {
  const auto m = round_trip(1, BlockUpdate{7, 3, payload(32, 2)});
  EXPECT_EQ(m.block, 7u);
  EXPECT_EQ(m.version, 3u);
  EXPECT_EQ(m.data, payload(32, 2));
}

TEST(MessageTest, WriteAllRoundTrip) {
  const auto m = round_trip(
      4, WriteAllRequest{11, 8, payload(16, 3), SiteSet{0, 1, 4}});
  EXPECT_EQ(m.block, 11u);
  EXPECT_EQ(m.version, 8u);
  EXPECT_EQ(m.was_available, (SiteSet{0, 1, 4}));
  round_trip(4, WriteAllAck{});
}

TEST(MessageTest, StateMessagesRoundTrip) {
  round_trip(0, StateInquiry{});
  const auto m = round_trip(
      2, StateInfo{SiteState::kComatose, 123, SiteSet{1, 2}});
  EXPECT_EQ(m.state, SiteState::kComatose);
  EXPECT_EQ(m.version_total, 123u);
  EXPECT_EQ(m.was_available, (SiteSet{1, 2}));
}

TEST(MessageTest, RepairMessagesRoundTrip) {
  storage::VersionVector vv(3);
  vv.set(1, 4);
  const auto req = round_trip(1, RepairRequest{vv});
  EXPECT_EQ(req.versions, vv);

  RepairReply reply;
  reply.versions = vv;
  reply.blocks.push_back(BlockUpdate{1, 4, payload(8, 4)});
  reply.blocks.push_back(BlockUpdate{2, 2, payload(8, 5)});
  const auto rep = round_trip(2, std::move(reply));
  EXPECT_EQ(rep.versions, vv);
  ASSERT_EQ(rep.blocks.size(), 2u);
  EXPECT_EQ(rep.blocks[0].block, 1u);
  EXPECT_EQ(rep.blocks[1].data, payload(8, 5));
}

TEST(MessageTest, WasAvailableRoundTrip) {
  const auto m = round_trip(3, WasAvailableUpdate{SiteSet{0, 3}, true});
  EXPECT_EQ(m.was_available, (SiteSet{0, 3}));
  EXPECT_TRUE(m.replace);
  round_trip(3, WasAvailableAck{});
}

TEST(MessageTest, ClientMessagesRoundTrip) {
  EXPECT_EQ(round_trip(9, ClientReadRequest{6}).block, 6u);
  const auto rr = round_trip(1, ClientReadReply{0, payload(16, 6)});
  EXPECT_EQ(rr.error_code, 0);
  EXPECT_EQ(rr.data, payload(16, 6));
  const auto wr = round_trip(9, ClientWriteRequest{2, payload(16, 7)});
  EXPECT_EQ(wr.block, 2u);
  EXPECT_EQ(round_trip(1, ClientWriteReply{1}).error_code, 1);
}

TEST(MessageTest, DeviceInfoRoundTrip) {
  round_trip(9, DeviceInfoRequest{});
  const auto m = round_trip(1, DeviceInfoReply{1024, 512});
  EXPECT_EQ(m.block_count, 1024u);
  EXPECT_EQ(m.block_size, 512u);
}

TEST(MessageTest, ErrorReplyRoundTrip) {
  const auto m = round_trip(1, ErrorReply{3, "bad things"});
  EXPECT_EQ(m.error_code, 3);
  EXPECT_EQ(m.message, "bad things");
}

TEST(MessageTest, MakeErrorCarriesStatus) {
  const Message m = make_error(5, reldev::errors::unavailable("down"));
  ASSERT_TRUE(m.holds<ErrorReply>());
  EXPECT_EQ(m.as<ErrorReply>().error_code,
            static_cast<std::uint8_t>(reldev::ErrorCode::kUnavailable));
  EXPECT_EQ(m.as<ErrorReply>().message, "down");
}

TEST(MessageTest, DecodeRejectsUnknownTag) {
  reldev::BufferWriter writer;
  writer.put_u32(0);   // from
  writer.put_u8(250);  // bogus tag
  EXPECT_EQ(Message::decode(writer.bytes()).status().code(),
            reldev::ErrorCode::kProtocol);
}

TEST(MessageTest, DecodeRejectsTrailingBytes) {
  Message m{1, StateInquiry{}};
  auto encoded = m.encode();
  encoded.push_back(std::byte{0});
  EXPECT_EQ(Message::decode(encoded).status().code(),
            reldev::ErrorCode::kProtocol);
}

TEST(MessageTest, DecodeRejectsTruncation) {
  Message m{1, BlockUpdate{0, 1, payload(64, 1)}};
  auto encoded = m.encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_FALSE(Message::decode(encoded).is_ok());
}

TEST(MessageTest, NamesAreDistinctive) {
  EXPECT_STREQ((Message{0, VoteRequest{AccessKind::kRead, 0}}).name(),
               "vote-request");
  EXPECT_STREQ((Message{0, RepairReply{}}).name(), "repair-reply");
  EXPECT_STREQ((Message{0, ErrorReply{0, ""}}).name(), "error-reply");
}

TEST(MessageTest, SiteStateNames) {
  EXPECT_STREQ(site_state_name(SiteState::kFailed), "failed");
  EXPECT_STREQ(site_state_name(SiteState::kComatose), "comatose");
  EXPECT_STREQ(site_state_name(SiteState::kAvailable), "available");
}

TEST(MessageTest, MultiBlockMessagesRoundTrip) {
  const auto req = round_trip(1, MultiBlockReadRequest{9, 4});
  EXPECT_EQ(req.first, 9u);
  EXPECT_EQ(req.count, 4u);

  const auto rep = round_trip(2, MultiBlockReadReply{0, payload(256, 4)});
  EXPECT_EQ(rep.error_code, 0u);
  EXPECT_EQ(rep.data, payload(256, 4));

  const auto wreq = round_trip(3, MultiBlockWriteRequest{5, payload(128, 5)});
  EXPECT_EQ(wreq.first, 5u);
  EXPECT_EQ(wreq.data, payload(128, 5));

  const auto ack = round_trip(4, MultiBlockWriteAck{3});
  EXPECT_EQ(ack.error_code, 3u);
}

TEST(MessageTest, RangeVoteMessagesRoundTrip) {
  const auto req = round_trip(0, RangeVoteRequest{AccessKind::kWrite, 2, 7});
  EXPECT_EQ(req.access, AccessKind::kWrite);
  EXPECT_EQ(req.first, 2u);
  EXPECT_EQ(req.count, 7u);

  const auto rep = round_trip(1, RangeVoteReply{1001, {3, 0, 12}});
  EXPECT_EQ(rep.weight_millivotes, 1001u);
  EXPECT_EQ(rep.versions, (std::vector<VersionNumber>{3, 0, 12}));
}

TEST(MessageTest, BatchFetchMessagesRoundTrip) {
  const auto req = round_trip(2, BatchFetchRequest{{1, 4, 9}});
  EXPECT_EQ(req.blocks, (std::vector<BlockId>{1, 4, 9}));

  BatchFetchReply reply;
  reply.updates.push_back(BlockUpdate{1, 5, payload(32, 6)});
  reply.updates.push_back(BlockUpdate{9, 2, payload(32, 7)});
  const auto rep = round_trip(3, reply);
  ASSERT_EQ(rep.updates.size(), 2u);
  EXPECT_EQ(rep.updates[0].block, 1u);
  EXPECT_EQ(rep.updates[0].version, 5u);
  EXPECT_EQ(rep.updates[1].data, payload(32, 7));
}

TEST(MessageTest, BatchWriteRequestRoundTrip) {
  BatchWriteRequest push;
  push.updates.push_back(BlockUpdate{0, 1, payload(16, 8)});
  push.updates.push_back(BlockUpdate{1, 1, payload(16, 9)});
  push.was_available = SiteSet{0, 2, 3};
  const auto m = round_trip(4, push);
  ASSERT_EQ(m.updates.size(), 2u);
  EXPECT_EQ(m.updates[1].data, payload(16, 9));
  EXPECT_EQ(m.was_available, (SiteSet{0, 2, 3}));
}

TEST(MessageTest, DigestMessagesRoundTrip) {
  const auto req = round_trip(1, DigestRequest{16, 64});
  EXPECT_EQ(req.first, 16u);
  EXPECT_EQ(req.count, 64u);

  DigestReply reply;
  reply.first = 16;
  reply.versions = {3, 0, 12};
  reply.digests = {0xdeadbeef, 0x0, 0xffffffff};
  const auto rep = round_trip(2, reply);
  EXPECT_EQ(rep.first, 16u);
  EXPECT_EQ(rep.versions, (std::vector<VersionNumber>{3, 0, 12}));
  EXPECT_EQ(rep.digests,
            (std::vector<std::uint32_t>{0xdeadbeef, 0x0, 0xffffffff}));
}

TEST(MessageTest, DigestReplyWithUnparallelVectorsIsRejected) {
  // The two vectors must stay parallel; a reply where they diverge in
  // length must be refused as a protocol error, not decoded lopsided.
  DigestReply lopsided;
  lopsided.first = 0;
  lopsided.versions = {1, 2};
  lopsided.digests = {0x1};
  const auto encoded = Message{0, lopsided}.encode();
  auto decoded = Message::decode(encoded);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), reldev::ErrorCode::kProtocol);
}

TEST(MessageTest, BatchMessageNames) {
  EXPECT_STREQ((Message{0, MultiBlockReadRequest{0, 1}}).name(),
               "multi-block-read-request");
  EXPECT_STREQ((Message{0, RangeVoteReply{}}).name(), "range-vote-reply");
  EXPECT_STREQ((Message{0, BatchWriteRequest{}}).name(),
               "batch-write-request");
}

}  // namespace
}  // namespace reldev::net
