// Connection-churn and shutdown stress for both server execution modes:
// hundreds of short-lived clients, half-written frames, mid-frame
// disconnects, and stop() while requests are in flight. These are the
// paths where a readiness-driven server can leak state machines or hang
// its shutdown; the thread-per-connection baseline runs the same suite.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"

namespace reldev::net::tcp {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

class CountingHandler : public MessageHandler {
 public:
  explicit CountingHandler(std::chrono::milliseconds delay = 0ms)
      : delay_(delay) {}
  Message handle(const Message&) override {
    calls.fetch_add(1);
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return Message{0, StateInfo{SiteState::kAvailable, 1, {}}};
  }
  void handle_oneway(const Message&) override {}
  std::atomic<int> calls{0};

 private:
  const std::chrono::milliseconds delay_;
};

struct ServerConfig {
  const char* name;
  ServerOptions options;
};

class ServerChurnTest : public ::testing::TestWithParam<ServerConfig> {
 protected:
  void SetUp() override {
    const ServerOptions& options = GetParam().options;
    if (options.mode == ServerOptions::Mode::kReactor &&
        options.backend == EventLoop::Backend::kIoUring &&
        !EventLoop::io_uring_available()) {
      GTEST_SKIP() << "io_uring not available on this kernel/build";
    }
  }

  [[nodiscard]] static std::unique_ptr<TcpServer> start_server(
      MessageHandler* handler) {
    return TcpServer::start(0, handler, GetParam().options).value();
  }

  /// Spin until `predicate` holds or `deadline_ms` passes.
  template <typename Fn>
  static bool eventually(Fn predicate, int deadline_ms = 5000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
    while (Clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(2ms);
    }
    return predicate();
  }
};

TEST_P(ServerChurnTest, HundredsOfShortLivedClients) {
  CountingHandler handler;
  auto server = start_server(&handler);
  constexpr int kThreads = 8;
  constexpr int kConnectionsPerThread = 30;  // 240 connections total
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kConnectionsPerThread; ++i) {
        // A fresh channel per iteration: connect, two calls, disconnect.
        TcpChannel channel("127.0.0.1", server->port(), 5000ms);
        for (int call = 0; call < 2; ++call) {
          if (!channel.call(Message{0, StateInquiry{}}).is_ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handler.calls.load(), kThreads * kConnectionsPerThread * 2);
  EXPECT_EQ(server->served_frames(),
            static_cast<std::uint64_t>(kThreads * kConnectionsPerThread * 2));
  // All churned connections are eventually torn down server-side.
  EXPECT_TRUE(eventually(
      [&] { return server->active_connections() == 0; }))
      << "still " << server->active_connections() << " connections";
}

TEST_P(ServerChurnTest, PartialFramesAndMidFrameDisconnects) {
  CountingHandler handler;
  auto server = start_server(&handler);
  for (int round = 0; round < 50; ++round) {
    auto socket = Socket::connect("127.0.0.1", server->port(), 1000ms);
    ASSERT_TRUE(socket.is_ok());
    switch (round % 3) {
      case 0: {  // half a prefix, then vanish
        const std::array<std::byte, 3> half{std::byte{0x47}, std::byte{0x4d},
                                            std::byte{0x44}};
        (void)socket.value().write_all(half);
        break;
      }
      case 1: {  // a full prefix promising 64 KiB, then vanish mid-body
        const auto prefix = encode_frame_prefix(64 * 1024);
        (void)socket.value().write_all(prefix);
        const std::vector<std::byte> some(1000, std::byte{0x55});
        (void)socket.value().write_all(some);
        break;
      }
      default:  // connect and immediately vanish
        break;
    }
    socket.value().close();
  }
  // The server survives the storm and still serves well-formed requests.
  TcpChannel channel("127.0.0.1", server->port());
  EXPECT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(handler.calls.load(), 1);
  EXPECT_TRUE(eventually([&] { return server->active_connections() <= 1; }));
}

TEST_P(ServerChurnTest, GarbageBytesCostOnlyThatConnection) {
  CountingHandler handler;
  auto server = start_server(&handler);
  for (int i = 0; i < 10; ++i) {
    auto socket = Socket::connect("127.0.0.1", server->port(), 1000ms);
    ASSERT_TRUE(socket.is_ok());
    const std::vector<std::byte> junk(64, std::byte{0xEE});
    (void)socket.value().write_all(junk);
    // The server rejects the magic and drops us; reading sees EOF/reset.
    std::array<std::byte, 1> probe{};
    EXPECT_FALSE(socket.value().read_exact(probe).is_ok());
  }
  EXPECT_TRUE(eventually([&] { return server->corrupted_frames() == 10; }))
      << server->corrupted_frames();
  TcpChannel channel("127.0.0.1", server->port());
  EXPECT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
}

TEST_P(ServerChurnTest, ShutdownUnderLoadIsPrompt) {
  // Regression: stop() used to wait on worker threads blocked in recv()
  // only after shutdown()-ing their sockets one by one; a server with
  // requests mid-handler must still come down in bounded time, closing
  // in-flight connections rather than draining them.
  CountingHandler handler(100ms);
  auto server = start_server(&handler);
  constexpr int kInFlight = 16;
  std::atomic<int> finished{0};
  std::vector<std::thread> clients;
  clients.reserve(kInFlight);
  for (int i = 0; i < kInFlight; ++i) {
    clients.emplace_back([&] {
      TcpChannel channel("127.0.0.1", server->port(), 3000ms);
      (void)channel.call(Message{0, StateInquiry{}});  // ok or error, both fine
      finished.fetch_add(1);
    });
  }
  // Let the calls reach the server before pulling the plug.
  std::this_thread::sleep_for(50ms);
  const auto start = Clock::now();
  server->stop();
  const auto stop_elapsed = Clock::now() - start;
  EXPECT_LT(stop_elapsed, 2s) << "stop() stalled on in-flight connections";
  for (auto& client : clients) client.join();
  EXPECT_EQ(finished.load(), kInFlight);
  EXPECT_EQ(server->active_connections(), 0u);
}

TEST_P(ServerChurnTest, ConcurrentCallsDuringStopNeitherHangNorCrash) {
  CountingHandler handler;
  auto server = start_server(&handler);
  std::atomic<bool> go{true};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      TcpChannel channel("127.0.0.1", server->port(), 500ms);
      while (go.load()) {
        (void)channel.call(Message{0, StateInquiry{}});
      }
    });
  }
  std::this_thread::sleep_for(50ms);
  server->stop();
  go.store(false);
  for (auto& client : clients) client.join();
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ServerChurnTest,
    ::testing::Values(
        ServerConfig{"ReactorEpoll",
                     ServerOptions{.mode = ServerOptions::Mode::kReactor,
                                   .backend = EventLoop::Backend::kEpoll}},
        ServerConfig{"ReactorIoUring",
                     ServerOptions{.mode = ServerOptions::Mode::kReactor,
                                   .backend = EventLoop::Backend::kIoUring}},
        ServerConfig{
            "ThreadPerConnection",
            ServerOptions{.mode = ServerOptions::Mode::kThreadPerConnection}}),
    [](const ::testing::TestParamInfo<ServerConfig>& param) {
      return param.param.name;
    });

TEST(ServerIdleTimeoutTest, ReactorReapsIdleConnections) {
  CountingHandler handler;
  auto server =
      TcpServer::start(0, &handler,
                       ServerOptions{.mode = ServerOptions::Mode::kReactor,
                                     .idle_timeout = 50ms})
          .value();
  auto socket = Socket::connect("127.0.0.1", server->port(), 1000ms);
  ASSERT_TRUE(socket.is_ok());
  const auto deadline = Clock::now() + 5s;
  while (server->active_connections() != 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server->active_connections(), 0u);
  // The reaped socket reads EOF client-side.
  std::array<std::byte, 1> probe{};
  EXPECT_FALSE(socket.value().read_exact(probe).is_ok());
}

// ---------------------------------------------------------------------------
// Client-side pool behaviour (satellite of the same churn story: bounded
// idle sockets, age eviction, observable hit/miss counters).
// ---------------------------------------------------------------------------

TEST(ChannelPoolTest, HitAndMissCountersTrackReuse) {
  CountingHandler handler;
  auto server = TcpServer::start(0, &handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  ASSERT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(channel.pool_hits(), 0u);
  EXPECT_EQ(channel.pool_misses(), 1u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
  }
  EXPECT_EQ(channel.pool_hits(), 5u);  // sequential calls reuse one socket
  EXPECT_EQ(channel.pool_misses(), 1u);
  EXPECT_EQ(channel.idle_connections(), 1u);
}

TEST(ChannelPoolTest, MaxIdleBoundsParkedSockets) {
  CountingHandler handler(20ms);
  auto server = TcpServer::start(0, &handler).value();
  TcpChannel channel("127.0.0.1", server->port(), kDefaultCallTimeout,
                     PoolOptions{.max_idle = 2});
  // 6 concurrent calls need 6 sockets; at most 2 may be parked afterwards.
  std::vector<std::thread> callers;
  callers.reserve(6);
  for (int i = 0; i < 6; ++i) {
    callers.emplace_back([&] {
      EXPECT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_LE(channel.idle_connections(), 2u);
  EXPECT_GE(channel.pool_misses(), 4u);  // at least 6 - max_idle connects
}

TEST(ChannelPoolTest, IdleAgeEvictionForcesReconnect) {
  CountingHandler handler;
  auto server = TcpServer::start(0, &handler).value();
  TcpChannel channel("127.0.0.1", server->port(), kDefaultCallTimeout,
                     PoolOptions{.max_idle = 8, .max_idle_age = 50ms});
  ASSERT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
  EXPECT_EQ(channel.idle_connections(), 1u);
  std::this_thread::sleep_for(120ms);
  ASSERT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
  // The parked socket aged out, so the second call had to reconnect.
  EXPECT_EQ(channel.pool_misses(), 2u);
  EXPECT_EQ(channel.pool_hits(), 0u);
}

TEST(ChannelPoolTest, SetPoolOptionsTrimsImmediately) {
  CountingHandler handler(20ms);
  auto server = TcpServer::start(0, &handler).value();
  TcpChannel channel("127.0.0.1", server->port());
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&] {
      EXPECT_TRUE(channel.call(Message{0, StateInquiry{}}).is_ok());
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_GE(channel.idle_connections(), 2u);
  channel.set_pool_options(PoolOptions{.max_idle = 1});
  EXPECT_LE(channel.idle_connections(), 1u);
}

TEST(ChannelPoolTest, TransportAggregatesAcrossSites) {
  CountingHandler h1;
  CountingHandler h2;
  auto s1 = TcpServer::start(0, &h1).value();
  auto s2 = TcpServer::start(0, &h2).value();
  TcpPeerTransport transport;
  transport.set_endpoint(1, "127.0.0.1", s1->port());
  transport.set_endpoint(2, "127.0.0.1", s2->port());
  transport.set_pool_options(PoolOptions{.max_idle = 4});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(transport.call(0, 1, Message{0, StateInquiry{}}).is_ok());
    ASSERT_TRUE(transport.call(0, 2, Message{0, StateInquiry{}}).is_ok());
  }
  EXPECT_EQ(transport.pool_misses(), 2u);  // one connect per site
  EXPECT_EQ(transport.pool_hits(), 4u);    // remaining calls reused
}

}  // namespace
}  // namespace reldev::net::tcp
