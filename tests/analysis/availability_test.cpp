// Tests pinning the paper's §4 mathematics: equations (1)-(5), the
// A_V(2k) = A_V(2k-1) identity, A_NA(2) = A_V(3), and Theorem 4.1.
#include "reldev/analysis/availability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reldev/util/assert.hpp"

namespace reldev::analysis {
namespace {

TEST(SiteAvailabilityTest, Formula) {
  EXPECT_DOUBLE_EQ(site_availability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(site_availability(0.2), 1.0 / 1.2);
  // rho = 0.20 corresponds to 83.33% as §4.4 notes.
  EXPECT_NEAR(site_availability(0.20), 0.8333, 1e-4);
}

TEST(VotingAvailabilityTest, SingleCopyIsSiteAvailability) {
  for (const double rho : {0.01, 0.1, 0.5}) {
    EXPECT_NEAR(voting_availability(1, rho), site_availability(rho), 1e-12);
  }
}

TEST(VotingAvailabilityTest, ThreeCopiesClosedForm) {
  // A_V(3) = (1 + 3 rho) / (1 + rho)^3.
  for (const double rho : {0.01, 0.05, 0.1, 0.2}) {
    const double expected = (1.0 + 3.0 * rho) / std::pow(1.0 + rho, 3);
    EXPECT_NEAR(voting_availability(3, rho), expected, 1e-12);
  }
}

TEST(VotingAvailabilityTest, PerfectCopiesAreAlwaysAvailable) {
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_DOUBLE_EQ(voting_availability(n, 0.0), 1.0);
  }
}

TEST(VotingAvailabilityTest, EvenEqualsPrecedingOdd) {
  // §4.1: A_V(2k) = A_V(2k-1) under the epsilon tie-break.
  for (std::size_t k = 1; k <= 5; ++k) {
    for (const double rho : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
      EXPECT_NEAR(voting_availability(2 * k, rho),
                  voting_availability(2 * k - 1, rho), 1e-12)
          << "k=" << k << " rho=" << rho;
    }
  }
}

TEST(VotingAvailabilityTest, MoreCopiesHelpForGoodSites) {
  // For rho < 1 availability increases with (odd) n.
  for (const double rho : {0.05, 0.2}) {
    EXPECT_GT(voting_availability(5, rho), voting_availability(3, rho));
    EXPECT_GT(voting_availability(7, rho), voting_availability(5, rho));
  }
}

TEST(VotingAvailabilityTest, DegradesWithRho) {
  EXPECT_GT(voting_availability(5, 0.05), voting_availability(5, 0.1));
  EXPECT_GT(voting_availability(5, 0.1), voting_availability(5, 0.2));
}

TEST(AvailableCopyTest, ClosedFormsAtRhoZero) {
  for (std::size_t n = 2; n <= 4; ++n) {
    EXPECT_NEAR(available_copy_closed_form(n, 0.0), 1.0, 1e-12);
  }
}

TEST(AvailableCopyTest, GeneralFunctionUsesChainAboveFour) {
  // Continuity across the implementation switch: n=4 closed form vs n=5
  // chain should both be sensible and ordered.
  const double rho = 0.1;
  EXPECT_GT(available_copy_availability(5, rho),
            available_copy_availability(4, rho));
}

TEST(AvailableCopyTest, LowerBoundHolds) {
  // Inequality (5): A_A(n) > 1 - n rho^n / (1+rho)^n.
  for (std::size_t n = 2; n <= 8; ++n) {
    for (const double rho : {0.05, 0.1, 0.3, 0.7, 1.0}) {
      EXPECT_GT(available_copy_availability(n, rho),
                available_copy_lower_bound(n, rho) - 1e-12)
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(NaiveTest, TwoNaiveCopiesEqualThreeVotingCopies) {
  // §4.3: A_NA(2) = A_V(3).
  for (const double rho : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    EXPECT_NEAR(naive_available_copy_availability(2, rho),
                voting_availability(3, rho), 1e-12)
        << "rho=" << rho;
  }
}

TEST(NaiveTest, BFormulaHandCheckedN2) {
  // B(2; rho) = 3/2 + 1/(2 rho).
  const double rho = 0.25;
  EXPECT_NEAR(naive_b(2, rho), 1.5 + 1.0 / (2.0 * rho), 1e-12);
}

TEST(NaiveTest, AvailabilityWithinBounds) {
  for (std::size_t n = 2; n <= 8; ++n) {
    for (const double rho : {0.01, 0.1, 0.5, 1.0}) {
      const double a = naive_available_copy_availability(n, rho);
      EXPECT_GT(a, 0.0);
      EXPECT_LT(a, 1.0);
    }
  }
}

TEST(Theorem41Test, AcBeatsVotingWithTwiceTheCopies) {
  // Theorem 4.1: A_A(n) > A_V(2n-1) = A_V(2n) for rho <= 1.
  for (std::size_t n = 2; n <= 8; ++n) {
    for (const double rho :
         {0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const double ac = available_copy_availability(n, rho);
      EXPECT_GT(ac, voting_availability(2 * n - 1, rho))
          << "n=" << n << " rho=" << rho;
      EXPECT_GT(ac, voting_availability(2 * n, rho))
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(DiscussionTest, AcAndNaiveIndistinguishableForSmallRho) {
  // §4.4: no significant difference for rho < 0.10.
  for (std::size_t n = 3; n <= 4; ++n) {
    for (const double rho : {0.01, 0.05, 0.09}) {
      const double ac = available_copy_availability(n, rho);
      const double naive = naive_available_copy_availability(n, rho);
      // The gap peaks at ~1.5e-3 for n=3, rho=0.09 — invisible on the
      // paper's 0.9..1.0 graph scale.
      EXPECT_NEAR(ac, naive, 2e-3) << "n=" << n << " rho=" << rho;
      EXPECT_GE(ac + 1e-15, naive);
    }
  }
}

TEST(DiscussionTest, BothAvailableCopySchemesBeatVotingInFigures) {
  // The Figure 9/10 configurations: 3 AC copies vs 6 voting copies and
  // 4 AC copies vs 8 voting copies, rho in (0, 0.20].
  for (double rho = 0.02; rho <= 0.20 + 1e-9; rho += 0.02) {
    EXPECT_GT(available_copy_availability(3, rho),
              voting_availability(6, rho));
    EXPECT_GT(naive_available_copy_availability(3, rho),
              voting_availability(6, rho));
    EXPECT_GT(available_copy_availability(4, rho),
              voting_availability(8, rho));
    EXPECT_GT(naive_available_copy_availability(4, rho),
              voting_availability(8, rho));
  }
}

TEST(ParameterChecksTest, InvalidInputsRejected) {
  EXPECT_THROW((void)voting_availability(0, 0.1), reldev::ContractViolation);
  EXPECT_THROW((void)voting_availability(3, -0.1), reldev::ContractViolation);
  EXPECT_THROW((void)available_copy_closed_form(5, 0.1),
               reldev::ContractViolation);
  EXPECT_THROW((void)naive_b(2, 0.0), reldev::ContractViolation);
}

// Parameterized sweep: voting availability is a proper probability and is
// monotone in rho across a grid of configurations.
class VotingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VotingSweep, ProbabilityAndMonotonicity) {
  const std::size_t n = GetParam();
  double previous = 1.1;
  for (double rho = 0.0; rho <= 1.0 + 1e-9; rho += 0.05) {
    const double a = voting_availability(n, rho);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    EXPECT_LE(a, previous + 1e-12);
    previous = a;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGroupSizes, VotingSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// The same sweep for both available-copy schemes.
class AvailableCopySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AvailableCopySweep, ProbabilityAndMonotonicity) {
  const std::size_t n = GetParam();
  double previous_ac = 1.1;
  double previous_naive = 1.1;
  for (double rho = 0.01; rho <= 1.0 + 1e-9; rho += 0.05) {
    const double ac = available_copy_availability(n, rho);
    const double naive = naive_available_copy_availability(n, rho);
    EXPECT_GT(ac, 0.0);
    EXPECT_LE(ac, 1.0);
    EXPECT_LE(ac, previous_ac + 1e-12);
    EXPECT_LE(naive, previous_naive + 1e-12);
    EXPECT_GE(ac + 1e-12, naive);
    previous_ac = ac;
    previous_naive = naive;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGroupSizes, AvailableCopySweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace reldev::analysis
