#include "reldev/analysis/binomial.hpp"

#include <gtest/gtest.h>

namespace reldev::analysis {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(8, 4), 70.0);
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(binomial(3, 4), 0.0);
}

TEST(BinomialTest, Symmetry) {
  for (std::size_t n = 1; n <= 20; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(binomial(n, k), binomial(n, n - k));
    }
  }
}

TEST(BinomialTest, PascalIdentity) {
  for (std::size_t n = 2; n <= 30; ++n) {
    for (std::size_t k = 1; k < n; ++k) {
      EXPECT_DOUBLE_EQ(binomial(n, k),
                       binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(BinomialU64Test, MatchesDoubleVersion) {
  for (std::size_t n = 0; n <= 30; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      EXPECT_EQ(static_cast<double>(binomial_u64(n, k)), binomial(n, k));
    }
  }
}

TEST(BinomialU64Test, LargeExactValue) {
  EXPECT_EQ(binomial_u64(62, 31), 465428353255261088ull);
}

TEST(FactorialTest, KnownValues) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(1), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
}

TEST(FactorialTest, RatioIsBinomial) {
  // C(n,k) = n! / (k! (n-k)!) for moderate n.
  for (std::size_t n = 1; n <= 15; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(factorial(n) / (factorial(k) * factorial(n - k)),
                  binomial(n, k), 1e-6);
    }
  }
}

}  // namespace
}  // namespace reldev::analysis
