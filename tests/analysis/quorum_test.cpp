#include "reldev/analysis/quorum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reldev/analysis/availability.hpp"

namespace reldev::analysis {
namespace {

TEST(ThresholdAvailabilityTest, ZeroThresholdIsCertain) {
  EXPECT_DOUBLE_EQ(threshold_availability({1, 1, 1}, 0, 0.5), 1.0);
}

TEST(ThresholdAvailabilityTest, SingleSite) {
  const double rho = 0.25;
  EXPECT_NEAR(threshold_availability({1}, 1, rho), 1.0 / (1.0 + rho), 1e-12);
}

TEST(ThresholdAvailabilityTest, AllSitesNeeded) {
  // Threshold = total weight: every site must be up — a^n.
  const double rho = 0.2;
  const double a = 1.0 / (1.0 + rho);
  EXPECT_NEAR(threshold_availability({1, 1, 1, 1}, 4, rho), std::pow(a, 4),
              1e-12);
}

TEST(ThresholdAvailabilityTest, AnySiteSuffices) {
  // Threshold 1 with unit weights: 1 - (1-a)^n.
  const double rho = 0.3;
  const double a = 1.0 / (1.0 + rho);
  EXPECT_NEAR(threshold_availability({1, 1, 1}, 1, rho),
              1.0 - std::pow(1.0 - a, 3), 1e-12);
}

TEST(ThresholdAvailabilityTest, MajorityMatchesPaperFormula) {
  // Equal-weight majority must reproduce A_V(n) for odd n.
  for (const std::size_t n : {3u, 5u, 7u}) {
    for (const double rho : {0.05, 0.2, 0.5}) {
      EXPECT_NEAR(threshold_availability(std::vector<std::uint32_t>(n, 1),
                                         n / 2 + 1, rho),
                  voting_availability(n, rho), 1e-12)
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(ThresholdAvailabilityTest, EpsilonWeightMatchesEvenFormula) {
  // The §4.1 epsilon tie-break in millivotes reproduces A_V(2k).
  for (const std::size_t n : {4u, 6u, 8u}) {
    for (const double rho : {0.05, 0.2}) {
      std::vector<std::uint32_t> weights(n, 1000);
      weights[0] = 1001;
      const std::uint64_t total = 1000ull * n + 1;
      EXPECT_NEAR(threshold_availability(weights, total / 2 + 1, rho),
                  voting_availability(n, rho), 1e-12)
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(ThresholdAvailabilityTest, MonotoneInThreshold) {
  const std::vector<std::uint32_t> weights{3, 1, 4, 1, 5};
  double previous = 1.1;
  for (std::uint64_t threshold = 0; threshold <= 14; ++threshold) {
    const double a = threshold_availability(weights, threshold, 0.2);
    EXPECT_LE(a, previous + 1e-12);
    previous = a;
  }
}

TEST(VotingQuorumSpecTest, Validity) {
  VotingQuorumSpec majority{{1, 1, 1}, 2, 2};
  EXPECT_TRUE(majority.valid());
  VotingQuorumSpec rowa{{1, 1, 1}, 1, 3};  // read-one / write-all
  EXPECT_TRUE(rowa.valid());
  VotingQuorumSpec broken_rw{{1, 1, 1}, 1, 2};  // r + w = total
  EXPECT_FALSE(broken_rw.valid());
  VotingQuorumSpec broken_ww{{1, 1, 1, 1}, 3, 2};  // 2w = total
  EXPECT_FALSE(broken_ww.valid());
}

TEST(VotingQuorumAvailabilityTest, RowaTradesWritesForReads) {
  const double rho = 0.1;
  const VotingQuorumSpec rowa{{1, 1, 1, 1, 1}, 1, 5};
  const VotingQuorumSpec majority{{1, 1, 1, 1, 1}, 3, 3};
  const auto a_rowa = voting_quorum_availability(rowa, rho);
  const auto a_major = voting_quorum_availability(majority, rho);
  EXPECT_GT(a_rowa.read, a_major.read);
  EXPECT_LT(a_rowa.write, a_major.write);
}

TEST(AdmissibleQuorumsTest, PairsSatisfyConstraints) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    const auto pairs = admissible_equal_quorums(n);
    EXPECT_FALSE(pairs.empty());
    for (const auto& [read, write] : pairs) {
      EXPECT_EQ(read + write, n + 1);  // minimal r/w intersection
      EXPECT_GT(2 * write, n);         // write/write intersection
      EXPECT_GE(read, 1u);
    }
  }
}

TEST(OptimalQuorumsTest, ReadOnlyWorkloadPrefersReadOne) {
  const auto choice = optimal_equal_weight_quorums(5, 0.1, 1.0);
  EXPECT_EQ(choice.read_sites, 1u);
  EXPECT_EQ(choice.write_sites, 5u);
}

TEST(OptimalQuorumsTest, OptimalReadQuorumShrinksWithReadFraction) {
  std::size_t previous = 0;
  for (const double fraction : {0.0, 0.5, 0.9, 1.0}) {
    const auto choice = optimal_equal_weight_quorums(5, 0.1, fraction);
    if (fraction > 0.0) {
      EXPECT_LE(choice.read_sites, previous)
          << "read quorum grew as reads became more common";
    }
    previous = choice.read_sites;
  }
}

TEST(OptimalQuorumsTest, WriteHeavyWorkloadPrefersSmallWriteQuorum) {
  const auto choice = optimal_equal_weight_quorums(5, 0.1, 0.01);
  EXPECT_EQ(choice.write_sites, 3u);  // minimal admissible write quorum
  EXPECT_EQ(choice.read_sites, 3u);
}

TEST(OptimalQuorumsTest, MixedEqualsComputedMixture) {
  const auto choice = optimal_equal_weight_quorums(5, 0.2, 0.7);
  EXPECT_NEAR(choice.mixed, choice.availability.mixed(0.7), 1e-12);
}

TEST(OptimalQuorumsTest, BalancedWorkloadUsesMajorityOnOddGroups) {
  const auto choice = optimal_equal_weight_quorums(7, 0.1, 0.5);
  EXPECT_EQ(choice.read_sites, 4u);
  EXPECT_EQ(choice.write_sites, 4u);
}

}  // namespace
}  // namespace reldev::analysis
