#include "reldev/analysis/markov.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "reldev/analysis/availability.hpp"

namespace reldev::analysis {
namespace {

TEST(MarkovChainTest, TwoStateChain) {
  // up --l--> down, down --m--> up: pi_up = m/(l+m).
  MarkovChain chain(2);
  chain.add_rate(0, 1, 0.2);
  chain.add_rate(1, 0, 1.0);
  auto pi = chain.steady_state();
  ASSERT_TRUE(pi.is_ok());
  EXPECT_NEAR(pi.value()[0], 1.0 / 1.2, 1e-12);
  EXPECT_NEAR(pi.value()[1], 0.2 / 1.2, 1e-12);
}

TEST(MarkovChainTest, DistributionSumsToOne) {
  MarkovChain chain(4);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 3, 3.0);
  chain.add_rate(3, 0, 4.0);
  auto pi = chain.steady_state();
  ASSERT_TRUE(pi.is_ok());
  const double sum =
      std::accumulate(pi.value().begin(), pi.value().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (const double p : pi.value()) EXPECT_GT(p, 0.0);
}

TEST(MarkovChainTest, BirthDeathDetailedBalance) {
  // 3-state birth-death chain: pi_i+1 / pi_i = birth_i / death_i+1.
  MarkovChain chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(1, 2, 3.0);
  chain.add_rate(2, 1, 4.0);
  auto pi = chain.steady_state().value();
  EXPECT_NEAR(pi[1] / pi[0], 2.0, 1e-12);
  EXPECT_NEAR(pi[2] / pi[1], 0.75, 1e-12);
}

TEST(MarkovChainTest, InvalidRatesRejected) {
  MarkovChain chain(2);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), reldev::ContractViolation);
  EXPECT_THROW(chain.add_rate(0, 1, 0.0), reldev::ContractViolation);
  EXPECT_THROW(chain.add_rate(0, 5, 1.0), reldev::ContractViolation);
}

TEST(AvailableCopyChainTest, MatchesClosedFormN2) {
  for (const double rho : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const auto chain = solve_available_copy_chain(2, rho);
    EXPECT_NEAR(chain.availability(), available_copy_closed_form(2, rho),
                1e-12)
        << "rho=" << rho;
  }
}

TEST(AvailableCopyChainTest, MatchesClosedFormN3) {
  for (const double rho : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const auto chain = solve_available_copy_chain(3, rho);
    EXPECT_NEAR(chain.availability(), available_copy_closed_form(3, rho),
                1e-12)
        << "rho=" << rho;
  }
}

TEST(AvailableCopyChainTest, MatchesClosedFormN4) {
  for (const double rho : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const auto chain = solve_available_copy_chain(4, rho);
    EXPECT_NEAR(chain.availability(), available_copy_closed_form(4, rho),
                1e-12)
        << "rho=" << rho;
  }
}

TEST(NaiveChainTest, MatchesBFormula) {
  for (std::size_t n = 2; n <= 6; ++n) {
    for (const double rho : {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
      const auto chain = solve_naive_available_copy_chain(n, rho);
      EXPECT_NEAR(chain.availability(),
                  naive_available_copy_availability(n, rho), 1e-10)
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(ReplicationChainTest, ProbabilitiesArePartitioned) {
  const auto chain = solve_available_copy_chain(4, 0.1);
  double sum = 0.0;
  for (std::size_t j = 1; j <= 4; ++j) sum += chain.p_available(j);
  for (std::size_t j = 0; j < 4; ++j) sum += chain.p_comatose(j);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ReplicationChainTest, ParticipationBetweenOneAndN) {
  for (std::size_t n = 2; n <= 6; ++n) {
    for (const double rho : {0.01, 0.1, 0.5}) {
      const double u = solve_available_copy_chain(n, rho).participation();
      EXPECT_GT(u, 1.0);
      EXPECT_LE(u, static_cast<double>(n));
    }
  }
}

TEST(ReplicationChainTest, ParticipationApproachesNAsRhoVanishes) {
  const double u = solve_available_copy_chain(5, 1e-6).participation();
  EXPECT_NEAR(u, 5.0, 1e-4);
}

TEST(ChainComparisonTest, AcAtLeastNaiveEverywhere) {
  // The conventional scheme can only do better: it returns to service on
  // the last-failed copy instead of waiting for everyone.
  for (std::size_t n = 2; n <= 7; ++n) {
    for (const double rho : {0.02, 0.1, 0.3, 0.8}) {
      const double ac = solve_available_copy_chain(n, rho).availability();
      const double naive =
          solve_naive_available_copy_chain(n, rho).availability();
      EXPECT_GE(ac + 1e-12, naive) << "n=" << n << " rho=" << rho;
    }
  }
}

}  // namespace
}  // namespace reldev::analysis
