#include "reldev/analysis/linalg.hpp"

#include <gtest/gtest.h>

namespace reldev::analysis {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const Matrix product = a.multiply(Matrix::identity(2));
  EXPECT_DOUBLE_EQ(product.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(product.at(1, 0), 3.0);
}

TEST(MatrixTest, GeneralMultiplication) {
  Matrix a(2, 3);
  Matrix b(3, 1);
  // a = [1 2 3; 4 5 6], b = [1; 2; 3] => a*b = [14; 32]
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = v++;
  }
  b.at(0, 0) = 1.0;
  b.at(1, 0) = 2.0;
  b.at(2, 0) = 3.0;
  const Matrix product = a.multiply(b);
  EXPECT_DOUBLE_EQ(product.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(product.at(1, 0), 32.0);
}

TEST(SolveTest, TwoByTwo) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  auto x = solve_linear(a, {5.0, 10.0});
  ASSERT_TRUE(x.is_ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(SolveTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  auto x = solve_linear(a, {2.0, 3.0});
  ASSERT_TRUE(x.is_ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

TEST(SolveTest, SingularMatrixRejected) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  auto x = solve_linear(a, {1.0, 2.0});
  EXPECT_EQ(x.status().code(), reldev::ErrorCode::kConflict);
}

TEST(SolveTest, ShapeMismatchRejected) {
  Matrix a(2, 3);
  EXPECT_EQ(solve_linear(a, {1.0, 2.0}).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  Matrix b(2, 2);
  EXPECT_EQ(solve_linear(b, {1.0}).status().code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST(SolveTest, LargerSystemAgainstKnownSolution) {
  // Build A x = b with known x by construction.
  const std::size_t n = 12;
  Matrix a(n, n);
  std::vector<double> truth(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(i) - 3.5;
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = 1.0 / static_cast<double>(i + j + 1);  // Hilbert-like
    }
    a.at(i, i) += 2.0;  // keep it well-conditioned
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * truth[j];
  }
  auto x = solve_linear(a, b);
  ASSERT_TRUE(x.is_ok());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x.value()[i], truth[i], 1e-9);
  }
}

}  // namespace
}  // namespace reldev::analysis
