#include "reldev/analysis/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reldev/sim/failure.hpp"
#include "reldev/sim/simulator.hpp"
#include "reldev/util/rng.hpp"
#include "reldev/util/stats.hpp"

namespace reldev::analysis {
namespace {

TEST(ReliabilityTest, SingleSiteMttfIsMeanLifetime) {
  // One copy dies when the site dies: MTTF = 1/lambda.
  for (const double rho : {0.1, 0.5, 2.0}) {
    EXPECT_NEAR(available_copy_mttf(1, rho), 1.0 / rho, 1e-12);
    EXPECT_NEAR(voting_mttf(1, rho), 1.0 / rho, 1e-12);
  }
}

TEST(ReliabilityTest, TwoCopyClosedForm) {
  // Classic 2-unit parallel system with repair: MTTF = (3l + m) / (2 l^2)
  // with m = 1.
  for (const double rho : {0.1, 0.25, 1.0}) {
    EXPECT_NEAR(available_copy_mttf(2, rho),
                (3.0 * rho + 1.0) / (2.0 * rho * rho), 1e-9)
        << "rho=" << rho;
  }
}

TEST(ReliabilityTest, MoreCopiesLastLonger) {
  for (const double rho : {0.1, 0.5}) {
    double previous = 0.0;
    for (std::size_t n = 1; n <= 6; ++n) {
      const double mttf = available_copy_mttf(n, rho);
      EXPECT_GT(mttf, previous) << "n=" << n;
      previous = mttf;
    }
  }
}

TEST(ReliabilityTest, LowerRhoLastsLonger) {
  EXPECT_GT(available_copy_mttf(3, 0.05), available_copy_mttf(3, 0.1));
  EXPECT_GT(voting_mttf(5, 0.05), voting_mttf(5, 0.1));
}

TEST(ReliabilityTest, VotingDiesBeforeTotalFailure) {
  // A voting group is interrupted at quorum loss, strictly earlier than
  // the all-down event for n >= 2... n=1 they coincide.
  for (const std::size_t n : {3u, 5u, 7u}) {
    for (const double rho : {0.1, 0.5}) {
      EXPECT_LT(voting_mttf(n, rho), available_copy_mttf(n, rho))
          << "n=" << n;
    }
  }
}

TEST(ReliabilityTest, AvailableCopyBeatsVotingWithTwiceTheCopies) {
  // The reliability counterpart of Theorem 4.1: n AC copies survive longer
  // than a 2n-1 voting group for rho <= 1.
  for (const std::size_t n : {2u, 3u, 4u}) {
    for (const double rho : {0.05, 0.2, 0.5, 1.0}) {
      EXPECT_GT(available_copy_mttf(n, rho), voting_mttf(2 * n - 1, rho))
          << "n=" << n << " rho=" << rho;
    }
  }
}

TEST(ReliabilityTest, BirthDeathValidatedAgainstSimulation) {
  // Measure the time until the first total failure of 3 sites at rho=0.5
  // and compare with the absorbing-chain answer.
  const double rho = 0.5;
  const double expected = available_copy_mttf(3, rho);
  reldev::Rng rng(31337);
  reldev::OnlineStats stats;
  for (int replication = 0; replication < 400; ++replication) {
    sim::Simulator simulator;
    struct Watcher : sim::FailureListener {
      explicit Watcher(sim::FailureProcess*& p) : process(p) {}
      void on_site_failed(std::size_t, double now) override {
        if (process->up_count() == 0 && death < 0.0) death = now;
      }
      void on_site_repaired(std::size_t, double) override {}
      sim::FailureProcess*& process;
      double death = -1.0;
    };
    sim::FailureProcess* handle = nullptr;
    Watcher watcher(handle);
    sim::FailureProcess process(simulator, rng.split(),
                                sim::uniform_rates(3, rho), &watcher);
    handle = &process;
    process.start();
    // Run until death (bound the horizon generously).
    while (watcher.death < 0.0 && simulator.step()) {
      if (simulator.now() > 1e5) break;
    }
    ASSERT_GT(watcher.death, 0.0);
    stats.add(watcher.death);
  }
  // MTTF distributions are roughly exponential: stderr = mean/sqrt(k).
  const double tolerance = 3.0 * expected / std::sqrt(400.0);
  EXPECT_NEAR(stats.mean(), expected, tolerance);
}

TEST(ReliabilityTest, InvalidInputsRejected) {
  EXPECT_THROW((void)birth_death_mttf(3, 0, 0.1), reldev::ContractViolation);
  EXPECT_THROW((void)birth_death_mttf(3, 4, 0.1), reldev::ContractViolation);
  EXPECT_THROW((void)available_copy_mttf(2, 0.0),
               reldev::ContractViolation);
}

}  // namespace
}  // namespace reldev::analysis
