// Tests pinning the §5 traffic model: participation factors, per-operation
// costs in both network modes, and the orderings the paper's Figures 11
// and 12 display.
#include "reldev/analysis/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace reldev::analysis {
namespace {

using net::AddressingMode;

TEST(ParticipationTest, VotingClosedForm) {
  // U_V^n = n (1+rho)^(n-1) / ((1+rho)^n - rho^n).
  const std::size_t n = 5;
  const double rho = 0.05;
  const double expected = 5.0 * std::pow(1.05, 4.0) /
                          (std::pow(1.05, 5.0) - std::pow(0.05, 5.0));
  EXPECT_NEAR(voting_participation(n, rho), expected, 1e-12);
}

TEST(ParticipationTest, FirstOrderExpansion) {
  // U_V^n = n (1 - rho) + O(rho^2) (§5).
  const std::size_t n = 6;
  const double rho = 1e-4;
  EXPECT_NEAR(voting_participation(n, rho),
              static_cast<double>(n) * (1.0 - rho), 1e-5);
}

TEST(ParticipationTest, AllSchemesAgreeToSecondOrder) {
  // §5: U_V, U_A and U_N agree to within O(rho^2).
  const std::size_t n = 5;
  const double rho = 0.01;
  const double uv = voting_participation(n, rho);
  const double ua = available_copy_participation(n, rho);
  const double un = naive_participation(n, rho);
  EXPECT_NEAR(uv, ua, 5.0 * rho * rho);
  EXPECT_NEAR(uv, un, 5.0 * rho * rho);
}

TEST(ParticipationTest, PerfectSitesGiveN) {
  EXPECT_DOUBLE_EQ(voting_participation(4, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(available_copy_participation(4, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(naive_participation(4, 0.0), 4.0);
}

TEST(MulticastCostsTest, PaperFormulas) {
  // §5.1: voting write = 1 + U_V, read = U_V, recovery = 0;
  // AC write = U_A, read = 0, recovery = U_A + 2;
  // NAC write = 1, read = 0, recovery = U_N + 2.
  const std::size_t n = 5;
  const double rho = 0.05;
  const double uv = voting_participation(n, rho);
  const double ua = available_copy_participation(n, rho);
  const double un = naive_participation(n, rho);

  const auto voting =
      operation_costs(Scheme::kVoting, AddressingMode::kMulticast, n, rho);
  EXPECT_NEAR(voting.write, 1.0 + uv, 1e-12);
  EXPECT_NEAR(voting.read, uv, 1e-12);
  EXPECT_DOUBLE_EQ(voting.recovery, 0.0);

  const auto ac = operation_costs(Scheme::kAvailableCopy,
                                  AddressingMode::kMulticast, n, rho);
  EXPECT_NEAR(ac.write, ua, 1e-12);
  EXPECT_DOUBLE_EQ(ac.read, 0.0);
  EXPECT_NEAR(ac.recovery, ua + 2.0, 1e-12);

  const auto naive = operation_costs(Scheme::kNaiveAvailableCopy,
                                     AddressingMode::kMulticast, n, rho);
  EXPECT_DOUBLE_EQ(naive.write, 1.0);
  EXPECT_DOUBLE_EQ(naive.read, 0.0);
  EXPECT_NEAR(naive.recovery, un + 2.0, 1e-12);
}

TEST(UniqueCostsTest, PaperFormulas) {
  // §5.2: voting write = n + 2 U_V - 3, read = n + U_V - 2;
  // AC write = n + U_A - 2, recovery = n + U_A;
  // NAC write = n - 1, recovery = n + U_N.
  const std::size_t n = 6;
  const double rho = 0.05;
  const double uv = voting_participation(n, rho);
  const double ua = available_copy_participation(n, rho);
  const double un = naive_participation(n, rho);
  const auto dn = static_cast<double>(n);

  const auto voting =
      operation_costs(Scheme::kVoting, AddressingMode::kUnique, n, rho);
  EXPECT_NEAR(voting.write, dn + 2.0 * uv - 3.0, 1e-12);
  EXPECT_NEAR(voting.read, dn + uv - 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(voting.recovery, 0.0);

  const auto ac =
      operation_costs(Scheme::kAvailableCopy, AddressingMode::kUnique, n, rho);
  EXPECT_NEAR(ac.write, dn + ua - 2.0, 1e-12);
  EXPECT_NEAR(ac.recovery, dn + ua, 1e-12);

  const auto naive = operation_costs(Scheme::kNaiveAvailableCopy,
                                     AddressingMode::kUnique, n, rho);
  EXPECT_DOUBLE_EQ(naive.write, dn - 1.0);
  EXPECT_NEAR(naive.recovery, dn + un, 1e-12);
}

TEST(WorkloadCostTest, CombinesWriteAndReads) {
  const double cost = workload_cost(Scheme::kVoting,
                                    AddressingMode::kMulticast, 5, 0.05, 2.0);
  const auto costs =
      operation_costs(Scheme::kVoting, AddressingMode::kMulticast, 5, 0.05);
  EXPECT_NEAR(cost, costs.write + 2.0 * costs.read, 1e-12);
}

TEST(Figure11Test, SchemeOrderingUnderMulticast) {
  // Figure 11 at rho = 0.05: NAC < AC < voting for every read ratio, with
  // voting's penalty growing with the read ratio.
  const double rho = 0.05;
  for (std::size_t n = 2; n <= 8; ++n) {
    for (const double x : {1.0, 2.0, 4.0}) {
      const double naive = workload_cost(Scheme::kNaiveAvailableCopy,
                                         AddressingMode::kMulticast, n, rho, x);
      const double ac = workload_cost(Scheme::kAvailableCopy,
                                      AddressingMode::kMulticast, n, rho, x);
      const double voting =
          workload_cost(Scheme::kVoting, AddressingMode::kMulticast, n, rho, x);
      EXPECT_LT(naive, ac) << "n=" << n << " x=" << x;
      EXPECT_LT(ac, voting) << "n=" << n << " x=" << x;
    }
  }
  // Read ratio moves voting but not the available-copy schemes.
  EXPECT_GT(workload_cost(Scheme::kVoting, AddressingMode::kMulticast, 5, rho,
                          4.0),
            workload_cost(Scheme::kVoting, AddressingMode::kMulticast, 5, rho,
                          1.0));
  EXPECT_DOUBLE_EQ(
      workload_cost(Scheme::kAvailableCopy, AddressingMode::kMulticast, 5, rho,
                    4.0),
      workload_cost(Scheme::kAvailableCopy, AddressingMode::kMulticast, 5, rho,
                    1.0));
}

TEST(Figure12Test, SchemeOrderingUnderUniqueAddressing) {
  const double rho = 0.05;
  for (std::size_t n = 2; n <= 8; ++n) {
    for (const double x : {1.0, 2.0, 4.0}) {
      const double naive = workload_cost(Scheme::kNaiveAvailableCopy,
                                         AddressingMode::kUnique, n, rho, x);
      const double ac = workload_cost(Scheme::kAvailableCopy,
                                      AddressingMode::kUnique, n, rho, x);
      const double voting =
          workload_cost(Scheme::kVoting, AddressingMode::kUnique, n, rho, x);
      EXPECT_LE(naive, ac) << "n=" << n << " x=" << x;
      EXPECT_LT(ac, voting) << "n=" << n << " x=" << x;
    }
  }
}

TEST(Figure12Test, UniqueAddressingAmplifiesTheGap) {
  // §5.2: "their relative differences remain intact" and grow in absolute
  // terms: voting - NAC is larger under unique addressing.
  const double rho = 0.05;
  const std::size_t n = 6;
  const double x = 2.0;
  const double gap_multicast =
      workload_cost(Scheme::kVoting, AddressingMode::kMulticast, n, rho, x) -
      workload_cost(Scheme::kNaiveAvailableCopy, AddressingMode::kMulticast, n,
                    rho, x);
  const double gap_unique =
      workload_cost(Scheme::kVoting, AddressingMode::kUnique, n, rho, x) -
      workload_cost(Scheme::kNaiveAvailableCopy, AddressingMode::kUnique, n,
                    rho, x);
  EXPECT_GT(gap_unique, gap_multicast);
}

TEST(SchemeNameTest, Names) {
  EXPECT_STREQ(scheme_name(Scheme::kVoting), "voting");
  EXPECT_STREQ(scheme_name(Scheme::kAvailableCopy), "available-copy");
  EXPECT_STREQ(scheme_name(Scheme::kNaiveAvailableCopy),
               "naive-available-copy");
}

}  // namespace
}  // namespace reldev::analysis
