// Edge cases of the replica machinery shared by all schemes: unexpected
// messages get error replies, failed replicas answer nothing, client
// messages are dispatched by the base class, and repair replies apply
// correctly in corner cases.
#include <gtest/gtest.h>

#include "reldev/core/group.hpp"

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

class ReplicaEdgeTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  ReplicaEdgeTest() : group_(GetParam(), GroupConfig::majority(3, 4, 64)) {}
  ReplicaGroup group_;
};

TEST_P(ReplicaEdgeTest, UnexpectedPeerRequestGetsErrorReply) {
  // A VoteRequest is only meaningful under voting, and a WasAvailableUpdate
  // only under available-copy; the wrong one must yield a protocol error,
  // never a crash. (Fetch requests are deliberately absent here: the scrub
  // path serves them scheme-independently.)
  net::Message request =
      GetParam() == SchemeKind::kVoting
          ? net::Message{1, net::WasAvailableUpdate{{}, false}}
          : net::Message{1, net::VoteRequest{net::AccessKind::kRead, 0}};
  const auto reply = group_.replica(0).handle(request);
  ASSERT_TRUE(reply.holds<net::ErrorReply>());
  EXPECT_EQ(reply.as<net::ErrorReply>().error_code,
            static_cast<std::uint8_t>(reldev::ErrorCode::kProtocol));
}

TEST_P(ReplicaEdgeTest, FailedReplicaRefusesEverything) {
  group_.replica(0).crash();
  const auto reply =
      group_.replica(0).handle(net::Message{1, net::StateInquiry{}});
  ASSERT_TRUE(reply.holds<net::ErrorReply>());
  EXPECT_EQ(reply.as<net::ErrorReply>().error_code,
            static_cast<std::uint8_t>(reldev::ErrorCode::kUnavailable));
  // One-way messages are dropped silently.
  group_.replica(0).handle_oneway(
      net::Message{1, net::WriteAllRequest{0, 5, payload(64, 1), {}}});
  // (state unchanged: still failed, no data applied)
  EXPECT_EQ(group_.replica(0).state(), SiteState::kFailed);
  EXPECT_EQ(group_.store(0).version_of(0).value(), 0u);
}

TEST_P(ReplicaEdgeTest, ClientMessagesDispatchThroughHandle) {
  ASSERT_TRUE(group_.write(0, 1, payload(64, 9)).is_ok());
  const auto read_reply = group_.replica(0).handle(
      net::Message{100, net::ClientReadRequest{1}});
  ASSERT_TRUE(read_reply.holds<net::ClientReadReply>());
  EXPECT_EQ(read_reply.as<net::ClientReadReply>().error_code, 0);
  EXPECT_EQ(read_reply.as<net::ClientReadReply>().data, payload(64, 9));

  const auto write_reply = group_.replica(0).handle(
      net::Message{100, net::ClientWriteRequest{2, payload(64, 3)}});
  ASSERT_TRUE(write_reply.holds<net::ClientWriteReply>());
  EXPECT_EQ(write_reply.as<net::ClientWriteReply>().error_code, 0);

  const auto info_reply = group_.replica(0).handle(
      net::Message{100, net::DeviceInfoRequest{}});
  ASSERT_TRUE(info_reply.holds<net::DeviceInfoReply>());
  EXPECT_EQ(info_reply.as<net::DeviceInfoReply>().block_count, 4u);
  EXPECT_EQ(info_reply.as<net::DeviceInfoReply>().block_size, 64u);
}

TEST_P(ReplicaEdgeTest, ClientErrorsSurfaceInReplyCodes) {
  const auto reply = group_.replica(0).handle(
      net::Message{100, net::ClientReadRequest{999}});
  ASSERT_TRUE(reply.holds<net::ClientReadReply>());
  EXPECT_EQ(reply.as<net::ClientReadReply>().error_code,
            static_cast<std::uint8_t>(reldev::ErrorCode::kInvalidArgument));
}

TEST_P(ReplicaEdgeTest, SchemeNameIsStable) {
  EXPECT_STREQ(group_.replica(0).scheme_name(),
               scheme_kind_name(GetParam()));
}

TEST_P(ReplicaEdgeTest, ConfigMismatchIsContractViolation) {
  storage::MemBlockStore wrong_geometry(8, 32);
  net::InProcTransport transport;
  EXPECT_THROW(VotingReplica(0, GroupConfig::majority(3, 4, 64),
                             wrong_geometry, transport),
               reldev::ContractViolation);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ReplicaEdgeTest,
                         ::testing::Values(SchemeKind::kVoting,
                                           SchemeKind::kAvailableCopy,
                                           SchemeKind::kNaiveAvailableCopy));

TEST(RepairReplyTest, OnlyNewerBlocksShipAndApply) {
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     GroupConfig::majority(2, 4, 64));
  // Site 0 writes blocks 0 and 1 while site 1 is up: both current.
  ASSERT_TRUE(group.write(0, 0, payload(64, 1)).is_ok());
  ASSERT_TRUE(group.write(0, 1, payload(64, 2)).is_ok());
  // Site 1 misses an update to block 1 only.
  group.crash_site(1);
  ASSERT_TRUE(group.write(0, 1, payload(64, 3)).is_ok());

  // Ask site 0 for a repair against site 1's (stale) vector directly.
  const auto reply = group.replica(0).handle(net::Message{
      1, net::RepairRequest{group.store(1).version_vector()}});
  ASSERT_TRUE(reply.holds<net::RepairReply>());
  const auto& repair = reply.as<net::RepairReply>();
  ASSERT_EQ(repair.blocks.size(), 1u);  // only the stale block ships
  EXPECT_EQ(repair.blocks[0].block, 1u);
  EXPECT_EQ(repair.blocks[0].data, payload(64, 3));
}

TEST(RepairReplyTest, EqualVectorsShipNothing) {
  ReplicaGroup group(SchemeKind::kNaiveAvailableCopy,
                     GroupConfig::majority(2, 4, 64));
  ASSERT_TRUE(group.write(0, 0, payload(64, 5)).is_ok());
  const auto reply = group.replica(0).handle(net::Message{
      1, net::RepairRequest{group.store(1).version_vector()}});
  ASSERT_TRUE(reply.holds<net::RepairReply>());
  EXPECT_TRUE(reply.as<net::RepairReply>().blocks.empty());
}

}  // namespace
}  // namespace reldev::core
