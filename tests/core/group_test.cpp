#include "reldev/core/group.hpp"

#include <gtest/gtest.h>

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

TEST(ReplicaGroupTest, ConstructsAllSchemes) {
  for (const auto scheme :
       {SchemeKind::kVoting, SchemeKind::kAvailableCopy,
        SchemeKind::kNaiveAvailableCopy}) {
    ReplicaGroup group(scheme, GroupConfig::majority(3, 4, 64));
    EXPECT_EQ(group.size(), 3u);
    EXPECT_EQ(group.scheme(), scheme);
    EXPECT_TRUE(group.group_available());
    for (SiteId site = 0; site < 3; ++site) {
      EXPECT_EQ(group.replica(site).state(), SiteState::kAvailable);
      EXPECT_TRUE(group.transport().is_up(site));
    }
  }
}

TEST(ReplicaGroupTest, SchemeNames) {
  EXPECT_STREQ(scheme_kind_name(SchemeKind::kVoting), "voting");
  EXPECT_STREQ(scheme_kind_name(SchemeKind::kAvailableCopy),
               "available-copy");
  EXPECT_STREQ(scheme_kind_name(SchemeKind::kNaiveAvailableCopy),
               "naive-available-copy");
}

TEST(ReplicaGroupTest, CrashMarksSiteDownAndFailed) {
  ReplicaGroup group(SchemeKind::kVoting, GroupConfig::majority(3, 4, 64));
  group.crash_site(1);
  EXPECT_EQ(group.replica(1).state(), SiteState::kFailed);
  EXPECT_FALSE(group.transport().is_up(1));
  EXPECT_EQ(group.up(), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(group.states()[1], SiteState::kFailed);
}

TEST(ReplicaGroupTest, VotingAvailabilityRule) {
  ReplicaGroup group(SchemeKind::kVoting, GroupConfig::majority(5, 4, 64));
  group.crash_site(0);
  group.crash_site(1);
  EXPECT_TRUE(group.group_available());  // 3 of 5 up
  group.crash_site(2);
  EXPECT_FALSE(group.group_available());  // 2 of 5 up
  ASSERT_TRUE(group.recover_site(2).is_ok());
  EXPECT_TRUE(group.group_available());
}

TEST(ReplicaGroupTest, AvailableCopyAvailabilityRule) {
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     GroupConfig::majority(3, 4, 64));
  group.crash_site(0);
  group.crash_site(1);
  EXPECT_TRUE(group.group_available());  // one available copy is enough
  group.crash_site(2);
  EXPECT_FALSE(group.group_available());
}

TEST(ReplicaGroupTest, RetryComatoseMakesProgressInAnyOrder) {
  ReplicaGroup group(SchemeKind::kNaiveAvailableCopy,
                     GroupConfig::majority(3, 4, 64));
  group.crash_site(0);
  group.crash_site(1);
  group.crash_site(2);
  // Each site reboots and runs its recovery procedure, as a restarted
  // server process would. The first two must wait (naive scheme: all
  // sites); the last one's recover_site retries the fixpoint and the
  // whole group converges to available.
  group.transport().set_up(0, true);
  EXPECT_EQ(group.replica(0).recover().code(),
            reldev::ErrorCode::kUnavailable);
  group.transport().set_up(1, true);
  EXPECT_EQ(group.replica(1).recover().code(),
            reldev::ErrorCode::kUnavailable);
  ASSERT_TRUE(group.recover_site(2).is_ok());
  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(group.replica(site).state(), SiteState::kAvailable);
  }
}

TEST(ReplicaGroupTest, MeterSharedAcrossSites) {
  ReplicaGroup group(SchemeKind::kVoting, GroupConfig::majority(3, 4, 64));
  group.meter().reset();
  ASSERT_TRUE(group.write(0, 0, payload(64, 1)).is_ok());
  ASSERT_TRUE(group.write(1, 0, payload(64, 2)).is_ok());
  EXPECT_GT(group.meter().total(), 0u);
}

TEST(ReplicaGroupTest, OutOfRangeSiteIsContractViolation) {
  ReplicaGroup group(SchemeKind::kVoting, GroupConfig::majority(2, 4, 64));
  EXPECT_THROW((void)group.replica(2), reldev::ContractViolation);
  EXPECT_THROW((void)group.store(9), reldev::ContractViolation);
}

TEST(ReplicaDeviceTest, AdaptsReplicaToBlockDevice) {
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     GroupConfig::majority(3, 8, 64));
  ReplicaDevice device(group.replica(0));
  EXPECT_EQ(device.block_count(), 8u);
  EXPECT_EQ(device.block_size(), 64u);
  const auto data = payload(64, 5);
  ASSERT_TRUE(device.write_block(3, data).is_ok());
  EXPECT_EQ(device.read_block(3).value(), data);
  // And the write replicated.
  EXPECT_EQ(group.store(2).read(3).value().data, data);
}

TEST(LocalBlockDeviceTest, BaselineDeviceWorks) {
  storage::MemBlockStore store(4, 32);
  LocalBlockDevice device(store);
  const auto data = payload(32, 9);
  ASSERT_TRUE(device.write_block(1, data).is_ok());
  EXPECT_EQ(device.read_block(1).value(), data);
  EXPECT_EQ(store.version_of(1).value(), 1u);  // versions advance locally
  ASSERT_TRUE(device.write_block(1, data).is_ok());
  EXPECT_EQ(store.version_of(1).value(), 2u);
}

}  // namespace
}  // namespace reldev::core
