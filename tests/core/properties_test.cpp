// Randomized property tests: across arbitrary fail-stop schedules (no
// partitions — the available-copy assumption), every scheme must satisfy
//   P1  a successful read returns the most recently acknowledged write,
//   P2  block versions never regress on any store,
//   P3  after every site recovers, the whole group converges to the last
//       acknowledged state.
#include <gtest/gtest.h>

#include <map>

#include "reldev/core/group.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kBlocks = 4;
constexpr std::size_t kBlockSize = 32;

storage::BlockData stamp(std::uint64_t value) {
  storage::BlockData data(kBlockSize, std::byte{0});
  for (std::size_t i = 0; i < 8; ++i) {
    data[i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  }
  return data;
}

class SchemeProperties
    : public ::testing::TestWithParam<std::tuple<SchemeKind, std::uint64_t>> {
};

TEST_P(SchemeProperties, RandomScheduleKeepsConsistency) {
  const auto [scheme, seed] = GetParam();
  reldev::Rng rng(seed);
  ReplicaGroup group(scheme, GroupConfig::majority(4, kBlocks, kBlockSize));
  const std::size_t n = group.size();

  // The reference: last acknowledged payload stamp per block.
  std::map<storage::BlockId, std::uint64_t> model;
  std::uint64_t next_stamp = 1;

  // Previous version vector per site, for the no-regression property.
  std::vector<storage::VersionVector> last_versions;
  for (SiteId s = 0; s < n; ++s) {
    last_versions.push_back(group.store(s).version_vector());
  }

  const auto check_versions_monotone = [&] {
    for (SiteId s = 0; s < n; ++s) {
      const auto current = group.store(s).version_vector();
      ASSERT_TRUE(current.dominates(last_versions[s]))
          << "version regression on site " << s;
      last_versions[s] = current;
    }
  };

  for (int step = 0; step < 400; ++step) {
    const auto action = rng.uniform_u64(0, 9);
    if (action < 4) {  // write
      const SiteId via = static_cast<SiteId>(rng.uniform_u64(0, n - 1));
      const storage::BlockId block = rng.uniform_u64(0, kBlocks - 1);
      if (!group.transport().is_up(via)) continue;
      const std::uint64_t value = next_stamp++;
      if (group.write(via, block, stamp(value)).is_ok()) {
        model[block] = value;
      }
    } else if (action < 8) {  // read (P1)
      const SiteId via = static_cast<SiteId>(rng.uniform_u64(0, n - 1));
      const storage::BlockId block = rng.uniform_u64(0, kBlocks - 1);
      if (!group.transport().is_up(via)) continue;
      auto read = group.read(via, block);
      if (read.is_ok()) {
        const auto expected =
            model.count(block) != 0 ? stamp(model.at(block)) : stamp(0);
        // Blocks never written read back as zeroes.
        const auto want = model.count(block) != 0
                              ? expected
                              : storage::BlockData(kBlockSize, std::byte{0});
        ASSERT_EQ(read.value(), want)
            << scheme_kind_name(scheme) << " seed " << seed << " step "
            << step << ": stale read of block " << block;
      }
    } else if (action == 8) {  // crash someone who is up
      std::vector<SiteId> up;
      for (SiteId s = 0; s < n; ++s) {
        if (group.transport().is_up(s)) up.push_back(s);
      }
      if (!up.empty()) {
        group.crash_site(
            up[static_cast<std::size_t>(rng.uniform_u64(0, up.size() - 1))]);
      }
    } else {  // recover someone who is down
      std::vector<SiteId> down;
      for (SiteId s = 0; s < n; ++s) {
        if (!group.transport().is_up(s)) down.push_back(s);
      }
      if (!down.empty()) {
        (void)group.recover_site(down[static_cast<std::size_t>(
            rng.uniform_u64(0, down.size() - 1))]);
      }
    }
    check_versions_monotone();
  }

  // P3: bring everyone back; the group must converge on the model.
  for (SiteId s = 0; s < n; ++s) {
    if (!group.transport().is_up(s)) (void)group.recover_site(s);
  }
  group.retry_comatose();
  ASSERT_TRUE(group.group_available());

  for (storage::BlockId block = 0; block < kBlocks; ++block) {
    const auto want = model.count(block) != 0
                          ? stamp(model.at(block))
                          : storage::BlockData(kBlockSize, std::byte{0});
    // Read through every site that will serve.
    for (SiteId s = 0; s < n; ++s) {
      auto read = group.read(s, block);
      if (read.is_ok()) {
        EXPECT_EQ(read.value(), want)
            << scheme_kind_name(scheme) << " site " << s << " block "
            << block;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesManySeeds, SchemeProperties,
    ::testing::Combine(::testing::Values(SchemeKind::kVoting,
                                         SchemeKind::kAvailableCopy,
                                         SchemeKind::kNaiveAvailableCopy),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                         12)));

// The same schedule property with the piggybacked was-available policy:
// staleness in W may delay recovery but must never corrupt data.
class PiggybackProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PiggybackProperties, LaggingKnowledgeIsStillSafe) {
  reldev::Rng rng(GetParam());
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     GroupConfig::majority(3, kBlocks, kBlockSize),
                     net::AddressingMode::kMulticast,
                     WasAvailablePolicy::kPiggybacked);
  std::map<storage::BlockId, std::uint64_t> model;
  std::uint64_t next_stamp = 1;

  for (int step = 0; step < 300; ++step) {
    const auto action = rng.uniform_u64(0, 9);
    if (action < 5) {
      const SiteId via = static_cast<SiteId>(rng.uniform_u64(0, 2));
      const storage::BlockId block = rng.uniform_u64(0, kBlocks - 1);
      if (!group.transport().is_up(via)) continue;
      const std::uint64_t value = next_stamp++;
      if (group.write(via, block, stamp(value)).is_ok()) model[block] = value;
    } else if (action < 8) {
      const SiteId via = static_cast<SiteId>(rng.uniform_u64(0, 2));
      const storage::BlockId block = rng.uniform_u64(0, kBlocks - 1);
      if (!group.transport().is_up(via)) continue;
      auto read = group.read(via, block);
      if (read.is_ok() && model.count(block) != 0) {
        ASSERT_EQ(read.value(), stamp(model.at(block)))
            << "seed " << GetParam() << " step " << step;
      }
    } else if (action == 8) {
      const SiteId victim = static_cast<SiteId>(rng.uniform_u64(0, 2));
      if (group.transport().is_up(victim)) group.crash_site(victim);
    } else {
      const SiteId lucky = static_cast<SiteId>(rng.uniform_u64(0, 2));
      if (!group.transport().is_up(lucky)) (void)group.recover_site(lucky);
    }
  }
  for (SiteId s = 0; s < 3; ++s) {
    if (!group.transport().is_up(s)) (void)group.recover_site(s);
  }
  group.retry_comatose();
  for (const auto& [block, value] : model) {
    for (SiteId s = 0; s < 3; ++s) {
      auto read = group.read(s, block);
      if (read.is_ok()) {
        EXPECT_EQ(read.value(), stamp(value));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, PiggybackProperties,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace reldev::core
