#include "reldev/core/driver_stub.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "reldev/core/group.hpp"
#include "reldev/net/fault_transport.hpp"

namespace reldev::core {
namespace {

constexpr SiteId kClientId = 100;

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

class DriverStubTest : public ::testing::Test {
 protected:
  DriverStubTest()
      : group_(SchemeKind::kAvailableCopy, GroupConfig::majority(3, 8, 64)) {}
  ReplicaGroup group_;
};

TEST_F(DriverStubTest, ConnectDiscoversGeometry) {
  auto stub = DriverStub::connect(group_.transport(), kClientId, {0, 1, 2});
  ASSERT_TRUE(stub.is_ok());
  EXPECT_EQ(stub.value().block_count(), 8u);
  EXPECT_EQ(stub.value().block_size(), 64u);
}

TEST_F(DriverStubTest, ConnectFailsWhenAllServersDown) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  auto stub = DriverStub::connect(group_.transport(), kClientId, {0, 1, 2});
  EXPECT_EQ(stub.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST_F(DriverStubTest, ReadWriteRoundTrip) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 3);
  ASSERT_TRUE(stub.write_block(2, data).is_ok());
  EXPECT_EQ(stub.read_block(2).value(), data);
  EXPECT_EQ(stub.last_server(), 0u);
}

TEST_F(DriverStubTest, FailsOverToNextServer) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 4);
  ASSERT_TRUE(stub.write_block(1, data).is_ok());
  group_.crash_site(0);
  EXPECT_EQ(stub.read_block(1).value(), data);
  EXPECT_EQ(stub.last_server(), 1u);  // the stub moved on
}

TEST_F(DriverStubTest, FailsOverPastComatoseServer) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  // Make site 0 comatose: total failure, then bring 0 back while the
  // closure is still incomplete.
  group_.crash_site(1);
  group_.crash_site(2);
  const auto data = payload(64, 5);
  ASSERT_TRUE(stub.write_block(3, data).is_ok());  // via site 0; W_0 = {0}
  group_.crash_site(0);
  // Bring back 1: it cannot recover (0 failed last) — stays comatose.
  group_.transport().set_up(1, true);
  (void)group_.replica(1).recover();
  ASSERT_EQ(group_.replica(1).state(), SiteState::kComatose);
  // 0 returns and recovers alone; a client pointed first at the comatose
  // site must skip it and reach an available one.
  ASSERT_TRUE(group_.recover_site(0).is_ok());
  DriverStub stub2(group_.transport(), kClientId, {1, 0}, 8, 64);
  EXPECT_EQ(stub2.read_block(3).value(), data);
}

TEST_F(DriverStubTest, ReportsUnavailableWhenNoCopyServes) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  EXPECT_EQ(stub.read_block(0).status().code(),
            reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(stub.write_block(0, payload(64, 1)).code(),
            reldev::ErrorCode::kUnavailable);
}

TEST_F(DriverStubTest, WrongPayloadSizeRejectedClientSide) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0}).value();
  EXPECT_EQ(stub.write_block(0, payload(63, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(DriverStubTest, ServerSideErrorsPropagate) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0}).value();
  EXPECT_EQ(stub.read_block(999).status().code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(DriverStubTest, StaysStickyAfterFailover) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 8);
  ASSERT_TRUE(stub.write_block(1, data).is_ok());
  group_.crash_site(0);
  ASSERT_TRUE(stub.read_block(1).is_ok());
  ASSERT_EQ(stub.last_server(), 1u);
  // Direct-hit cost: the stub is already pointed at site 1.
  group_.meter().reset();
  ASSERT_TRUE(stub.read_block(1).is_ok());
  const auto direct_cost = group_.meter().total();
  // Site 0 comes back, but the stub must keep talking to site 1 instead of
  // probing the front of the list again on every call.
  ASSERT_TRUE(group_.recover_site(0).is_ok());
  group_.meter().reset();
  ASSERT_TRUE(stub.read_block(1).is_ok());
  EXPECT_EQ(stub.last_server(), 1u);
  EXPECT_EQ(group_.meter().total(), direct_cost);  // no dead-head probe
}

TEST_F(DriverStubTest, VectoredReadWriteRoundTrip) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  storage::BlockData contents(3 * 64);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<std::byte>(i & 0xff);
  }
  ASSERT_TRUE(stub.write_blocks(2, contents).is_ok());
  EXPECT_EQ(stub.read_blocks(2, 3).value(), contents);
  // The batch really landed block by block.
  EXPECT_EQ(stub.read_block(3).value(),
            storage::BlockData(contents.begin() + 64,
                               contents.begin() + 128));
}

TEST_F(DriverStubTest, VectoredRangeValidatedClientSide) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  EXPECT_EQ(stub.read_blocks(7, 2).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(stub.read_blocks(0, 0).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(stub.write_blocks(0, payload(65, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(DriverStubTest, VectoredOpsFailOverToo) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto contents = payload(2 * 64, 9);
  ASSERT_TRUE(stub.write_blocks(0, contents).is_ok());
  group_.crash_site(0);
  EXPECT_EQ(stub.read_blocks(0, 2).value(), contents);
  EXPECT_EQ(stub.last_server(), 1u);
}

// Fails the first `failures` calls with `code`, then forwards to the inner
// transport — a deterministic stand-in for a transiently sick network.
class FlakyTransport final : public net::Transport {
 public:
  FlakyTransport(net::Transport& inner, int failures, ErrorCode code)
      : inner_(inner), failures_(failures), code_(code) {}

  using net::Transport::multicast_call;

  Result<net::Message> call(SiteId from, SiteId to,
                            const net::Message& request) override {
    ++calls;
    if (failures_ > 0) {
      --failures_;
      return Status(code_, "flaky transport: injected failure");
    }
    return inner_.call(from, to, request);
  }
  Status send(SiteId from, SiteId to, const net::Message& message) override {
    return inner_.send(from, to, message);
  }
  Status multicast(SiteId from, const net::SiteSet& to,
                   const net::Message& message) override {
    return inner_.multicast(from, to, message);
  }
  std::vector<net::GatherReply> multicast_call(
      SiteId from, const net::SiteSet& to, const net::Message& request,
      const net::EarlyStop& early_stop) override {
    return inner_.multicast_call(from, to, request, early_stop);
  }

  int calls = 0;

 private:
  net::Transport& inner_;
  int failures_;
  ErrorCode code_;
};

RetryPolicy fast_policy(std::size_t rounds) {
  RetryPolicy policy;
  policy.max_rounds = rounds;
  policy.initial_backoff = std::chrono::milliseconds{0};
  policy.max_backoff = std::chrono::milliseconds{0};
  return policy;
}

TEST(RetryClassification, TransientVsTerminal) {
  EXPECT_TRUE(is_retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(is_retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(is_retryable(ErrorCode::kCorruption));
  EXPECT_FALSE(is_retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(is_retryable(ErrorCode::kProtocol));
  EXPECT_FALSE(is_retryable(ErrorCode::kConflict));
  EXPECT_FALSE(is_retryable(ErrorCode::kIoError));
}

TEST_F(DriverStubTest, RetriesThroughTransientTimeouts) {
  const auto data = payload(64, 11);
  {
    DriverStub seeder(group_.transport(), kClientId, {0}, 8, 64);
    ASSERT_TRUE(seeder.write_block(0, data).is_ok());
  }
  // One server, first four calls time out: only the retry rounds save it.
  FlakyTransport flaky(group_.transport(), 4, ErrorCode::kTimeout);
  DriverStub stub(flaky, kClientId, {0}, 8, 64, fast_policy(5));
  EXPECT_EQ(stub.read_block(0).value(), data);
  EXPECT_EQ(flaky.calls, 5);
}

TEST_F(DriverStubTest, TerminalErrorIsNotRetried) {
  FlakyTransport broken(group_.transport(), 1000, ErrorCode::kProtocol);
  DriverStub stub(broken, kClientId, {0, 1, 2}, 8, 64, fast_policy(5));
  EXPECT_EQ(stub.read_block(0).status().code(), reldev::ErrorCode::kProtocol);
  EXPECT_EQ(broken.calls, 1);  // no failover, no rounds
}

TEST_F(DriverStubTest, ExhaustionReportsStructuredDetail) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  DriverStub stub(group_.transport(), kClientId, {0, 1, 2}, 8, 64,
                  fast_policy(2));
  const auto status = stub.read_block(0).status();
  EXPECT_EQ(status.code(), reldev::ErrorCode::kUnavailable);
  EXPECT_NE(status.message().find("exhausted"), std::string::npos);
  EXPECT_NE(status.message().find("site"), std::string::npos);
  const auto& detail = stub.last_failure();
  EXPECT_EQ(detail.attempts, 6u);  // 3 servers x 2 rounds
  EXPECT_EQ(detail.rounds, 2u);
  EXPECT_EQ(detail.last_error.code(), reldev::ErrorCode::kUnavailable);
}

TEST_F(DriverStubTest, PolicyNoneIsASingleScan) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  DriverStub stub(group_.transport(), kClientId, {0, 1, 2}, 8, 64,
                  RetryPolicy::none());
  EXPECT_FALSE(stub.read_block(0).is_ok());
  EXPECT_EQ(stub.last_failure().attempts, 3u);
  EXPECT_EQ(stub.last_failure().rounds, 1u);
}

TEST_F(DriverStubTest, OpDeadlineBoundsTheWholeOperation) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  auto policy = fast_policy(1000);  // would be 3000 attempts without a budget
  policy.op_deadline = std::chrono::milliseconds{0};
  DriverStub stub(group_.transport(), kClientId, {0, 1, 2}, 8, 64, policy);
  const auto status = stub.read_block(0).status();
  EXPECT_EQ(status.code(), reldev::ErrorCode::kUnavailable);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);
  EXPECT_EQ(stub.last_failure().attempts, 0u);
}

TEST_F(DriverStubTest, FailsOverAroundAFaultyLink) {
  const auto data = payload(64, 12);
  {
    DriverStub seeder(group_.transport(), kClientId, {0}, 8, 64);
    ASSERT_TRUE(seeder.write_block(5, data).is_ok());
  }
  net::FaultInjectingTransport faults(group_.transport(), 7);
  net::FaultRule dead;
  dead.drop = 1.0;
  faults.set_link_rule(kClientId, 0, dead);  // client cannot reach site 0
  DriverStub stub(faults, kClientId, {0, 1}, 8, 64, fast_policy(3));
  EXPECT_EQ(stub.read_block(5).value(), data);
  EXPECT_EQ(stub.last_server(), 1u);
}

TEST_F(DriverStubTest, WorksAgainstVotingGroupToo) {
  ReplicaGroup voting(SchemeKind::kVoting, GroupConfig::majority(5, 4, 32));
  auto stub =
      DriverStub::connect(voting.transport(), kClientId, {0, 1}).value();
  const auto data = payload(32, 6);
  ASSERT_TRUE(stub.write_block(0, data).is_ok());
  voting.crash_site(0);
  voting.crash_site(1);
  // Client must fail over: servers 0/1 are dead; reconfigure with all.
  DriverStub wide(voting.transport(), kClientId, {0, 1, 2, 3, 4}, 4, 32);
  EXPECT_EQ(wide.read_block(0).value(), data);
}

}  // namespace
}  // namespace reldev::core
