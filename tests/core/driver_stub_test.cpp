#include "reldev/core/driver_stub.hpp"

#include <gtest/gtest.h>

#include "reldev/core/group.hpp"

namespace reldev::core {
namespace {

constexpr SiteId kClientId = 100;

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

class DriverStubTest : public ::testing::Test {
 protected:
  DriverStubTest()
      : group_(SchemeKind::kAvailableCopy, GroupConfig::majority(3, 8, 64)) {}
  ReplicaGroup group_;
};

TEST_F(DriverStubTest, ConnectDiscoversGeometry) {
  auto stub = DriverStub::connect(group_.transport(), kClientId, {0, 1, 2});
  ASSERT_TRUE(stub.is_ok());
  EXPECT_EQ(stub.value().block_count(), 8u);
  EXPECT_EQ(stub.value().block_size(), 64u);
}

TEST_F(DriverStubTest, ConnectFailsWhenAllServersDown) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  auto stub = DriverStub::connect(group_.transport(), kClientId, {0, 1, 2});
  EXPECT_EQ(stub.status().code(), reldev::ErrorCode::kUnavailable);
}

TEST_F(DriverStubTest, ReadWriteRoundTrip) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 3);
  ASSERT_TRUE(stub.write_block(2, data).is_ok());
  EXPECT_EQ(stub.read_block(2).value(), data);
  EXPECT_EQ(stub.last_server(), 0u);
}

TEST_F(DriverStubTest, FailsOverToNextServer) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 4);
  ASSERT_TRUE(stub.write_block(1, data).is_ok());
  group_.crash_site(0);
  EXPECT_EQ(stub.read_block(1).value(), data);
  EXPECT_EQ(stub.last_server(), 1u);  // the stub moved on
}

TEST_F(DriverStubTest, FailsOverPastComatoseServer) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  // Make site 0 comatose: total failure, then bring 0 back while the
  // closure is still incomplete.
  group_.crash_site(1);
  group_.crash_site(2);
  const auto data = payload(64, 5);
  ASSERT_TRUE(stub.write_block(3, data).is_ok());  // via site 0; W_0 = {0}
  group_.crash_site(0);
  // Bring back 1: it cannot recover (0 failed last) — stays comatose.
  group_.transport().set_up(1, true);
  (void)group_.replica(1).recover();
  ASSERT_EQ(group_.replica(1).state(), SiteState::kComatose);
  // 0 returns and recovers alone; a client pointed first at the comatose
  // site must skip it and reach an available one.
  ASSERT_TRUE(group_.recover_site(0).is_ok());
  DriverStub stub2(group_.transport(), kClientId, {1, 0}, 8, 64);
  EXPECT_EQ(stub2.read_block(3).value(), data);
}

TEST_F(DriverStubTest, ReportsUnavailableWhenNoCopyServes) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  EXPECT_EQ(stub.read_block(0).status().code(),
            reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(stub.write_block(0, payload(64, 1)).code(),
            reldev::ErrorCode::kUnavailable);
}

TEST_F(DriverStubTest, WrongPayloadSizeRejectedClientSide) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0}).value();
  EXPECT_EQ(stub.write_block(0, payload(63, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(DriverStubTest, ServerSideErrorsPropagate) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0}).value();
  EXPECT_EQ(stub.read_block(999).status().code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(DriverStubTest, StaysStickyAfterFailover) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 8);
  ASSERT_TRUE(stub.write_block(1, data).is_ok());
  group_.crash_site(0);
  ASSERT_TRUE(stub.read_block(1).is_ok());
  ASSERT_EQ(stub.last_server(), 1u);
  // Direct-hit cost: the stub is already pointed at site 1.
  group_.meter().reset();
  ASSERT_TRUE(stub.read_block(1).is_ok());
  const auto direct_cost = group_.meter().total();
  // Site 0 comes back, but the stub must keep talking to site 1 instead of
  // probing the front of the list again on every call.
  ASSERT_TRUE(group_.recover_site(0).is_ok());
  group_.meter().reset();
  ASSERT_TRUE(stub.read_block(1).is_ok());
  EXPECT_EQ(stub.last_server(), 1u);
  EXPECT_EQ(group_.meter().total(), direct_cost);  // no dead-head probe
}

TEST_F(DriverStubTest, VectoredReadWriteRoundTrip) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  storage::BlockData contents(3 * 64);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<std::byte>(i & 0xff);
  }
  ASSERT_TRUE(stub.write_blocks(2, contents).is_ok());
  EXPECT_EQ(stub.read_blocks(2, 3).value(), contents);
  // The batch really landed block by block.
  EXPECT_EQ(stub.read_block(3).value(),
            storage::BlockData(contents.begin() + 64,
                               contents.begin() + 128));
}

TEST_F(DriverStubTest, VectoredRangeValidatedClientSide) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  EXPECT_EQ(stub.read_blocks(7, 2).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(stub.read_blocks(0, 0).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(stub.write_blocks(0, payload(65, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(DriverStubTest, VectoredOpsFailOverToo) {
  auto stub =
      DriverStub::connect(group_.transport(), kClientId, {0, 1, 2}).value();
  const auto contents = payload(2 * 64, 9);
  ASSERT_TRUE(stub.write_blocks(0, contents).is_ok());
  group_.crash_site(0);
  EXPECT_EQ(stub.read_blocks(0, 2).value(), contents);
  EXPECT_EQ(stub.last_server(), 1u);
}

TEST_F(DriverStubTest, WorksAgainstVotingGroupToo) {
  ReplicaGroup voting(SchemeKind::kVoting, GroupConfig::majority(5, 4, 32));
  auto stub =
      DriverStub::connect(voting.transport(), kClientId, {0, 1}).value();
  const auto data = payload(32, 6);
  ASSERT_TRUE(stub.write_block(0, data).is_ok());
  voting.crash_site(0);
  voting.crash_site(1);
  // Client must fail over: servers 0/1 are dead; reconfigure with all.
  DriverStub wide(voting.transport(), kClientId, {0, 1, 2, 3, 4}, 4, 32);
  EXPECT_EQ(wide.read_block(0).value(), data);
}

}  // namespace
}  // namespace reldev::core
