#include "reldev/core/scenario.hpp"

#include <gtest/gtest.h>

namespace reldev::core {
namespace {

TEST(ScenarioParseTest, ConfigAndStepsParse) {
  auto scenario = Scenario::parse(R"(
# a comment
sites 4
blocks 16
scheme voting
crash 2
write 0 3 hello
read 1 3 hello
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  EXPECT_EQ(scenario.value().sites, 4u);
  EXPECT_EQ(scenario.value().blocks, 16u);
  EXPECT_EQ(scenario.value().scheme, SchemeKind::kVoting);
  ASSERT_EQ(scenario.value().steps.size(), 3u);
  EXPECT_EQ(scenario.value().steps[0].command, "crash");
  EXPECT_EQ(scenario.value().steps[1].args[2], "hello");
}

TEST(ScenarioParseTest, UnknownCommandRejectedWithLineNumber) {
  auto scenario = Scenario::parse("sites 3\nexplode 1\n");
  ASSERT_FALSE(scenario.is_ok());
  EXPECT_NE(scenario.status().message().find("line 2"), std::string::npos);
}

TEST(ScenarioParseTest, ArityChecked) {
  EXPECT_FALSE(Scenario::parse("crash\n").is_ok());
  EXPECT_FALSE(Scenario::parse("write 0 1\n").is_ok());
  EXPECT_FALSE(Scenario::parse("heal 3\n").is_ok());
}

TEST(ScenarioParseTest, ConfigAfterActionsRejected) {
  auto scenario = Scenario::parse("crash 0\nsites 5\n");
  ASSERT_FALSE(scenario.is_ok());
  EXPECT_NE(scenario.status().message().find("precede"), std::string::npos);
}

TEST(ScenarioParseTest, BoundsChecked) {
  EXPECT_FALSE(Scenario::parse("sites 0\n").is_ok());
  EXPECT_FALSE(Scenario::parse("sites 99\n").is_ok());
  EXPECT_FALSE(Scenario::parse("blocks 0\n").is_ok());
  EXPECT_FALSE(Scenario::parse("scheme magic\n").is_ok());
}

TEST(ScenarioRunTest, SimpleWriteReadScript) {
  auto scenario = Scenario::parse(R"(
scheme naive-available-copy
write 0 0 alpha
read 2 0 alpha
crash 1
write 0 1 beta
read 2 1 beta
recover 1
read 1 1 beta
expect-available true
)");
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome.value().steps_executed, 8u);
  EXPECT_EQ(outcome.value().transcript.size(), 8u);
}

TEST(ScenarioRunTest, AcTotalFailureWorkedExample) {
  // The §4.4 story as a script: fail 2, 1, 0 with writes in between; site
  // 2 (failed first) cannot restore service, site 0 (failed last) can.
  auto scenario = Scenario::parse(R"(
scheme available-copy
crash 2
write 0 0 v1
crash 1
write 0 0 v2
crash 0
expect-available false
comeback 2
expect-state 2 comatose
comeback 1
expect-state 1 comatose
expect-available false
recover 0
expect-state 0 available
expect-state 1 available
expect-state 2 available
read 2 0 v2
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, NaiveMustWaitForAllSites) {
  auto scenario = Scenario::parse(R"(
scheme naive-available-copy
crash 2
write 0 0 v1
crash 1
write 0 0 v2
crash 0
comeback 0
expect-state 0 comatose
comeback 1
expect-state 1 comatose
recover 2
expect-state 0 available
read 0 0 v2
)");
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, VotingPartitionScript) {
  auto scenario = Scenario::parse(R"(
scheme voting
sites 5
write 0 0 agreed
partition 0 1
partition 1 1
fail-write 0 0 minority
write 2 0 majority
heal
read 0 0 majority
)");
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, ViolatedExpectationReportsLine) {
  auto scenario = Scenario::parse("write 0 0 actual\nread 0 0 different\n");
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), reldev::ErrorCode::kConflict);
  EXPECT_NE(outcome.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(outcome.status().message().find("'actual'"), std::string::npos);
}

TEST(ScenarioRunTest, FailedRecoveryExpectationReportsError) {
  // Under NAC, the first site back after a total failure cannot recover;
  // demanding `recover` (not `comeback`) must fail the scenario.
  auto scenario = Scenario::parse(R"(
scheme naive-available-copy
crash 0
crash 1
crash 2
recover 0
)");
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), reldev::ErrorCode::kConflict);
}

TEST(ScenarioRunTest, RangeVerbsRunEndToEnd) {
  auto scenario = Scenario::parse(R"(
scheme voting
sites 3
blocks 8
write-range 0 2 3 bulk
read-range 1 2 3 bulk
crash 1
crash 2
fail-write-range 0 2 3 lost
recover 1
read-range 0 2 3 bulk
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, RangeVerbsRejectBadArity) {
  EXPECT_FALSE(Scenario::parse("write-range 0 0 bulk\n").is_ok());
  EXPECT_FALSE(Scenario::parse("read-range 0 0 2\n").is_ok());
}

TEST(ScenarioRunTest, RangeVerbsRejectOutOfBoundsRange) {
  auto scenario = Scenario::parse("write-range 0 6 4 text\n");  // 8 blocks
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), reldev::ErrorCode::kInvalidArgument);
}

TEST(ScenarioRunTest, OutOfRangeReferencesRejectedAtRunTime) {
  auto scenario = Scenario::parse("crash 7\n");  // sites defaults to 3
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), reldev::ErrorCode::kInvalidArgument);
}

TEST(ScenarioParseTest, FaultSeedIsAConfigCommand) {
  auto scenario = Scenario::parse("fault-seed 99\nwrite 0 0 x\n");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  EXPECT_EQ(scenario.value().fault_seed, 99u);
  // Like the other config commands, it must precede all actions.
  EXPECT_FALSE(Scenario::parse("crash 0\nfault-seed 7\n").is_ok());
}

TEST(ScenarioParseTest, FaultVerbArityChecked) {
  EXPECT_FALSE(Scenario::parse("drop-rate 0 1\n").is_ok());
  EXPECT_FALSE(Scenario::parse("delay-ms 0 1\n").is_ok());
  EXPECT_FALSE(Scenario::parse("corrupt-rate 0 1 0.5 extra\n").is_ok());
  EXPECT_FALSE(Scenario::parse("block-link 0\n").is_ok());
}

TEST(ScenarioRunTest, BadProbabilityRejectedAtRunTime) {
  auto scenario = Scenario::parse("drop-rate 0 1 1.5\n");
  ASSERT_TRUE(scenario.is_ok());
  auto outcome = run_scenario(scenario.value());
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_EQ(outcome.status().code(), reldev::ErrorCode::kInvalidArgument);
}

TEST(ScenarioRunTest, DroppedLinksCostTheVotingQuorum) {
  // With every outgoing link from site 0 eating messages, its write can
  // gather no remote votes; after heal the quorum is back.
  auto scenario = Scenario::parse(R"(
scheme voting
fault-seed 7
drop-rate 0 1 1.0
drop-rate 0 2 1.0
fail-write 0 0 lonely
heal
write 0 0 quorate
read 1 0 quorate
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, BlockedLinkSilentlyStarvesOnePeer) {
  // available-copy assumes reliable delivery; a one-way blocked link makes
  // site 1 miss the write while the writer still succeeds — the script can
  // then show the stale copy and that heal restores normal flow.
  auto scenario = Scenario::parse(R"(
scheme available-copy
block-link 0 1
write 0 0 fresh
read 2 0 fresh
heal
write 0 1 after
read 1 1 after
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, DelayAndDuplicationDoNotBreakSemantics) {
  // Duplicated writes re-apply the same version (idempotent) and a small
  // delay only slows the run; results must be unchanged.
  auto scenario = Scenario::parse(R"(
scheme available-copy
fault-seed 3
dup-rate 0 1 1.0
delay-ms 0 2 1
write 0 0 steady
read 1 0 steady
read 2 0 steady
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioParseTest, CrashVerbsRequireFileStore) {
  auto scenario = Scenario::parse("crash-site 0\n");
  ASSERT_FALSE(scenario.is_ok());
  EXPECT_NE(scenario.status().message().find("store file"), std::string::npos);
  EXPECT_TRUE(Scenario::parse("store file\ncrash-site 0\n").is_ok());
}

TEST(ScenarioParseTest, StoreConfigValidated) {
  EXPECT_TRUE(Scenario::parse("store mem\n").is_ok());
  EXPECT_TRUE(Scenario::parse("store file\n").is_ok());
  EXPECT_FALSE(Scenario::parse("store floppy\n").is_ok());
}

TEST(ScenarioRunTest, FileStoreCrashRestartCycle) {
  // A torn block write at site 0, a hard kill, then a restart through the
  // scrub: the damaged record is demoted and healed from peers, and the
  // synced earlier write survives.
  auto scenario = Scenario::parse(R"(
scheme available-copy
store file
write 0 0 durable
sync-site 0
arm-crash 0 mid-block-write 0
fail-write 0 1 lost      # the store dies mid-record; the write is refused
crash-site 0
expect-state 0 failed
restart-site 0
expect-state 0 available
read 0 0 durable
read 1 0 durable
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, FileStoreVotingSurvivesMetadataArmNeverFiring) {
  // Voting never persists metadata on the write path, so this armed crash
  // cannot fire; the script must still run to completion.
  auto scenario = Scenario::parse(R"(
scheme voting
store file
arm-crash 0 mid-metadata-write 0
write 0 0 spin
read 1 0 spin
crash-site 0
restart-site 0
read 0 0 spin
)");
  ASSERT_TRUE(scenario.is_ok()) << scenario.status().to_string();
  auto outcome = run_scenario(scenario.value());
  EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
}

TEST(ScenarioRunTest, UnknownCrashPointRejected) {
  auto scenario = Scenario::parse(R"(
store file
arm-crash 0 half-past-write 0
)");
  ASSERT_TRUE(scenario.is_ok());  // parses; the point name is checked at run
  auto outcome = run_scenario(scenario.value());
  ASSERT_FALSE(outcome.is_ok());
  EXPECT_NE(outcome.status().message().find("unknown crash point"),
            std::string::npos);
}

}  // namespace
}  // namespace reldev::core
