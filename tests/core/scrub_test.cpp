// The anti-entropy scrub daemon: digest exchange finds stale and latently
// corrupt blocks without client traffic, heals route through the engines'
// repair machinery, throttling is accounted deterministically, races with
// foreground writes never demote newer data, and the cursor survives a
// kill/restart. Divergence is injected by writing to the stores behind the
// replicas' backs — the on-disk shape of a missed update or silent rot.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>

#include "reldev/core/group.hpp"
#include "reldev/storage/scrubber.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kSites = 3;
constexpr std::size_t kBlocks = 8;
constexpr std::size_t kBlockSize = 64;

storage::BlockData payload(std::uint8_t tag) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(tag));
}

class ScrubTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  ScrubTest()
      : group_(GetParam(), GroupConfig::majority(kSites, kBlocks, kBlockSize)) {
  }

  /// All sites hold `data` at version `version` for `block` — the state
  /// after a fully replicated write, set up without protocol traffic.
  void seed_block(BlockId block, const storage::BlockData& data,
                  storage::VersionNumber version) {
    for (SiteId site = 0; site < kSites; ++site) {
      ASSERT_TRUE(group_.store(site).write(block, data, version).is_ok());
    }
  }

  ReplicaGroup group_;
};

TEST_P(ScrubTest, StaleCopyHealsWithoutClientAccess) {
  seed_block(3, payload(0x11), 1);
  // Sites 0 and 1 took an update site 2 missed.
  ASSERT_TRUE(group_.store(0).write(3, payload(0x22), 2).is_ok());
  ASSERT_TRUE(group_.store(1).write(3, payload(0x22), 2).is_ok());

  auto report = group_.scrub_site(2);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().stale_healed, 1u);
  EXPECT_TRUE(report.value().cycle_completed);

  auto local = group_.store(2).read(3);
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().version, 2u);
  EXPECT_EQ(local.value().data, payload(0x22));
}

TEST_P(ScrubTest, LatentCorruptionHealsByDigestMajority) {
  seed_block(5, payload(0x33), 4);
  // Site 0's record rotted without touching the version: only the digest
  // exchange can see this.
  ASSERT_TRUE(group_.store(0).write(5, payload(0xBD), 4).is_ok());

  auto report = group_.scrub_site(0);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().corrupt_healed, 1u);

  auto local = group_.store(0).read(5);
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().data, payload(0x33));
  const ScrubStats stats = group_.scrub_stats(0);
  EXPECT_EQ(stats.corrupt_healed, 1u);
  EXPECT_EQ(stats.blocks_scanned, kBlocks);
  EXPECT_EQ(stats.digests_exchanged, kSites - 1);
}

TEST_P(ScrubTest, TwoWaySplitIsAmbiguousAndLeftAlone) {
  // Only one peer is reachable and it disagrees at the same version: a
  // 1-vs-1 vote. Adopting the peer's bytes could destroy the only good
  // copy, so the scrubber must leave the block alone.
  group_.crash_site(2);
  seed_block(1, payload(0x44), 2);
  ASSERT_TRUE(group_.store(1).write(1, payload(0x55), 2).is_ok());

  auto report = group_.scrub_site(0);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().corrupt_healed, 0u);
  EXPECT_EQ(report.value().stale_healed, 0u);
  EXPECT_EQ(group_.scrub_stats(0).ambiguous_mismatches, 1u);
  EXPECT_EQ(group_.store(0).read(1).value().data, payload(0x44));
}

TEST_P(ScrubTest, ForegroundWriteDuringScrubIsNeverDemoted) {
  seed_block(2, payload(0x66), 3);
  ASSERT_TRUE(group_.store(0).write(2, payload(0xBD), 3).is_ok());
  // Between the digest exchange and the heal, a foreground write lands on
  // the very block the exchange flagged as corrupt. The heal must notice
  // the version moved and leave the fresh data untouched.
  group_.scrubber(0).set_preheal_hook([this] {
    ASSERT_TRUE(group_.write(0, 2, payload(0x77)).is_ok());
  });
  auto report = group_.scrub_site(0);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().corrupt_healed, 0u);

  auto local = group_.store(0).read(2);
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().data, payload(0x77));
  EXPECT_EQ(local.value().version, 4u);
}

TEST_P(ScrubTest, ThrottleBudgetIsAccountedDeterministically) {
  // A synthetic clock frozen at one instant: no refill ever happens, so
  // the arithmetic is exact. One cycle scans kBlocks * kBlockSize bytes —
  // precisely the burst — and the second cycle must go into debt.
  ScrubOptions options;
  options.bytes_per_sec = kBlocks * kBlockSize;
  group_.set_scrub_options(options);
  const auto frozen = TokenBucket::Clock::time_point{};
  group_.scrubber(0).set_clock([frozen] { return frozen; });

  ASSERT_TRUE(group_.scrub_site(0).is_ok());
  EXPECT_EQ(group_.scrub_stats(0).throttle_stalls, 0u);
  ASSERT_TRUE(group_.scrub_site(0).is_ok());
  EXPECT_GE(group_.scrub_stats(0).throttle_stalls, 1u);
}

TEST_P(ScrubTest, UnreachablePeerIsSkippedWithBackoff) {
  group_.crash_site(2);
  ASSERT_TRUE(group_.scrub_site(0).is_ok());
  // First cycle probed the dead peer (no skip yet)...
  EXPECT_EQ(group_.scrub_stats(0).peer_unreachable_skips, 0u);
  ASSERT_TRUE(group_.scrub_site(0).is_ok());
  // ...and the second skips it under backoff.
  EXPECT_EQ(group_.scrub_stats(0).peer_unreachable_skips, 1u);
  EXPECT_EQ(group_.scrub_stats(0).digests_exchanged, 2u);  // site 1 twice
}

TEST_P(ScrubTest, SynchronousStepRefusedWhileBackgroundRunning) {
  ScrubOptions options;
  options.cycle_interval = std::chrono::milliseconds(50);
  group_.set_scrub_options(options);
  auto& daemon = group_.scrubber(0);
  daemon.start();
  EXPECT_TRUE(daemon.running());
  EXPECT_EQ(daemon.step().status().code(), ErrorCode::kConflict);
  daemon.stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_TRUE(daemon.step().is_ok());
}

TEST_P(ScrubTest, ConvergenceDriverHealsMixedDivergence) {
  seed_block(0, payload(0x10), 1);
  seed_block(4, payload(0x40), 2);
  seed_block(7, payload(0x70), 5);
  // Stale copy at site 2, rot at site 1, rot at site 0.
  ASSERT_TRUE(group_.store(0).write(0, payload(0x1A), 2).is_ok());
  ASSERT_TRUE(group_.store(1).write(0, payload(0x1A), 2).is_ok());
  ASSERT_TRUE(group_.store(1).write(4, payload(0xBD), 2).is_ok());
  ASSERT_TRUE(group_.store(0).write(7, payload(0xBE), 5).is_ok());

  auto rounds = group_.scrub_until_converged(4);
  ASSERT_TRUE(rounds.is_ok()) << rounds.status().to_string();

  for (BlockId block = 0; block < kBlocks; ++block) {
    auto reference = group_.store(0).read(block);
    ASSERT_TRUE(reference.is_ok());
    for (SiteId site = 1; site < kSites; ++site) {
      auto copy = group_.store(site).read(block);
      ASSERT_TRUE(copy.is_ok());
      EXPECT_EQ(copy.value().version, reference.value().version)
          << "site " << site << " block " << block;
      EXPECT_EQ(copy.value().data, reference.value().data)
          << "site " << site << " block " << block;
    }
  }
  const ScrubStats total = group_.total_scrub_stats();
  EXPECT_GE(total.stale_healed + total.corrupt_healed, 3u);
  EXPECT_NE(format_scrub_stats(total).find("stale-healed="),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ScrubTest,
    ::testing::Values(SchemeKind::kVoting, SchemeKind::kAvailableCopy,
                      SchemeKind::kNaiveAvailableCopy),
    [](const auto& param_info) {
      std::string name = scheme_kind_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// Derive a payload whose first eight bytes come from `seed` (the rest
/// zero) — cheap to regenerate when the birthday search below finds a
/// CRC-32C collision.
storage::BlockData collision_payload(std::uint64_t seed) {
  storage::BlockData data(kBlockSize, std::byte{0});
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
  for (std::size_t i = 0; i < 8; ++i) {
    data[i] = static_cast<std::byte>(x >> (8 * i));
  }
  return data;
}

TEST(ScrubCollisionTest, CollidingDigestsAreUndetectedButHarmless) {
  // Find two distinct payloads with equal CRC-32C by birthday search
  // (expected ~82k draws over a 32-bit digest).
  std::unordered_map<std::uint32_t, std::uint64_t> seen;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> collision;
  for (std::uint64_t seed = 0; seed < (1u << 21); ++seed) {
    const auto digest = storage::scrub_digest(collision_payload(seed));
    auto [it, inserted] = seen.emplace(digest, seed);
    if (!inserted) {
      collision = {it->second, seed};
      break;
    }
  }
  ASSERT_TRUE(collision.has_value()) << "no CRC-32C collision in 2^21 draws";
  const storage::BlockData a = collision_payload(collision->first);
  const storage::BlockData b = collision_payload(collision->second);
  ASSERT_NE(a, b);
  ASSERT_EQ(storage::scrub_digest(a), storage::scrub_digest(b));

  // Same version, colliding digests: the exchange cannot tell the copies
  // apart. The required behavior is stability — no heal, no demotion, no
  // thrash — because the version mechanism still dominates: any later
  // foreground write replaces both copies.
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     GroupConfig::majority(kSites, kBlocks, kBlockSize));
  for (SiteId site = 1; site < kSites; ++site) {
    ASSERT_TRUE(group.store(site).write(6, b, 3).is_ok());
  }
  ASSERT_TRUE(group.store(0).write(6, a, 3).is_ok());

  auto report = group.scrub_site(0);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().stale_healed, 0u);
  EXPECT_EQ(report.value().corrupt_healed, 0u);
  EXPECT_EQ(group.scrub_stats(0).ambiguous_mismatches, 0u);
  EXPECT_EQ(group.store(0).read(6).value().data, a);

  // The escape hatch: a versioned write supersedes the colliding pair.
  ASSERT_TRUE(group.write(1, 6, payload(0x99)).is_ok());
  EXPECT_EQ(group.store(0).read(6).value().data, payload(0x99));
}

TEST(ScrubCursorResumeTest, KillAndRestartResumesMidCycle) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("reldev_scrub_resume_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::create_directories(dir);
  {
    PersistentOptions persist;
    persist.directory = dir.string();
    ReplicaGroup group(SchemeKind::kAvailableCopy,
                       GroupConfig::majority(kSites, kBlocks, kBlockSize),
                       persist);
    ScrubOptions options;
    options.batch_blocks = 2;  // a cycle takes four steps
    group.set_scrub_options(options);

    ASSERT_TRUE(group.scrubber(0).step().is_ok());
    ASSERT_TRUE(group.scrubber(0).step().is_ok());
    EXPECT_EQ(group.scrubber(0).cursor(), 4u);

    group.kill_site(0);
    ASSERT_TRUE(group.restart_site(0).is_ok());
    // The rebuilt daemon loaded the persisted cursor: the next step scans
    // [4, 6), not the start of the device.
    EXPECT_EQ(group.scrubber(0).cursor(), 4u);
    auto report = group.scrubber(0).step();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report.value().scanned, 2u);
    EXPECT_FALSE(report.value().cycle_completed);
    EXPECT_EQ(group.scrubber(0).cursor(), 6u);
  }
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);
}

}  // namespace
}  // namespace reldev::core
