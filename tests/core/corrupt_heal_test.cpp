// Self-healing regression: a block whose LOCAL record rots (CRC mismatch
// at read time) must behave exactly like an out-of-date copy — every
// engine demotes it and refills it from peers, and the damaged bytes are
// never served to a client.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "reldev/core/group.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kSites = 3;
constexpr std::size_t kBlocks = 8;
constexpr std::size_t kBlockSize = 64;

storage::BlockData payload(std::uint8_t tag) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(tag));
}

class CorruptHealTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  CorruptHealTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("reldev_heal_" +
            std::string(scheme_kind_name(GetParam())) + "_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()));
    std::filesystem::create_directories(dir_);
    PersistentOptions persist;
    persist.directory = dir_.string();
    group_.emplace(GetParam(),
                   GroupConfig::majority(kSites, kBlocks, kBlockSize),
                   persist);
  }
  ~CorruptHealTest() override {
    group_.reset();
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  /// Rot `block`'s payload bytes in site's file behind the store's back:
  /// the record header (version + CRC) stays, so the next read of the
  /// block fails its checksum.
  void rot_block(SiteId site, BlockId block) {
    auto& inner = group_->crash_points(site).inner();
    const storage::BlockData junk(16, std::byte{0xBD});
    ASSERT_TRUE(inner
                    .raw_write_at(inner.block_record_offset(block) +
                                      storage::FileBlockStore::
                                          kBlockRecordHeader,
                                  junk)
                    .is_ok());
  }

  std::filesystem::path dir_;
  std::optional<ReplicaGroup> group_;
};

TEST_P(CorruptHealTest, CorruptLocalReadHealsFromPeers) {
  // Establish a replicated value everybody holds.
  ASSERT_TRUE(group_->write(0, 3, payload(0x11)).is_ok());
  ASSERT_TRUE(group_->write(0, 3, payload(0x22)).is_ok());
  for (SiteId site = 0; site < kSites; ++site) {
    ASSERT_TRUE(group_->sync_site(site).is_ok());
  }
  rot_block(0, 3);
  // Raw store read through site 0 now fails its CRC...
  EXPECT_EQ(group_->store(0).read(3).status().code(), ErrorCode::kCorruption);
  // ...but the protocol read must heal from the peers and serve the data.
  auto healed = group_->read(0, 3);
  ASSERT_TRUE(healed.is_ok()) << healed.status().to_string();
  EXPECT_EQ(healed.value(), payload(0x22));
  // The local copy was repaired in place: version restored, raw read fine.
  auto local = group_->store(0).read(3);
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().version, 2u);
  EXPECT_EQ(local.value().data, payload(0x22));
}

TEST_P(CorruptHealTest, CorruptBlockNeverServedToPeers) {
  ASSERT_TRUE(group_->write(0, 5, payload(0x33)).is_ok());
  rot_block(1, 5);
  // A read through the damaged site must still produce the good bytes
  // (healed locally or served from an intact copy) — never the junk.
  auto via_damaged = group_->read(1, 5);
  ASSERT_TRUE(via_damaged.is_ok()) << via_damaged.status().to_string();
  EXPECT_EQ(via_damaged.value(), payload(0x33));
  // And reads through the intact sites are unaffected.
  auto via_intact = group_->read(2, 5);
  ASSERT_TRUE(via_intact.is_ok());
  EXPECT_EQ(via_intact.value(), payload(0x33));
}

TEST_P(CorruptHealTest, VectoredReadHealsCorruptBlockInRange) {
  const storage::BlockData one = payload(0x44);
  storage::BlockData range;
  for (int i = 0; i < 4; ++i) {
    range.insert(range.end(), one.begin(), one.end());
  }
  ASSERT_TRUE(group_->write_range(0, 2, range).is_ok());
  rot_block(0, 4);  // inside the [2, 6) range
  auto data = group_->read_range(0, 2, 4);
  ASSERT_TRUE(data.is_ok()) << data.status().to_string();
  EXPECT_EQ(data.value(), range);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, CorruptHealTest,
    ::testing::Values(SchemeKind::kVoting, SchemeKind::kAvailableCopy,
                      SchemeKind::kNaiveAvailableCopy),
    [](const auto& param_info) {
      std::string name = scheme_kind_name(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace reldev::core
