// Concurrent use of one DriverStub: the stub's retry bookkeeping (policy,
// jitter stream, sticky-scan cursor, failure detail) is mutex-guarded, but
// transport calls and backoff sleeps run unlocked, so operations from many
// user processes proceed in parallel — the paper's Figure 1 has several
// processes sharing one device driver. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reldev/core/driver_stub.hpp"
#include "reldev/core/group.hpp"
#include "reldev/net/transport.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::core {
namespace {

constexpr SiteId kClientId = 100;

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

/// Serializes a transport (and, via exclusive(), group administration)
/// behind one mutex. The in-process replicas are single-threaded engines —
/// in a real deployment each site is its own process and the TCP server
/// serializes per connection — so concurrent stub threads must not enter
/// them simultaneously. The DriverStub under test stays fully concurrent;
/// only the fake "network" is serialized.
class SerializingTransport final : public net::Transport {
 public:
  explicit SerializingTransport(net::Transport& inner) : inner_(inner) {}

  [[nodiscard]] Result<net::Message> call(SiteId from, SiteId to,
                                          const net::Message& request) override
      RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return inner_.call(from, to, request);
  }
  [[nodiscard]] Status send(SiteId from, SiteId to,
                            const net::Message& message) override
      RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return inner_.send(from, to, message);
  }
  [[nodiscard]] Status multicast(SiteId from, const net::SiteSet& to,
                                 const net::Message& message) override
      RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return inner_.multicast(from, to, message);
  }
  std::vector<net::GatherReply> multicast_call(
      SiteId from, const net::SiteSet& to, const net::Message& request,
      const net::EarlyStop& early_stop) override RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return inner_.multicast_call(from, to, request, early_stop);
  }

  /// Run group administration (crashes, recoveries) mutually excluded
  /// with in-flight calls.
  template <typename Fn>
  void exclusive(Fn&& fn) RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    fn();
  }

 private:
  Mutex mutex_;
  net::Transport& inner_;
};

class DriverStubConcurrencyTest : public ::testing::Test {
 protected:
  DriverStubConcurrencyTest()
      : group_(SchemeKind::kAvailableCopy, GroupConfig::majority(3, 16, 64)),
        transport_(group_.transport()) {}
  ReplicaGroup group_;
  SerializingTransport transport_;
};

TEST_F(DriverStubConcurrencyTest, ParallelOperationsOnDistinctBlocks) {
  auto stub =
      DriverStub::connect(transport_, kClientId, {0, 1, 2}).value();

  constexpr int kThreads = 4;
  constexpr int kRoundsPerThread = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns its block, so its read must always see its own
      // last write regardless of interleaving with the other threads.
      const auto block = static_cast<storage::BlockId>(t);
      const auto data = payload(64, static_cast<std::uint8_t>(0x10 + t));
      for (int round = 0; round < kRoundsPerThread; ++round) {
        if (!stub.write_block(block, data).is_ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto read = stub.read_block(block);
        if (!read.is_ok() || read.value() != data) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // The bookkeeping settled on a valid server.
  EXPECT_LT(stub.last_server(), 3u);
}

TEST_F(DriverStubConcurrencyTest, PolicyUpdatesRaceSafelyWithOperations) {
  auto stub =
      DriverStub::connect(transport_, kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 0x77);
  ASSERT_TRUE(stub.write_block(0, data).is_ok());

  RetryPolicy fast;
  fast.max_rounds = 2;
  fast.initial_backoff = std::chrono::milliseconds{1};

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread tuner([&] {
    // Toggle the policy and poll the accessors while operations run:
    // every accessor returns a coherent snapshot, never a half-written
    // struct (TSan would flag the old unguarded layout here).
    bool use_fast = true;
    while (!done.load()) {
      stub.set_retry_policy(use_fast ? fast : RetryPolicy{});
      use_fast = !use_fast;
      const auto policy = stub.retry_policy();
      if (policy.max_rounds != 2 && policy.max_rounds != 3) {
        failures.fetch_add(1);
      }
      (void)stub.last_failure();
      (void)stub.last_server();
    }
  });
  for (int round = 0; round < 60; ++round) {
    auto read = stub.read_block(0);
    if (!read.is_ok() || read.value() != data) failures.fetch_add(1);
  }
  done.store(true);
  tuner.join();

  EXPECT_EQ(failures.load(), 0);
}

TEST_F(DriverStubConcurrencyTest, ConcurrentFailoverKeepsServing) {
  auto stub =
      DriverStub::connect(transport_, kClientId, {0, 1, 2}).value();
  const auto data = payload(64, 0x33);
  ASSERT_TRUE(stub.write_block(5, data).is_ok());

  // Crash the sticky server while readers are mid-stream: every reader
  // either rides the failover to another available copy or (briefly)
  // observes kUnavailable — never a wrong answer.
  constexpr int kThreads = 3;
  std::atomic<int> wrong{0};
  std::atomic<int> served{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < 40; ++round) {
        auto read = stub.read_block(5);
        if (read.is_ok()) {
          served.fetch_add(1);
          if (read.value() != data) wrong.fetch_add(1);
        }
      }
    });
  }
  transport_.exclusive([&] { group_.crash_site(0); });
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(served.load(), 0);
}

}  // namespace
}  // namespace reldev::core
