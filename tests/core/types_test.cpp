#include "reldev/core/types.hpp"

#include <gtest/gtest.h>

namespace reldev::core {
namespace {

TEST(GroupConfigTest, MajorityOddGroup) {
  const auto config = GroupConfig::majority(5, 100);
  EXPECT_EQ(config.site_count(), 5u);
  EXPECT_EQ(config.total_weight(), 5000u);
  EXPECT_EQ(config.read_quorum_millivotes, 2501u);
  EXPECT_EQ(config.write_quorum_millivotes, 2501u);
  // 3 of 5 sites reach the quorum, 2 do not.
  EXPECT_GE(3u * 1000u, config.read_quorum_millivotes - 1);
  EXPECT_LT(2u * 1000u, config.read_quorum_millivotes);
}

TEST(GroupConfigTest, MajorityEvenGroupHasEpsilon) {
  // §4.1: even groups get one perturbed weight so draws resolve.
  const auto config = GroupConfig::majority(6, 100);
  EXPECT_EQ(config.weight_of(0), 1001u);
  EXPECT_EQ(config.weight_of(1), 1000u);
  EXPECT_EQ(config.total_weight(), 6001u);
  // Half the sites including the heavy one: quorum; without it: no quorum.
  const std::uint64_t with_heavy = 1001 + 1000 + 1000;
  const std::uint64_t without_heavy = 1000 * 3;
  EXPECT_GE(with_heavy, config.read_quorum_millivotes);
  EXPECT_LT(without_heavy, config.read_quorum_millivotes);
}

TEST(GroupConfigTest, SingleSiteGroupIsValid) {
  const auto config = GroupConfig::majority(1, 10);
  EXPECT_EQ(config.read_quorum_millivotes, 501u);
  config.validate();
}

TEST(GroupConfigTest, AllSites) {
  const auto config = GroupConfig::majority(3, 10);
  EXPECT_EQ(config.all_sites(), (SiteSet{0, 1, 2}));
}

TEST(GroupConfigTest, QuorumIntersectionInvariantEnforced) {
  GroupConfig config = GroupConfig::majority(3, 10);
  // r + w must exceed the total: a read quorum of 1 vote with a majority
  // write quorum violates nothing... but r+w = 1000+1501 < 3001 does.
  config.read_quorum_millivotes = 1000;
  EXPECT_THROW(config.validate(), reldev::ContractViolation);
}

TEST(GroupConfigTest, WriteWriteIntersectionEnforced) {
  GroupConfig config = GroupConfig::majority(3, 10);
  config.write_quorum_millivotes = 1500;  // 2w = 3000 <= 3000
  config.read_quorum_millivotes = 3000;   // keep r+w > total satisfied
  EXPECT_THROW(config.validate(), reldev::ContractViolation);
}

TEST(GroupConfigTest, CustomAsymmetricQuorumsAllowed) {
  // Read-one/write-all (within voting's constraints): r=1 vote more than
  // total-w. E.g. total=3000, w=3000, r=1 -> r+w=3001 > 3000, 2w > total.
  GroupConfig config;
  config.block_count = 4;
  config.block_size = 64;
  config.weights_millivotes = {1000, 1000, 1000};
  config.write_quorum_millivotes = 3000;
  config.read_quorum_millivotes = 1;
  config.validate();
}

TEST(GroupConfigTest, EmptyGroupRejected) {
  GroupConfig config;
  config.block_count = 1;
  config.block_size = 64;
  EXPECT_THROW(config.validate(), reldev::ContractViolation);
}

TEST(GroupConfigTest, WeightOfOutOfRange) {
  const auto config = GroupConfig::majority(2, 10);
  EXPECT_THROW((void)config.weight_of(2), reldev::ContractViolation);
}

// Property sweep: for every group size, any majority-by-weight subset
// intersects any other — the foundation of voting's correctness.
class QuorumIntersection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuorumIntersection, AnyTwoQuorumsShareASite) {
  const std::size_t n = GetParam();
  const auto config = GroupConfig::majority(n, 10);
  const std::uint64_t total = config.total_weight();

  // Enumerate all subsets (n <= 10 keeps this cheap) reaching the quorum;
  // verify every pair of write quorums intersects, and every read/write
  // pair intersects.
  std::vector<std::uint32_t> quorums;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::uint64_t weight = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if ((mask >> s) & 1u) weight += config.weight_of(static_cast<SiteId>(s));
    }
    if (weight >= config.write_quorum_millivotes) quorums.push_back(mask);
    EXPECT_EQ(weight >= config.write_quorum_millivotes, 2 * weight > total)
        << "quorum rule must be exactly 'strict majority' for mask " << mask;
  }
  for (const auto a : quorums) {
    for (const auto b : quorums) {
      EXPECT_NE(a & b, 0u) << "disjoint quorums " << a << " and " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, QuorumIntersection,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace reldev::core
