#include "reldev/core/closure.hpp"

#include <gtest/gtest.h>

namespace reldev::core {
namespace {

TEST(ClosureTest, EmptyKnowledgeReturnsSeed) {
  EXPECT_EQ(closure(SiteSet{1, 2}, {}), (SiteSet{1, 2}));
}

TEST(ClosureTest, DirectExpansion) {
  WasAvailableMap known{{1, SiteSet{1, 3}}};
  EXPECT_EQ(closure(SiteSet{1}, known), (SiteSet{1, 3}));
}

TEST(ClosureTest, TransitiveExpansion) {
  // 0 knows {0,1}; 1 knows {1,2}; 2 knows {2,3}: closure of {0} is all.
  WasAvailableMap known{
      {0, SiteSet{0, 1}}, {1, SiteSet{1, 2}}, {2, SiteSet{2, 3}}};
  EXPECT_EQ(closure(SiteSet{0}, known), (SiteSet{0, 1, 2, 3}));
}

TEST(ClosureTest, UnknownMembersStayInResult) {
  WasAvailableMap known{{0, SiteSet{0, 5}}};
  const SiteSet result = closure(SiteSet{0}, known);
  EXPECT_TRUE(result.contains(5));  // 5 has no known W but is a member
}

TEST(ClosureTest, Idempotent) {
  WasAvailableMap known{{0, SiteSet{0, 1}}, {1, SiteSet{0, 1, 2}},
                        {2, SiteSet{2}}};
  const SiteSet once = closure(SiteSet{0}, known);
  EXPECT_EQ(closure(once, known), once);
}

TEST(ClosureTest, MonotoneInSeed) {
  WasAvailableMap known{{0, SiteSet{0, 1}}, {2, SiteSet{2, 3}}};
  const SiteSet small = closure(SiteSet{0}, known);
  const SiteSet large = closure(SiteSet{0, 2}, known);
  for (const SiteId member : small) EXPECT_TRUE(large.contains(member));
}

TEST(ClosureTest, MonotoneInKnowledge) {
  const SiteSet seed{0};
  WasAvailableMap less{{0, SiteSet{0, 1}}};
  WasAvailableMap more = less;
  more[1] = SiteSet{1, 2};
  const SiteSet small = closure(seed, less);
  const SiteSet large = closure(seed, more);
  for (const SiteId member : small) EXPECT_TRUE(large.contains(member));
  EXPECT_TRUE(large.contains(2));
}

TEST(ClosureRecoveredTest, TrueWhenEveryMemberKnown) {
  WasAvailableMap known{{0, SiteSet{0, 1}}, {1, SiteSet{0, 1}}};
  EXPECT_TRUE(closure_recovered(SiteSet{0}, known));
}

TEST(ClosureRecoveredTest, FalseWhenAMemberIsStillDown) {
  WasAvailableMap known{{0, SiteSet{0, 1}}};  // 1 has not reported
  EXPECT_FALSE(closure_recovered(SiteSet{0}, known));
}

TEST(ClosureRecoveredTest, FalseWhenExpansionRevealsDownSite) {
  // All of the seed is known, but chasing W sets reaches site 2 which is
  // not recovered yet.
  WasAvailableMap known{{0, SiteSet{0, 1}}, {1, SiteSet{1, 2}}};
  EXPECT_FALSE(closure_recovered(SiteSet{0}, known));
}

TEST(ClosureRecoveredTest, SelfOnlySeed) {
  WasAvailableMap known{{3, SiteSet{3}}};
  EXPECT_TRUE(closure_recovered(SiteSet{3}, known));
}

TEST(ClosureTest, CyclicSetsTerminate) {
  WasAvailableMap known{{0, SiteSet{1}}, {1, SiteSet{0}}};
  EXPECT_EQ(closure(SiteSet{0}, known), (SiteSet{0, 1}));
  EXPECT_TRUE(closure_recovered(SiteSet{0}, known));
}

}  // namespace
}  // namespace reldev::core
