#include "reldev/core/voting_replica.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "reldev/core/group.hpp"
#include "reldev/net/inproc_transport.hpp"
#include "reldev/storage/mem_block_store.hpp"

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  storage::BlockData data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return data;
}

class VotingTest : public ::testing::Test {
 protected:
  VotingTest()
      : group_(SchemeKind::kVoting, GroupConfig::majority(5, 8, 64)) {}
  ReplicaGroup group_;
};

TEST_F(VotingTest, WriteThenReadThroughAnySite) {
  const auto data = payload(64, 1);
  ASSERT_TRUE(group_.write(0, 3, data).is_ok());
  for (SiteId site = 0; site < 5; ++site) {
    auto read = group_.read(site, 3);
    ASSERT_TRUE(read.is_ok()) << "site " << site;
    EXPECT_EQ(read.value(), data);
  }
}

TEST_F(VotingTest, WritePropagatesToQuorumSites) {
  ASSERT_TRUE(group_.write(0, 0, payload(64, 2)).is_ok());
  // All five sites were reachable, so all hold version 1.
  for (SiteId site = 0; site < 5; ++site) {
    EXPECT_EQ(group_.store(site).version_of(0).value(), 1u);
  }
}

TEST_F(VotingTest, VersionsIncrementPerWrite) {
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(group_.write(0, 0, payload(64, static_cast<std::uint8_t>(i)))
                    .is_ok());
    EXPECT_EQ(group_.store(0).version_of(0).value(),
              static_cast<storage::VersionNumber>(i));
  }
}

TEST_F(VotingTest, MinorityCannotWrite) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  const auto status = group_.write(3, 0, payload(64, 3));
  EXPECT_EQ(status.code(), reldev::ErrorCode::kUnavailable);
}

TEST_F(VotingTest, MinorityCannotRead) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  EXPECT_EQ(group_.read(4, 0).status().code(),
            reldev::ErrorCode::kUnavailable);
}

TEST_F(VotingTest, BareMajorityServes) {
  group_.crash_site(3);
  group_.crash_site(4);
  const auto data = payload(64, 4);
  ASSERT_TRUE(group_.write(0, 2, data).is_ok());
  EXPECT_EQ(group_.read(1, 2).value(), data);
}

TEST_F(VotingTest, StaleSiteRefreshesOnRead) {
  // Site 4 misses a write, then the read through it must fetch the newer
  // version from the quorum (lazy per-block repair, Figure 3).
  group_.crash_site(4);
  const auto data = payload(64, 5);
  ASSERT_TRUE(group_.write(0, 1, data).is_ok());
  ASSERT_TRUE(group_.recover_site(4).is_ok());
  EXPECT_EQ(group_.store(4).version_of(1).value(), 0u);  // still stale
  auto read = group_.read(4, 1);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value(), data);
  // The lazy repair wrote the block locally.
  EXPECT_EQ(group_.store(4).version_of(1).value(), 1u);
}

TEST_F(VotingTest, StaleSiteRepairedOnWriteBySideEffect) {
  group_.crash_site(4);
  ASSERT_TRUE(group_.write(0, 1, payload(64, 6)).is_ok());
  ASSERT_TRUE(group_.recover_site(4).is_ok());
  // A write through another site pushes the new version to all reachable
  // sites, including the stale one (Figure 4 repairs en passant).
  const auto data = payload(64, 7);
  ASSERT_TRUE(group_.write(0, 1, data).is_ok());
  EXPECT_EQ(group_.store(4).version_of(1).value(), 2u);
  EXPECT_EQ(group_.store(4).read(1).value().data, data);
}

TEST_F(VotingTest, RecoveryIsImmediateAndFree) {
  group_.crash_site(2);
  EXPECT_EQ(group_.replica(2).state(), SiteState::kFailed);
  group_.meter().reset();
  ASSERT_TRUE(group_.recover_site(2).is_ok());
  EXPECT_EQ(group_.replica(2).state(), SiteState::kAvailable);
  // §5: block-level voting incurs no traffic upon recovery.
  EXPECT_EQ(group_.meter().total(), 0u);
}

TEST_F(VotingTest, OnlyLatestVersionWinsAfterPartialWrites) {
  // Write v1 with all sites up, v2 with sites {0,1,2}; a read through a
  // stale site must return v2.
  const auto v1 = payload(64, 8);
  const auto v2 = payload(64, 9);
  ASSERT_TRUE(group_.write(0, 5, v1).is_ok());
  group_.crash_site(3);
  group_.crash_site(4);
  ASSERT_TRUE(group_.write(0, 5, v2).is_ok());
  ASSERT_TRUE(group_.recover_site(3).is_ok());
  ASSERT_TRUE(group_.recover_site(4).is_ok());
  EXPECT_EQ(group_.read(4, 5).value(), v2);
}

TEST_F(VotingTest, EarlyQuorumReadStillSeesNewestVersion) {
  // Reads stop gathering votes at the read quorum. Write v2 to quorum
  // {0,3,4} while {1,2} are down; a later read through site 1 assembles
  // its early quorum from the lowest site ids — {1,0,2}, which contains
  // stale site 2 — yet must still find and fetch v2, because every read
  // quorum intersects the write quorum that accepted v2.
  const auto v1 = payload(64, 10);
  const auto v2 = payload(64, 11);
  ASSERT_TRUE(group_.write(0, 2, v1).is_ok());
  group_.crash_site(1);
  group_.crash_site(2);
  ASSERT_TRUE(group_.write(0, 2, v2).is_ok());
  ASSERT_TRUE(group_.recover_site(1).is_ok());
  ASSERT_TRUE(group_.recover_site(2).is_ok());
  EXPECT_EQ(group_.read(1, 2).value(), v2);
  // The read-repair refreshed site 1's copy to v2 as well.
  EXPECT_EQ(group_.store(1).version_of(2).value(), 2u);
}

TEST_F(VotingTest, EvenGroupTieBreaks) {
  // Six sites; exactly the half containing the heavy site 0 is up.
  ReplicaGroup even(SchemeKind::kVoting, GroupConfig::majority(6, 4, 64));
  even.crash_site(3);
  even.crash_site(4);
  even.crash_site(5);
  EXPECT_TRUE(even.write(0, 0, payload(64, 1)).is_ok());
  // Now the half without the heavy site: no quorum.
  ReplicaGroup even2(SchemeKind::kVoting, GroupConfig::majority(6, 4, 64));
  even2.crash_site(0);
  even2.crash_site(1);
  even2.crash_site(2);
  EXPECT_EQ(even2.write(3, 0, payload(64, 1)).code(),
            reldev::ErrorCode::kUnavailable);
}

TEST_F(VotingTest, InvalidArgumentsRejected) {
  EXPECT_EQ(group_.write(0, 99, payload(64, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(group_.write(0, 0, payload(63, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(group_.read(0, 99).status().code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(VotingTest, MulticastWriteTrafficMatchesPaper) {
  // §5.1 with every site up: a write costs 1 (vote query) + (n-1) replies
  // + 1 (block update broadcast) = n + 1 transmissions.
  group_.meter().reset();
  group_.meter().set_current_op(net::OpKind::kWrite);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 1)).is_ok());
  EXPECT_EQ(group_.meter().count(net::OpKind::kWrite), 6u);
}

TEST_F(VotingTest, MulticastReadTrafficMatchesPaper) {
  // A read with the local copy current: 1 query + (n-1) replies = n.
  ASSERT_TRUE(group_.write(0, 0, payload(64, 1)).is_ok());
  group_.meter().reset();
  group_.meter().set_current_op(net::OpKind::kRead);
  ASSERT_TRUE(group_.read(0, 0).is_ok());
  EXPECT_EQ(group_.meter().count(net::OpKind::kRead), 5u);
}

TEST_F(VotingTest, RangeWriteReadRoundTrip) {
  const auto contents = payload(4 * 64, 11);
  ASSERT_TRUE(group_.write_range(0, 2, contents).is_ok());
  for (SiteId site = 0; site < 5; ++site) {
    EXPECT_EQ(group_.read_range(site, 2, 4).value(), contents) << "site "
                                                               << site;
  }
  // The batch landed block by block with per-block versions.
  for (SiteId site = 0; site < 5; ++site) {
    for (storage::BlockId b = 2; b < 6; ++b) {
      EXPECT_EQ(group_.store(site).version_of(b).value(), 1u);
    }
  }
}

TEST_F(VotingTest, RangeWriteCostsOneQuorumRound) {
  // Scalar loop: k writes at n + 1 = 6 transmissions each (§5.1).
  group_.meter().reset();
  for (storage::BlockId b = 0; b < 4; ++b) {
    ASSERT_TRUE(group_.write(0, b, payload(64, 1)).is_ok());
  }
  const auto scalar_cost = group_.meter().total();
  EXPECT_EQ(scalar_cost, 24u);
  // Vectored: ONE vote round (1 query + 4 replies) and ONE acked grouped
  // push (1 multicast + 4 acks) for the whole range.
  group_.meter().reset();
  ASSERT_TRUE(group_.write_range(0, 0, payload(4 * 64, 2)).is_ok());
  EXPECT_EQ(group_.meter().total(), 10u);
}

TEST_F(VotingTest, RangeReadCostsOneVoteRound) {
  ASSERT_TRUE(group_.write_range(0, 0, payload(4 * 64, 3)).is_ok());
  // Scalar loop: k current-copy reads at n transmissions each.
  group_.meter().reset();
  for (storage::BlockId b = 0; b < 4; ++b) {
    ASSERT_TRUE(group_.read(0, b).is_ok());
  }
  const auto scalar_cost = group_.meter().total();
  EXPECT_EQ(scalar_cost, 20u);
  // Vectored: one range vote round covers every block.
  group_.meter().reset();
  ASSERT_TRUE(group_.read_range(0, 0, 4).is_ok());
  EXPECT_EQ(group_.meter().total(), 5u);
}

TEST_F(VotingTest, RangeReadRepairsStaleSiteInOneFetch) {
  // Site 4 misses a range write, then serves a range read: every stale
  // block must be repaired via one grouped fetch and the read must return
  // current data.
  group_.transport().set_partition_group(4, 1);
  const auto contents = payload(3 * 64, 7);
  ASSERT_TRUE(group_.write_range(0, 0, contents).is_ok());
  group_.transport().clear_partitions();
  EXPECT_EQ(group_.read_range(4, 0, 3).value(), contents);
  for (storage::BlockId b = 0; b < 3; ++b) {
    EXPECT_EQ(group_.store(4).version_of(b).value(), 1u);
  }
}

TEST_F(VotingTest, RangeWriteWithoutQuorumMutatesNothing) {
  const auto before = payload(64, 3);
  ASSERT_TRUE(group_.write(0, 1, before).is_ok());
  group_.crash_site(2);
  group_.crash_site(3);
  group_.crash_site(4);  // sites {0, 1} hold 2 of 5 votes: no write quorum
  EXPECT_EQ(group_.write_range(0, 0, payload(4 * 64, 9)).code(),
            reldev::ErrorCode::kUnavailable);
  // Atomic-none: the quorum check precedes any local mutation, so not a
  // single block of the range was touched.
  EXPECT_EQ(group_.store(0).version_of(0).value(), 0u);
  EXPECT_EQ(group_.store(0).version_of(1).value(), 1u);
  EXPECT_EQ(group_.store(0).read(1).value().data, before);
}

TEST_F(VotingTest, RangeArgumentsValidated) {
  EXPECT_EQ(group_.write_range(0, 6, payload(3 * 64, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(group_.write_range(0, 0, payload(63, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(group_.read_range(0, 0, 0).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(group_.read_range(0, 7, 2).status().code(),
            reldev::ErrorCode::kInvalidArgument);
}

/// Fault injection for the mid-batch window: forwards everything to the
/// inner in-process transport, but the moment a write-access range vote
/// round completes it fail-stops the victim sites — exactly between the
/// vote round and the grouped push.
class VoteThenCrashTransport final : public net::Transport {
 public:
  VoteThenCrashTransport(net::InProcTransport& inner,
                         std::vector<SiteId> victims)
      : inner_(inner), victims_(std::move(victims)) {}

  /// The next completed write-range vote round triggers the crash.
  void arm() { armed_ = true; }

  Result<net::Message> call(SiteId from, SiteId to,
                            const net::Message& request) override {
    return inner_.call(from, to, request);
  }
  Status send(SiteId from, SiteId to, const net::Message& message) override {
    return inner_.send(from, to, message);
  }
  Status multicast(SiteId from, const SiteSet& to,
                   const net::Message& message) override {
    return inner_.multicast(from, to, message);
  }
  std::vector<net::GatherReply> multicast_call(
      SiteId from, const SiteSet& to, const net::Message& request,
      const net::EarlyStop& early_stop) override {
    auto replies = inner_.multicast_call(from, to, request, early_stop);
    if (armed_ && request.holds<net::RangeVoteRequest>() &&
        request.as<net::RangeVoteRequest>().access == net::AccessKind::kWrite) {
      armed_ = false;
      for (const SiteId victim : victims_) inner_.set_up(victim, false);
    }
    return replies;
  }

 private:
  net::InProcTransport& inner_;
  std::vector<SiteId> victims_;
  bool armed_ = false;
};

TEST(VotingMidBatchFaultTest, CrashBetweenVoteAndPushFailsCleanly) {
  // Three sites; both peers die after granting the write-range quorum but
  // before the grouped push arrives. The batch write must report
  // kUnavailable (the push reached no quorum), and once the peers return,
  // readers must see a consistent range — every block old or every block
  // new, never a torn mix.
  const auto config = GroupConfig::majority(3, 8, 64);
  net::InProcTransport inner;
  VoteThenCrashTransport transport(inner, {1, 2});
  std::vector<std::unique_ptr<storage::MemBlockStore>> stores;
  std::vector<std::unique_ptr<VotingReplica>> replicas;
  for (SiteId site = 0; site < 3; ++site) {
    stores.push_back(std::make_unique<storage::MemBlockStore>(8, 64));
    replicas.push_back(
        std::make_unique<VotingReplica>(site, config, *stores.back(),
                                        transport));
    inner.bind(site, replicas.back().get());
  }

  const auto old_data = payload(4 * 64, 1);
  ASSERT_TRUE(replicas[0]->write_range(0, old_data).is_ok());
  const auto new_data = payload(4 * 64, 2);
  transport.arm();
  EXPECT_EQ(replicas[0]->write_range(0, new_data).code(),
            reldev::ErrorCode::kUnavailable);

  // The peers come back; a range read through any site must return one
  // consistent generation for the whole range.
  inner.set_up(1, true);
  inner.set_up(2, true);
  for (SiteId site = 0; site < 3; ++site) {
    auto read = replicas[site]->read_range(0, 4);
    ASSERT_TRUE(read.is_ok()) << "site " << site;
    EXPECT_TRUE(read.value() == old_data || read.value() == new_data)
        << "torn range visible through site " << site;
  }
  // And all sites converge on the same generation.
  EXPECT_EQ(replicas[0]->read_range(0, 4).value(),
            replicas[1]->read_range(0, 4).value());
}

TEST_F(VotingTest, PartitionedMinoritiesStayConsistent) {
  // Voting's selling point: under a partition, at most one side can form
  // a quorum, so no split-brain writes occur.
  const auto before = payload(64, 1);
  ASSERT_TRUE(group_.write(0, 0, before).is_ok());
  group_.transport().set_partition_group(0, 1);
  group_.transport().set_partition_group(1, 1);
  // Partition {0,1} vs {2,3,4}: only the majority side can write.
  EXPECT_EQ(group_.write(0, 0, payload(64, 2)).code(),
            reldev::ErrorCode::kUnavailable);
  ASSERT_TRUE(group_.write(2, 0, payload(64, 3)).is_ok());
  group_.transport().clear_partitions();
  EXPECT_EQ(group_.read(0, 0).value(), payload(64, 3));
}

}  // namespace
}  // namespace reldev::core
