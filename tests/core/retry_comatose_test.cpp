// Edge cases of ReplicaGroup::retry_comatose — the fixpoint pass that
// gives every comatose, reachable replica a chance to finish recovering.
// Covers: a no-op pass (nothing comatose, or comatose but unreachable),
// circular was-available dependencies resolved in one call, and a site
// repaired mid-fixpoint whose recovery unblocks an earlier-scanned site on
// the next pass of the same call.
#include <gtest/gtest.h>

#include "reldev/core/group.hpp"

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

GroupConfig config(std::size_t sites) {
  return GroupConfig::majority(sites, 8, 64);
}

TEST(RetryComatoseTest, NoOpWhenNothingIsComatose) {
  ReplicaGroup group(SchemeKind::kAvailableCopy, config(3));
  EXPECT_EQ(group.retry_comatose(), 0u);
  for (const auto state : group.states()) {
    EXPECT_EQ(state, SiteState::kAvailable);
  }
  // Failed sites are not comatose either: still a no-op.
  group.crash_site(1);
  EXPECT_EQ(group.retry_comatose(), 0u);
  EXPECT_EQ(group.replica(1).state(), SiteState::kFailed);
}

TEST(RetryComatoseTest, SkipsComatoseSitesThatAreUnreachable) {
  ReplicaGroup group(SchemeKind::kAvailableCopy, config(3));
  // Total failure with site 0 last: 1 and 2 must wait for it.
  group.crash_site(2);
  ASSERT_TRUE(group.write(0, 0, payload(64, 1)).is_ok());
  group.crash_site(1);
  ASSERT_TRUE(group.write(0, 0, payload(64, 2)).is_ok());
  group.crash_site(0);
  group.transport().set_up(1, true);
  ASSERT_FALSE(group.replica(1).recover().is_ok());
  ASSERT_EQ(group.replica(1).state(), SiteState::kComatose);
  // The comatose site loses its network again: the fixpoint must not touch
  // it (recover() would otherwise be attempted into a void).
  group.transport().set_up(1, false);
  EXPECT_EQ(group.retry_comatose(), 0u);
  EXPECT_EQ(group.replica(1).state(), SiteState::kComatose);
}

TEST(RetryComatoseTest, CircularWasAvailableSetsResolveTogether) {
  ReplicaGroup group(SchemeKind::kAvailableCopy, config(3));
  const auto data = payload(64, 7);
  // W_0 = W_1 = {0, 1}: each of the pair is the other's recovery witness.
  group.crash_site(2);
  ASSERT_TRUE(group.write(0, 3, data).is_ok());
  group.crash_site(0);
  group.crash_site(1);
  // Both return, but mutually partitioned — neither can see the other, so
  // each waits on the other's unknown was-available set.
  group.transport().set_partition_group(0, 1);
  group.transport().set_partition_group(1, 2);
  group.transport().set_up(0, true);
  ASSERT_FALSE(group.replica(0).recover().is_ok());
  group.transport().set_up(1, true);
  ASSERT_FALSE(group.replica(1).recover().is_ok());
  ASSERT_EQ(group.replica(0).state(), SiteState::kComatose);
  ASSERT_EQ(group.replica(1).state(), SiteState::kComatose);
  // Once they can talk, one fixpoint call untangles the cycle: each finds
  // the other's set known, the closure {0, 1} is covered, both come back.
  group.transport().clear_partitions();
  EXPECT_EQ(group.retry_comatose(), 2u);
  EXPECT_EQ(group.replica(0).state(), SiteState::kAvailable);
  EXPECT_EQ(group.replica(1).state(), SiteState::kAvailable);
  EXPECT_EQ(group.read(0, 3).value(), data);
  EXPECT_EQ(group.read(1, 3).value(), data);
}

TEST(RetryComatoseTest, MidFixpointRecoveryUnblocksEarlierSite) {
  // Site 0 is scanned first but blocked: its closure contains site 3,
  // which never returns. Site 1 recovers in the first pass (its closure
  // {1, 2} is all answering), which makes an available copy exist — the
  // second pass then repairs site 0 from it. One retry_comatose call must
  // recover all three.
  ReplicaGroup group(SchemeKind::kAvailableCopy, config(4));
  const auto data = payload(64, 9);
  group.crash_site(3);  // keeps its initial W = {0,1,2,3}
  group.crash_site(0);  // ditto
  ASSERT_TRUE(group.write(1, 0, data).is_ok());  // W_1 = W_2 = {1, 2}
  group.crash_site(2);
  group.crash_site(1);  // total failure; 1 (or 2) holds the latest data

  group.transport().set_up(0, true);
  ASSERT_FALSE(group.replica(0).recover().is_ok());  // needs 1, 2, 3
  group.transport().set_up(2, true);
  ASSERT_FALSE(group.replica(2).recover().is_ok());  // needs 1
  // Site 1 returns isolated so its own comeback attempt also parks it.
  group.transport().set_partition_group(1, 9);
  group.transport().set_up(1, true);
  ASSERT_FALSE(group.replica(1).recover().is_ok());
  ASSERT_EQ(group.replica(0).state(), SiteState::kComatose);
  ASSERT_EQ(group.replica(1).state(), SiteState::kComatose);
  ASSERT_EQ(group.replica(2).state(), SiteState::kComatose);

  group.transport().clear_partitions();
  EXPECT_EQ(group.retry_comatose(), 3u);
  EXPECT_EQ(group.replica(0).state(), SiteState::kAvailable);
  EXPECT_EQ(group.replica(1).state(), SiteState::kAvailable);
  EXPECT_EQ(group.replica(2).state(), SiteState::kAvailable);
  EXPECT_EQ(group.replica(3).state(), SiteState::kFailed);
  // The blocked site really took the repair: it reads the sealed write.
  EXPECT_EQ(group.read(0, 0).value(), data);
}

TEST(RetryComatoseTest, LastFailedSiteReturnUnblocksTheRest) {
  ReplicaGroup group(SchemeKind::kAvailableCopy, config(3));
  const auto data = payload(64, 5);
  group.crash_site(2);
  ASSERT_TRUE(group.write(0, 1, payload(64, 4)).is_ok());
  group.crash_site(1);
  ASSERT_TRUE(group.write(0, 1, data).is_ok());  // W_0 = {0}
  group.crash_site(0);
  group.transport().set_up(2, true);
  ASSERT_FALSE(group.replica(2).recover().is_ok());
  group.transport().set_up(1, true);
  ASSERT_FALSE(group.replica(1).recover().is_ok());
  // The site that failed last recovers by itself; the fixpoint then pulls
  // the two waiting sites through in the same call.
  group.transport().set_up(0, true);
  ASSERT_TRUE(group.replica(0).recover().is_ok());
  EXPECT_EQ(group.retry_comatose(), 2u);
  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(group.replica(site).state(), SiteState::kAvailable);
    EXPECT_EQ(group.read(site, 1).value(), data);
  }
  // Idempotent: a second pass finds nothing left to do.
  EXPECT_EQ(group.retry_comatose(), 0u);
}

}  // namespace
}  // namespace reldev::core
