#include "reldev/core/naive_replica.hpp"

#include <gtest/gtest.h>

#include "reldev/core/group.hpp"

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  storage::BlockData data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed * 11 + i) & 0xff);
  }
  return data;
}

class NaiveTest : public ::testing::Test {
 protected:
  NaiveTest()
      : group_(SchemeKind::kNaiveAvailableCopy,
               GroupConfig::majority(3, 8, 64)) {}
  ReplicaGroup group_;
};

TEST_F(NaiveTest, WriteReachesAllAvailableCopies) {
  const auto data = payload(64, 1);
  ASSERT_TRUE(group_.write(1, 2, data).is_ok());
  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(group_.store(site).read(2).value().data, data);
  }
}

TEST_F(NaiveTest, WriteCostsExactlyOneTransmission) {
  // §5.1: the naive scheme's whole advantage — one multicast, no acks.
  group_.meter().reset();
  group_.meter().set_current_op(net::OpKind::kWrite);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 2)).is_ok());
  EXPECT_EQ(group_.meter().count(net::OpKind::kWrite), 1u);
}

TEST_F(NaiveTest, WriteCostsNMinusOneUnderUniqueAddressing) {
  ReplicaGroup unique(SchemeKind::kNaiveAvailableCopy,
                      GroupConfig::majority(4, 4, 64),
                      net::AddressingMode::kUnique);
  unique.meter().reset();
  unique.meter().set_current_op(net::OpKind::kWrite);
  ASSERT_TRUE(unique.write(0, 0, payload(64, 1)).is_ok());
  EXPECT_EQ(unique.meter().count(net::OpKind::kWrite), 3u);
}

TEST_F(NaiveTest, ReadIsLocalAndFree) {
  ASSERT_TRUE(group_.write(0, 1, payload(64, 3)).is_ok());
  group_.meter().reset();
  ASSERT_TRUE(group_.read(2, 1).is_ok());
  EXPECT_EQ(group_.meter().total(), 0u);
}

TEST_F(NaiveTest, SurvivesAllButOneFailure) {
  group_.crash_site(1);
  group_.crash_site(2);
  const auto data = payload(64, 4);
  ASSERT_TRUE(group_.write(0, 4, data).is_ok());
  EXPECT_EQ(group_.read(0, 4).value(), data);
}

TEST_F(NaiveTest, RepairFromAvailableSite) {
  group_.crash_site(2);
  const auto data = payload(64, 5);
  ASSERT_TRUE(group_.write(0, 3, data).is_ok());
  ASSERT_TRUE(group_.recover_site(2).is_ok());
  EXPECT_EQ(group_.replica(2).state(), SiteState::kAvailable);
  EXPECT_EQ(group_.store(2).read(3).value().data, data);
}

TEST_F(NaiveTest, TotalFailureWaitsForEverySite) {
  // Fail in order 2, 1, 0 — even though 0 failed last and could (under
  // conventional AC) restore service alone, the naive scheme must wait
  // for all three sites (§3.3, Figure 6).
  group_.crash_site(2);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 6)).is_ok());
  group_.crash_site(1);
  const auto final_data = payload(64, 7);
  ASSERT_TRUE(group_.write(0, 1, final_data).is_ok());
  group_.crash_site(0);

  // Even the last-failed site cannot recover alone.
  group_.transport().set_up(0, true);
  EXPECT_EQ(group_.replica(0).recover().code(),
            reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(group_.replica(0).state(), SiteState::kComatose);
  EXPECT_FALSE(group_.group_available());

  group_.transport().set_up(1, true);
  EXPECT_EQ(group_.replica(1).recover().code(),
            reldev::ErrorCode::kUnavailable);

  // The third site completes the set; everyone recovers to the highest
  // version.
  ASSERT_TRUE(group_.recover_site(2).is_ok());
  group_.retry_comatose();
  for (SiteId site = 0; site < 3; ++site) {
    ASSERT_EQ(group_.replica(site).state(), SiteState::kAvailable);
    EXPECT_EQ(group_.read(site, 1).value(), final_data);
  }
}

TEST_F(NaiveTest, HighestVersionWinsAfterTotalFailure) {
  // Site 0 holds the most writes when everything goes down; whatever the
  // recovery order, its state must win.
  group_.crash_site(1);
  group_.crash_site(2);
  const auto data = payload(64, 8);
  ASSERT_TRUE(group_.write(0, 5, data).is_ok());
  ASSERT_TRUE(group_.write(0, 6, data).is_ok());
  group_.crash_site(0);

  group_.transport().set_up(1, true);
  (void)group_.replica(1).recover();
  group_.transport().set_up(2, true);
  (void)group_.replica(2).recover();
  ASSERT_TRUE(group_.recover_site(0).is_ok());
  group_.retry_comatose();

  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(group_.read(site, 5).value(), data) << "site " << site;
    EXPECT_EQ(group_.read(site, 6).value(), data) << "site " << site;
  }
}

TEST_F(NaiveTest, ComatoseCopyIgnoresWritePushes) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  group_.transport().set_up(2, true);
  (void)group_.replica(2).recover();  // stays comatose (waiting for all)
  ASSERT_EQ(group_.replica(2).state(), SiteState::kComatose);
  // No available coordinator exists, so no write can even start; verify
  // the defensive path directly: a push delivered to a comatose site is
  // dropped.
  group_.replica(2).handle_oneway(net::Message{
      0, net::WriteAllRequest{0, 99, payload(64, 9), {}}});
  EXPECT_EQ(group_.store(2).version_of(0).value(), 0u);
}

TEST_F(NaiveTest, StalePushIsIgnored) {
  ASSERT_TRUE(group_.write(0, 0, payload(64, 1)).is_ok());
  ASSERT_TRUE(group_.write(0, 0, payload(64, 2)).is_ok());
  // A delayed duplicate of the first push must not regress the block.
  group_.replica(1).handle_oneway(net::Message{
      0, net::WriteAllRequest{0, 1, payload(64, 1), {}}});
  EXPECT_EQ(group_.store(1).version_of(0).value(), 2u);
  EXPECT_EQ(group_.store(1).read(0).value().data, payload(64, 2));
}

}  // namespace
}  // namespace reldev::core
