#include "reldev/core/available_copy_replica.hpp"

#include <gtest/gtest.h>

#include "reldev/core/group.hpp"

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  storage::BlockData data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed * 7 + i) & 0xff);
  }
  return data;
}

class AvailableCopyTest : public ::testing::Test {
 protected:
  AvailableCopyTest()
      : group_(SchemeKind::kAvailableCopy, GroupConfig::majority(3, 8, 64)) {}

  AvailableCopyReplica& ac(SiteId site) {
    return static_cast<AvailableCopyReplica&>(group_.replica(site));
  }

  ReplicaGroup group_;
};

TEST_F(AvailableCopyTest, WriteReachesAllAvailableCopies) {
  const auto data = payload(64, 1);
  ASSERT_TRUE(group_.write(0, 2, data).is_ok());
  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(group_.store(site).read(2).value().data, data);
    EXPECT_EQ(group_.store(site).version_of(2).value(), 1u);
  }
}

TEST_F(AvailableCopyTest, ReadIsLocalAndFree) {
  ASSERT_TRUE(group_.write(0, 1, payload(64, 2)).is_ok());
  group_.meter().reset();
  ASSERT_TRUE(group_.read(1, 1).is_ok());
  // §5: read access generates no network traffic under available copy.
  EXPECT_EQ(group_.meter().total(), 0u);
}

TEST_F(AvailableCopyTest, SurvivesAllButOneFailure) {
  group_.crash_site(0);
  group_.crash_site(1);
  const auto data = payload(64, 3);
  ASSERT_TRUE(group_.write(2, 4, data).is_ok());
  EXPECT_EQ(group_.read(2, 4).value(), data);
  EXPECT_TRUE(group_.group_available());
}

TEST_F(AvailableCopyTest, WasAvailableTracksAckSet) {
  EXPECT_EQ(ac(0).was_available(), (SiteSet{0, 1, 2}));
  group_.crash_site(2);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 4)).is_ok());
  EXPECT_EQ(ac(0).was_available(), (SiteSet{0, 1}));
  // Under the eager-broadcast policy the recipient learns the exact set.
  EXPECT_EQ(ac(1).was_available(), (SiteSet{0, 1}));
}

TEST_F(AvailableCopyTest, RepairFromAvailableSite) {
  group_.crash_site(2);
  const auto data = payload(64, 5);
  ASSERT_TRUE(group_.write(0, 3, data).is_ok());
  ASSERT_TRUE(group_.recover_site(2).is_ok());
  EXPECT_EQ(group_.replica(2).state(), SiteState::kAvailable);
  // The missed write arrived through the version-vector exchange.
  EXPECT_EQ(group_.store(2).read(3).value().data, data);
  // And the repair source's W now includes the repaired site.
  EXPECT_TRUE(ac(2).was_available().contains(2));
}

TEST_F(AvailableCopyTest, ComatoseSiteRejectsClientOps) {
  group_.crash_site(0);
  group_.crash_site(1);
  group_.crash_site(2);
  group_.transport().set_up(2, true);
  // Site 2 was NOT the last to fail in W terms... recover() runs its
  // protocol; whatever the outcome, a comatose site must refuse reads.
  // Total failure with everyone's W = {0,1,2}: site 2 alone cannot prove
  // it has the most recent data.
  (void)group_.replica(2).recover();
  if (group_.replica(2).state() == SiteState::kComatose) {
    EXPECT_EQ(group_.read(2, 0).status().code(),
              reldev::ErrorCode::kUnavailable);
    EXPECT_EQ(group_.write(2, 0, payload(64, 1)).code(),
              reldev::ErrorCode::kUnavailable);
  }
}

TEST_F(AvailableCopyTest, TotalFailureWaitsForClosure) {
  // Make W sets precise first: fail 2, write (W={0,1}), fail 1,
  // write (W={0}), fail 0. Failure order: 2, 1, 0 — 0 failed last.
  group_.crash_site(2);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 6)).is_ok());
  group_.crash_site(1);
  const auto final_data = payload(64, 7);
  ASSERT_TRUE(group_.write(0, 1, final_data).is_ok());
  group_.crash_site(0);

  // Site 2 returns first: its W is stale ({0,1,2}) so it must wait.
  group_.transport().set_up(2, true);
  EXPECT_EQ(group_.replica(2).recover().code(),
            reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(group_.replica(2).state(), SiteState::kComatose);

  // Site 1 returns: its W is {0,1}; site 0 is still down, so it waits too.
  group_.transport().set_up(1, true);
  EXPECT_EQ(group_.replica(1).recover().code(),
            reldev::ErrorCode::kUnavailable);

  // Site 0 — the last to fail, W={0} — returns and recovers immediately
  // without waiting for anyone.
  ASSERT_TRUE(group_.recover_site(0).is_ok());
  EXPECT_EQ(group_.replica(0).state(), SiteState::kAvailable);
  // recover_site retried the comatose sites, which repaired from site 0.
  EXPECT_EQ(group_.replica(1).state(), SiteState::kAvailable);
  EXPECT_EQ(group_.replica(2).state(), SiteState::kAvailable);
  // Everyone holds the final write.
  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(group_.read(site, 1).value(), final_data);
  }
}

TEST_F(AvailableCopyTest, LastSiteRecoversAloneFromItsOwnData) {
  // The paper's key AC advantage: after a total failure the last-failed
  // site restores service without waiting for the others.
  group_.crash_site(1);
  group_.crash_site(2);
  const auto data = payload(64, 8);
  ASSERT_TRUE(group_.write(0, 5, data).is_ok());  // W_0 = {0}
  group_.crash_site(0);

  group_.transport().set_up(0, true);
  ASSERT_TRUE(group_.replica(0).recover().is_ok());
  EXPECT_EQ(group_.replica(0).state(), SiteState::kAvailable);
  EXPECT_EQ(group_.read(0, 5).value(), data);
  EXPECT_TRUE(group_.group_available());
}

TEST_F(AvailableCopyTest, NoAcknowledgedWriteIsLostAcrossTotalFailure) {
  // Sequence of writes with interleaved failures; after full recovery the
  // surviving state must be the last acknowledged write.
  const auto final_data = payload(64, 9);
  ASSERT_TRUE(group_.write(0, 6, payload(64, 1)).is_ok());
  group_.crash_site(0);
  ASSERT_TRUE(group_.write(1, 6, payload(64, 2)).is_ok());
  group_.crash_site(1);
  ASSERT_TRUE(group_.write(2, 6, final_data).is_ok());
  group_.crash_site(2);

  // Recover in failure order (worst case for knowledge staleness).
  group_.transport().set_up(0, true);
  (void)group_.replica(0).recover();
  group_.transport().set_up(1, true);
  (void)group_.replica(1).recover();
  ASSERT_TRUE(group_.recover_site(2).is_ok());
  group_.retry_comatose();

  for (SiteId site = 0; site < 3; ++site) {
    ASSERT_EQ(group_.replica(site).state(), SiteState::kAvailable)
        << "site " << site;
    EXPECT_EQ(group_.read(site, 6).value(), final_data) << "site " << site;
  }
}

TEST_F(AvailableCopyTest, MulticastWriteTrafficMatchesPaper) {
  // §5.1: an AC write in an n-site multicast network costs U_A messages —
  // here all 3 sites are up: 1 broadcast + 2 acks = 3. The eager W
  // broadcast only fires when the ack set changes; steady state is silent.
  ASSERT_TRUE(group_.write(0, 0, payload(64, 1)).is_ok());  // W settles
  group_.meter().reset();
  group_.meter().set_current_op(net::OpKind::kWrite);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 2)).is_ok());
  EXPECT_EQ(group_.meter().count(net::OpKind::kWrite), 3u);
}

TEST_F(AvailableCopyTest, PiggybackedPolicyAlsoConverges) {
  ReplicaGroup lazy(SchemeKind::kAvailableCopy, GroupConfig::majority(3, 4, 64),
                    net::AddressingMode::kMulticast,
                    WasAvailablePolicy::kPiggybacked);
  auto& replica0 = static_cast<AvailableCopyReplica&>(lazy.replica(0));
  lazy.crash_site(2);
  ASSERT_TRUE(lazy.write(0, 0, payload(64, 1)).is_ok());
  EXPECT_EQ(replica0.was_available(), (SiteSet{0, 1}));
  // The recipient's knowledge lags by one write (still the full set).
  auto& replica1 = static_cast<AvailableCopyReplica&>(lazy.replica(1));
  EXPECT_EQ(replica1.was_available(), (SiteSet{0, 1, 2}));
  // After a second write the piggybacked set has caught up.
  ASSERT_TRUE(lazy.write(0, 0, payload(64, 2)).is_ok());
  EXPECT_EQ(replica1.was_available(), (SiteSet{0, 1}));
}

TEST_F(AvailableCopyTest, MetadataPersistsWasAvailable) {
  group_.crash_site(2);
  ASSERT_TRUE(group_.write(0, 0, payload(64, 1)).is_ok());
  // Peek at the persisted metadata of site 0.
  auto blob = group_.store(0).get_metadata();
  ASSERT_TRUE(blob.is_ok());
  auto meta = storage::SiteMetadata::decode(blob.value());
  ASSERT_TRUE(meta.is_ok());
  ASSERT_TRUE(meta.value().was_available.has_value());
  EXPECT_EQ(*meta.value().was_available, (SiteSet{0, 1}));
}

}  // namespace
}  // namespace reldev::core
