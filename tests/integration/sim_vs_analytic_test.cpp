// The strongest validation in the repository: the measured steady-state
// availability of real protocol engines driven by the discrete-event
// simulator must agree with §4's closed-form/CTMC results, for every
// scheme, across group sizes and failure ratios.
#include <gtest/gtest.h>

#include <algorithm>

#include "reldev/analysis/availability.hpp"
#include "reldev/analysis/traffic.hpp"
#include "reldev/core/experiment.hpp"

namespace reldev::core {
namespace {

struct Case {
  SchemeKind scheme;
  std::size_t sites;
  double rho;
};

class SimVsAnalytic : public ::testing::TestWithParam<Case> {};

double analytic(const Case& c) {
  switch (c.scheme) {
    case SchemeKind::kVoting:
      return analysis::voting_availability(c.sites, c.rho);
    case SchemeKind::kAvailableCopy:
      return analysis::available_copy_availability(c.sites, c.rho);
    case SchemeKind::kNaiveAvailableCopy:
      return analysis::naive_available_copy_availability(c.sites, c.rho);
  }
  return -1.0;
}

TEST_P(SimVsAnalytic, MeasuredAvailabilityMatchesTheory) {
  const Case c = GetParam();
  AvailabilityOptions options;
  options.scheme = c.scheme;
  options.sites = c.sites;
  options.rho = c.rho;
  options.horizon = 120'000;
  options.warmup = 1'000;
  options.batches = 30;
  options.seed = 20'250'707;

  const auto measured = run_availability_experiment(options);
  const double expected = analytic(c);
  // Allow the 95% CI half-width plus a small numerical cushion.
  const double tolerance = std::max(0.004, 2.0 * measured.half_width);
  EXPECT_NEAR(measured.availability, expected, tolerance)
      << scheme_kind_name(c.scheme) << " n=" << c.sites << " rho=" << c.rho
      << " (ci half-width " << measured.half_width << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimVsAnalytic,
    ::testing::Values(
        // Voting at the Figure 9/10 configurations.
        Case{SchemeKind::kVoting, 3, 0.1}, Case{SchemeKind::kVoting, 5, 0.2},
        Case{SchemeKind::kVoting, 6, 0.3}, Case{SchemeKind::kVoting, 2, 0.5},
        // Available copy.
        Case{SchemeKind::kAvailableCopy, 2, 0.3},
        Case{SchemeKind::kAvailableCopy, 3, 0.2},
        Case{SchemeKind::kAvailableCopy, 4, 0.4},
        // Naive available copy.
        Case{SchemeKind::kNaiveAvailableCopy, 2, 0.3},
        Case{SchemeKind::kNaiveAvailableCopy, 3, 0.2},
        Case{SchemeKind::kNaiveAvailableCopy, 4, 0.4}));

TEST(SimVsAnalyticTraffic, MulticastWriteCostsMatchFormulas) {
  // Measured per-write transmissions vs §5.1, n = 5, rho = 0.05.
  TrafficOptions options;
  options.sites = 5;
  options.rho = 0.05;
  options.horizon = 3'000;
  options.seed = 99;
  options.mode = net::AddressingMode::kMulticast;

  options.scheme = SchemeKind::kNaiveAvailableCopy;
  EXPECT_NEAR(run_traffic_experiment(options).per_write, 1.0, 1e-9);

  options.scheme = SchemeKind::kAvailableCopy;
  const double ua = analysis::available_copy_participation(5, 0.05);
  EXPECT_NEAR(run_traffic_experiment(options).per_write, ua, 0.25);

  options.scheme = SchemeKind::kVoting;
  const double uv = analysis::voting_participation(5, 0.05);
  EXPECT_NEAR(run_traffic_experiment(options).per_write, 1.0 + uv, 0.25);
}

TEST(SimVsAnalyticTraffic, UniqueWriteCostsMatchFormulas) {
  TrafficOptions options;
  options.sites = 5;
  options.rho = 0.05;
  options.horizon = 3'000;
  options.seed = 17;
  options.mode = net::AddressingMode::kUnique;

  options.scheme = SchemeKind::kNaiveAvailableCopy;
  EXPECT_NEAR(run_traffic_experiment(options).per_write, 4.0, 1e-9);

  options.scheme = SchemeKind::kVoting;
  const double uv = analysis::voting_participation(5, 0.05);
  // n + 2 U_V - 3 with n = 5.
  EXPECT_NEAR(run_traffic_experiment(options).per_write, 2.0 + 2.0 * uv,
              0.45);
}

TEST(SimVsAnalyticTraffic, ReadCostsMatchFormulas) {
  TrafficOptions options;
  options.sites = 5;
  options.rho = 0.05;
  options.horizon = 3'000;
  options.reads_per_write = 2.0;
  options.mode = net::AddressingMode::kMulticast;

  options.scheme = SchemeKind::kAvailableCopy;
  EXPECT_DOUBLE_EQ(run_traffic_experiment(options).per_read, 0.0);

  options.scheme = SchemeKind::kVoting;
  const double uv = analysis::voting_participation(5, 0.05);
  EXPECT_NEAR(run_traffic_experiment(options).per_read, uv, 0.25);
}

}  // namespace
}  // namespace reldev::core
