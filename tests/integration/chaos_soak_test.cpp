// Chaos soak: every engine (MCV / AC / NAC) run through randomized fault
// schedules — link loss, corruption, duplication, delay, site crashes and
// partial recoveries — at fixed seeds, with invariants asserted at every
// heal point.
//
// Fault placement respects each scheme's model. Majority-consensus voting
// tolerates lost and garbled messages between replicas (version discovery
// plus quorums), so voting runs inject loss and corruption on every link.
// The available-copy schemes ASSUME reliable delivery between live sites
// (§3 of the paper) — for them, loss and corruption are injected only on
// client links, while replica links get the faults their model does admit:
// duplication, delay, and fail-stop crashes.
//
// Invariants checked after each heal:
//   * the group converges: every site recovers to `available`;
//   * a sealing vectored write through the driver stub succeeds, and every
//     site then serves the sealed bytes;
//   * no torn vectored batch: a dedicated block range only ever written by
//     whole-batch messages stays uniform per site (AC/NAC stores);
//   * per-site, per-block version monotonicity across rounds;
//   * the fault layer really injected faults (stats counters moved).
// An AC-only blackout coda replays the §4.4 total failure and asserts the
// closure-based restart ordering site by site.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "reldev/core/driver_stub.hpp"
#include "reldev/core/group.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::core {
namespace {

constexpr SiteId kClient = 100;
constexpr std::size_t kSites = 5;
constexpr std::size_t kBlocks = 16;
constexpr std::size_t kBlockSize = 64;
// Blocks written only by whole-batch messages (and sealing writes): the
// torn-batch invariant watches these.
constexpr BlockId kBatchFirst = 8;
constexpr std::size_t kBatchCount = 4;
constexpr int kRounds = 5;
constexpr int kOpsPerRound = 14;

storage::BlockData payload(std::size_t size, std::uint8_t tag) {
  return storage::BlockData(size, static_cast<std::byte>(tag));
}

class ChaosSoakTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, std::uint64_t>> {
 protected:
  ChaosSoakTest()
      : scheme_(std::get<0>(GetParam())),
        seed_(std::get<1>(GetParam())),
        group_(scheme_, GroupConfig::majority(kSites, kBlocks, kBlockSize)),
        schedule_(seed_ ^ 0xc4a05ull) {
    group_.faults().reseed(seed_);
  }

  RetryPolicy stub_policy() const {
    RetryPolicy policy;
    policy.max_rounds = 3;
    policy.initial_backoff = std::chrono::milliseconds{0};
    policy.max_backoff = std::chrono::milliseconds{0};
    policy.op_deadline = std::chrono::milliseconds{2000};
    policy.jitter_seed = seed_;
    return policy;
  }

  bool all_available() {
    for (SiteId site = 0; site < kSites; ++site) {
      if (group_.replica(site).state() != SiteState::kAvailable) return false;
    }
    return true;
  }

  /// Program this round's fault schedule. Loss/corruption between replicas
  /// only for voting (see the header comment); client links always get the
  /// full menu so the stub's retry policy is exercised everywhere.
  void inject_faults(int round) {
    auto& faults = group_.faults();
    for (SiteId site = 0; site < kSites; ++site) {
      if (!schedule_.bernoulli(0.6)) continue;
      net::FaultRule rule;
      rule.drop = schedule_.uniform(0.0, 0.3);
      rule.corrupt = schedule_.uniform(0.0, 0.2);
      rule.duplicate = schedule_.uniform(0.0, 0.2);
      faults.set_link_rule(kClient, site, rule);
    }
    // Guaranteed hot links so the stats assertions never depend on luck.
    const auto hot = static_cast<std::size_t>(round);
    net::FaultRule corrupting;
    corrupting.corrupt = 0.5;
    faults.set_link_rule(kClient, static_cast<SiteId>(hot % kSites),
                         corrupting);
    net::FaultRule lossy;
    lossy.drop = 0.5;
    faults.set_link_rule(kClient, static_cast<SiteId>((hot + 1) % kSites),
                         lossy);
    for (int i = 0; i < 4; ++i) {
      const auto from = static_cast<SiteId>(schedule_.uniform_u64(0, 4));
      const auto to = static_cast<SiteId>(schedule_.uniform_u64(0, 4));
      if (from == to) continue;
      net::FaultRule rule;
      rule.duplicate = schedule_.uniform(0.0, 0.5);
      if (schedule_.bernoulli(0.2)) rule.delay = std::chrono::milliseconds{1};
      if (scheme_ == SchemeKind::kVoting) {
        rule.drop = schedule_.uniform(0.0, 0.3);
        rule.corrupt = schedule_.uniform(0.0, 0.3);
      }
      faults.set_link_rule(from, to, rule);
    }
  }

  /// Best-effort traffic while the network misbehaves: client ops through
  /// the stub, coordinator ops straight at replicas, whole-batch writes to
  /// the watched range, and crashes/returns of random sites.
  void churn(DriverStub& stub, int round) {
    for (int op = 0; op < kOpsPerRound; ++op) {
      const auto tag =
          static_cast<std::uint8_t>(1 + ((round * kOpsPerRound + op) % 200));
      switch (schedule_.uniform_u64(0, 6)) {
        case 0:
          (void)stub.read_block(schedule_.uniform_u64(0, kBlocks - 1));
          break;
        case 1:
          (void)stub.write_block(schedule_.uniform_u64(0, kBatchFirst - 1),
                                 payload(kBlockSize, tag));
          break;
        case 2: {
          const BlockId first = schedule_.uniform_u64(0, kBlocks - 4);
          (void)stub.read_blocks(first, schedule_.uniform_u64(1, 4));
          break;
        }
        case 3: {
          // Vectored client writes stay below the batch-only range.
          const BlockId first = schedule_.uniform_u64(0, 4);
          const std::size_t count = schedule_.uniform_u64(1, 4);
          (void)stub.write_blocks(first,
                                  payload(count * kBlockSize, tag));
          break;
        }
        case 4:
          // The watched range: only ever written as one whole batch, only
          // ever through site 0, so per-site application is all-or-none.
          if (group_.transport().is_up(0) &&
              group_.replica(0).state() == SiteState::kAvailable) {
            (void)group_.write_range(0, kBatchFirst,
                                     payload(kBatchCount * kBlockSize, tag));
          }
          break;
        case 5:
          (void)group_.read(
              static_cast<SiteId>(schedule_.uniform_u64(0, kSites - 1)),
              schedule_.uniform_u64(0, kBlocks - 1));
          break;
        case 6: {
          const auto site =
              static_cast<SiteId>(schedule_.uniform_u64(0, kSites - 1));
          if (group_.transport().is_up(site)) {
            if (schedule_.bernoulli(0.35)) group_.crash_site(site);
          } else if (schedule_.bernoulli(0.5)) {
            (void)group_.recover_site(site);  // may stay comatose
          }
          break;
        }
      }
    }
  }

  /// Heal the network and drive every site back to `available`.
  void heal_and_converge() {
    group_.faults().heal();
    group_.transport().clear_partitions();
    for (int pass = 0; pass < 10 && !all_available(); ++pass) {
      for (SiteId site = 0; site < kSites; ++site) {
        group_.transport().set_up(site, true);
        if (group_.replica(site).state() != SiteState::kAvailable) {
          (void)group_.replica(site).recover();
        }
      }
      group_.retry_comatose();
    }
    ASSERT_TRUE(all_available()) << "group failed to converge after heal";
  }

  void check_no_torn_batch() {
    if (scheme_ == SchemeKind::kVoting) return;  // store check is AC/NAC's
    for (SiteId site = 0; site < kSites; ++site) {
      const auto first = group_.store(site).read(kBatchFirst);
      ASSERT_TRUE(first.is_ok());
      const std::byte tag = first.value().data[0];
      for (std::size_t i = 1; i < kBatchCount; ++i) {
        const auto block = group_.store(site).read(kBatchFirst + i);
        ASSERT_TRUE(block.is_ok());
        EXPECT_EQ(block.value().data[0], tag)
            << "torn batch at site " << site << ", block "
            << kBatchFirst + i;
      }
    }
  }

  void check_version_monotonicity() {
    for (SiteId site = 0; site < kSites; ++site) {
      for (const BlockId block : {BlockId{0}, kBatchFirst, kBlocks - 1}) {
        const auto version = group_.store(site).version_of(block);
        ASSERT_TRUE(version.is_ok());
        const auto key = std::make_pair(site, block);
        const auto previous = last_versions_.find(key);
        if (previous != last_versions_.end()) {
          EXPECT_GE(version.value(), previous->second)
              << "version went backwards at site " << site << ", block "
              << block;
        }
        last_versions_[key] = version.value();
      }
    }
  }

  void seal_and_verify(DriverStub& stub, int round) {
    storage::BlockData sealed(kBlocks * kBlockSize);
    for (std::size_t i = 0; i < sealed.size(); ++i) {
      // Per-block pattern, except uniform across the batch-only range so
      // the torn-batch store check keeps holding after the seal.
      std::size_t block = i / kBlockSize;
      if (block >= kBatchFirst && block < kBatchFirst + kBatchCount) {
        block = kBatchFirst;
      }
      sealed[i] = static_cast<std::byte>(
          (static_cast<std::size_t>(round) * 31 + block) & 0xff);
    }
    ASSERT_TRUE(stub.write_blocks(0, sealed).is_ok())
        << stub.last_failure().last_error.to_string();
    EXPECT_EQ(stub.read_blocks(0, kBlocks).value(), sealed);
    // Every site serves the sealed value — local copies for AC/NAC,
    // quorum-latest for voting.
    for (SiteId site = 0; site < kSites; ++site) {
      for (const BlockId block : {BlockId{0}, kBatchFirst, kBlocks - 1}) {
        const auto data = group_.read(site, block);
        ASSERT_TRUE(data.is_ok()) << data.status().to_string();
        const storage::BlockData want(
            sealed.begin() + static_cast<std::ptrdiff_t>(block * kBlockSize),
            sealed.begin() +
                static_cast<std::ptrdiff_t>((block + 1) * kBlockSize));
        EXPECT_EQ(data.value(), want)
            << "site " << site << " diverges on block " << block;
      }
    }
  }

  SchemeKind scheme_;
  std::uint64_t seed_;
  ReplicaGroup group_;
  Rng schedule_;
  std::map<std::pair<SiteId, BlockId>, storage::VersionNumber> last_versions_;
};

TEST_P(ChaosSoakTest, SurvivesRandomizedFaultSchedule) {
  DriverStub stub(group_.faults(), kClient, {0, 1, 2, 3, 4}, kBlocks,
                  kBlockSize, stub_policy());
  for (int round = 0; round < kRounds; ++round) {
    inject_faults(round);
    churn(stub, round);
    heal_and_converge();
    if (HasFatalFailure()) return;
    check_no_torn_batch();
    check_version_monotonicity();
    seal_and_verify(stub, round);
  }
  const auto stats = group_.faults().stats();
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.corrupted, 0u);
  EXPECT_GT(stats.duplicated, 0u);
}

TEST_P(ChaosSoakTest, AcBlackoutRestartsInClosureOrder) {
  if (scheme_ != SchemeKind::kAvailableCopy) {
    GTEST_SKIP() << "closure-based restart is the AC rule";
  }
  // A clean §4.4 total failure (crashes only — no message faults) on top
  // of whatever state the seed left behind.
  ASSERT_TRUE(group_.write(0, 0, payload(kBlockSize, 0xA1)).is_ok());
  group_.crash_site(3);
  group_.crash_site(4);
  ASSERT_TRUE(group_.write(0, 0, payload(kBlockSize, 0xA2)).is_ok());
  group_.crash_site(2);
  ASSERT_TRUE(group_.write(0, 0, payload(kBlockSize, 0xA3)).is_ok());
  group_.crash_site(1);
  const auto final_data = payload(kBlockSize, 0xA4);
  ASSERT_TRUE(group_.write(0, 0, final_data).is_ok());  // W_0 = {0}
  group_.crash_site(0);

  // Sites that did not fail last must wait, in any return order.
  group_.transport().set_up(2, true);
  EXPECT_FALSE(group_.replica(2).recover().is_ok());
  EXPECT_EQ(group_.replica(2).state(), SiteState::kComatose);
  group_.transport().set_up(4, true);
  EXPECT_FALSE(group_.replica(4).recover().is_ok());
  group_.transport().set_up(1, true);
  EXPECT_FALSE(group_.replica(1).recover().is_ok());
  EXPECT_EQ(group_.retry_comatose(), 0u);  // still no witness for site 0

  // The last-failed site restores service; the fixpoint frees the rest.
  group_.transport().set_up(0, true);
  ASSERT_TRUE(group_.replica(0).recover().is_ok());
  EXPECT_EQ(group_.retry_comatose(), 3u);
  group_.transport().set_up(3, true);
  ASSERT_TRUE(group_.replica(3).recover().is_ok());
  for (SiteId site = 0; site < kSites; ++site) {
    EXPECT_EQ(group_.replica(site).state(), SiteState::kAvailable);
    EXPECT_EQ(group_.read(site, 0).value(), final_data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesFixedSeeds, ChaosSoakTest,
    ::testing::Combine(::testing::Values(SchemeKind::kVoting,
                                         SchemeKind::kAvailableCopy,
                                         SchemeKind::kNaiveAvailableCopy),
                       ::testing::Values(0xC0FFEEull, 1987ull, 42ull)),
    [](const auto& param_info) {
      std::string name = scheme_kind_name(std::get<0>(param_info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';  // gtest names must be identifiers
      }
      return name + "_seed" +
             std::to_string(std::get<1>(param_info.param) & 0xFFFF);
    });

}  // namespace
}  // namespace reldev::core
