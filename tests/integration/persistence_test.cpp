// Process-restart persistence: replicas built over FileBlockStore survive
// being destroyed and reconstructed from their store files — the moral
// equivalent of killing and restarting a site-server daemon. Was-available
// sets, versions, and payloads must all come back from disk, and the
// recovery protocol must run correctly against the reloaded state.
#include <gtest/gtest.h>

#include <filesystem>

#include "reldev/core/available_copy_replica.hpp"
#include "reldev/net/inproc_transport.hpp"
#include "reldev/storage/file_block_store.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kBlocks = 8;
constexpr std::size_t kBlockSize = 64;

storage::BlockData payload(std::uint8_t seed) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(seed));
}

/// A "site process": an AvailableCopyReplica over a file-backed store,
/// restartable in place.
class SiteProcess {
 public:
  SiteProcess(SiteId site, GroupConfig config, std::filesystem::path dir,
              net::InProcTransport& transport)
      : site_(site),
        config_(std::move(config)),
        path_((dir / ("site" + std::to_string(site) + ".rdev")).string()),
        transport_(transport) {
    auto created =
        storage::FileBlockStore::create(path_, kBlocks, kBlockSize);
    RELDEV_ASSERT(created.is_ok());
    store_ = std::move(created).value();
    replica_ = std::make_unique<AvailableCopyReplica>(site_, config_, *store_,
                                                      transport_);
    transport_.bind(site_, replica_.get());
  }

  /// Fail-stop kill: the replica object and its in-memory state vanish;
  /// only the store file remains.
  void kill() {
    replica_->crash();
    transport_.set_up(site_, false);
    replica_.reset();
    store_.reset();
  }

  /// Restart from disk; does NOT run recovery (callers drive that).
  void restart() {
    auto reopened = storage::FileBlockStore::open(path_);
    RELDEV_ASSERT(reopened.is_ok());
    store_ = std::move(reopened).value();
    replica_ = std::make_unique<AvailableCopyReplica>(site_, config_, *store_,
                                                      transport_);
    // A freshly restarted process is not yet recovered.
    replica_->crash();
    transport_.bind(site_, replica_.get());
    transport_.set_up(site_, true);
  }

  AvailableCopyReplica& replica() { return *replica_; }
  storage::FileBlockStore& store() { return *store_; }
  [[nodiscard]] bool alive() const noexcept { return replica_ != nullptr; }

 private:
  SiteId site_;
  GroupConfig config_;
  std::string path_;
  net::InProcTransport& transport_;
  std::unique_ptr<storage::FileBlockStore> store_;
  std::unique_ptr<AvailableCopyReplica> replica_;
};

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("reldev_persist_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    std::filesystem::create_directories(dir_);
    config_ = GroupConfig::majority(3, kBlocks, kBlockSize);
    for (SiteId site = 0; site < 3; ++site) {
      sites_.push_back(
          std::make_unique<SiteProcess>(site, config_, dir_, transport_));
    }
  }
  void TearDown() override {
    sites_.clear();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  GroupConfig config_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<SiteProcess>> sites_;
};

TEST_F(PersistenceTest, RestartedSiteRecoversMissedWritesFromDisk) {
  ASSERT_TRUE(sites_[0]->replica().write(0, payload(1)).is_ok());
  sites_[2]->kill();
  ASSERT_TRUE(sites_[0]->replica().write(1, payload(2)).is_ok());

  sites_[2]->restart();
  // Data written before the kill is already on site 2's disk.
  EXPECT_EQ(sites_[2]->store().read(0).value().data, payload(1));
  // The missed write is not (yet).
  EXPECT_EQ(sites_[2]->store().version_of(1).value(), 0u);

  ASSERT_TRUE(sites_[2]->replica().recover().is_ok());
  EXPECT_EQ(sites_[2]->replica().state(), SiteState::kAvailable);
  EXPECT_EQ(sites_[2]->store().read(1).value().data, payload(2));
}

TEST_F(PersistenceTest, WasAvailableSetSurvivesRestart) {
  sites_[2]->kill();
  ASSERT_TRUE(sites_[0]->replica().write(0, payload(3)).is_ok());
  EXPECT_EQ(sites_[0]->replica().was_available(), (SiteSet{0, 1}));

  // Restart site 0; its W must come back from the metadata region.
  sites_[0]->kill();
  sites_[0]->restart();
  EXPECT_EQ(sites_[0]->replica().was_available(), (SiteSet{0, 1}));
}

TEST_F(PersistenceTest, FullClusterRestartRespectsFailureOrder) {
  // Failure order 2, 1, 0 with writes in between; then every process is
  // killed and restarted. Only site 0 (failed last, W = {0}) may recover
  // alone; the others must wait for it even after a full restart.
  sites_[2]->kill();
  ASSERT_TRUE(sites_[0]->replica().write(0, payload(4)).is_ok());
  sites_[1]->kill();
  ASSERT_TRUE(sites_[0]->replica().write(1, payload(5)).is_ok());
  sites_[0]->kill();

  sites_[2]->restart();
  EXPECT_EQ(sites_[2]->replica().recover().code(),
            reldev::ErrorCode::kUnavailable);
  sites_[1]->restart();
  EXPECT_EQ(sites_[1]->replica().recover().code(),
            reldev::ErrorCode::kUnavailable);

  sites_[0]->restart();
  ASSERT_TRUE(sites_[0]->replica().recover().is_ok());
  ASSERT_TRUE(sites_[1]->replica().recover().is_ok());
  ASSERT_TRUE(sites_[2]->replica().recover().is_ok());

  for (const auto& site : sites_) {
    EXPECT_EQ(site->replica().read(0).value(), payload(4));
    EXPECT_EQ(site->replica().read(1).value(), payload(5));
  }
}

TEST_F(PersistenceTest, VersionsNeverRegressAcrossRestarts) {
  ASSERT_TRUE(sites_[0]->replica().write(0, payload(6)).is_ok());
  ASSERT_TRUE(sites_[0]->replica().write(0, payload(7)).is_ok());
  const auto before = sites_[1]->store().version_vector();
  sites_[1]->kill();
  sites_[1]->restart();
  const auto after = sites_[1]->store().version_vector();
  EXPECT_TRUE(after.dominates(before));
  EXPECT_TRUE(before.dominates(after));  // exactly equal, in fact
}

}  // namespace
}  // namespace reldev::core
