// A real multi-process-shaped deployment in one test binary: three site
// servers behind TCP, replicas talking to each other through
// TcpPeerTransport, and a client driving block I/O through the DriverStub
// over the same wire protocol — the full Figure 1/2 picture.
#include <gtest/gtest.h>

#include "reldev/core/driver_stub.hpp"
#include "reldev/core/group.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"

namespace reldev::core {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

/// Three AC replicas, each "hosted" behind its own TCP server, with a
/// shared peer transport for inter-site traffic.
class TcpGroupTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBlocks = 4;
  static constexpr std::size_t kBlockSize = 64;

  void SetUp() override {
    config_ = GroupConfig::majority(3, kBlocks, kBlockSize);
    for (SiteId site = 0; site < 3; ++site) {
      stores_.push_back(
          std::make_unique<storage::MemBlockStore>(kBlocks, kBlockSize));
      replicas_.push_back(std::make_unique<AvailableCopyReplica>(
          site, config_, *stores_.back(), transport_));
    }
    for (SiteId site = 0; site < 3; ++site) {
      auto server = net::tcp::TcpServer::start(0, replicas_[site].get());
      ASSERT_TRUE(server.is_ok());
      transport_.set_endpoint(site, "127.0.0.1", server.value()->port());
      servers_.push_back(std::move(server).value());
    }
  }

  GroupConfig config_;
  net::tcp::TcpPeerTransport transport_;
  std::vector<std::unique_ptr<storage::MemBlockStore>> stores_;
  std::vector<std::unique_ptr<AvailableCopyReplica>> replicas_;
  std::vector<std::unique_ptr<net::tcp::TcpServer>> servers_;
};

TEST_F(TcpGroupTest, WriteReplicatesOverRealSockets) {
  const auto data = payload(kBlockSize, 5);
  ASSERT_TRUE(replicas_[0]->write(1, data).is_ok());
  // Every store received the write through TCP.
  for (SiteId site = 0; site < 3; ++site) {
    EXPECT_EQ(stores_[site]->read(1).value().data, data) << "site " << site;
  }
}

TEST_F(TcpGroupTest, ClientStubOverTcp) {
  auto stub = DriverStub::connect(transport_, 100, {0, 1, 2});
  ASSERT_TRUE(stub.is_ok()) << stub.status().to_string();
  EXPECT_EQ(stub.value().block_count(), kBlocks);
  const auto data = payload(kBlockSize, 6);
  ASSERT_TRUE(stub.value().write_block(2, data).is_ok());
  EXPECT_EQ(stub.value().read_block(2).value(), data);
}

TEST_F(TcpGroupTest, ClientFailsOverWhenServerDies) {
  auto stub = DriverStub::connect(transport_, 100, {0, 1, 2}).value();
  const auto data = payload(kBlockSize, 7);
  ASSERT_TRUE(stub.write_block(0, data).is_ok());
  // Kill server 0's process stand-in.
  replicas_[0]->crash();
  servers_[0]->stop();
  EXPECT_EQ(stub.read_block(0).value(), data);
  EXPECT_NE(stub.last_server(), 0u);
}

TEST_F(TcpGroupTest, SiteRecoversOverTcpAfterMissingWrites) {
  const auto old_data = payload(kBlockSize, 8);
  ASSERT_TRUE(replicas_[0]->write(3, old_data).is_ok());
  // Site 2 "crashes" (stays reachable at the TCP level, but fail-stopped:
  // its replica refuses everything).
  replicas_[2]->crash();
  const auto new_data = payload(kBlockSize, 9);
  ASSERT_TRUE(replicas_[0]->write(3, new_data).is_ok());
  EXPECT_EQ(stores_[2]->read(3).value().data, old_data);  // missed it
  // Recovery over TCP: state inquiry, version vectors, block transfer.
  ASSERT_TRUE(replicas_[2]->recover().is_ok());
  EXPECT_EQ(replicas_[2]->state(), SiteState::kAvailable);
  EXPECT_EQ(stores_[2]->read(3).value().data, new_data);
}

/// Five voting replicas behind TCP: the push after a write travels as a
/// call (request/reply transports have no one-way send), and reads stop
/// gathering votes at the read quorum.
class TcpVotingGroupTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBlocks = 4;
  static constexpr std::size_t kBlockSize = 64;
  static constexpr std::size_t kSites = 5;

  void SetUp() override {
    config_ = GroupConfig::majority(kSites, kBlocks, kBlockSize);
    for (SiteId site = 0; site < kSites; ++site) {
      stores_.push_back(
          std::make_unique<storage::MemBlockStore>(kBlocks, kBlockSize));
      replicas_.push_back(std::make_unique<VotingReplica>(
          site, config_, *stores_.back(), transport_));
    }
    for (SiteId site = 0; site < kSites; ++site) {
      auto server = net::tcp::TcpServer::start(0, replicas_[site].get());
      ASSERT_TRUE(server.is_ok());
      transport_.set_endpoint(site, "127.0.0.1", server.value()->port());
      servers_.push_back(std::move(server).value());
    }
  }

  GroupConfig config_;
  net::tcp::TcpPeerTransport transport_;
  std::vector<std::unique_ptr<storage::MemBlockStore>> stores_;
  std::vector<std::unique_ptr<VotingReplica>> replicas_;
  std::vector<std::unique_ptr<net::tcp::TcpServer>> servers_;
};

TEST_F(TcpVotingGroupTest, WritePushReplicatesOverRealSockets) {
  // Regression: the BlockUpdate push used to be dropped over TCP (the
  // server routed it to handle_peer, which rejected it), leaving every
  // peer permanently stale — unnoticed while full-gather reads always
  // polled the coordinator, fatal once early-stopped reads could assemble
  // a quorum that excludes it.
  const auto data = payload(kBlockSize, 11);
  ASSERT_TRUE(replicas_[0]->write(1, data).is_ok());
  for (SiteId site = 0; site < kSites; ++site) {
    EXPECT_EQ(stores_[site]->read(1).value().data, data) << "site " << site;
  }
}

TEST_F(TcpVotingGroupTest, EarlyStopReadThroughEverySiteSeesNewestVersion) {
  const auto v1 = payload(kBlockSize, 12);
  const auto v2 = payload(kBlockSize, 13);
  ASSERT_TRUE(replicas_[0]->write(2, v1).is_ok());
  ASSERT_TRUE(replicas_[0]->write(2, v2).is_ok());
  for (SiteId site = 0; site < kSites; ++site) {
    EXPECT_EQ(replicas_[site]->read(2).value(), v2) << "site " << site;
  }
}

TEST_F(TcpGroupTest, FailedReplicaAnswersNothing) {
  replicas_[1]->crash();
  // Direct client call to the failed site: server responds with an error
  // reply (defense in depth), and the caller treats it as unavailable.
  net::tcp::TcpChannel channel("127.0.0.1", servers_[1]->port());
  auto reply = channel.call(
      net::Message{100, net::ClientReadRequest{0}});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().holds<net::ErrorReply>());
}

}  // namespace
}  // namespace reldev::core
