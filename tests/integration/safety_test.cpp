// Long-horizon failure-injection safety runs: drive each scheme through
// the stochastic failure model *and* a concurrent workload, asserting
// after every operation that acknowledged data is never lost or reordered.
// This is the simulation-scale version of the properties_test suite.
#include <gtest/gtest.h>

#include <map>

#include "reldev/core/group.hpp"
#include "reldev/sim/failure.hpp"
#include "reldev/sim/simulator.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kBlocks = 8;
constexpr std::size_t kBlockSize = 32;

storage::BlockData stamp(std::uint64_t value) {
  storage::BlockData data(kBlockSize, std::byte{0});
  for (std::size_t i = 0; i < 8; ++i) {
    data[i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
  }
  return data;
}

class StochasticSafety
    : public ::testing::TestWithParam<std::tuple<SchemeKind, std::uint64_t>> {
};

TEST_P(StochasticSafety, AcknowledgedWritesSurviveFailures) {
  const auto [scheme, seed] = GetParam();
  reldev::Rng rng(seed);
  ReplicaGroup group(scheme, GroupConfig::majority(4, kBlocks, kBlockSize));
  const std::size_t n = group.size();

  sim::Simulator simulator;

  // Failure listener keeping the group in step.
  class Driver final : public sim::FailureListener {
   public:
    explicit Driver(ReplicaGroup& group) : group_(group) {}
    void on_site_failed(std::size_t site, double) override {
      group_.crash_site(static_cast<SiteId>(site));
    }
    void on_site_repaired(std::size_t site, double) override {
      (void)group_.recover_site(static_cast<SiteId>(site));
    }

   private:
    ReplicaGroup& group_;
  } driver(group);

  sim::FailureProcess failures(simulator, rng.split(),
                               sim::uniform_rates(n, 0.3), &driver);
  failures.start();

  std::map<storage::BlockId, std::uint64_t> model;
  std::uint64_t next_stamp = 1;
  std::uint64_t checked_reads = 0;
  std::uint64_t acked_writes = 0;
  reldev::Rng workload = rng.split();

  // Interleave workload between failure events for 4000 events.
  for (int event = 0; event < 4'000 && simulator.step(); ++event) {
    for (int op = 0; op < 3; ++op) {
      const SiteId via = static_cast<SiteId>(workload.uniform_u64(0, n - 1));
      if (!group.transport().is_up(via)) continue;
      const storage::BlockId block = workload.uniform_u64(0, kBlocks - 1);
      if (workload.bernoulli(0.4)) {
        const std::uint64_t value = next_stamp++;
        if (group.write(via, block, stamp(value)).is_ok()) {
          model[block] = value;
          ++acked_writes;
        }
      } else {
        auto read = group.read(via, block);
        if (read.is_ok()) {
          const auto want = model.count(block) != 0
                                ? stamp(model.at(block))
                                : storage::BlockData(kBlockSize, std::byte{0});
          ASSERT_EQ(read.value(), want)
              << scheme_kind_name(scheme) << " seed " << seed << " at event "
              << event;
          ++checked_reads;
        }
      }
    }
  }
  // The run must have actually exercised the protocol.
  EXPECT_GT(acked_writes, 500u);
  EXPECT_GT(checked_reads, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, StochasticSafety,
    ::testing::Combine(::testing::Values(SchemeKind::kVoting,
                                         SchemeKind::kAvailableCopy,
                                         SchemeKind::kNaiveAvailableCopy),
                       ::testing::Values(101, 202, 303)));

TEST(VotingPartitionSafety, QuorumsPreventSplitBrain) {
  // Voting remains safe under partitions (the AC schemes explicitly assume
  // partitions away, §4). Partition a 5-group into 2+3 repeatedly while
  // writing from both sides; reads must always return the last win.
  reldev::Rng rng(7);
  ReplicaGroup group(SchemeKind::kVoting,
                     GroupConfig::majority(5, kBlocks, kBlockSize));
  std::map<storage::BlockId, std::uint64_t> model;
  std::uint64_t next_stamp = 1;

  for (int round = 0; round < 60; ++round) {
    // Random partition: each site joins group 0 or 1.
    for (SiteId s = 0; s < 5; ++s) {
      group.transport().set_partition_group(
          s, static_cast<int>(rng.uniform_u64(0, 1)));
    }
    for (int op = 0; op < 10; ++op) {
      const SiteId via = static_cast<SiteId>(rng.uniform_u64(0, 4));
      const storage::BlockId block = rng.uniform_u64(0, kBlocks - 1);
      if (rng.bernoulli(0.5)) {
        const std::uint64_t value = next_stamp++;
        if (group.write(via, block, stamp(value)).is_ok()) {
          model[block] = value;
        }
      } else {
        auto read = group.read(via, block);
        if (read.is_ok() && model.count(block) != 0) {
          ASSERT_EQ(read.value(), stamp(model.at(block)))
              << "round " << round;
        }
      }
    }
  }
  group.transport().clear_partitions();
  for (const auto& [block, value] : model) {
    EXPECT_EQ(group.read(0, block).value(), stamp(value));
  }
}

}  // namespace
}  // namespace reldev::core
