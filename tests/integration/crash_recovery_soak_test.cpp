// Crash-recovery soak: for every engine (MCV / AC / NAC), every enumerated
// storage crash point, and several event indices, run the cycle
//
//   write workload -> sync -> arm crash -> write until the store dies ->
//   hard-kill the site (file handle dropped, torn bytes on disk) ->
//   restart through the full recovery path -> verify invariants
//
// Invariants asserted after every cycle:
//   * no block read on any site ever returns kCorruption — torn records
//     are demoted by the opening scrub and healed from peers, not served;
//   * no acknowledged write is lost at the cluster level: every block
//     reads back as the payload of its last acknowledged write (or the
//     payload of the single in-flight write the crash interrupted);
//   * all sites converge to the same bytes per block;
//   * per-block version numbers never move backwards at the cluster level.
//
// A blackout coda replays the paper's total-failure recovery (§4) over
// crash-consistent stores: the crashed site's torn file plus the closure
// restart order must still produce the most recent data.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "reldev/core/group.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kSites = 3;
constexpr std::size_t kBlocks = 8;
constexpr std::size_t kBlockSize = 64;
constexpr std::uint64_t kEventIndices = 3;  // nth = 0, 1, 2
constexpr int kWarmupWrites = 6;
constexpr int kMaxCrashAttempts = 24;

storage::BlockData payload(std::uint8_t tag) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(tag));
}

class CrashRecoverySoakTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, std::uint64_t>> {
 protected:
  CrashRecoverySoakTest()
      : scheme_(std::get<0>(GetParam())), seed_(std::get<1>(GetParam())) {}

  void TearDown() override {
    group_.reset();
    if (!dir_.empty()) {
      std::error_code ignored;
      std::filesystem::remove_all(dir_, ignored);
    }
  }

  /// A fresh persistent group in a fresh directory for one crash cycle.
  /// Journal mode runs every site through the write-ahead journal with a
  /// deliberately small checkpoint threshold, so the soak exercises
  /// commits AND automatic checkpoints.
  void fresh_group(const std::string& label, bool journal = false) {
    group_.reset();
    if (!dir_.empty()) {
      std::error_code ignored;
      std::filesystem::remove_all(dir_, ignored);
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("reldev_crashsoak_" + std::string(scheme_kind_name(scheme_)) +
            "_" + std::to_string(seed_ & 0xFFFF) + "_" + label);
    std::filesystem::create_directories(dir_);
    PersistentOptions persist;
    persist.directory = dir_.string();
    persist.journal = journal;
    persist.journal_options.checkpoint_bytes = 512;
    group_.emplace(scheme_, GroupConfig::majority(kSites, kBlocks, kBlockSize),
                   std::move(persist));
    acked_.assign(kBlocks, 0);
    inflight_.assign(kBlocks, std::optional<std::uint8_t>{});
    max_version_.assign(kBlocks, 0);
  }

  /// One client write via `via`; tracks the acknowledged model and, for a
  /// refused write (the one the crash interrupts), the in-flight payload
  /// that peers may legitimately have applied.
  void tracked_write(SiteId via, BlockId block, std::uint8_t tag) {
    const Status status = group_->write(via, block, payload(tag));
    if (status.is_ok()) {
      acked_[block] = tag;
      inflight_[block].reset();
    } else {
      inflight_[block] = tag;
    }
  }

  void note_cluster_versions() {
    for (BlockId b = 0; b < kBlocks; ++b) {
      for (SiteId site = 0; site < kSites; ++site) {
        auto& injector = group_->crash_points(site);
        if (!injector.has_inner() || injector.crashed()) continue;
        auto version = injector.version_of(b);
        if (version && version.value() > max_version_[b]) {
          max_version_[b] = version.value();
        }
      }
    }
  }

  /// The post-recovery invariant sweep (see file comment).
  void verify_invariants(const std::string& context) {
    for (BlockId b = 0; b < kBlocks; ++b) {
      std::optional<storage::BlockData> agreed;
      for (SiteId via = 0; via < kSites; ++via) {
        auto data = group_->read(via, b);
        ASSERT_TRUE(data.is_ok())
            << context << ": read of block " << b << " via site " << via
            << " failed: " << data.status().to_string();
        ASSERT_NE(data.status().code(), ErrorCode::kCorruption)
            << context << ": corruption served for block " << b;
        if (!agreed) {
          agreed = data.value();
        } else {
          EXPECT_EQ(*agreed, data.value())
              << context << ": sites disagree on block " << b;
        }
      }
      // Durability: the block holds its last acknowledged payload, or the
      // single interrupted write's payload when peers applied it before
      // the coordinator's store died.
      const storage::BlockData expect_acked = payload(acked_[b]);
      const bool matches_acked = *agreed == expect_acked;
      const bool matches_inflight =
          inflight_[b].has_value() && *agreed == payload(*inflight_[b]);
      EXPECT_TRUE(matches_acked || matches_inflight)
          << context << ": block " << b
          << " lost its acknowledged write (acked tag "
          << static_cast<int>(acked_[b]) << ")";
      // Version monotonicity at the cluster level.
      storage::VersionNumber cluster_max = 0;
      for (SiteId site = 0; site < kSites; ++site) {
        auto version = group_->store(site).version_of(b);
        ASSERT_TRUE(version.is_ok());
        if (version.value() > cluster_max) cluster_max = version.value();
      }
      EXPECT_GE(cluster_max, max_version_[b])
          << context << ": cluster-wide version of block " << b
          << " moved backwards";
      max_version_[b] = cluster_max;
    }
  }

  /// Bring every site to `available` (restarting the killed coordinator is
  /// the caller's job): retry the comatose fixpoint a few times.
  void settle() {
    for (int i = 0; i < 4; ++i) group_->retry_comatose();
    for (SiteId site = 0; site < kSites; ++site) {
      ASSERT_EQ(group_->replica(site).state(), SiteState::kAvailable)
          << "site " << site << " did not settle";
    }
  }

  SchemeKind scheme_;
  std::uint64_t seed_;
  std::filesystem::path dir_;
  std::optional<ReplicaGroup> group_;
  std::vector<std::uint8_t> acked_;
  std::vector<std::optional<std::uint8_t>> inflight_;
  std::vector<storage::VersionNumber> max_version_;
};

TEST_P(CrashRecoverySoakTest, EveryCrashPointRecovers) {
  Rng rng(seed_);
  for (const storage::CrashPoint point : storage::kAllCrashPoints) {
    for (std::uint64_t nth = 0; nth < kEventIndices; ++nth) {
      const std::string context = std::string(crash_point_name(point)) +
                                  "_n" + std::to_string(nth);
      SCOPED_TRACE(context);
      fresh_group(context);

      // Phase 1: an acknowledged, synced baseline.
      for (int i = 0; i < kWarmupWrites; ++i) {
        const auto block = static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
        const auto tag =
            static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF));
        const auto via = static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
        tracked_write(via, block, tag);
      }
      for (SiteId site = 0; site < kSites; ++site) {
        ASSERT_TRUE(group_->sync_site(site).is_ok());
      }
      note_cluster_versions();

      // Phase 2: arm the crash at site 0's store and drive coordinated
      // writes (with syncs, so before-sync points see events) until it
      // fires. Not every point applies to every engine — only the
      // available-copy scheme persists metadata on the write path, for
      // example — so a schedule that cannot fire just exhausts the
      // attempt budget and the cycle still verifies clean recovery.
      group_->crash_points(0).arm(storage::CrashSchedule{point, nth});
      int attempts = 0;
      while (!group_->crash_points(0).crashed() &&
             attempts < kMaxCrashAttempts) {
        const auto block = static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
        const auto tag =
            static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF));
        tracked_write(0, block, tag);
        (void)group_->sync_site(0);
        ++attempts;
      }
      group_->crash_points(0).disarm();

      // Phase 3: hard-kill the site (torn bytes stay on disk), then
      // restart it through the full recovery path.
      group_->kill_site(0);
      Status restarted = group_->restart_site(0);
      ASSERT_TRUE(restarted.is_ok() ||
                  restarted.code() == ErrorCode::kUnavailable)
          << context << ": restart failed: " << restarted.to_string();
      settle();

      // Phase 4: the invariants.
      verify_invariants(context);

      // And the recovered group still takes writes.
      tracked_write(0, 0, 0xEE);
      EXPECT_EQ(acked_[0], 0xEE) << context;
    }
  }
}

TEST_P(CrashRecoverySoakTest, JournalCrashPointsRecoverToCommittedPrefix) {
  Rng rng(seed_ ^ 0x3A1Full);
  for (const storage::CrashPoint point : storage::kJournalCrashPoints) {
    for (std::uint64_t nth = 0; nth < kEventIndices; ++nth) {
      const std::string context = std::string("wal_") +
                                  crash_point_name(point) + "_n" +
                                  std::to_string(nth);
      SCOPED_TRACE(context);
      fresh_group(context, /*journal=*/true);

      // Phase 1: an acknowledged, committed baseline.
      for (int i = 0; i < kWarmupWrites; ++i) {
        const auto block = static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
        const auto tag =
            static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF));
        const auto via = static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
        tracked_write(via, block, tag);
      }
      for (SiteId site = 0; site < kSites; ++site) {
        ASSERT_TRUE(group_->sync_site(site).is_ok());
      }
      note_cluster_versions();

      // Phase 2: arm site 0 and drive write+commit cycles until it fires;
      // the commit points fire inside sync_site's group commit (crash
      // during append, or between append and fsync), the checkpoint
      // points through the automatic threshold checkpoints and the
      // explicit ones injected every third attempt.
      group_->crash_points(0).arm(storage::CrashSchedule{point, nth});
      int attempts = 0;
      while (!group_->crash_points(0).crashed() &&
             attempts < kMaxCrashAttempts) {
        const auto block = static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
        const auto tag =
            static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF));
        tracked_write(0, block, tag);
        (void)group_->sync_site(0);
        if (attempts % 3 == 2 && !group_->crash_points(0).crashed()) {
          (void)group_->checkpoint_site(0);
        }
        ++attempts;
      }
      group_->crash_points(0).disarm();

      // Phase 3: hard-kill (pending batch and write-back table evaporate;
      // the journal keeps only what a commit fsynced), then restart
      // through scrub + journal replay (torn tails truncated, committed
      // prefix re-applied).
      group_->kill_site(0);
      Status restarted = group_->restart_site(0);
      ASSERT_TRUE(restarted.is_ok() ||
                  restarted.code() == ErrorCode::kUnavailable)
          << context << ": restart failed: " << restarted.to_string();
      settle();

      // Phase 4: cluster-level invariants — every acknowledged write is
      // served, no corruption, all sites converge.
      verify_invariants(context);

      // And the recovered group still takes writes.
      tracked_write(0, 0, 0xEE);
      EXPECT_EQ(acked_[0], 0xEE) << context;
    }
  }
}

TEST_P(CrashRecoverySoakTest, JournalBlackoutRecoversCommittedWrites) {
  if (scheme_ == SchemeKind::kVoting) {
    GTEST_SKIP() << "closure restart order is an available-copy concept";
  }
  Rng rng(seed_ ^ 0xD1A7ull);
  fresh_group("wal_blackout", /*journal=*/true);

  for (int i = 0; i < kWarmupWrites; ++i) {
    tracked_write(static_cast<SiteId>(rng.uniform_u64(0, kSites - 1)),
                  static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1)),
                  static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF)));
  }
  for (SiteId site = 0; site < kSites; ++site) {
    ASSERT_TRUE(group_->sync_site(site).is_ok());
  }

  // Site 0 dies of a torn journal append; the survivors keep going. In
  // journal mode a kill also discards unsynced in-memory mutations, so
  // each pre-kill write is committed (synced) on the survivors first —
  // the blackout then proves the *committed* closure state recovers.
  group_->crash_points(0).arm(
      storage::CrashSchedule{storage::CrashPoint::kMidJournalAppend, 0});
  int attempts = 0;
  while (!group_->crash_points(0).crashed() && attempts < kMaxCrashAttempts) {
    tracked_write(0, static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1)),
                  static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF)));
    (void)group_->sync_site(0);
    ++attempts;
  }
  ASSERT_TRUE(group_->crash_points(0).crashed());
  group_->kill_site(0);
  tracked_write(1, 2, 0xA1);  // was-available shrinks to {1, 2}
  ASSERT_TRUE(group_->sync_site(1).is_ok());
  ASSERT_TRUE(group_->sync_site(2).is_ok());
  group_->kill_site(1);
  tracked_write(2, 3, 0xA2);  // was-available shrinks to {2}
  ASSERT_TRUE(group_->sync_site(2).is_ok());
  group_->kill_site(2);

  // Worst restart order: everyone must wait for the last-failed site.
  EXPECT_EQ(group_->restart_site(0).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(group_->restart_site(1).code(), ErrorCode::kUnavailable);
  ASSERT_TRUE(group_->restart_site(2).is_ok());
  settle();

  verify_invariants("wal_blackout");
  EXPECT_EQ(group_->read(0, 2).value(), payload(0xA1));
  EXPECT_EQ(group_->read(0, 3).value(), payload(0xA2));
}

TEST_P(CrashRecoverySoakTest, BlackoutAfterTornCrashRecoversInClosureOrder) {
  if (scheme_ == SchemeKind::kVoting) {
    GTEST_SKIP() << "closure restart order is an available-copy concept";
  }
  Rng rng(seed_ ^ 0xB1ACull);
  fresh_group("blackout");

  // Baseline everybody holds.
  for (int i = 0; i < kWarmupWrites; ++i) {
    tracked_write(static_cast<SiteId>(rng.uniform_u64(0, kSites - 1)),
                  static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1)),
                  static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF)));
  }
  for (SiteId site = 0; site < kSites; ++site) {
    ASSERT_TRUE(group_->sync_site(site).is_ok());
  }

  // Site 0 dies of a torn block write; the survivors keep going, then the
  // whole group goes dark one site at a time (2 fails last).
  group_->crash_points(0).arm(
      storage::CrashSchedule{storage::CrashPoint::kMidBlockWrite, 0});
  int attempts = 0;
  while (!group_->crash_points(0).crashed() && attempts < kMaxCrashAttempts) {
    tracked_write(0, static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1)),
                  static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF)));
    ++attempts;
  }
  ASSERT_TRUE(group_->crash_points(0).crashed());
  group_->kill_site(0);
  tracked_write(1, 2, 0xA1);  // was-available shrinks to {1, 2}
  group_->kill_site(1);
  tracked_write(2, 3, 0xA2);  // was-available shrinks to {2}
  group_->kill_site(2);

  // Restart in the WORST order: everyone but the last-failed site must
  // wait (comatose) until the site that could have seen the final writes
  // is back.
  EXPECT_EQ(group_->restart_site(0).code(), ErrorCode::kUnavailable);
  // AC: site 1's was-available set {1,2} keeps it comatose until 2 is up;
  // NAC waits for the full group regardless.
  EXPECT_EQ(group_->restart_site(1).code(), ErrorCode::kUnavailable);
  ASSERT_TRUE(group_->restart_site(2).is_ok());
  settle();

  verify_invariants("blackout");
  // The final pre-blackout writes survived the torn-crash site's restart.
  EXPECT_EQ(group_->read(0, 2).value(), payload(0xA1));
  EXPECT_EQ(group_->read(0, 3).value(), payload(0xA2));
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesFixedSeeds, CrashRecoverySoakTest,
    ::testing::Combine(::testing::Values(SchemeKind::kVoting,
                                         SchemeKind::kAvailableCopy,
                                         SchemeKind::kNaiveAvailableCopy),
                       ::testing::Values(0xC0FFEEull, 1987ull, 42ull)),
    [](const auto& param_info) {
      std::string name = scheme_kind_name(std::get<0>(param_info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" +
             std::to_string(std::get<1>(param_info.param) & 0xFFFF);
    });

}  // namespace
}  // namespace reldev::core
