// End-to-end checks of the DES experiment harnesses: sane outputs,
// determinism, and the qualitative orderings the paper predicts.
#include "reldev/core/experiment.hpp"

#include <gtest/gtest.h>

namespace reldev::core {
namespace {

TEST(AvailabilityExperimentTest, DeterministicForSameSeed) {
  AvailabilityOptions options;
  options.scheme = SchemeKind::kVoting;
  options.sites = 3;
  options.rho = 0.2;
  options.horizon = 2'000;
  options.warmup = 100;
  options.seed = 42;
  const auto a = run_availability_experiment(options);
  const auto b = run_availability_experiment(options);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.repairs, b.repairs);
}

TEST(AvailabilityExperimentTest, PerfectSitesAreAlwaysAvailable) {
  AvailabilityOptions options;
  options.scheme = SchemeKind::kAvailableCopy;
  options.sites = 3;
  options.rho = 0.0;
  options.horizon = 1'000;
  options.warmup = 10;
  const auto result = run_availability_experiment(options);
  EXPECT_DOUBLE_EQ(result.availability, 1.0);
  EXPECT_EQ(result.failures, 0u);
}

TEST(AvailabilityExperimentTest, SchemeOrderingAtModerateRho) {
  // AC >= NAC > voting(same n) for a harsh rho where differences show.
  AvailabilityOptions options;
  options.sites = 3;
  options.rho = 0.4;
  options.horizon = 30'000;
  options.warmup = 500;
  options.seed = 7;

  options.scheme = SchemeKind::kAvailableCopy;
  const auto ac = run_availability_experiment(options);
  options.scheme = SchemeKind::kNaiveAvailableCopy;
  const auto naive = run_availability_experiment(options);
  options.scheme = SchemeKind::kVoting;
  const auto voting = run_availability_experiment(options);

  EXPECT_GT(ac.availability, voting.availability);
  EXPECT_GT(naive.availability, voting.availability);
  EXPECT_GE(ac.availability + 0.02, naive.availability);
}

TEST(AvailabilityExperimentTest, TotalFailuresHappenAtHighRho) {
  AvailabilityOptions options;
  options.scheme = SchemeKind::kNaiveAvailableCopy;
  options.sites = 2;
  options.rho = 1.0;
  options.horizon = 20'000;
  options.warmup = 100;
  const auto result = run_availability_experiment(options);
  EXPECT_GT(result.total_failures, 0u);
  EXPECT_LT(result.availability, 0.9);
  EXPECT_GT(result.availability, 0.1);
}

TEST(TrafficExperimentTest, NaiveWriteCostsOneTransmission) {
  TrafficOptions options;
  options.scheme = SchemeKind::kNaiveAvailableCopy;
  options.mode = net::AddressingMode::kMulticast;
  options.sites = 5;
  options.rho = 0.05;
  options.horizon = 500;
  const auto result = run_traffic_experiment(options);
  EXPECT_GT(result.writes, 100u);
  EXPECT_DOUBLE_EQ(result.per_write, 1.0);
  EXPECT_DOUBLE_EQ(result.per_read, 0.0);
}

TEST(TrafficExperimentTest, VotingCostsNearPaperFormula) {
  TrafficOptions options;
  options.scheme = SchemeKind::kVoting;
  options.mode = net::AddressingMode::kMulticast;
  options.sites = 5;
  options.rho = 0.05;
  options.horizon = 2'000;
  options.seed = 3;
  const auto result = run_traffic_experiment(options);
  // §5.1: write = 1 + U_V ~ 5.76, read = U_V ~ 4.76 at rho=0.05, n=5.
  EXPECT_NEAR(result.per_write, 5.76, 0.30);
  EXPECT_NEAR(result.per_read, 4.76, 0.30);
}

TEST(TrafficExperimentTest, UniqueAddressingCostsMore) {
  TrafficOptions options;
  options.scheme = SchemeKind::kAvailableCopy;
  options.sites = 5;
  options.rho = 0.05;
  options.horizon = 1'000;
  options.mode = net::AddressingMode::kMulticast;
  const auto multicast = run_traffic_experiment(options);
  options.mode = net::AddressingMode::kUnique;
  const auto unique = run_traffic_experiment(options);
  EXPECT_GT(unique.per_write, multicast.per_write);
}

TEST(TrafficExperimentTest, FailedOpsAreSeparated) {
  // With rho = 1 and only 2 sites, some operations find no coordinator.
  TrafficOptions options;
  options.scheme = SchemeKind::kVoting;
  options.sites = 2;
  options.rho = 1.0;
  options.horizon = 2'000;
  const auto result = run_traffic_experiment(options);
  EXPECT_GT(result.failed_writes + result.failed_reads, 0u);
}

TEST(RecoveryExperimentTest, NaiveOutagesLastLongerAfterTotalFailure) {
  RecoveryOptions options;
  options.sites = 4;
  options.rho = 0.6;  // total failures need to be reasonably common
  options.horizon = 100'000;
  options.seed = 11;

  options.scheme = SchemeKind::kAvailableCopy;
  const auto ac = run_recovery_experiment(options);
  options.scheme = SchemeKind::kNaiveAvailableCopy;
  const auto naive = run_recovery_experiment(options);

  ASSERT_GT(ac.total_failures, 10u);
  ASSERT_GT(naive.total_failures, 10u);
  // §4.4: the conventional algorithm returns to service as soon as the
  // last-failed site is back; naive waits for everyone.
  EXPECT_LT(ac.mean_outage, naive.mean_outage);
}

}  // namespace
}  // namespace reldev::core
