// Scrub-storm soak: for every engine (MCV / AC / NAC) and several seeds,
// run rounds of
//
//   foreground writes -> silent-rot + missed-update injection -> partial
//   scrub cycles under link faults -> hard-kill a site mid-cycle ->
//   restart (cursor must resume) -> heal the network -> bounded
//   anti-entropy convergence
//
// and assert after each round that the group converges within a fixed
// number of scrub cycles to sealed-identical replicas: every site holds
// byte-identical payloads at identical versions, and every block carries
// its last acknowledged payload. This is the storm-hardening contract of
// the scrub daemon: crashes, flapping links, and mid-cycle restarts may
// delay convergence, never prevent it.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "reldev/core/group.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::core {
namespace {

constexpr std::size_t kSites = 3;
constexpr std::size_t kBlocks = 16;
constexpr std::size_t kBlockSize = 64;
constexpr int kRounds = 3;
constexpr int kWritesPerRound = 8;
// The K of the convergence contract: enough cycles for the worst-case
// post-storm peer backoff (a few cycles) to drain plus two clean rounds.
constexpr std::size_t kConvergenceRounds = 10;

storage::BlockData payload(std::uint8_t tag) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(tag));
}

class ScrubStormSoakTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, std::uint64_t>> {
 protected:
  ScrubStormSoakTest()
      : scheme_(std::get<0>(GetParam())), seed_(std::get<1>(GetParam())) {
    dir_ = std::filesystem::temp_directory_path() /
           ("reldev_scrubstorm_" + std::string(scheme_kind_name(scheme_)) +
            "_" + std::to_string(seed_));
    std::filesystem::create_directories(dir_);
    PersistentOptions persist;
    persist.directory = dir_.string();
    group_.emplace(scheme_, GroupConfig::majority(kSites, kBlocks, kBlockSize),
                   persist);
    ScrubOptions options;
    options.batch_blocks = 4;  // four steps per cycle: room for mid-cycle storms
    group_->set_scrub_options(options);
    acked_.assign(kBlocks, 0);
  }

  ~ScrubStormSoakTest() override {
    group_.reset();
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  void tracked_write(Rng& rng) {
    const auto block = static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
    const auto tag = static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF));
    SiteId via = static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
    for (SiteId probe = 0; probe < kSites; ++probe) {
      const SiteId candidate = (via + probe) % kSites;
      if (group_->replica(candidate).state() == SiteState::kAvailable) {
        via = candidate;
        break;
      }
    }
    if (group_->write(via, block, payload(tag)).is_ok()) acked_[block] = tag;
  }

  /// Silent rot: same version, garbage bytes, one site only — invisible to
  /// the version mechanism, visible only to the digest exchange. Blocks
  /// already rotted this round keep their single bad copy so a digest
  /// majority always exists.
  void inject_rot(Rng& rng, std::vector<bool>& rotted) {
    for (int tries = 0; tries < 8; ++tries) {
      const auto block = static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
      if (rotted[block]) continue;
      const auto site = static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
      if (!group_->crash_points(site).has_inner()) continue;
      auto version = group_->store(site).version_of(block);
      if (!version.is_ok() || version.value() == 0) continue;
      ASSERT_TRUE(group_->store(site)
                      .write(block, payload(0xBD), version.value())
                      .is_ok());
      rotted[block] = true;
      return;
    }
  }

  /// One scrub step on every available site, ignoring per-site transient
  /// failures (a comatose replica, a faulted exchange): the storm phase
  /// cares that stepping never wedges, not that it heals.
  void step_all_available() {
    for (SiteId site = 0; site < kSites; ++site) {
      if (group_->replica(site).state() != SiteState::kAvailable) continue;
      (void)group_->scrubber(site).step();
    }
  }

  void settle() {
    for (int i = 0; i < 4; ++i) group_->retry_comatose();
    for (SiteId site = 0; site < kSites; ++site) {
      ASSERT_EQ(group_->replica(site).state(), SiteState::kAvailable)
          << "site " << site << " did not settle";
    }
  }

  /// Sealed-identical: per block, all sites agree on version AND bytes,
  /// and the bytes are the last acknowledged payload.
  void verify_sealed_identical(const std::string& context) {
    for (BlockId block = 0; block < kBlocks; ++block) {
      auto reference = group_->store(0).read(block);
      ASSERT_TRUE(reference.is_ok())
          << context << ": block " << block << " unreadable at site 0: "
          << reference.status().to_string();
      EXPECT_EQ(reference.value().data, payload(acked_[block]))
          << context << ": block " << block
          << " lost its acknowledged payload";
      for (SiteId site = 1; site < kSites; ++site) {
        auto copy = group_->store(site).read(block);
        ASSERT_TRUE(copy.is_ok())
            << context << ": block " << block << " unreadable at site "
            << site << ": " << copy.status().to_string();
        EXPECT_EQ(copy.value().version, reference.value().version)
            << context << ": version split on block " << block << " at site "
            << site;
        EXPECT_EQ(copy.value().data, reference.value().data)
            << context << ": byte split on block " << block << " at site "
            << site;
      }
    }
  }

  SchemeKind scheme_;
  std::uint64_t seed_;
  std::filesystem::path dir_;
  std::optional<ReplicaGroup> group_;
  std::vector<std::uint8_t> acked_;
};

TEST_P(ScrubStormSoakTest, ConvergesWithinBoundedCyclesAfterStorms) {
  Rng rng(seed_);
  for (int round = 0; round < kRounds; ++round) {
    const std::string context = "round " + std::to_string(round);
    SCOPED_TRACE(context);

    // Foreground load everybody acknowledges.
    for (int i = 0; i < kWritesPerRound; ++i) tracked_write(rng);
    for (SiteId site = 0; site < kSites; ++site) {
      ASSERT_TRUE(group_->sync_site(site).is_ok());
    }

    // Latent damage: a couple of silently rotted records (one site per
    // block, so a digest majority exists) plus one missed update — two
    // sites advance a block behind the third's back.
    std::vector<bool> rotted(kBlocks, false);
    inject_rot(rng, rotted);
    inject_rot(rng, rotted);
    const auto stale_block =
        static_cast<BlockId>(rng.uniform_u64(0, kBlocks - 1));
    const auto stale_site =
        static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
    {
      auto version = group_->store(stale_site).version_of(stale_block);
      ASSERT_TRUE(version.is_ok());
      const auto tag = static_cast<std::uint8_t>(rng.uniform_u64(1, 0xDF));
      for (SiteId site = 0; site < kSites; ++site) {
        if (site == stale_site) continue;
        ASSERT_TRUE(group_->store(site)
                        .write(stale_block, payload(tag),
                               version.value() + 1)
                        .is_ok());
      }
      acked_[stale_block] = tag;
    }

    // Storm phase: scrub under flapping links, then a hard kill mid-cycle.
    const auto flap_from = static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
    const auto flap_to =
        static_cast<SiteId>((flap_from + 1 + rng.uniform_u64(0, kSites - 2)) %
                            kSites);
    net::FaultRule flap;
    flap.drop = 0.5;
    group_->faults().set_link_rule(flap_from, flap_to, flap);
    step_all_available();
    step_all_available();

    const auto victim = static_cast<SiteId>(rng.uniform_u64(0, kSites - 1));
    const std::uint64_t cursor_before = group_->scrubber(victim).cursor();
    group_->kill_site(victim);
    step_all_available();  // the survivors keep scrubbing through the storm
    // The restart happens while the link still flaps: its recovery round
    // may time out. That leaves the site alive-but-unrecovered, which the
    // post-heal recovery below must fix — only the reopen itself (local,
    // no network) is required to work here.
    const Status restarted = group_->restart_site(victim);
    (void)restarted;
    // The rebuilt daemon resumed from the persisted cursor — the kill did
    // not reset the cycle.
    EXPECT_EQ(group_->scrubber(victim).cursor(), cursor_before)
        << context << ": scrub cursor lost across kill/restart";

    // Heal and converge: within K full cycles the group must be sealed.
    group_->faults().heal();
    group_->transport().clear_partitions();
    if (group_->replica(victim).state() != SiteState::kAvailable) {
      (void)group_->recover_site(victim);
    }
    settle();
    auto rounds_used = group_->scrub_until_converged(kConvergenceRounds);
    ASSERT_TRUE(rounds_used.is_ok())
        << context << ": " << rounds_used.status().to_string();
    verify_sealed_identical(context);
  }

  // The storm actually exercised the heal paths: across the run the
  // daemons found and repaired real divergence.
  const ScrubStats total = group_->total_scrub_stats();
  EXPECT_GT(total.blocks_scanned, 0u);
  EXPECT_GT(total.stale_healed + total.corrupt_healed, 0u);
  EXPECT_GT(total.cycles_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesFixedSeeds, ScrubStormSoakTest,
    ::testing::Combine(::testing::Values(SchemeKind::kVoting,
                                         SchemeKind::kAvailableCopy,
                                         SchemeKind::kNaiveAvailableCopy),
                       ::testing::Values(7u, 1987u)),
    [](const auto& param_info) {
      std::string name = scheme_kind_name(std::get<0>(param_info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace reldev::core
