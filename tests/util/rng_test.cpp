#include "reldev/util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace reldev {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformU64RespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = rng.uniform_u64(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(RngTest, UniformU64SingletonRange) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(11);
  std::array<int, 4> seen{};
  for (int i = 0; i < 1'000; ++i) {
    seen[rng.uniform_u64(0, 3)]++;
  }
  for (const int count : seen) EXPECT_GT(count, 150);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int samples = 200'000;
  for (int i = 0; i < samples; ++i) sum += rng.exponential(rate);
  const double mean = sum / samples;
  EXPECT_NEAR(mean, 1.0 / rate, 0.01);
}

TEST(RngTest, ExponentialRequiresPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The parent continues unperturbed relative to a reference that also
  // split once; and the child differs from the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

TEST(SplitMixTest, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Reference value for seed 0 (well-known SplitMix64 output).
  std::uint64_t check_state = 0;
  EXPECT_EQ(splitmix64(check_state), first);
}

}  // namespace
}  // namespace reldev
