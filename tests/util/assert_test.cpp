#include "reldev/util/assert.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace reldev {
namespace {

TEST(AssertTest, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(RELDEV_EXPECTS(1 + 1 == 2));
}

TEST(AssertTest, EnsuresPassesOnTrue) {
  EXPECT_NO_THROW(RELDEV_ENSURES(true));
}

TEST(AssertTest, AssertPassesOnTrue) {
  EXPECT_NO_THROW(RELDEV_ASSERT(true));
}

TEST(AssertTest, ExpectsThrowsContractViolation) {
  EXPECT_THROW(RELDEV_EXPECTS(false), ContractViolation);
}

TEST(AssertTest, EnsuresThrowsContractViolation) {
  EXPECT_THROW(RELDEV_ENSURES(false), ContractViolation);
}

TEST(AssertTest, AssertThrowsContractViolation) {
  EXPECT_THROW(RELDEV_ASSERT(false), ContractViolation);
}

TEST(AssertTest, ContractViolationIsALogicError) {
  // Callers that cannot name ContractViolation (e.g. generic test
  // harnesses) can still catch the std::logic_error base.
  EXPECT_THROW(RELDEV_EXPECTS(false), std::logic_error);
}

TEST(AssertTest, MessageNamesKindExpressionAndLocation) {
  try {
    RELDEV_EXPECTS(2 < 1);
    FAIL() << "RELDEV_EXPECTS(false) did not throw";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("assert_test.cpp"), std::string::npos) << what;
  }
}

TEST(AssertTest, EnsuresMessageSaysPostcondition) {
  try {
    RELDEV_ENSURES(false);
    FAIL() << "RELDEV_ENSURES(false) did not throw";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("postcondition"),
              std::string::npos);
  }
}

TEST(AssertTest, AssertMessageSaysInvariant) {
  try {
    RELDEV_ASSERT(false);
    FAIL() << "RELDEV_ASSERT(false) did not throw";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("invariant"),
              std::string::npos);
  }
}

TEST(AssertTest, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  RELDEV_EXPECTS(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(AssertTest, FailingConditionStopsExecutionAtTheCheck) {
  bool reached_after = false;
  try {
    RELDEV_ASSERT(false);
    reached_after = true;
  } catch (const ContractViolation&) {
  }
  EXPECT_FALSE(reached_after);
}

}  // namespace
}  // namespace reldev
