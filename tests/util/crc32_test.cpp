#include "reldev/util/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace reldev {
namespace {

std::vector<std::byte> bytes_of(const char* text) {
  std::vector<std::byte> out(std::strlen(text));
  std::memcpy(out.data(), text, out.size());
  return out;
}

TEST(Crc32Test, EmptyInputIsZero) {
  EXPECT_EQ(crc32c(std::span<const std::byte>{}), 0u);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (canonical check value).
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32c(std::span<const std::byte>(data)), 0xE3069283u);
}

TEST(Crc32Test, DifferentInputsDiffer) {
  const auto a = bytes_of("hello world");
  const auto b = bytes_of("hello worle");
  EXPECT_NE(crc32c(std::span<const std::byte>(a)),
            crc32c(std::span<const std::byte>(b)));
}

TEST(Crc32Test, SeedChainingEqualsWholeBuffer) {
  const auto whole = bytes_of("abcdefghij");
  const auto head = bytes_of("abcde");
  const auto tail = bytes_of("fghij");
  const std::uint32_t chained =
      crc32c(std::span<const std::byte>(tail),
             crc32c(std::span<const std::byte>(head)));
  EXPECT_EQ(chained, crc32c(std::span<const std::byte>(whole)));
}

TEST(Crc32Test, RawPointerOverloadAgrees) {
  const auto data = bytes_of("block payload");
  EXPECT_EQ(crc32c(data.data(), data.size()),
            crc32c(std::span<const std::byte>(data)));
}

TEST(Crc32Test, SingleBitFlipDetected) {
  std::vector<std::byte> data(512, std::byte{0xAB});
  const std::uint32_t original = crc32c(std::span<const std::byte>(data));
  data[255] ^= std::byte{0x01};
  EXPECT_NE(crc32c(std::span<const std::byte>(data)), original);
}

}  // namespace
}  // namespace reldev
