#include "reldev/util/buffer_arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace reldev::util {
namespace {

TEST(BufferArenaTest, ClassCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferArena::class_capacity(0), 512u);
  EXPECT_EQ(BufferArena::class_capacity(1), 512u);
  EXPECT_EQ(BufferArena::class_capacity(512), 512u);
  EXPECT_EQ(BufferArena::class_capacity(513), 1024u);
  EXPECT_EQ(BufferArena::class_capacity(4096), 4096u);
  EXPECT_EQ(BufferArena::class_capacity(4097), 8192u);
  EXPECT_EQ(BufferArena::class_capacity(1u << 20), 1u << 20);
}

TEST(BufferArenaTest, OversizedRequestsAreUnpooled) {
  // Above the largest class the capacity is the request itself.
  EXPECT_EQ(BufferArena::class_capacity((1u << 20) + 1), (1u << 20) + 1);
  BufferArena arena;
  {
    auto big = arena.acquire((1u << 20) + 1);
    EXPECT_EQ(big.size(), (1u << 20) + 1);
  }
  const auto stats = arena.stats();
  EXPECT_EQ(stats.unpooled, 1u);
  EXPECT_EQ(stats.pooled_bytes, 0u);  // freed, not parked
}

TEST(BufferArenaTest, ReleaseThenAcquireIsAHit) {
  BufferArena arena;
  { auto buffer = arena.acquire(4000); }
  auto stats = arena.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.pooled_bytes, 4096u);

  auto again = arena.acquire(3000);  // same 4096 class
  stats = arena.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.pooled_bytes, 0u);
  EXPECT_EQ(again.size(), 3000u);
}

TEST(BufferArenaTest, BufferContentsSurvivePoolRoundTrip) {
  BufferArena arena;
  auto buffer = arena.acquire(64);
  std::memset(buffer.data(), 0xAB, buffer.size());
  EXPECT_EQ(buffer.bytes().size(), 64u);
  EXPECT_EQ(buffer.data()[63], std::byte{0xAB});
  buffer.truncate(10);
  EXPECT_EQ(buffer.size(), 10u);
  buffer.truncate(100);  // never grows
  EXPECT_EQ(buffer.size(), 10u);
}

TEST(BufferArenaTest, MoveTransfersOwnership) {
  BufferArena arena;
  auto a = arena.acquire(100);
  std::byte* const data = a.data();
  ArenaBuffer b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty by contract
  b.release();
  EXPECT_EQ(arena.stats().pooled_bytes, 512u);
}

TEST(BufferArenaTest, RetentionCapDropsExcessBuffers) {
  BufferArena arena(1024);  // room for two 512 B buffers
  {
    auto a = arena.acquire(512);
    auto b = arena.acquire(512);
    auto c = arena.acquire(512);
  }
  EXPECT_EQ(arena.stats().pooled_bytes, 1024u);
  arena.trim();
  EXPECT_EQ(arena.stats().pooled_bytes, 0u);
}

TEST(BufferArenaTest, ConcurrentAcquireReleaseIsCoherent) {
  BufferArena arena;
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      for (int i = 0; i < kIters; ++i) {
        auto buffer = arena.acquire(static_cast<std::size_t>(64 * (t + 1)));
        buffer.data()[0] = static_cast<std::byte>(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = arena.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
}

}  // namespace
}  // namespace reldev::util
