#include "reldev/util/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace reldev {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&sink_);
    saved_level_ = Logger::instance().level();
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(saved_level_);
  }
  std::ostringstream sink_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  Logger::instance().set_level(LogLevel::kInfo);
  RELDEV_INFO("test") << "visible " << 42;
  EXPECT_NE(sink_.str().find("[info] test: visible 42"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  Logger::instance().set_level(LogLevel::kError);
  RELDEV_DEBUG("test") << "hidden";
  RELDEV_WARN("test") << "also hidden";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "trace");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "off");
}

TEST_F(LoggingTest, EnabledMatchesLevel) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
}

}  // namespace
}  // namespace reldev
