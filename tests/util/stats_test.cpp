#include "reldev/util/stats.hpp"

#include <gtest/gtest.h>

#include "reldev/util/assert.hpp"

namespace reldev {
namespace {

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, SingleSampleHasZeroVariance) {
  OnlineStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(TimeWeightedStatTest, ConstantSignal) {
  TimeWeightedStat stat;
  stat.record(0.0, 1.0);
  EXPECT_DOUBLE_EQ(stat.average(10.0), 1.0);
}

TEST(TimeWeightedStatTest, SquareWave) {
  TimeWeightedStat stat;
  stat.record(0.0, 1.0);
  stat.record(4.0, 0.0);  // up for 4
  stat.record(8.0, 1.0);  // down for 4
  EXPECT_DOUBLE_EQ(stat.average(10.0), 0.6);  // up 4 + 2 of 10
}

TEST(TimeWeightedStatTest, LateStartWindow) {
  TimeWeightedStat stat;
  stat.record(5.0, 2.0);
  EXPECT_DOUBLE_EQ(stat.average(15.0), 2.0);
  EXPECT_DOUBLE_EQ(stat.start_time(), 5.0);
}

TEST(TimeWeightedStatTest, NonMonotonicTimeIsContractViolation) {
  TimeWeightedStat stat;
  stat.record(5.0, 1.0);
  EXPECT_THROW(stat.record(4.0, 0.0), ContractViolation);
}

TEST(BatchMeansTest, HalfWidthShrinksWithAgreement) {
  BatchMeans tight;
  BatchMeans loose;
  for (int i = 0; i < 30; ++i) {
    tight.add_batch(0.5 + (i % 2 == 0 ? 0.001 : -0.001));
    loose.add_batch(0.5 + (i % 2 == 0 ? 0.2 : -0.2));
  }
  EXPECT_NEAR(tight.mean(), 0.5, 1e-9);
  EXPECT_LT(tight.half_width(), loose.half_width());
}

TEST(BatchMeansTest, FewBatchesGiveZeroWidth) {
  BatchMeans bm;
  bm.add_batch(1.0);
  EXPECT_DOUBLE_EQ(bm.half_width(), 0.0);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);    // bin 0
  hist.add(9.5);    // bin 9
  hist.add(-5.0);   // clamps to bin 0
  hist.add(50.0);   // clamps to bin 9
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(9), 2u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) hist.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(hist.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(hist.quantile(1.0), 100.0, 1.0);
}

TEST(HistogramTest, InvalidConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

}  // namespace
}  // namespace reldev
