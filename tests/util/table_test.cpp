#include "reldev/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "reldev/util/assert.hpp"

namespace reldev {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  TextTable table({"rho", "A_V(5)"});
  table.add_row({"0.05", "0.998"});
  table.add_row({"0.10", "0.99"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("rho"), std::string::npos);
  EXPECT_NE(text.find("0.998"), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(TableTest, TitleAppearsFirst) {
  TextTable table({"a"});
  table.set_title("Figure 9");
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str().rfind("Figure 9", 0), 0u);
}

TEST(TableTest, CsvOutput) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(TableTest, RowWidthMismatchRejected) {
  TextTable table({"only"});
  EXPECT_THROW(table.add_row({"a", "b"}), ContractViolation);
}

TEST(TableTest, FmtFixedPrecision) {
  EXPECT_EQ(TextTable::fmt(0.123456789, 4), "0.1235");
  EXPECT_EQ(TextTable::fmt(2.0, 1), "2.0");
}

TEST(TableTest, RowCount) {
  TextTable table({"h"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"v"});
  EXPECT_EQ(table.rows(), 1u);
}

}  // namespace
}  // namespace reldev
