#include "reldev/util/serial.hpp"

#include <gtest/gtest.h>

namespace reldev {
namespace {

TEST(SerialTest, RoundTripFixedWidthIntegers) {
  BufferWriter writer;
  writer.put_u8(0xAB);
  writer.put_u16(0xBEEF);
  writer.put_u32(0xDEADBEEF);
  writer.put_u64(0x0123456789ABCDEFull);
  writer.put_i64(-42);
  writer.put_bool(true);
  writer.put_bool(false);

  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u8().value(), 0xAB);
  EXPECT_EQ(reader.get_u16().value(), 0xBEEF);
  EXPECT_EQ(reader.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.get_i64().value(), -42);
  EXPECT_TRUE(reader.get_bool().value());
  EXPECT_FALSE(reader.get_bool().value());
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerialTest, LittleEndianLayout) {
  BufferWriter writer;
  writer.put_u32(0x01020304);
  const auto bytes = writer.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(bytes[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(bytes[3]), 0x01);
}

TEST(SerialTest, RoundTripDouble) {
  BufferWriter writer;
  writer.put_f64(3.141592653589793);
  writer.put_f64(-0.0);
  BufferReader reader(writer.bytes());
  EXPECT_DOUBLE_EQ(reader.get_f64().value(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(reader.get_f64().value(), -0.0);
}

TEST(SerialTest, RoundTripStringAndBytes) {
  BufferWriter writer;
  writer.put_string("reliable device");
  writer.put_string("");
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_string().value(), "reliable device");
  EXPECT_EQ(reader.get_string().value(), "");
}

TEST(SerialTest, RoundTripU64Vector) {
  BufferWriter writer;
  writer.put_u64_vector({1, 2, 3, UINT64_MAX});
  writer.put_u64_vector({});
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u64_vector().value(),
            (std::vector<std::uint64_t>{1, 2, 3, UINT64_MAX}));
  EXPECT_TRUE(reader.get_u64_vector().value().empty());
}

TEST(SerialTest, RawBytesHaveNoPrefix) {
  BufferWriter writer;
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2},
                                       std::byte{3}};
  writer.put_raw(payload);
  EXPECT_EQ(writer.size(), 3u);
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_raw(3).value(), payload);
}

TEST(SerialTest, TruncatedReadIsCorruption) {
  BufferWriter writer;
  writer.put_u16(7);
  BufferReader reader(writer.bytes());
  EXPECT_TRUE(reader.get_u32().status().code() == ErrorCode::kCorruption);
}

TEST(SerialTest, TruncatedVectorIsCorruption) {
  BufferWriter writer;
  writer.put_u32(100);  // claims 100 elements, provides none
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_u64_vector().status().code(), ErrorCode::kCorruption);
}

TEST(SerialTest, BadBoolByteIsCorruption) {
  BufferWriter writer;
  writer.put_u8(2);
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bool().status().code(), ErrorCode::kCorruption);
}

TEST(SerialTest, RemainingTracksOffset) {
  BufferWriter writer;
  writer.put_u64(1);
  writer.put_u64(2);
  BufferReader reader(writer.bytes());
  EXPECT_EQ(reader.remaining(), 16u);
  (void)reader.get_u64();
  EXPECT_EQ(reader.remaining(), 8u);
}

TEST(SerialTest, TakeMovesBuffer) {
  BufferWriter writer;
  writer.put_u32(9);
  auto buffer = std::move(writer).take();
  EXPECT_EQ(buffer.size(), 4u);
}

}  // namespace
}  // namespace reldev
