#include "reldev/util/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "reldev/util/assert.hpp"

namespace reldev {
namespace {

TEST(MutexTest, LockUnlockTracksHolder) {
  Mutex mutex;
  EXPECT_FALSE(mutex.held_by_caller());
  mutex.lock();
  EXPECT_TRUE(mutex.held_by_caller());
  mutex.unlock();
  EXPECT_FALSE(mutex.held_by_caller());
}

TEST(MutexTest, TryLockSucceedsWhenFree) {
  Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  EXPECT_TRUE(mutex.held_by_caller());
  mutex.unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldByAnotherThread) {
  Mutex mutex;
  mutex.lock();
  bool acquired = true;
  std::thread other([&] { acquired = mutex.try_lock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mutex.unlock();
}

TEST(MutexTest, AssertHeldPassesWhenHeld) {
  Mutex mutex;
  const MutexLock lock(mutex);
  EXPECT_NO_THROW(mutex.assert_held());
}

TEST(MutexTest, AssertHeldThrowsWhenNotHeld) {
  Mutex mutex;
  EXPECT_THROW(mutex.assert_held(), ContractViolation);
}

TEST(MutexTest, AssertHeldThrowsWhenHeldByAnotherThread) {
  // held_by_caller() is per-thread, not "is locked": holding the mutex on
  // one thread must not satisfy assert_held() on another.
  Mutex mutex;
  mutex.lock();
  bool threw = false;
  std::thread other([&] {
    try {
      mutex.assert_held();
    } catch (const ContractViolation&) {
      threw = true;
    }
  });
  other.join();
  mutex.unlock();
  EXPECT_TRUE(threw);
}

TEST(MutexTest, HolderClearedAfterUnlockEvenAcrossThreads) {
  Mutex mutex;
  std::thread other([&] {
    mutex.lock();
    mutex.unlock();
  });
  other.join();
  EXPECT_FALSE(mutex.held_by_caller());
  // And the mutex is genuinely free again.
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mutex;
  {
    const MutexLock lock(mutex);
    EXPECT_TRUE(mutex.held_by_caller());
  }
  EXPECT_FALSE(mutex.held_by_caller());
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(MutexLockTest, ReleasesWhenScopeExitsViaException) {
  Mutex mutex;
  try {
    const MutexLock lock(mutex);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(mutex.held_by_caller());
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CondVarTest, WaitReleasesMutexWhileBlockedAndReacquires) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    const MutexLock lock(mutex);
    while (!ready) cv.wait(mutex);
    // After wait returns the mutex is held again.
    mutex.assert_held();
  });
  // The waiter must let go of the mutex while blocked, or this lock would
  // deadlock.
  for (;;) {
    const MutexLock lock(mutex);
    if (!ready) {
      ready = true;
      cv.notify_one();
      break;
    }
  }
  waiter.join();
  EXPECT_TRUE(ready);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotification) {
  Mutex mutex;
  CondVar cv;
  const MutexLock lock(mutex);
  const bool notified = cv.wait_for(mutex, std::chrono::milliseconds(5));
  EXPECT_FALSE(notified);
  // The mutex is reacquired even on timeout.
  EXPECT_TRUE(mutex.held_by_caller());
}

TEST(CondVarTest, WaitForReturnsTrueWhenNotified) {
  Mutex mutex;
  CondVar cv;
  bool stop = false;
  std::thread notifier([&] {
    for (;;) {
      {
        const MutexLock lock(mutex);
        if (stop) return;
      }
      cv.notify_all();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  bool notified = false;
  {
    const MutexLock lock(mutex);
    // Spurious wakeups cannot produce a false positive here: wait_for only
    // reports true on an actual notify.
    notified = cv.wait_for(mutex, std::chrono::seconds(10));
    stop = true;
  }
  notifier.join();
  EXPECT_TRUE(notified);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      const MutexLock lock(mutex);
      while (!go) cv.wait(mutex);
      ++awake;
    });
  }
  {
    const MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(AnnotationMacroTest, MacrosCompileToValidCodeOnEveryCompiler) {
  // On GCC every RELDEV_* attribute macro expands to nothing; on clang
  // they expand to thread-safety attributes. Either way this struct —
  // which uses the main macros in realistic positions — must compile and
  // behave like plain code. This is the "no-op on GCC" contract.
  struct Annotated {
    Mutex mutex;
    int guarded RELDEV_GUARDED_BY(mutex) = 0;
    int* pointee RELDEV_PT_GUARDED_BY(mutex) = nullptr;

    void bump() RELDEV_EXCLUDES(mutex) {
      const MutexLock lock(mutex);
      bump_locked();
    }
    void bump_locked() RELDEV_REQUIRES(mutex) { ++guarded; }
    int value() RELDEV_EXCLUDES(mutex) {
      const MutexLock lock(mutex);
      return guarded;
    }
  };
  Annotated annotated;
  annotated.bump();
  annotated.bump();
  EXPECT_EQ(annotated.value(), 2);
}

}  // namespace
}  // namespace reldev
