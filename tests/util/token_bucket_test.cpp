// TokenBucket budget accounting under synthetic time. The bucket always
// grants and reports debt as a delay — these tests pin down the refill
// arithmetic the scrubber's throttling rests on.
#include "reldev/util/token_bucket.hpp"

#include <gtest/gtest.h>

namespace reldev {
namespace {

using Clock = TokenBucket::Clock;

Clock::time_point at(std::uint64_t ms) {
  return Clock::time_point{} + std::chrono::milliseconds(ms);
}

TEST(TokenBucketTest, DefaultConstructedIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_EQ(bucket.acquire(1'000'000'000, at(0)).count(), 0);
  EXPECT_EQ(bucket.acquire(1'000'000'000, at(0)).count(), 0);
}

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(0, 0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_EQ(bucket.acquire(12345, at(7)).count(), 0);
}

TEST(TokenBucketTest, BurstIsGrantedWithoutDelay) {
  TokenBucket bucket(1000, 1000);  // 1000 tokens/s, burst 1000
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_EQ(bucket.acquire(1000, at(0)).count(), 0);
}

TEST(TokenBucketTest, DebtIsProportionalToOverdraft) {
  TokenBucket bucket(1000, 1000);
  ASSERT_EQ(bucket.acquire(1000, at(0)).count(), 0);  // drain the burst
  // 500 more tokens at rate 1000/s = 0.5 s of debt.
  const auto delay = bucket.acquire(500, at(0));
  EXPECT_EQ(std::chrono::duration_cast<std::chrono::milliseconds>(delay)
                .count(),
            500);
}

TEST(TokenBucketTest, ElapsedTimeRefills) {
  TokenBucket bucket(1000, 1000);
  ASSERT_EQ(bucket.acquire(1000, at(0)).count(), 0);
  // One second later the bucket is full again.
  EXPECT_EQ(bucket.acquire(1000, at(1000)).count(), 0);
  // But only up to the burst: ten idle seconds do not bank ten seconds
  // worth of tokens.
  ASSERT_EQ(bucket.acquire(1000, at(12'000)).count(), 0);
  EXPECT_GT(bucket.acquire(1000, at(12'000)).count(), 0);
}

TEST(TokenBucketTest, DebtDrainsOverTime) {
  TokenBucket bucket(1000, 1000);
  // Burst plus one extra second of tokens: granted, with 1 s of debt.
  const auto first = bucket.acquire(2000, at(0));
  EXPECT_EQ(std::chrono::duration_cast<std::chrono::milliseconds>(first)
                .count(),
            1000);
  // Half the debt has drained after 500 ms: the next single token waits
  // for the remaining half second plus its own millisecond.
  const auto delay = bucket.acquire(1, at(500));
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(delay).count();
  EXPECT_GE(ms, 500);
  EXPECT_LE(ms, 502);
}

TEST(TokenBucketTest, ZeroBurstClampsToRate) {
  TokenBucket bucket(100, 0);
  EXPECT_EQ(bucket.acquire(100, at(0)).count(), 0);
  EXPECT_GT(bucket.acquire(1, at(0)).count(), 0);
}

TEST(TokenBucketTest, AvailableReportsCurrentLevel) {
  TokenBucket bucket(1000, 1000);
  EXPECT_DOUBLE_EQ(bucket.available(at(0)), 1000.0);
  (void)bucket.acquire(600, at(0));
  EXPECT_DOUBLE_EQ(bucket.available(at(0)), 400.0);
  EXPECT_NEAR(bucket.available(at(100)), 500.0, 1e-6);
}

}  // namespace
}  // namespace reldev
