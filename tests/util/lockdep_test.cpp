// Tests for the runtime lock-order checker (lockdep.hpp, DESIGN.md §15).
// The full suite only exists in RELDEV_LOCKDEP builds; without the macro
// the checker collapses to no-ops and only the inert-API contract is
// verified, so this file compiles and passes in every configuration.
#include "reldev/util/lockdep.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "reldev/util/thread_annotations.hpp"

namespace reldev::lockdep {
namespace {

#if !defined(RELDEV_LOCKDEP)

TEST(LockdepDisabledTest, ApiIsInertWithoutTheMacro) {
  EXPECT_FALSE(enabled());
  EXPECT_EQ(held_count(), 0);
  check_blocking("fsync");  // no-op, must not report or abort
  EXPECT_EQ(violation_count(), 0u);
  {
    const AllowBlocking allow("inert");
    check_blocking("recv");
  }
  EXPECT_EQ(violation_count(), 0u);
  reset();
  EXPECT_EQ(violation_count(), 0u);
}

#else  // RELDEV_LOCKDEP

/// Installs a capturing handler (so violations do not abort) and wipes the
/// global graph before and after each test.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_handler([this](const Violation& violation) {
      violations_.push_back(violation);
    });
  }

  void TearDown() override {
    set_handler(nullptr);
    reset();
  }

  /// Reports of the given kind captured so far.
  [[nodiscard]] std::vector<Violation> of_kind(ViolationKind kind) const {
    std::vector<Violation> out;
    for (const Violation& v : violations_) {
      if (v.kind == kind) out.push_back(v);
    }
    return out;
  }

  std::vector<Violation> violations_;
};

TEST_F(LockdepTest, EnabledAndInitiallyClean) {
  EXPECT_TRUE(enabled());
  EXPECT_EQ(held_count(), 0);
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(LockdepTest, HeldCountTracksNestedLocks) {
  Mutex a("ld-test.held.a");
  Mutex b("ld-test.held.b");
  EXPECT_EQ(held_count(), 0);
  {
    const MutexLock lock_a(a);
    EXPECT_EQ(held_count(), 1);
    {
      const MutexLock lock_b(b);
      EXPECT_EQ(held_count(), 2);
    }
    EXPECT_EQ(held_count(), 1);
  }
  EXPECT_EQ(held_count(), 0);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, ConsistentOrderIsClean) {
  Mutex a("ld-test.consistent.a");
  Mutex b("ld-test.consistent.b");
  for (int i = 0; i < 3; ++i) {
    const MutexLock lock_a(a);
    const MutexLock lock_b(b);
  }
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(LockdepTest, AbbaOrderIsReportedWithBothStacks) {
  Mutex a("ld-test.abba.a");
  Mutex b("ld-test.abba.b");
  {
    const MutexLock lock_a(a);
    const MutexLock lock_b(b);  // records a -> b
  }
  {
    const MutexLock lock_b(b);
    const MutexLock lock_a(a);  // closes the cycle: inversion
  }
  const auto inversions = of_kind(ViolationKind::kOrderInversion);
  ASSERT_EQ(inversions.size(), 1u);
  const std::string& text = inversions[0].text;
  EXPECT_NE(text.find("ORDER INVERSION"), std::string::npos) << text;
  // Both class names, and both acquisition stacks: the acquiring side and
  // the previously recorded conflicting edge.
  EXPECT_NE(text.find("ld-test.abba.a"), std::string::npos) << text;
  EXPECT_NE(text.find("ld-test.abba.b"), std::string::npos) << text;
  EXPECT_NE(text.find("this acquisition stack"), std::string::npos) << text;
  EXPECT_NE(text.find("recorded acquisition stack"), std::string::npos)
      << text;
  // The held-chain lines carry the MutexLock construction site (this file).
  EXPECT_NE(text.find("lockdep_test.cpp"), std::string::npos) << text;
}

TEST_F(LockdepTest, InversionIsReportedOncePerClassPair) {
  Mutex a("ld-test.dedup.a");
  Mutex b("ld-test.dedup.b");
  {
    const MutexLock lock_a(a);
    const MutexLock lock_b(b);
  }
  for (int i = 0; i < 4; ++i) {
    const MutexLock lock_b(b);
    const MutexLock lock_a(a);
  }
  EXPECT_EQ(of_kind(ViolationKind::kOrderInversion).size(), 1u);
  EXPECT_EQ(violation_count(), 1u);
}

TEST_F(LockdepTest, TransitiveCycleIsReported) {
  Mutex a("ld-test.transitive.a");
  Mutex b("ld-test.transitive.b");
  Mutex c("ld-test.transitive.c");
  {
    const MutexLock lock_a(a);
    const MutexLock lock_b(b);  // a -> b
  }
  {
    const MutexLock lock_b(b);
    const MutexLock lock_c(c);  // b -> c
  }
  {
    const MutexLock lock_c(c);
    const MutexLock lock_a(a);  // a ->* c already known: cycle
  }
  const auto inversions = of_kind(ViolationKind::kOrderInversion);
  ASSERT_EQ(inversions.size(), 1u);
  const std::string& text = inversions[0].text;
  // The report spells out the recorded path a -> b -> c.
  EXPECT_NE(text.find("ld-test.transitive.a -> ld-test.transitive.b"),
            std::string::npos)
      << text;
}

TEST_F(LockdepTest, OrderingGeneralizesAcrossInstancesOfAClass) {
  // Two mutexes constructed with the same explicit name are one class:
  // an ordering recorded through instance #1 applies to instance #2.
  Mutex pool_a("ld-test.pool");
  Mutex pool_b("ld-test.pool");
  Mutex other("ld-test.other");
  {
    const MutexLock lock_pool(pool_a);
    const MutexLock lock_other(other);  // pool -> other
  }
  {
    const MutexLock lock_other(other);
    const MutexLock lock_pool(pool_b);  // other -> pool: inversion via #2
  }
  EXPECT_EQ(of_kind(ViolationKind::kOrderInversion).size(), 1u);
}

TEST_F(LockdepTest, SameClassNestingIsNotAnOrdering) {
  // Nesting two instances of one class is deliberately exempt from edge
  // recording (it would be a self-loop); the annotation layer's
  // ACQUIRED_AFTER is the tool for intra-class order.
  Mutex first("ld-test.same-class");
  Mutex second("ld-test.same-class");
  {
    const MutexLock lock_1(first);
    const MutexLock lock_2(second);
  }
  {
    const MutexLock lock_2(second);
    const MutexLock lock_1(first);
  }
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, OrderingFactsSurviveAcrossThreads) {
  Mutex a("ld-test.threads.a");
  Mutex b("ld-test.threads.b");
  std::thread recorder([&] {
    const MutexLock lock_a(a);
    const MutexLock lock_b(b);  // a -> b, recorded by another thread
  });
  recorder.join();
  {
    const MutexLock lock_b(b);
    const MutexLock lock_a(a);  // this thread closes the cycle
  }
  EXPECT_EQ(of_kind(ViolationKind::kOrderInversion).size(), 1u);
}

TEST_F(LockdepTest, TryLockDoesNotRecordAnEdgeButCountsAsHeld) {
  Mutex a("ld-test.trylock.a");
  Mutex b("ld-test.trylock.b");
  {
    const MutexLock lock_a(a);
    ASSERT_TRUE(b.try_lock());  // no pre_acquire: no a -> b edge
    EXPECT_EQ(held_count(), 2);
    b.unlock();
  }
  {
    const MutexLock lock_b(b);
    const MutexLock lock_a(a);  // b -> a is the only recorded order: clean
  }
  EXPECT_TRUE(of_kind(ViolationKind::kOrderInversion).empty());
}

TEST_F(LockdepTest, BlockingCallUnderLockIsReported) {
  Mutex a("ld-test.blocking.a");
  {
    const MutexLock lock_a(a);
    check_blocking("fsync");
  }
  const auto blocking = of_kind(ViolationKind::kBlockingUnderLock);
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_NE(blocking[0].text.find("fsync"), std::string::npos);
  EXPECT_NE(blocking[0].text.find("ld-test.blocking.a"), std::string::npos);
  EXPECT_NE(blocking[0].text.find("blocking call stack"), std::string::npos);
}

TEST_F(LockdepTest, BlockingReportsAreDedupedPerOperationAndClass) {
  Mutex a("ld-test.blocking-dedup.a");
  const MutexLock lock_a(a);
  check_blocking("recv");
  check_blocking("recv");  // same (op, top class): collapsed
  check_blocking("send");  // different op: fresh report
  EXPECT_EQ(of_kind(ViolationKind::kBlockingUnderLock).size(), 2u);
}

TEST_F(LockdepTest, BlockingWithNoLockHeldIsClean) {
  check_blocking("fsync");
  check_blocking("recv");
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, AllowBlockingSuppressesTheReport) {
  Mutex a("ld-test.allow.a");
  const MutexLock lock_a(a);
  {
    const AllowBlocking allow("test: blocking here is the point");
    check_blocking("fsync");
  }
  EXPECT_TRUE(violations_.empty());
  check_blocking("fsync");  // scope ended: reported again
  EXPECT_EQ(of_kind(ViolationKind::kBlockingUnderLock).size(), 1u);
}

TEST_F(LockdepTest, CondVarWaitWithOnlyItsMutexIsClean) {
  Mutex m("ld-test.wait.clean");
  CondVar cv;
  {
    const MutexLock lock(m);
    EXPECT_FALSE(cv.wait_for(m, std::chrono::milliseconds(5)));
    // The wait released and reacquired without corrupting the held stack.
    EXPECT_EQ(held_count(), 1);
    EXPECT_TRUE(m.held_by_caller());
  }
  EXPECT_EQ(held_count(), 0);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, CondVarWaitThroughNotifyKeepsHeldStackIntact) {
  Mutex m("ld-test.wait.notify");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    const MutexLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    const MutexLock lock(m);
    while (!ready) cv.wait(m);
    EXPECT_EQ(held_count(), 1);
    EXPECT_TRUE(m.held_by_caller());
  }
  waker.join();
  EXPECT_EQ(held_count(), 0);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockdepTest, CondVarWaitWithAnotherLockHeldIsReported) {
  Mutex outer("ld-test.wait.outer");
  Mutex inner("ld-test.wait.inner");
  CondVar cv;
  {
    const MutexLock lock_outer(outer);
    const MutexLock lock_inner(inner);
    EXPECT_FALSE(cv.wait_for(inner, std::chrono::milliseconds(5)));
    // Both locks are held again after the wake.
    EXPECT_EQ(held_count(), 2);
  }
  const auto waits = of_kind(ViolationKind::kWaitWithLocksHeld);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_NE(waits[0].text.find("ld-test.wait.inner"), std::string::npos);
  EXPECT_NE(waits[0].text.find("ld-test.wait.outer"), std::string::npos);
  EXPECT_EQ(held_count(), 0);
}

TEST_F(LockdepTest, ViolationCountAndResetRoundTrip) {
  Mutex a("ld-test.reset.a");
  {
    const MutexLock lock_a(a);
    check_blocking("fsync");
  }
  EXPECT_EQ(violation_count(), 1u);
  reset();
  EXPECT_EQ(violation_count(), 0u);
  // The dedup table was cleared too: the same report can fire again.
  {
    const MutexLock lock_a(a);
    check_blocking("fsync");
  }
  EXPECT_EQ(violation_count(), 1u);
}

#endif  // RELDEV_LOCKDEP

}  // namespace
}  // namespace reldev::lockdep
