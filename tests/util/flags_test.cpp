#include "reldev/util/flags.hpp"

#include <gtest/gtest.h>

namespace reldev {
namespace {

FlagSet make_flags() {
  FlagSet flags;
  flags.add_int("sites", 3, "number of sites");
  flags.add_double("rho", 0.05, "failure/repair ratio");
  flags.add_string("scheme", "voting", "consistency scheme");
  flags.add_bool("csv", false, "emit CSV");
  return flags;
}

TEST(FlagsTest, DefaultsApplyWithoutArguments) {
  auto flags = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv).is_ok());
  EXPECT_EQ(flags.get_int("sites"), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("rho"), 0.05);
  EXPECT_EQ(flags.get_string("scheme"), "voting");
  EXPECT_FALSE(flags.get_bool("csv"));
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--sites=7", "--rho=0.1", "--scheme=ac",
                        "--csv=true"};
  ASSERT_TRUE(flags.parse(5, argv).is_ok());
  EXPECT_EQ(flags.get_int("sites"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rho"), 0.1);
  EXPECT_EQ(flags.get_string("scheme"), "ac");
  EXPECT_TRUE(flags.get_bool("csv"));
}

TEST(FlagsTest, SpaceSyntax) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--sites", "9"};
  ASSERT_TRUE(flags.parse(3, argv).is_ok());
  EXPECT_EQ(flags.get_int("sites"), 9);
}

TEST(FlagsTest, BareBooleanFlag) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--csv"};
  ASSERT_TRUE(flags.parse(2, argv).is_ok());
  EXPECT_TRUE(flags.get_bool("csv"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EQ(flags.parse(2, argv).code(), ErrorCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedIntRejected) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--sites=three"};
  EXPECT_EQ(flags.parse(2, argv).code(), ErrorCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedDoubleRejected) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--rho=0.1x"};
  EXPECT_EQ(flags.parse(2, argv).code(), ErrorCode::kInvalidArgument);
}

TEST(FlagsTest, MissingValueRejected) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--sites"};
  EXPECT_EQ(flags.parse(2, argv).code(), ErrorCode::kInvalidArgument);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "input.dat", "--sites=2", "more"};
  ASSERT_TRUE(flags.parse(4, argv).is_ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.dat", "more"}));
}

TEST(FlagsTest, HelpRequested) {
  auto flags = make_flags();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.parse(2, argv).is_ok());
  EXPECT_TRUE(flags.help_requested());
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--sites"), std::string::npos);
  EXPECT_NE(usage.find("failure/repair ratio"), std::string::npos);
}

TEST(FlagsTest, UnregisteredGetIsContractViolation) {
  auto flags = make_flags();
  EXPECT_THROW((void)flags.get_int("nope"), ContractViolation);
}

}  // namespace
}  // namespace reldev
