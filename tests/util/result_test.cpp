#include "reldev/util/result.hpp"

#include <gtest/gtest.h>

namespace reldev {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = errors::unavailable("no quorum");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(status.message(), "no quorum");
  EXPECT_EQ(status.to_string(), "unavailable: no quorum");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(errors::io_error("a"), errors::io_error("b"));
  EXPECT_FALSE(errors::io_error("a") == errors::timeout("a"));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(code)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> result(errors::not_found("gone"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_FALSE(result);
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, ValueOnErrorIsContractViolation) {
  const Result<int> result(errors::not_found("gone"));
  EXPECT_THROW((void)result.value(), ContractViolation);
}

TEST(ResultTest, OkStatusCannotConstructResult) {
  EXPECT_THROW(Result<int>(Status::ok()), ContractViolation);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Result<int>(7).value_or(1), 7);
  EXPECT_EQ(Result<int>(errors::timeout("t")).value_or(1), 1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace reldev
