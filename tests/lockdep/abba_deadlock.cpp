// Acceptance check for the runtime lock-order checker (DESIGN.md §15): a
// deliberate ABBA pattern across two threads. The threads are sequenced
// (join between them) so the process never actually deadlocks — lockdep
// reports the *ordering* cycle, which is the whole point: a potential
// deadlock is caught on the first run, not on the unlucky interleaving.
//
//   ./abba_deadlock          exits 0 iff lockdep reported the inversion,
//                            with BOTH acquisition stacks in the report;
//   ./abba_deadlock fixed    takes the locks in one consistent order and
//                            exits 0 iff lockdep stayed silent.
//
// ctest registers both modes in RELDEV_LOCKDEP builds.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "reldev/util/lockdep.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace {

reldev::Mutex g_bank_accounts{"abba.bank-accounts"};
reldev::Mutex g_audit_log{"abba.audit-log"};

/// Thread 1's discipline: accounts, then the audit log.
void transfer() {
  const reldev::MutexLock accounts(g_bank_accounts);
  const reldev::MutexLock audit(g_audit_log);
}

/// Thread 2's discipline in the buggy build: audit log, then accounts —
/// the classic ABBA. In the fixed build it matches thread 1.
void audit(bool fixed) {
  if (fixed) {
    const reldev::MutexLock accounts(g_bank_accounts);
    const reldev::MutexLock log(g_audit_log);
    return;
  }
  const reldev::MutexLock log(g_audit_log);
  const reldev::MutexLock accounts(g_bank_accounts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fixed = argc > 1 && std::strcmp(argv[1], "fixed") == 0;
  if (!reldev::lockdep::enabled()) {
    std::fprintf(stderr,
                 "abba_deadlock: built without RELDEV_LOCKDEP; nothing to "
                 "check\n");
    return 0;
  }

  std::vector<reldev::lockdep::Violation> reports;
  reldev::lockdep::set_handler(
      [&reports](const reldev::lockdep::Violation& violation) {
        reports.push_back(violation);
      });

  std::thread first(transfer);
  first.join();
  std::thread second(audit, fixed);
  second.join();

  if (fixed) {
    if (!reports.empty()) {
      std::fprintf(stderr,
                   "FAIL: consistent ordering still produced %zu report(s):\n"
                   "%s\n",
                   reports.size(), reports[0].text.c_str());
      return 1;
    }
    std::printf("OK: consistent lock order, lockdep silent\n");
    return 0;
  }

  if (reports.size() != 1) {
    std::fprintf(stderr, "FAIL: expected 1 inversion report, got %zu\n",
                 reports.size());
    return 1;
  }
  const reldev::lockdep::Violation& report = reports[0];
  if (report.kind != reldev::lockdep::ViolationKind::kOrderInversion) {
    std::fprintf(stderr, "FAIL: wrong violation kind: %s\n",
                 reldev::lockdep::violation_kind_name(report.kind));
    return 1;
  }
  const std::string& text = report.text;
  for (const char* needle :
       {"abba.bank-accounts", "abba.audit-log", "this acquisition stack",
        "recorded acquisition stack"}) {
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report lacks \"%s\":\n%s\n", needle,
                   text.c_str());
      return 1;
    }
  }
  std::printf("OK: ABBA ordering reported with both stacks:\n%s\n",
              text.c_str());
  return 0;
}
