// Storage-level scrub primitives: digest scans, demotion of unreadable
// blocks, and the crash-safe cursor in the site-metadata blob (including
// its backward compatibility with pre-scrubber blobs).
#include "reldev/storage/scrubber.hpp"

#include <gtest/gtest.h>

#include "reldev/storage/mem_block_store.hpp"
#include "reldev/storage/site_metadata.hpp"

namespace reldev::storage {
namespace {

BlockData payload(std::size_t size, std::uint8_t seed) {
  return BlockData(size, static_cast<std::byte>(seed));
}

/// A store whose reads fail for chosen blocks — the shape of latent media
/// corruption under a checksummed persistent store. Demoting a poisoned
/// block clears the poison, as rewriting a damaged record would.
class PoisonableStore final : public BlockStore {
 public:
  PoisonableStore(std::size_t block_count, std::size_t block_size)
      : inner_(block_count, block_size) {}

  void poison(BlockId block) { poisoned_.insert(block); }

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return inner_.block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return inner_.block_size();
  }
  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override {
    if (poisoned_.contains(block)) {
      return errors::corruption("poisoned block");
    }
    return inner_.read(block);
  }
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
                             VersionNumber version) override {
    return inner_.write(block, data, version);
  }
  [[nodiscard]] Status demote(BlockId block) override {
    poisoned_.erase(block);
    return inner_.demote(block);
  }
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override {
    return inner_.version_of(block);
  }
  [[nodiscard]] VersionVector version_vector() const override {
    return inner_.version_vector();
  }
  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override {
    return inner_.put_metadata(blob);
  }
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override {
    return inner_.get_metadata();
  }

 private:
  MemBlockStore inner_;
  std::set<BlockId> poisoned_;
};

TEST(ScrubDigestTest, SameBytesSameDigestDifferentBytesDiffer) {
  const BlockData a = payload(64, 1);
  const BlockData b = payload(64, 1);
  const BlockData c = payload(64, 2);
  EXPECT_EQ(scrub_digest(a), scrub_digest(b));
  EXPECT_NE(scrub_digest(a), scrub_digest(c));
}

TEST(DigestScanTest, ReportsVersionAndDigestPerBlock) {
  MemBlockStore store(4, 64);
  ASSERT_TRUE(store.write(1, payload(64, 7), 3).is_ok());
  auto scan = scan_digests(store, 0, 4);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().first, 0u);
  ASSERT_EQ(scan.value().versions.size(), 4u);
  ASSERT_EQ(scan.value().digests.size(), 4u);
  EXPECT_EQ(scan.value().versions[1], 3u);
  EXPECT_EQ(scan.value().versions[0], 0u);
  EXPECT_EQ(scan.value().digests[1], scrub_digest(payload(64, 7)));
  EXPECT_TRUE(scan.value().demoted.empty());
}

TEST(DigestScanTest, CountClampsToDeviceEnd) {
  MemBlockStore store(4, 64);
  auto scan = scan_digests(store, 2, 100);
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().first, 2u);
  EXPECT_EQ(scan.value().versions.size(), 2u);
}

TEST(DigestScanTest, StartPastEndIsRejected) {
  MemBlockStore store(4, 64);
  auto scan = scan_digests(store, 5, 1);
  EXPECT_EQ(scan.status().code(), ErrorCode::kInvalidArgument);
}

TEST(DigestScanTest, UnreadableBlockIsDemotedAndReported) {
  PoisonableStore store(4, 64);
  ASSERT_TRUE(store.write(2, payload(64, 9), 5).is_ok());
  store.poison(2);
  auto scan = scan_digests(store, 0, 4);
  ASSERT_TRUE(scan.is_ok());
  // Reported as a version-0 zero block — the scan never vouches for
  // damaged bytes — and demoted in place.
  EXPECT_EQ(scan.value().versions[2], 0u);
  EXPECT_EQ(scan.value().digests[2], scrub_digest(payload(64, 0)));
  ASSERT_EQ(scan.value().demoted.size(), 1u);
  EXPECT_EQ(scan.value().demoted[0], 2u);
  EXPECT_EQ(store.version_of(2).value(), 0u);
  EXPECT_TRUE(store.read(2).is_ok());
}

TEST(ScrubCursorTest, MissingBlobLoadsAsZero) {
  MemBlockStore store(4, 64);
  EXPECT_EQ(load_scrub_cursor(store), 0u);
}

TEST(ScrubCursorTest, RoundTripsThroughMetadata) {
  MemBlockStore store(4, 64);
  ASSERT_TRUE(save_scrub_cursor(store, 3).is_ok());
  EXPECT_EQ(load_scrub_cursor(store), 3u);
  ASSERT_TRUE(save_scrub_cursor(store, 0).is_ok());
  EXPECT_EQ(load_scrub_cursor(store), 0u);
}

TEST(ScrubCursorTest, PreservesAvailabilityFields) {
  MemBlockStore store(4, 64);
  SiteMetadata meta;
  meta.site = 2;
  meta.clean_shutdown = true;
  meta.was_available = SiteSet{0, 1, 2};
  ASSERT_TRUE(store.put_metadata(meta.encode()).is_ok());

  ASSERT_TRUE(save_scrub_cursor(store, 7).is_ok());

  auto reloaded = SiteMetadata::decode(store.get_metadata().value());
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_EQ(reloaded.value().site, 2u);
  EXPECT_TRUE(reloaded.value().clean_shutdown);
  EXPECT_EQ(reloaded.value().was_available, (SiteSet{0, 1, 2}));
  EXPECT_EQ(reloaded.value().scrub_cursor, 7u);
}

TEST(ScrubCursorTest, PreScrubberBlobDecodesWithoutCursor) {
  // A blob written before the cursor field existed: the encoder emits the
  // trailing field only when present, so this is exactly such a blob.
  SiteMetadata old;
  old.site = 1;
  old.was_available = SiteSet{0, 1};
  const auto blob = old.encode();

  auto decoded = SiteMetadata::decode(blob);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(decoded.value().scrub_cursor.has_value());

  MemBlockStore store(4, 64);
  ASSERT_TRUE(store.put_metadata(blob).is_ok());
  EXPECT_EQ(load_scrub_cursor(store), 0u);
}

}  // namespace
}  // namespace reldev::storage
