#include "reldev/storage/site_metadata.hpp"

#include <gtest/gtest.h>

namespace reldev::storage {
namespace {

TEST(SiteMetadataTest, RoundTripWithWasAvailable) {
  SiteMetadata meta;
  meta.site = 3;
  meta.clean_shutdown = true;
  meta.was_available = SiteSet{0, 2, 3};
  const auto blob = meta.encode();
  auto decoded = SiteMetadata::decode(blob);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), meta);
}

TEST(SiteMetadataTest, RoundTripWithoutWasAvailable) {
  SiteMetadata meta;
  meta.site = 1;
  meta.clean_shutdown = false;
  meta.was_available = std::nullopt;
  auto decoded = SiteMetadata::decode(meta.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), meta);
  EXPECT_FALSE(decoded.value().was_available.has_value());
}

TEST(SiteMetadataTest, EmptyWasAvailableSetSurvives) {
  SiteMetadata meta;
  meta.was_available = SiteSet{};
  auto decoded = SiteMetadata::decode(meta.encode());
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_TRUE(decoded.value().was_available.has_value());
  EXPECT_TRUE(decoded.value().was_available->empty());
}

TEST(SiteMetadataTest, BadMagicRejected) {
  SiteMetadata meta;
  auto blob = meta.encode();
  blob[0] ^= std::byte{0xFF};
  EXPECT_EQ(SiteMetadata::decode(blob).status().code(),
            reldev::ErrorCode::kCorruption);
}

TEST(SiteMetadataTest, TruncatedBlobRejected) {
  SiteMetadata meta;
  meta.was_available = SiteSet{1, 2};
  auto blob = meta.encode();
  blob.resize(blob.size() - 4);
  EXPECT_FALSE(SiteMetadata::decode(blob).is_ok());
}

TEST(SiteMetadataTest, EmptyBlobRejected) {
  EXPECT_FALSE(SiteMetadata::decode({}).is_ok());
}

}  // namespace
}  // namespace reldev::storage
