// Byte-level torn-write tests: each test mutilates the store file exactly
// the way an ill-timed crash could — a truncated record, a record whose
// version advanced but whose payload did not, a garbage metadata slot —
// and asserts the reopen path (header check, slot election, block scrub)
// recovers without ever serving damaged bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "reldev/storage/file_block_store.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {
namespace {

class TornWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("reldev_torn_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  BlockData pattern(std::size_t size, std::uint8_t seed) {
    BlockData data(size);
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::byte>((seed * 31 + i) & 0xff);
    }
    return data;
  }

  void overwrite_at(std::uint64_t offset, std::span<const std::byte> bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::filesystem::path path_;
};

TEST_F(TornWriteTest, TruncatedRecordDemotedOnOpen) {
  std::uint64_t cut = 0;
  {
    auto store = FileBlockStore::create(path_.string(), 3, 64).value();
    ASSERT_TRUE(store->write(0, pattern(64, 1), 4).is_ok());
    ASSERT_TRUE(store->write(2, pattern(64, 2), 6).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
    // Cut the file in the middle of the last record's payload — the torn
    // state a crash during an append-extending write leaves behind.
    cut = store->block_record_offset(2) + FileBlockStore::kBlockRecordHeader +
          20;
  }
  std::filesystem::resize_file(path_, cut);
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->scrub_demoted(), std::vector<BlockId>{2});
  auto demoted = reopened->read(2);
  ASSERT_TRUE(demoted.is_ok());
  EXPECT_EQ(demoted.value().version, 0u);
  EXPECT_EQ(demoted.value().data, BlockData(64, std::byte{0}));
  // The record before the cut is untouched.
  EXPECT_EQ(reopened->read(0).value().data, pattern(64, 1));
  EXPECT_EQ(reopened->read(0).value().version, 4u);
}

TEST_F(TornWriteTest, VersionUpdatedButStaleDataDemoted) {
  std::uint64_t record = 0;
  {
    auto store = FileBlockStore::create(path_.string(), 2, 64).value();
    ASSERT_TRUE(store->write(1, pattern(64, 3), 5).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
    record = store->block_record_offset(1);
  }
  // The header of a newer write landed (version 6 and the CRC of payload
  // bytes that never made it) but the old payload is still in place — the
  // classic reordered torn write. The version field alone must never be
  // trusted.
  BufferWriter header(FileBlockStore::kBlockRecordHeader);
  header.put_u64(6);
  header.put_u32(crc32c(pattern(64, 4)));
  overwrite_at(record, header.bytes());
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->scrub_demoted(), std::vector<BlockId>{1});
  auto demoted = reopened->read(1);
  ASSERT_TRUE(demoted.is_ok());
  EXPECT_EQ(demoted.value().version, 0u);
}

TEST_F(TornWriteTest, GarbageInactiveSlotIgnored) {
  {
    auto store = FileBlockStore::create(path_.string(), 1, 64).value();
    ASSERT_TRUE(store->put_metadata(pattern(24, 7)).is_ok());  // slot 1, seq 1
    ASSERT_TRUE(store->sync().is_ok());
  }
  // Scribble garbage over the inactive slot (slot 0) — a torn in-progress
  // update that never completed.
  const BlockData garbage(FileBlockStore::kSlotHeader + 64, std::byte{0xA5});
  overwrite_at(FileBlockStore::metadata_slot_offset(0), garbage);
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->metadata_sequence(), 1u);
  EXPECT_EQ(reopened->get_metadata().value(), pattern(24, 7));
}

TEST_F(TornWriteTest, GarbageActiveSlotFallsBackToPreviousBlob) {
  {
    auto store = FileBlockStore::create(path_.string(), 1, 64).value();
    ASSERT_TRUE(store->put_metadata(pattern(24, 1)).is_ok());  // slot 1, seq 1
    ASSERT_TRUE(store->put_metadata(pattern(24, 2)).is_ok());  // slot 0, seq 2
    ASSERT_TRUE(store->sync().is_ok());
  }
  // Destroy the live slot: the election must fall back to the surviving
  // older blob rather than fail or return garbage.
  const BlockData garbage(FileBlockStore::kSlotHeader + 64, std::byte{0x5A});
  overwrite_at(FileBlockStore::metadata_slot_offset(0), garbage);
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->metadata_sequence(), 1u);
  EXPECT_EQ(reopened->get_metadata().value(), pattern(24, 1));
}

TEST_F(TornWriteTest, BothSlotsGarbageFailsOpen) {
  {
    auto store = FileBlockStore::create(path_.string(), 1, 64).value();
    ASSERT_TRUE(store->sync().is_ok());
  }
  const BlockData garbage(FileBlockStore::kSlotHeader + 64, std::byte{0xEE});
  overwrite_at(FileBlockStore::metadata_slot_offset(0), garbage);
  overwrite_at(FileBlockStore::metadata_slot_offset(1), garbage);
  auto reopened = FileBlockStore::open(path_.string());
  ASSERT_FALSE(reopened.is_ok());
  EXPECT_EQ(reopened.status().code(), reldev::ErrorCode::kCorruption);
}

TEST_F(TornWriteTest, HalfWrittenRecordDemotedOthersIntact) {
  std::uint64_t record = 0;
  {
    auto store = FileBlockStore::create(path_.string(), 4, 64).value();
    for (BlockId b = 0; b < 4; ++b) {
      ASSERT_TRUE(store->write(b, pattern(64, static_cast<std::uint8_t>(b)),
                               b + 1)
                      .is_ok());
    }
    ASSERT_TRUE(store->sync().is_ok());
    record = store->block_record_offset(2);
  }
  // New header plus the first half of the new payload; the tail keeps the
  // old bytes — what a crash in the middle of a single pwrite leaves.
  const BlockData fresh = pattern(64, 9);
  BufferWriter torn(FileBlockStore::kBlockRecordHeader + 32);
  torn.put_u64(8);
  torn.put_u32(crc32c(fresh));
  torn.put_raw(std::span<const std::byte>(fresh).first(32));
  overwrite_at(record, torn.bytes());
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->scrub_demoted(), std::vector<BlockId>{2});
  EXPECT_EQ(reopened->read(2).value().version, 0u);
  for (const BlockId b : {0u, 1u, 3u}) {
    EXPECT_EQ(reopened->read(b).value().data,
              pattern(64, static_cast<std::uint8_t>(b)));
    EXPECT_EQ(reopened->read(b).value().version, b + 1);
  }
}

}  // namespace
}  // namespace reldev::storage
