#include "reldev/storage/mem_block_store.hpp"

#include <gtest/gtest.h>

namespace reldev::storage {
namespace {

BlockData pattern(std::size_t size, std::uint8_t seed) {
  BlockData data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return data;
}

TEST(MemBlockStoreTest, GeometryAndInitialState) {
  MemBlockStore store(8, 128);
  EXPECT_EQ(store.block_count(), 8u);
  EXPECT_EQ(store.block_size(), 128u);
  auto block = store.read(0);
  ASSERT_TRUE(block.is_ok());
  EXPECT_EQ(block.value().version, 0u);
  EXPECT_EQ(block.value().data, BlockData(128, std::byte{0}));
}

TEST(MemBlockStoreTest, WriteThenRead) {
  MemBlockStore store(4, 64);
  const auto payload = pattern(64, 7);
  ASSERT_TRUE(store.write(2, payload, 3).is_ok());
  auto block = store.read(2);
  ASSERT_TRUE(block.is_ok());
  EXPECT_EQ(block.value().data, payload);
  EXPECT_EQ(block.value().version, 3u);
  EXPECT_EQ(store.version_of(2).value(), 3u);
}

TEST(MemBlockStoreTest, WritesAreIndependentPerBlock) {
  MemBlockStore store(3, 16);
  ASSERT_TRUE(store.write(0, pattern(16, 1), 1).is_ok());
  ASSERT_TRUE(store.write(1, pattern(16, 2), 5).is_ok());
  EXPECT_EQ(store.read(0).value().data, pattern(16, 1));
  EXPECT_EQ(store.read(1).value().data, pattern(16, 2));
  EXPECT_EQ(store.read(2).value().version, 0u);
}

TEST(MemBlockStoreTest, VersionVectorSnapshot) {
  MemBlockStore store(3, 16);
  ASSERT_TRUE(store.write(1, pattern(16, 3), 4).is_ok());
  const VersionVector vv = store.version_vector();
  EXPECT_EQ(vv.at(0), 0u);
  EXPECT_EQ(vv.at(1), 4u);
  EXPECT_EQ(vv.total(), 4u);
}

TEST(MemBlockStoreTest, OutOfRangeRejected) {
  MemBlockStore store(2, 16);
  EXPECT_EQ(store.read(2).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.write(2, pattern(16, 0), 1).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.version_of(9).status().code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST(MemBlockStoreTest, WrongPayloadSizeRejected) {
  MemBlockStore store(2, 16);
  EXPECT_EQ(store.write(0, pattern(15, 0), 1).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.write(0, pattern(17, 0), 1).code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST(MemBlockStoreTest, MetadataRoundTrip) {
  MemBlockStore store(2, 16);
  EXPECT_TRUE(store.get_metadata().value().empty());
  const auto blob = pattern(40, 9);
  ASSERT_TRUE(store.put_metadata(blob).is_ok());
  EXPECT_EQ(store.get_metadata().value(), blob);
}

TEST(MemBlockStoreTest, ResetClearsEverything) {
  MemBlockStore store(2, 16);
  ASSERT_TRUE(store.write(0, pattern(16, 5), 2).is_ok());
  ASSERT_TRUE(store.put_metadata(pattern(8, 1)).is_ok());
  store.reset();
  EXPECT_EQ(store.read(0).value().version, 0u);
  EXPECT_EQ(store.read(0).value().data, BlockData(16, std::byte{0}));
  EXPECT_TRUE(store.get_metadata().value().empty());
}

TEST(MemBlockStoreTest, InvalidGeometryRejected) {
  EXPECT_THROW(MemBlockStore(0, 16), reldev::ContractViolation);
  EXPECT_THROW(MemBlockStore(4, 0), reldev::ContractViolation);
}

}  // namespace
}  // namespace reldev::storage
