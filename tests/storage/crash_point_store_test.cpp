// Unit tests for the crash-point injector: each enumerated point must
// fail-stop the store at exactly the scheduled event, leave the file in
// the corresponding torn state, and let a reopen-through-recovery (the
// surrender/adopt cycle) come back with the invariants intact.
#include <gtest/gtest.h>

#include <filesystem>

#include "reldev/storage/crash_point_store.hpp"

namespace reldev::storage {
namespace {

class CrashPointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("reldev_crashpt_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    store_ = std::make_unique<CrashPointBlockStore>(
        FileBlockStore::create(path_.string(), 4, 64).value());
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove(path_);
  }

  BlockData pattern(std::size_t size, std::uint8_t seed) {
    BlockData data(size);
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::byte>((seed * 31 + i) & 0xff);
    }
    return data;
  }

  /// Simulated machine restart: drop the torn handle, reopen through the
  /// full recovery path, hand the recovered store back to the decorator.
  void restart() {
    (void)store_->surrender();
    store_->adopt(FileBlockStore::open(path_.string()).value());
  }

  std::filesystem::path path_;
  std::unique_ptr<CrashPointBlockStore> store_;
};

TEST_F(CrashPointStoreTest, NamesRoundTrip) {
  for (const CrashPoint point : kAllCrashPoints) {
    EXPECT_EQ(crash_point_from_name(crash_point_name(point)), point);
  }
  EXPECT_EQ(crash_point_from_name("no-such-point"), CrashPoint::kNone);
}

TEST_F(CrashPointStoreTest, FiresAtNthEventOnly) {
  store_->arm(CrashSchedule{CrashPoint::kBeforeBlockWrite, 2});
  EXPECT_TRUE(store_->write(0, pattern(64, 1), 1).is_ok());
  EXPECT_TRUE(store_->write(1, pattern(64, 2), 1).is_ok());
  EXPECT_FALSE(store_->crashed());
  EXPECT_EQ(store_->write(2, pattern(64, 3), 1).code(), ErrorCode::kIoError);
  EXPECT_TRUE(store_->crashed());
  EXPECT_EQ(store_->fired(), CrashPoint::kBeforeBlockWrite);
  // Fail-stop: every operation is refused until adopt().
  EXPECT_EQ(store_->read(0).status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(store_->sync().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(store_->version_of(0).status().code(), ErrorCode::kUnavailable);
  restart();
  // The write the crash swallowed never reached the file; the earlier
  // writes did.
  EXPECT_EQ(store_->read(2).value().version, 0u);
  EXPECT_EQ(store_->read(0).value().data, pattern(64, 1));
}

TEST_F(CrashPointStoreTest, MidBlockWriteLeavesTornRecord) {
  ASSERT_TRUE(store_->write(1, pattern(64, 5), 3).is_ok());
  ASSERT_TRUE(store_->sync().is_ok());
  store_->arm(CrashSchedule{CrashPoint::kMidBlockWrite, 0});
  EXPECT_EQ(store_->write(1, pattern(64, 6), 4).code(), ErrorCode::kIoError);
  EXPECT_TRUE(store_->crashed());
  restart();
  // The record was torn (new header, half the new payload): the scrub must
  // demote it rather than serve either half.
  EXPECT_EQ(store_->inner().scrub_demoted(), std::vector<BlockId>{1});
  auto demoted = store_->read(1);
  ASSERT_TRUE(demoted.is_ok());
  EXPECT_EQ(demoted.value().version, 0u);
  EXPECT_EQ(demoted.value().data, BlockData(64, std::byte{0}));
}

TEST_F(CrashPointStoreTest, AfterBlockWriteIsDurableButUnacked) {
  store_->arm(CrashSchedule{CrashPoint::kAfterBlockWrite, 0});
  EXPECT_EQ(store_->write(2, pattern(64, 7), 9).code(), ErrorCode::kIoError);
  restart();
  // The record landed completely before the simulated death: recovery
  // serves it at full fidelity even though the writer never saw the ack.
  auto block = store_->read(2);
  ASSERT_TRUE(block.is_ok());
  EXPECT_EQ(block.value().version, 9u);
  EXPECT_EQ(block.value().data, pattern(64, 7));
}

TEST_F(CrashPointStoreTest, MidMetadataWritePreservesPreviousBlob) {
  ASSERT_TRUE(store_->put_metadata(pattern(20, 1)).is_ok());
  ASSERT_TRUE(store_->sync().is_ok());
  store_->arm(CrashSchedule{CrashPoint::kMidMetadataWrite, 0});
  EXPECT_EQ(store_->put_metadata(pattern(20, 2)).code(), ErrorCode::kIoError);
  restart();
  // The torn slot loses the election; the previous blob survives.
  EXPECT_EQ(store_->get_metadata().value(), pattern(20, 1));
  EXPECT_EQ(store_->inner().metadata_sequence(), 1u);
  // And the slot machinery still works going forward.
  ASSERT_TRUE(store_->put_metadata(pattern(20, 3)).is_ok());
  EXPECT_EQ(store_->get_metadata().value(), pattern(20, 3));
}

TEST_F(CrashPointStoreTest, BeforeSyncFailsTheSync) {
  ASSERT_TRUE(store_->write(0, pattern(64, 4), 1).is_ok());
  store_->arm(CrashSchedule{CrashPoint::kBeforeSync, 1});
  EXPECT_TRUE(store_->sync().is_ok());  // event 0 passes
  EXPECT_EQ(store_->sync().code(), ErrorCode::kIoError);
  EXPECT_TRUE(store_->crashed());
  restart();
  EXPECT_TRUE(store_->sync().is_ok());
}

TEST_F(CrashPointStoreTest, DisarmPreventsFiring) {
  store_->arm(CrashSchedule{CrashPoint::kBeforeBlockWrite, 0});
  store_->disarm();
  EXPECT_TRUE(store_->write(0, pattern(64, 1), 1).is_ok());
  EXPECT_FALSE(store_->crashed());
}

TEST_F(CrashPointStoreTest, GeometryServedWhileCrashed) {
  store_->arm(CrashSchedule{CrashPoint::kBeforeBlockWrite, 0});
  EXPECT_EQ(store_->write(0, pattern(64, 1), 1).code(), ErrorCode::kIoError);
  (void)store_->surrender();
  // A replica holding this store can still answer geometry questions
  // between kill and restart; data operations stay refused.
  EXPECT_EQ(store_->block_count(), 4u);
  EXPECT_EQ(store_->block_size(), 64u);
  EXPECT_EQ(store_->version_vector().size(), 4u);
  EXPECT_EQ(store_->read(0).status().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace reldev::storage
