// JournaledBlockStore: write-ahead journal + group commit over the v2
// file store. Covers the commit/replay cycle (committed mutations survive
// reopen, unsynced ones are lost outright), replay idempotence, torn-tail
// truncation, checkpointing, the journal crash points, and group commit
// under concurrent writers.
#include "reldev/storage/journaled_block_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "reldev/storage/crash_point_store.hpp"

namespace reldev::storage {
namespace {

class JournaledBlockStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("reldev_wal_store_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(JournaledBlockStore::journal_path(path_.string()));
  }

  BlockData pattern(std::size_t size, std::uint8_t seed) {
    BlockData data(size);
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::byte>((seed * 31 + i) & 0xff);
    }
    return data;
  }

  std::unique_ptr<JournaledBlockStore> make(JournalOptions options = {}) {
    auto store =
        JournaledBlockStore::create(path_.string(), 8, 64, options);
    EXPECT_TRUE(store.is_ok()) << store.status().to_string();
    return std::move(store).value();
  }

  std::filesystem::path path_;
};

TEST_F(JournaledBlockStoreTest, CreateInitializesZeroedWithJournalSidecar) {
  auto store = make();
  EXPECT_EQ(store->block_count(), 8u);
  EXPECT_EQ(store->block_size(), 64u);
  EXPECT_EQ(store->read(5).value().version, 0u);
  EXPECT_EQ(store->journal_bytes(), WalJournal::kHeaderSize);
  EXPECT_TRUE(std::filesystem::exists(
      JournaledBlockStore::journal_path(path_.string())));
}

TEST_F(JournaledBlockStoreTest, WritesAreVisibleBeforeAnySync) {
  auto store = make();
  ASSERT_TRUE(store->write(2, pattern(64, 1), 4).is_ok());
  ASSERT_TRUE(store->demote(3).is_ok());
  ASSERT_TRUE(store->put_metadata(pattern(16, 9)).is_ok());
  EXPECT_EQ(store->read(2).value().data, pattern(64, 1));
  EXPECT_EQ(store->read(2).value().version, 4u);
  EXPECT_EQ(store->version_of(2).value(), 4u);
  EXPECT_EQ(store->version_vector().at(2), 4u);
  EXPECT_EQ(store->read(3).value().version, 0u);
  EXPECT_EQ(store->get_metadata().value(), pattern(16, 9));
  // Nothing touched the journal yet: mutations live in the pending batch.
  EXPECT_EQ(store->journal_bytes(), WalJournal::kHeaderSize);
  EXPECT_EQ(store->last_sequence(), 3u);
  EXPECT_EQ(store->durable_sequence(), 0u);
}

TEST_F(JournaledBlockStoreTest, SyncCommitsOneBatch) {
  auto store = make();
  ASSERT_TRUE(store->write(0, pattern(64, 1), 1).is_ok());
  ASSERT_TRUE(store->write(1, pattern(64, 2), 1).is_ok());
  ASSERT_TRUE(store->sync().is_ok());
  EXPECT_EQ(store->durable_sequence(), 2u);
  EXPECT_EQ(store->commit_batches(), 1u);
  EXPECT_GT(store->journal_bytes(), WalJournal::kHeaderSize);
}

TEST_F(JournaledBlockStoreTest, CommittedMutationsSurviveReopen) {
  {
    auto store = make();
    ASSERT_TRUE(store->write(1, pattern(64, 3), 7).is_ok());
    ASSERT_TRUE(store->put_metadata(pattern(24, 5)).is_ok());
    ASSERT_TRUE(store->demote(4).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
  }
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value()->replayed_records(), 3u);
  EXPECT_FALSE(reopened.value()->replay_truncated_tail());
  EXPECT_EQ(reopened.value()->read(1).value().data, pattern(64, 3));
  EXPECT_EQ(reopened.value()->read(1).value().version, 7u);
  EXPECT_EQ(reopened.value()->get_metadata().value(), pattern(24, 5));
  EXPECT_EQ(reopened.value()->read(4).value().version, 0u);
  // The opening replay was checkpointed: journal folded and cut.
  EXPECT_EQ(reopened.value()->journal_bytes(), WalJournal::kHeaderSize);
}

TEST_F(JournaledBlockStoreTest, UnsyncedMutationsAreLostOnReopen) {
  {
    auto store = make();
    ASSERT_TRUE(store->write(0, pattern(64, 1), 3).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
    // Accepted but never committed: dies with the process.
    ASSERT_TRUE(store->write(0, pattern(64, 2), 4).is_ok());
    ASSERT_TRUE(store->write(5, pattern(64, 6), 1).is_ok());
  }
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->read(0).value().data, pattern(64, 1));
  EXPECT_EQ(reopened.value()->read(0).value().version, 3u);
  EXPECT_EQ(reopened.value()->read(5).value().version, 0u);
}

TEST_F(JournaledBlockStoreTest, WaitDurableHonoursOwnSequenceOnly) {
  auto store = make();
  ASSERT_TRUE(store->write(0, pattern(64, 1), 1).is_ok());
  const CommitSequence mine = store->last_sequence();
  ASSERT_TRUE(store->write(1, pattern(64, 2), 1).is_ok());
  ASSERT_TRUE(store->wait_durable(mine).is_ok());
  // Group commit swept everything in flight, including the later write.
  EXPECT_GE(store->durable_sequence(), mine);
  EXPECT_EQ(store->durable_sequence(), 2u);
  // Already durable: no new batch.
  const auto batches = store->commit_batches();
  ASSERT_TRUE(store->wait_durable(mine).is_ok());
  EXPECT_EQ(store->commit_batches(), batches);
}

TEST_F(JournaledBlockStoreTest, ReplayIsIdempotent) {
  JournalOptions keep;
  keep.checkpoint_on_open = false;
  {
    auto store = make(keep);
    ASSERT_TRUE(store->write(2, pattern(64, 1), 1).is_ok());
    ASSERT_TRUE(store->write(2, pattern(64, 2), 2).is_ok());
    ASSERT_TRUE(store->put_metadata(pattern(8, 3)).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
  }
  // First reopen replays the journal but leaves it in place...
  std::uint64_t journal_size = 0;
  {
    auto reopened = JournaledBlockStore::open(path_.string(), keep);
    ASSERT_TRUE(reopened.is_ok());
    EXPECT_EQ(reopened.value()->replayed_records(), 3u);
    EXPECT_EQ(reopened.value()->read(2).value().data, pattern(64, 2));
    EXPECT_EQ(reopened.value()->read(2).value().version, 2u);
    journal_size = reopened.value()->journal_bytes();
    EXPECT_GT(journal_size, WalJournal::kHeaderSize);
  }
  // ...so the second reopen replays the SAME records again. Replaying
  // twice must equal replaying once: same bytes, versions, metadata.
  auto again = JournaledBlockStore::open(path_.string(), keep);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value()->replayed_records(), 3u);
  EXPECT_FALSE(again.value()->replay_truncated_tail());
  EXPECT_EQ(again.value()->journal_bytes(), journal_size);
  EXPECT_EQ(again.value()->read(2).value().data, pattern(64, 2));
  EXPECT_EQ(again.value()->read(2).value().version, 2u);
  EXPECT_EQ(again.value()->get_metadata().value(), pattern(8, 3));
}

TEST_F(JournaledBlockStoreTest, TornTailIsTruncatedNotFatal) {
  {
    auto store = make();
    ASSERT_TRUE(store->write(3, pattern(64, 4), 5).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
  }
  // A crash mid-append leaves garbage past the committed prefix.
  const std::string wal = JournaledBlockStore::journal_path(path_.string());
  const auto before = std::filesystem::file_size(wal);
  {
    std::ofstream torn(wal, std::ios::binary | std::ios::app);
    torn << "torn-frame-garbage";
  }
  ASSERT_GT(std::filesystem::file_size(wal), before);
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_TRUE(reopened.value()->replay_truncated_tail());
  EXPECT_EQ(reopened.value()->replayed_records(), 1u);
  EXPECT_EQ(reopened.value()->read(3).value().data, pattern(64, 4));
  EXPECT_EQ(reopened.value()->read(3).value().version, 5u);
}

TEST_F(JournaledBlockStoreTest, ExplicitCheckpointFoldsAndCutsJournal) {
  auto store = make();
  ASSERT_TRUE(store->write(0, pattern(64, 1), 2).is_ok());
  ASSERT_TRUE(store->put_metadata(pattern(12, 7)).is_ok());
  ASSERT_TRUE(store->sync().is_ok());
  ASSERT_GT(store->journal_bytes(), WalJournal::kHeaderSize);
  ASSERT_TRUE(store->checkpoint().is_ok());
  EXPECT_EQ(store->journal_bytes(), WalJournal::kHeaderSize);
  EXPECT_EQ(store->checkpoints_taken(), 1u);
  // Reads still serve the folded data.
  EXPECT_EQ(store->read(0).value().data, pattern(64, 1));
  EXPECT_EQ(store->get_metadata().value(), pattern(12, 7));
  // A second checkpoint with nothing dirty is a no-op.
  ASSERT_TRUE(store->checkpoint().is_ok());
  EXPECT_EQ(store->checkpoints_taken(), 1u);
}

TEST_F(JournaledBlockStoreTest, AutoCheckpointTriggersOnJournalGrowth) {
  JournalOptions options;
  options.checkpoint_bytes = 512;  // a few block records
  auto store = make(options);
  for (std::uint64_t round = 1; round <= 20; ++round) {
    ASSERT_TRUE(
        store->write(round % 8, pattern(64, std::uint8_t(round)), round)
            .is_ok());
    ASSERT_TRUE(store->sync().is_ok());
  }
  EXPECT_GT(store->checkpoints_taken(), 0u);
  EXPECT_LE(store->journal_bytes(), 512u + WalJournal::kHeaderSize);
  // Every committed write survives the folds.
  EXPECT_EQ(store->read(20 % 8).value().version, 20u);
}

TEST_F(JournaledBlockStoreTest, CheckpointedStateSurvivesReopenWithoutReplay) {
  {
    auto store = make();
    ASSERT_TRUE(store->write(6, pattern(64, 8), 9).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
    ASSERT_TRUE(store->checkpoint().is_ok());
  }
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->replayed_records(), 0u);
  EXPECT_EQ(reopened.value()->read(6).value().data, pattern(64, 8));
  EXPECT_EQ(reopened.value()->read(6).value().version, 9u);
}

TEST_F(JournaledBlockStoreTest, OpenWithoutSidecarStartsEmptyJournal) {
  {
    auto plain = FileBlockStore::create(path_.string(), 8, 64);
    ASSERT_TRUE(plain.is_ok());
    ASSERT_TRUE(plain.value()->write(1, pattern(64, 2), 3).is_ok());
    ASSERT_TRUE(plain.value()->sync().is_ok());
  }
  ASSERT_FALSE(std::filesystem::exists(
      JournaledBlockStore::journal_path(path_.string())));
  auto store = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();
  EXPECT_EQ(store.value()->replayed_records(), 0u);
  EXPECT_EQ(store.value()->read(1).value().version, 3u);
  EXPECT_TRUE(std::filesystem::exists(
      JournaledBlockStore::journal_path(path_.string())));
}

TEST_F(JournaledBlockStoreTest, GeometryMismatchedJournalIsRejected) {
  { auto store = make(); }
  // A journal from a differently-shaped store must not replay.
  ASSERT_TRUE(std::filesystem::remove(
      JournaledBlockStore::journal_path(path_.string())));
  auto other = WalJournal::create(
      JournaledBlockStore::journal_path(path_.string()), 4, 128);
  ASSERT_TRUE(other.is_ok());
  auto reopened = JournaledBlockStore::open(path_.string());
  EXPECT_EQ(reopened.status().code(), reldev::ErrorCode::kCorruption);
}

TEST_F(JournaledBlockStoreTest, GroupCommitUnderConcurrentWriters) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kRounds = 24;
  JournalOptions options;
  options.max_delay = std::chrono::microseconds(300);
  {
    auto store = make(options);
    std::vector<std::thread> writers;
    std::vector<Status> failures(kThreads, Status::ok());
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (std::uint64_t round = 1; round <= kRounds; ++round) {
          // Each thread owns one block; versions must come out in order.
          auto status = store->write(
              t, pattern(64, static_cast<std::uint8_t>(t * 32 + round)),
              round);
          if (!status.is_ok()) {
            failures[t] = status;
            return;
          }
          status = store->wait_durable(store->last_sequence());
          if (!status.is_ok()) {
            failures[t] = status;
            return;
          }
        }
      });
    }
    for (auto& writer : writers) writer.join();
    for (const auto& status : failures) {
      ASSERT_TRUE(status.is_ok()) << status.to_string();
    }
    // No lost or reordered commits: every block ends at its last version.
    for (std::size_t t = 0; t < kThreads; ++t) {
      EXPECT_EQ(store->version_of(t).value(), kRounds);
      EXPECT_EQ(store->read(t).value().data,
                pattern(64, static_cast<std::uint8_t>(t * 32 + kRounds)));
    }
    EXPECT_EQ(store->durable_sequence(), kThreads * kRounds);
    // Group commit: the fsync count is bounded by the sync count, and with
    // contending writers batches should coalesce at least occasionally.
    EXPECT_GE(store->commit_batches(), 1u);
    EXPECT_LE(store->commit_batches(), kThreads * kRounds);
  }
  // And the committed state is really on disk.
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reopened.value()->version_of(t).value(), kRounds);
  }
}

// --- journal crash points through the injector -------------------------------

class JournaledCrashPointTest : public JournaledBlockStoreTest {
 protected:
  /// Wrap a fresh journaled store in the injector.
  std::unique_ptr<CrashPointBlockStore> make_injected(
      JournalOptions options = {}) {
    return std::make_unique<CrashPointBlockStore>(make(options));
  }
};

TEST_F(JournaledCrashPointTest, MidJournalAppendLeavesTornTail) {
  auto injected = make_injected();
  ASSERT_TRUE(injected->write(0, pattern(64, 1), 1).is_ok());
  ASSERT_TRUE(injected->sync().is_ok());  // committed prefix
  injected->arm({CrashPoint::kMidJournalAppend, 0});
  ASSERT_TRUE(injected->write(1, pattern(64, 2), 1).is_ok());
  EXPECT_FALSE(injected->sync().is_ok());  // half the batch hit the disk
  EXPECT_TRUE(injected->crashed());
  EXPECT_EQ(injected->fired(), CrashPoint::kMidJournalAppend);
  injected->drop_inner();

  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_TRUE(reopened.value()->replay_truncated_tail());
  // The committed prefix replays; the torn batch is gone.
  EXPECT_EQ(reopened.value()->read(0).value().version, 1u);
  EXPECT_EQ(reopened.value()->read(0).value().data, pattern(64, 1));
  EXPECT_EQ(reopened.value()->read(1).value().version, 0u);
}

TEST_F(JournaledCrashPointTest, BeforeJournalSyncKeepsAppendedBatchReadable) {
  auto injected = make_injected();
  injected->arm({CrashPoint::kBeforeJournalSync, 0});
  ASSERT_TRUE(injected->write(2, pattern(64, 3), 4).is_ok());
  EXPECT_FALSE(injected->sync().is_ok());  // appended, never fsynced
  EXPECT_EQ(injected->fired(), CrashPoint::kBeforeJournalSync);
  injected->drop_inner();

  // The batch was fully appended; without a real power cut the frames
  // validate, so recovery treats them as committed (the contract allows
  // either outcome for an unacknowledged sync).
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->read(2).value().version, 4u);
  EXPECT_EQ(reopened.value()->read(2).value().data, pattern(64, 3));
}

TEST_F(JournaledCrashPointTest, MidCheckpointLeavesJournalAuthoritative) {
  auto injected = make_injected();
  ASSERT_TRUE(injected->write(0, pattern(64, 1), 2).is_ok());
  ASSERT_TRUE(injected->write(1, pattern(64, 2), 3).is_ok());
  ASSERT_TRUE(injected->write(2, pattern(64, 3), 4).is_ok());
  ASSERT_TRUE(injected->write(3, pattern(64, 4), 5).is_ok());
  ASSERT_TRUE(injected->sync().is_ok());
  injected->arm({CrashPoint::kMidCheckpoint, 0});
  EXPECT_FALSE(injected->checkpoint().is_ok());  // half-folded, no truncate
  EXPECT_EQ(injected->fired(), CrashPoint::kMidCheckpoint);
  injected->drop_inner();

  // The journal survived untruncated, so replay restores every committed
  // write regardless of how much of the fold landed.
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_GT(reopened.value()->replayed_records(), 0u);
  EXPECT_EQ(reopened.value()->read(0).value().data, pattern(64, 1));
  EXPECT_EQ(reopened.value()->read(1).value().data, pattern(64, 2));
  EXPECT_EQ(reopened.value()->read(2).value().data, pattern(64, 3));
  EXPECT_EQ(reopened.value()->read(3).value().data, pattern(64, 4));
  EXPECT_EQ(reopened.value()->read(3).value().version, 5u);
}

TEST_F(JournaledCrashPointTest, BeforeCheckpointTruncateReplaysIdempotently) {
  auto injected = make_injected();
  ASSERT_TRUE(injected->write(5, pattern(64, 6), 7).is_ok());
  ASSERT_TRUE(injected->put_metadata(pattern(20, 2)).is_ok());
  ASSERT_TRUE(injected->sync().is_ok());
  injected->arm({CrashPoint::kBeforeCheckpointTruncate, 0});
  EXPECT_FALSE(injected->checkpoint().is_ok());  // folded + fsynced, not cut
  EXPECT_EQ(injected->fired(), CrashPoint::kBeforeCheckpointTruncate);
  injected->drop_inner();

  // Main file already holds the folded state AND the journal still holds
  // the records — replay over already-applied data must change nothing.
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->replayed_records(), 2u);
  EXPECT_EQ(reopened.value()->read(5).value().data, pattern(64, 6));
  EXPECT_EQ(reopened.value()->read(5).value().version, 7u);
  EXPECT_EQ(reopened.value()->get_metadata().value(), pattern(20, 2));
}

TEST_F(JournaledCrashPointTest, FailStopAfterFiringUntilAdopt) {
  auto injected = make_injected();
  injected->arm({CrashPoint::kBeforeJournalSync, 0});
  ASSERT_TRUE(injected->write(0, pattern(64, 1), 1).is_ok());
  ASSERT_FALSE(injected->sync().is_ok());
  // Everything fails until a restart adopts a recovered store.
  EXPECT_FALSE(injected->write(1, pattern(64, 2), 1).is_ok());
  EXPECT_FALSE(injected->read(0).is_ok());
  EXPECT_FALSE(injected->sync().is_ok());
  injected->drop_inner();
  auto reopened = JournaledBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  injected->adopt(std::move(reopened).value());
  EXPECT_FALSE(injected->crashed());
  EXPECT_TRUE(injected->write(1, pattern(64, 2), 1).is_ok());
  EXPECT_TRUE(injected->sync().is_ok());
}

}  // namespace
}  // namespace reldev::storage
