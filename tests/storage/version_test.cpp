#include "reldev/storage/version.hpp"

#include <gtest/gtest.h>

namespace reldev::storage {
namespace {

TEST(VersionVectorTest, StartsAtZero) {
  const VersionVector vv(4);
  EXPECT_EQ(vv.size(), 4u);
  for (BlockId b = 0; b < 4; ++b) EXPECT_EQ(vv.at(b), 0u);
  EXPECT_EQ(vv.total(), 0u);
}

TEST(VersionVectorTest, SetAndBump) {
  VersionVector vv(3);
  vv.set(1, 5);
  EXPECT_EQ(vv.at(1), 5u);
  EXPECT_EQ(vv.bump(1), 6u);
  EXPECT_EQ(vv.at(1), 6u);
  EXPECT_EQ(vv.bump(0), 1u);
  EXPECT_EQ(vv.total(), 7u);
}

TEST(VersionVectorTest, DominatesIsReflexive) {
  VersionVector vv(3);
  vv.set(0, 2);
  EXPECT_TRUE(vv.dominates(vv));
}

TEST(VersionVectorTest, DominanceAndStaleness) {
  VersionVector older(3);
  VersionVector newer(3);
  newer.set(0, 1);
  newer.set(2, 4);
  EXPECT_TRUE(newer.dominates(older));
  EXPECT_FALSE(older.dominates(newer));
  EXPECT_EQ(older.stale_against(newer), (std::vector<BlockId>{0, 2}));
  EXPECT_TRUE(newer.stale_against(older).empty());
}

TEST(VersionVectorTest, IncomparableVectors) {
  VersionVector a(2);
  VersionVector b(2);
  a.set(0, 1);
  b.set(1, 1);
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));
  EXPECT_EQ(a.stale_against(b), (std::vector<BlockId>{1}));
  EXPECT_EQ(b.stale_against(a), (std::vector<BlockId>{0}));
}

TEST(VersionVectorTest, MergeMaxIsPointwise) {
  VersionVector a(3);
  VersionVector b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 3);
  b.set(2, 2);
  a.merge_max(b);
  EXPECT_EQ(a.at(0), 5u);
  EXPECT_EQ(a.at(1), 3u);
  EXPECT_EQ(a.at(2), 2u);
}

TEST(VersionVectorTest, MergedVectorDominatesBothInputs) {
  VersionVector a(4);
  VersionVector b(4);
  a.set(0, 2);
  b.set(3, 7);
  VersionVector merged = a;
  merged.merge_max(b);
  EXPECT_TRUE(merged.dominates(a));
  EXPECT_TRUE(merged.dominates(b));
}

TEST(VersionVectorTest, SizeMismatchIsContractViolation) {
  const VersionVector a(2);
  const VersionVector b(3);
  EXPECT_THROW((void)a.dominates(b), reldev::ContractViolation);
  EXPECT_THROW((void)a.stale_against(b), reldev::ContractViolation);
}

TEST(VersionVectorTest, OutOfRangeAccessIsContractViolation) {
  VersionVector vv(2);
  EXPECT_THROW((void)vv.at(2), reldev::ContractViolation);
  EXPECT_THROW(vv.set(5, 1), reldev::ContractViolation);
}

TEST(VersionVectorTest, EncodeDecodeRoundTrip) {
  VersionVector vv(5);
  vv.set(0, 10);
  vv.set(4, 99);
  reldev::BufferWriter writer;
  vv.encode(writer);
  reldev::BufferReader reader(writer.bytes());
  auto decoded = VersionVector::decode(reader);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), vv);
}

TEST(VersionVectorTest, DecodeTruncatedFails) {
  reldev::BufferWriter writer;
  writer.put_u32(10);  // ten entries promised, none present
  reldev::BufferReader reader(writer.bytes());
  EXPECT_FALSE(VersionVector::decode(reader).is_ok());
}

}  // namespace
}  // namespace reldev::storage
