#include "reldev/storage/file_block_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace reldev::storage {
namespace {

class FileBlockStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("reldev_store_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  BlockData pattern(std::size_t size, std::uint8_t seed) {
    BlockData data(size);
    for (std::size_t i = 0; i < size; ++i) {
      data[i] = static_cast<std::byte>((seed * 31 + i) & 0xff);
    }
    return data;
  }

  std::filesystem::path path_;
};

TEST_F(FileBlockStoreTest, CreateInitializesZeroed) {
  auto store = FileBlockStore::create(path_.string(), 4, 64);
  ASSERT_TRUE(store.is_ok());
  EXPECT_EQ(store.value()->block_count(), 4u);
  EXPECT_EQ(store.value()->block_size(), 64u);
  auto block = store.value()->read(3);
  ASSERT_TRUE(block.is_ok());
  EXPECT_EQ(block.value().version, 0u);
  EXPECT_EQ(block.value().data, BlockData(64, std::byte{0}));
}

TEST_F(FileBlockStoreTest, WriteReadRoundTrip) {
  auto store = FileBlockStore::create(path_.string(), 4, 64).value();
  const auto payload = pattern(64, 3);
  ASSERT_TRUE(store->write(1, payload, 9).is_ok());
  auto block = store->read(1);
  ASSERT_TRUE(block.is_ok());
  EXPECT_EQ(block.value().data, payload);
  EXPECT_EQ(block.value().version, 9u);
}

TEST_F(FileBlockStoreTest, PersistsAcrossReopen) {
  {
    auto store = FileBlockStore::create(path_.string(), 4, 64).value();
    ASSERT_TRUE(store->write(0, pattern(64, 1), 2).is_ok());
    ASSERT_TRUE(store->write(2, pattern(64, 2), 7).is_ok());
    ASSERT_TRUE(store->put_metadata(pattern(32, 5)).is_ok());
    ASSERT_TRUE(store->sync().is_ok());
  }
  auto reopened = FileBlockStore::open(path_.string());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->block_count(), 4u);
  EXPECT_EQ(reopened.value()->read(0).value().data, pattern(64, 1));
  EXPECT_EQ(reopened.value()->read(2).value().version, 7u);
  EXPECT_EQ(reopened.value()->get_metadata().value(), pattern(32, 5));
  // The version cache is rebuilt from disk.
  const VersionVector vv = reopened.value()->version_vector();
  EXPECT_EQ(vv.at(0), 2u);
  EXPECT_EQ(vv.at(2), 7u);
  EXPECT_EQ(vv.at(1), 0u);
}

TEST_F(FileBlockStoreTest, OpenMissingFileFails) {
  auto store = FileBlockStore::open("/nonexistent/dir/store.dat");
  EXPECT_EQ(store.status().code(), reldev::ErrorCode::kIoError);
}

TEST_F(FileBlockStoreTest, OpenGarbageFileFailsWithCorruption) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[64] = "this is not a block store";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  auto store = FileBlockStore::open(path_.string());
  EXPECT_FALSE(store.is_ok());
  EXPECT_EQ(store.status().code(), reldev::ErrorCode::kCorruption);
}

TEST_F(FileBlockStoreTest, CorruptBlockDetectedOnReadAndDemotedByScrub) {
  auto store = FileBlockStore::create(path_.string(), 2, 64).value();
  ASSERT_TRUE(store->write(0, pattern(64, 8), 1).is_ok());
  ASSERT_TRUE(store->write(1, pattern(64, 9), 3).is_ok());
  ASSERT_TRUE(store->sync().is_ok());
  // Flip a payload byte of block 0 behind the store's back.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    const auto where = static_cast<long>(store->block_record_offset(0) +
                                         FileBlockStore::kBlockRecordHeader +
                                         5);
    std::fseek(f, where, SEEK_SET);
    const char zap = 0x5A;
    std::fwrite(&zap, 1, 1, f);
    std::fclose(f);
  }
  // The live store detects the rot on the next read of that block; the
  // untouched block still reads fine.
  EXPECT_EQ(store->read(0).status().code(), reldev::ErrorCode::kCorruption);
  EXPECT_TRUE(store->read(1).is_ok());
  store.reset();
  // Reopen: the scrub demotes the damaged record to "needs repair" —
  // version 0, zeroed payload — instead of ever serving the bad bytes.
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->scrub_demoted(), std::vector<BlockId>{0});
  auto demoted = reopened->read(0);
  ASSERT_TRUE(demoted.is_ok());
  EXPECT_EQ(demoted.value().version, 0u);
  EXPECT_EQ(demoted.value().data, BlockData(64, std::byte{0}));
  EXPECT_EQ(reopened->read(1).value().data, pattern(64, 9));
  EXPECT_EQ(reopened->read(1).value().version, 3u);
}

TEST_F(FileBlockStoreTest, MetadataUpdatesAlternateSlots) {
  auto store = FileBlockStore::create(path_.string(), 1, 64).value();
  EXPECT_EQ(store->metadata_sequence(), 0u);
  EXPECT_TRUE(store->get_metadata().value().empty());
  ASSERT_TRUE(store->put_metadata(pattern(16, 1)).is_ok());
  EXPECT_EQ(store->metadata_sequence(), 1u);
  EXPECT_EQ(store->active_metadata_slot(), 1u);
  ASSERT_TRUE(store->put_metadata(pattern(16, 2)).is_ok());
  EXPECT_EQ(store->metadata_sequence(), 2u);
  EXPECT_EQ(store->active_metadata_slot(), 0u);
  EXPECT_EQ(store->get_metadata().value(), pattern(16, 2));
  store.reset();
  // Reopen elects the highest-sequence valid slot.
  auto reopened = FileBlockStore::open(path_.string()).value();
  EXPECT_EQ(reopened->metadata_sequence(), 2u);
  EXPECT_EQ(reopened->get_metadata().value(), pattern(16, 2));
}

TEST_F(FileBlockStoreTest, MetadataCapacityEnforced) {
  auto store = FileBlockStore::create(path_.string(), 1, 64).value();
  const BlockData huge(FileBlockStore::kMetadataCapacity + 1, std::byte{1});
  EXPECT_EQ(store->put_metadata(huge).code(),
            reldev::ErrorCode::kInvalidArgument);
  const BlockData max(FileBlockStore::kMetadataCapacity, std::byte{1});
  EXPECT_TRUE(store->put_metadata(max).is_ok());
  EXPECT_EQ(store->get_metadata().value(), max);
}

TEST_F(FileBlockStoreTest, OutOfRangeRejected) {
  auto store = FileBlockStore::create(path_.string(), 2, 64).value();
  EXPECT_EQ(store->read(2).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(store->write(5, pattern(64, 0), 1).code(),
            reldev::ErrorCode::kInvalidArgument);
}

TEST_F(FileBlockStoreTest, InvalidGeometryRejected) {
  EXPECT_FALSE(FileBlockStore::create(path_.string(), 0, 64).is_ok());
  EXPECT_FALSE(FileBlockStore::create(path_.string(), 4, 0).is_ok());
}

}  // namespace
}  // namespace reldev::storage
