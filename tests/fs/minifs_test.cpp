#include "reldev/fs/minifs.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "reldev/storage/mem_block_store.hpp"

namespace reldev::fs {
namespace {

std::vector<std::byte> text(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class MiniFsTest : public ::testing::Test {
 protected:
  MiniFsTest() : store_(256, 512), device_(store_) {}

  storage::MemBlockStore store_;
  core::LocalBlockDevice device_;
};

TEST_F(MiniFsTest, FormatAndMount) {
  auto formatted = MiniFs::format(device_);
  ASSERT_TRUE(formatted.is_ok()) << formatted.status().to_string();
  auto mounted = MiniFs::mount(device_);
  ASSERT_TRUE(mounted.is_ok());
  EXPECT_EQ(mounted.value().block_size(), 512u);
  EXPECT_TRUE(mounted.value().list().value().empty());
}

TEST_F(MiniFsTest, MountUnformattedDeviceFails) {
  auto mounted = MiniFs::mount(device_);
  EXPECT_EQ(mounted.status().code(), reldev::ErrorCode::kCorruption);
}

TEST_F(MiniFsTest, CreateListRemove) {
  auto fs = MiniFs::format(device_).value();
  ASSERT_TRUE(fs.create("alpha").is_ok());
  ASSERT_TRUE(fs.create("beta").is_ok());
  auto files = fs.list().value();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].name, "alpha");
  EXPECT_EQ(files[1].name, "beta");
  ASSERT_TRUE(fs.remove("alpha").is_ok());
  EXPECT_EQ(fs.list().value().size(), 1u);
  EXPECT_FALSE(fs.exists("alpha").value());
  EXPECT_TRUE(fs.exists("beta").value());
}

TEST_F(MiniFsTest, DuplicateCreateRejected) {
  auto fs = MiniFs::format(device_).value();
  ASSERT_TRUE(fs.create("dup").is_ok());
  EXPECT_EQ(fs.create("dup").code(), reldev::ErrorCode::kConflict);
}

TEST_F(MiniFsTest, RemoveMissingFileFails) {
  auto fs = MiniFs::format(device_).value();
  EXPECT_EQ(fs.remove("ghost").code(), reldev::ErrorCode::kNotFound);
}

TEST_F(MiniFsTest, WriteAndReadBack) {
  auto fs = MiniFs::format(device_).value();
  const auto contents = text("The quick brown fox jumps over the lazy dog.");
  ASSERT_TRUE(fs.write_file("fox.txt", contents).is_ok());
  EXPECT_EQ(fs.read_file("fox.txt").value(), contents);
  const auto info = fs.stat("fox.txt").value();
  EXPECT_EQ(info.size, contents.size());
  EXPECT_EQ(info.blocks, 1u);
}

TEST_F(MiniFsTest, EmptyFile) {
  auto fs = MiniFs::format(device_).value();
  ASSERT_TRUE(fs.write_file("empty", {}).is_ok());
  EXPECT_TRUE(fs.read_file("empty").value().empty());
  EXPECT_EQ(fs.stat("empty").value().blocks, 0u);
}

TEST_F(MiniFsTest, MultiBlockFile) {
  auto fs = MiniFs::format(device_).value();
  std::vector<std::byte> big(512 * 3 + 123);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i * 7 & 0xff);
  }
  ASSERT_TRUE(fs.write_file("big.bin", big).is_ok());
  EXPECT_EQ(fs.read_file("big.bin").value(), big);
  EXPECT_EQ(fs.stat("big.bin").value().blocks, 4u);
}

TEST_F(MiniFsTest, OverwriteReplacesContents) {
  auto fs = MiniFs::format(device_).value();
  ASSERT_TRUE(fs.write_file("f", text("first version, rather long")).is_ok());
  const auto before = fs.free_blocks().value();
  ASSERT_TRUE(fs.write_file("f", text("second")).is_ok());
  EXPECT_EQ(fs.read_file("f").value(), text("second"));
  // The old block was released and one new block allocated.
  EXPECT_EQ(fs.free_blocks().value(), before);
}

TEST_F(MiniFsTest, RemoveFreesBlocks) {
  auto fs = MiniFs::format(device_).value();
  const auto initial = fs.free_blocks().value();
  std::vector<std::byte> data(512 * 2);
  ASSERT_TRUE(fs.write_file("temp", data).is_ok());
  EXPECT_EQ(fs.free_blocks().value(), initial - 2);
  ASSERT_TRUE(fs.remove("temp").is_ok());
  EXPECT_EQ(fs.free_blocks().value(), initial);
}

TEST_F(MiniFsTest, FileTooLargeRejected) {
  auto fs = MiniFs::format(device_).value();
  std::vector<std::byte> huge(fs.max_file_size() + 1);
  EXPECT_EQ(fs.write_file("huge", huge).code(),
            reldev::ErrorCode::kInvalidArgument);
  // Exactly the maximum works.
  std::vector<std::byte> max(fs.max_file_size());
  EXPECT_TRUE(fs.write_file("max", max).is_ok());
  EXPECT_EQ(fs.read_file("max").value().size(), max.size());
}

TEST_F(MiniFsTest, BadNamesRejected) {
  auto fs = MiniFs::format(device_).value();
  EXPECT_EQ(fs.create("").code(), reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs.create(std::string(28, 'x')).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_TRUE(fs.create(std::string(27, 'x')).is_ok());
}

TEST_F(MiniFsTest, OutOfSpaceReported) {
  // Small device: fill it up.
  storage::MemBlockStore small(16, 512);
  core::LocalBlockDevice small_device(small);
  auto fs = MiniFs::format(small_device, 8).value();
  const auto free = fs.free_blocks().value();
  std::vector<std::byte> filler(free * 512);
  ASSERT_TRUE(fs.write_file("filler", filler).is_ok());
  EXPECT_EQ(fs.write_file("more", text("x")).code(),
            reldev::ErrorCode::kUnavailable);
}

TEST_F(MiniFsTest, InodeTableExhaustionReported) {
  storage::MemBlockStore small(64, 512);
  core::LocalBlockDevice small_device(small);
  auto fs = MiniFs::format(small_device, 4).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs.create("file" + std::to_string(i)).is_ok());
  }
  EXPECT_EQ(fs.create("one-too-many").code(),
            reldev::ErrorCode::kUnavailable);
}

TEST_F(MiniFsTest, PersistsAcrossRemount) {
  {
    auto fs = MiniFs::format(device_).value();
    ASSERT_TRUE(fs.write_file("persist", text("still here")).is_ok());
  }
  auto fs = MiniFs::mount(device_).value();
  EXPECT_EQ(fs.read_file("persist").value(), text("still here"));
}

TEST_F(MiniFsTest, ManyFiles) {
  auto fs = MiniFs::format(device_).value();
  for (int i = 0; i < 30; ++i) {
    const std::string name = "file_" + std::to_string(i);
    ASSERT_TRUE(fs.write_file(name, text("contents of " + name)).is_ok());
  }
  EXPECT_EQ(fs.list().value().size(), 30u);
  for (int i = 0; i < 30; ++i) {
    const std::string name = "file_" + std::to_string(i);
    EXPECT_EQ(fs.read_file(name).value(), text("contents of " + name));
  }
}

}  // namespace
}  // namespace reldev::fs
