// Concurrency behaviour of BlockCache: the lock-drop discipline (the cache
// lock is never held across a device fetch) opens a classic stale-insert
// window — a miss fetches old bytes, a concurrent write-through lands, and
// the miss must NOT install its now-stale bytes over the fresh ones. The
// cache closes it with a mutation generation counter; these tests pin that
// behaviour deterministically with a device that blocks mid-fetch.
#include <gtest/gtest.h>

#include <atomic>
#include <semaphore>
#include <thread>
#include <vector>

#include "reldev/core/device.hpp"
#include "reldev/fs/block_cache.hpp"
#include "reldev/storage/mem_block_store.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::fs {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

/// Serializes access to a device that is not itself thread-safe. The cache
/// fetches with its own lock dropped, so concurrent misses reach the
/// backing device concurrently; in production that device is the
/// (internally synchronized) DriverStub, and this stands in for it over a
/// plain MemBlockStore.
class SerializedDevice final : public core::BlockDevice {
 public:
  explicit SerializedDevice(core::BlockDevice& inner) : inner_(inner) {}

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return inner_.block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return inner_.block_size();
  }

  [[nodiscard]] Result<storage::BlockData> read_block(
      storage::BlockId block) override RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return inner_.read_block(block);
  }

  [[nodiscard]] Status write_block(storage::BlockId block,
                                   std::span<const std::byte> data) override
      RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return inner_.write_block(block, data);
  }

 private:
  Mutex mutex_;
  core::BlockDevice& inner_;
};

/// Wraps a device so a test can freeze one read mid-flight: after arm(),
/// the next read_block fetches its bytes, signals `entered`, and then
/// blocks until `proceed` is released — so the frozen reader is holding
/// bytes from BEFORE anything the test does inside the window, exactly
/// the stale-fetch scenario of BlockCache's lock-drop discipline.
class GatedDevice final : public core::BlockDevice {
 public:
  explicit GatedDevice(core::BlockDevice& inner) : inner_(inner) {}

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return inner_.block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return inner_.block_size();
  }

  [[nodiscard]] Result<storage::BlockData> read_block(
      storage::BlockId block) override {
    auto result = inner_.read_block(block);
    if (armed_.exchange(false)) {
      entered.release();
      proceed.acquire();
    }
    return result;
  }

  [[nodiscard]] Status write_block(storage::BlockId block,
                                   std::span<const std::byte> data) override {
    return inner_.write_block(block, data);
  }

  void arm() { armed_.store(true); }

  std::binary_semaphore entered{0};
  std::binary_semaphore proceed{0};

 private:
  core::BlockDevice& inner_;
  std::atomic<bool> armed_{false};
};

class BlockCacheConcurrencyTest : public ::testing::Test {
 protected:
  BlockCacheConcurrencyTest()
      : store_(16, 64),
        local_(store_),
        serialized_(local_),
        gated_(serialized_),
        cache_(gated_, 8) {}

  storage::MemBlockStore store_;
  core::LocalBlockDevice local_;
  SerializedDevice serialized_;
  GatedDevice gated_;
  BlockCache cache_;
};

TEST_F(BlockCacheConcurrencyTest, StaleFetchIsNotCachedOverConcurrentWrite) {
  const auto old_data = payload(64, 0xAA);
  const auto new_data = payload(64, 0xBB);
  ASSERT_TRUE(local_.write_block(5, old_data).is_ok());

  gated_.arm();
  storage::BlockData read_result;
  std::thread reader([&] {
    auto result = cache_.read_block(5);
    ASSERT_TRUE(result.is_ok());
    read_result = std::move(result).value();
  });

  // The reader has missed, dropped the cache lock, and is frozen inside
  // the device fetch holding bytes that are about to go stale.
  gated_.entered.acquire();
  ASSERT_TRUE(cache_.write_block(5, new_data).is_ok());
  gated_.proceed.release();
  reader.join();

  // The in-flight read observed the device state from before the write;
  // returning the old bytes to that caller is correct (the read began
  // first). What must NOT happen is those bytes shadowing the write in
  // the cache afterwards.
  EXPECT_EQ(read_result, old_data);
  auto after = cache_.read_block(5);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value(), new_data);
  // ...and it was served from the write-through copy, not refetched.
  EXPECT_EQ(cache_.stats().hits, 1u);
}

TEST_F(BlockCacheConcurrencyTest, StaleFetchIsNotCachedOverInvalidate) {
  ASSERT_TRUE(local_.write_block(2, payload(64, 0x11)).is_ok());

  gated_.arm();
  std::thread reader([&] {
    auto result = cache_.read_block(2);
    ASSERT_TRUE(result.is_ok());
  });

  gated_.entered.acquire();
  cache_.invalidate();  // e.g. a remount: nothing cached may survive
  gated_.proceed.release();
  reader.join();

  // The fetch that was in flight across the invalidation must not
  // repopulate the cache behind it.
  EXPECT_EQ(cache_.cached_blocks(), 0u);
}

TEST_F(BlockCacheConcurrencyTest, ConcurrentReadersAndWritersStayCoherent) {
  // Every writer writes fill(block) and every block is seeded with
  // fill(block), so whatever interleaving happens, a reader must only
  // ever observe fill(block) — anything else means torn or misplaced
  // data. Runs under TSan in CI, which also checks the locking itself.
  const auto fill = [](storage::BlockId block) {
    return payload(64, static_cast<std::uint8_t>(0x40 + block));
  };
  for (storage::BlockId block = 0; block < 16; ++block) {
    ASSERT_TRUE(local_.write_block(block, fill(block)).is_ok());
  }

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto block =
            static_cast<storage::BlockId>((t * 7 + i) % 16);
        if ((t + i) % 3 == 0) {
          if (!cache_.write_block(block, fill(block)).is_ok()) {
            mismatches.fetch_add(1);
          }
        } else {
          auto result = cache_.read_block(block);
          if (!result.is_ok() || result.value() != fill(block)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache_.cached_blocks(), cache_.capacity());
  const auto stats = cache_.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace reldev::fs
