// Regression for the scrub/cache stale-read window: when the anti-entropy
// scrubber rewrites a block underneath a client, a BlockCache that cached
// the old bytes keeps serving them until it is told. The daemon's heal
// listener is that telling — wired to BlockCache::invalidate(block), the
// first read after a heal misses and fetches the healed bytes.
#include <gtest/gtest.h>

#include "reldev/core/group.hpp"
#include "reldev/fs/block_cache.hpp"

namespace reldev::fs {
namespace {

constexpr std::size_t kSites = 3;
constexpr std::size_t kBlocks = 8;
constexpr std::size_t kBlockSize = 64;

storage::BlockData payload(std::uint8_t tag) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(tag));
}

/// The client's view: a device routed through one site of the group (the
/// shape of a driver stub pointed at its home server).
class GroupDevice final : public core::BlockDevice {
 public:
  GroupDevice(core::ReplicaGroup& group, core::SiteId via)
      : group_(group), via_(via) {}

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return group_.config().block_count;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return group_.config().block_size;
  }
  [[nodiscard]] Result<storage::BlockData> read_block(
      storage::BlockId block) override {
    return group_.read(via_, block);
  }
  [[nodiscard]] Status write_block(storage::BlockId block,
                                   std::span<const std::byte> data) override {
    return group_.write(via_, block, data);
  }

 private:
  core::ReplicaGroup& group_;
  core::SiteId via_;
};

class ScrubInvalidationTest : public ::testing::Test {
 protected:
  ScrubInvalidationTest()
      : group_(core::SchemeKind::kAvailableCopy,
               core::GroupConfig::majority(kSites, kBlocks, kBlockSize)),
        device_(group_, 0),
        cache_(device_, 4) {}

  /// Site 0 misses an update the other sites took: the local copy of
  /// `block` is one version behind — exactly what a scrub cycle heals.
  void make_site0_stale(storage::BlockId block) {
    ASSERT_TRUE(group_.write(0, block, payload(0x0A)).is_ok());
    for (core::SiteId site = 1; site < kSites; ++site) {
      ASSERT_TRUE(group_.store(site).write(block, payload(0x0B), 2).is_ok());
    }
  }

  core::ReplicaGroup group_;
  GroupDevice device_;
  BlockCache cache_;
};

TEST_F(ScrubInvalidationTest, UnwiredCacheHasAStaleReadWindow) {
  make_site0_stale(3);
  ASSERT_EQ(cache_.read_block(3).value(), payload(0x0A));  // cached old bytes

  ASSERT_TRUE(group_.scrub_site(0).is_ok());
  ASSERT_EQ(group_.store(0).read(3).value().data, payload(0x0B));
  // Without the listener the cache still serves the pre-heal bytes: this
  // is the window the wiring below closes.
  EXPECT_EQ(cache_.read_block(3).value(), payload(0x0A));
  EXPECT_EQ(cache_.stats().hits, 1u);
}

TEST_F(ScrubInvalidationTest, HealListenerClosesTheWindow) {
  group_.scrubber(0).set_heal_listener(
      [this](storage::BlockId block) { cache_.invalidate(block); });
  make_site0_stale(3);
  ASSERT_EQ(cache_.read_block(3).value(), payload(0x0A));

  auto report = group_.scrub_site(0);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  ASSERT_EQ(report.value().stale_healed, 1u);

  // The heal invalidated the cached block: the next read misses and
  // returns the healed bytes.
  EXPECT_EQ(cache_.read_block(3).value(), payload(0x0B));
  EXPECT_EQ(cache_.stats().misses, 2u);
  // Untouched blocks stay cached.
  ASSERT_TRUE(cache_.read_block(5).is_ok());
  ASSERT_TRUE(cache_.read_block(5).is_ok());
  EXPECT_EQ(cache_.stats().hits, 1u);
}

TEST_F(ScrubInvalidationTest, MissInFlightDuringHealIsNotCachedStale) {
  // The subtler race: a cache miss snapshots the device BEFORE the heal,
  // and inserts AFTER it. The mutation-generation check must refuse that
  // insert, or the cache would pin pre-heal bytes indefinitely.
  group_.scrubber(0).set_heal_listener(
      [this](storage::BlockId block) { cache_.invalidate(block); });
  make_site0_stale(3);

  // Simulate the interleaving directly: fetch the old bytes, heal, then
  // try to use the cache. (BlockCache's concurrency tests cover the
  // threaded version of this; here we pin the generation bump the
  // listener provides.)
  ASSERT_EQ(cache_.read_block(3).value(), payload(0x0A));
  ASSERT_TRUE(group_.scrub_site(0).is_ok());
  EXPECT_EQ(cache_.read_block(3).value(), payload(0x0B));
}

}  // namespace
}  // namespace reldev::fs
