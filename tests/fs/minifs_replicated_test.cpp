// The paper's headline claim, demonstrated end to end: the *unmodified*
// MiniFS, written only against the BlockDevice interface, runs on a
// replicated reliable device and survives site failures that would kill a
// single-disk system.
#include <gtest/gtest.h>

#include <cstring>

#include "reldev/core/driver_stub.hpp"
#include "reldev/core/group.hpp"
#include "reldev/fs/minifs.hpp"

namespace reldev::fs {
namespace {

using core::ReplicaGroup;
using core::SchemeKind;

std::vector<std::byte> text(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

class ReplicatedFsTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  ReplicatedFsTest()
      : group_(GetParam(), core::GroupConfig::majority(3, 128, 512)),
        device_(group_.replica(0)) {}

  ReplicaGroup group_;
  core::ReplicaDevice device_;
};

TEST_P(ReplicatedFsTest, FormatWriteReadOnReplicatedDevice) {
  auto fs = MiniFs::format(device_);
  ASSERT_TRUE(fs.is_ok()) << fs.status().to_string();
  ASSERT_TRUE(fs.value().write_file("hello", text("replicated!")).is_ok());
  EXPECT_EQ(fs.value().read_file("hello").value(), text("replicated!"));
}

TEST_P(ReplicatedFsTest, SurvivesSiteFailureMidUse) {
  auto fs = MiniFs::format(device_).value();
  ASSERT_TRUE(fs.write_file("a.txt", text("before the crash")).is_ok());
  group_.crash_site(2);
  if (GetParam() == SchemeKind::kVoting) {
    // 2 of 3 is still a quorum.
    ASSERT_TRUE(fs.write_file("b.txt", text("after the crash")).is_ok());
  } else {
    ASSERT_TRUE(fs.write_file("b.txt", text("after the crash")).is_ok());
  }
  EXPECT_EQ(fs.read_file("a.txt").value(), text("before the crash"));
  EXPECT_EQ(fs.read_file("b.txt").value(), text("after the crash"));
}

TEST_P(ReplicatedFsTest, FilesReadableFromAnotherSiteAfterCoordinatorDies) {
  auto fs = MiniFs::format(device_).value();
  ASSERT_TRUE(fs.write_file("doc", text("important data")).is_ok());
  // Coordinator site 0 dies; mount the file system from site 1's replica.
  group_.crash_site(0);
  core::ReplicaDevice device1(group_.replica(1));
  if (GetParam() == SchemeKind::kVoting) {
    auto fs1 = MiniFs::mount(device1);
    ASSERT_TRUE(fs1.is_ok());
    EXPECT_EQ(fs1.value().read_file("doc").value(), text("important data"));
  } else {
    auto fs1 = MiniFs::mount(device1);
    ASSERT_TRUE(fs1.is_ok());
    EXPECT_EQ(fs1.value().read_file("doc").value(), text("important data"));
  }
}

TEST_P(ReplicatedFsTest, RecoveredSiteServesTheFileSystem) {
  auto fs = MiniFs::format(device_).value();
  group_.crash_site(1);
  ASSERT_TRUE(fs.write_file("during", text("written while 1 down")).is_ok());
  ASSERT_TRUE(group_.recover_site(1).is_ok());
  // For voting the repair is lazy; for AC/NAC eager. Either way the file
  // system mounted on site 1 must see the write.
  core::ReplicaDevice device1(group_.replica(1));
  auto fs1 = MiniFs::mount(device1);
  ASSERT_TRUE(fs1.is_ok());
  EXPECT_EQ(fs1.value().read_file("during").value(),
            text("written while 1 down"));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ReplicatedFsTest,
                         ::testing::Values(SchemeKind::kVoting,
                                           SchemeKind::kAvailableCopy,
                                           SchemeKind::kNaiveAvailableCopy));

TEST(ReplicatedFsStubTest, FileSystemOverDriverStub) {
  // MiniFS mounted on the *network* device: client -> stub -> server ->
  // replica group, the diskless-workstation picture of §2.
  ReplicaGroup group(SchemeKind::kAvailableCopy,
                     core::GroupConfig::majority(3, 128, 512));
  auto stub = core::DriverStub::connect(group.transport(), 100, {0, 1, 2});
  ASSERT_TRUE(stub.is_ok());
  auto fs = MiniFs::format(stub.value());
  ASSERT_TRUE(fs.is_ok());
  ASSERT_TRUE(fs.value().write_file("remote", text("over the wire")).is_ok());
  EXPECT_EQ(fs.value().read_file("remote").value(), text("over the wire"));

  // And the same bits are visible when mounted directly on a replica.
  core::ReplicaDevice direct(group.replica(2));
  auto fs2 = MiniFs::mount(direct);
  ASSERT_TRUE(fs2.is_ok());
  EXPECT_EQ(fs2.value().read_file("remote").value(), text("over the wire"));
}

TEST(ReplicatedFsStubTest, IdenticalBehaviourOnLocalAndReplicatedDevices) {
  // The "file system requires no modification" claim, as a literal test:
  // run the same operation script against a local disk and a replicated
  // device and compare every observable result.
  storage::MemBlockStore local_store(128, 512);
  core::LocalBlockDevice local_device(local_store);
  ReplicaGroup group(SchemeKind::kNaiveAvailableCopy,
                     core::GroupConfig::majority(3, 128, 512));
  core::ReplicaDevice replicated_device(group.replica(0));

  auto local_fs = MiniFs::format(local_device).value();
  auto replicated_fs = MiniFs::format(replicated_device).value();

  const std::vector<std::pair<std::string, std::string>> script{
      {"a", "alpha"}, {"b", "beta"}, {"a", "alpha v2"}, {"c", "gamma"}};
  for (const auto& [name, contents] : script) {
    ASSERT_TRUE(local_fs.write_file(name, text(contents)).is_ok());
    ASSERT_TRUE(replicated_fs.write_file(name, text(contents)).is_ok());
  }
  ASSERT_TRUE(local_fs.remove("b").is_ok());
  ASSERT_TRUE(replicated_fs.remove("b").is_ok());

  const auto local_list = local_fs.list().value();
  const auto replicated_list = replicated_fs.list().value();
  ASSERT_EQ(local_list.size(), replicated_list.size());
  for (std::size_t i = 0; i < local_list.size(); ++i) {
    EXPECT_EQ(local_list[i].name, replicated_list[i].name);
    EXPECT_EQ(local_list[i].size, replicated_list[i].size);
    EXPECT_EQ(local_fs.read_file(local_list[i].name).value(),
              replicated_fs.read_file(replicated_list[i].name).value());
  }
}

}  // namespace
}  // namespace reldev::fs
