#include "reldev/fs/block_cache.hpp"

#include <gtest/gtest.h>

#include "reldev/core/group.hpp"
#include "reldev/fs/minifs.hpp"
#include "reldev/storage/mem_block_store.hpp"

namespace reldev::fs {
namespace {

storage::BlockData payload(std::size_t size, std::uint8_t seed) {
  return storage::BlockData(size, static_cast<std::byte>(seed));
}

class BlockCacheTest : public ::testing::Test {
 protected:
  BlockCacheTest() : store_(16, 64), device_(store_), cache_(device_, 4) {}

  storage::MemBlockStore store_;
  core::LocalBlockDevice device_;
  BlockCache cache_;
};

TEST_F(BlockCacheTest, GeometryPassesThrough) {
  EXPECT_EQ(cache_.block_count(), 16u);
  EXPECT_EQ(cache_.block_size(), 64u);
  EXPECT_EQ(cache_.capacity(), 4u);
}

TEST_F(BlockCacheTest, FirstReadMissesSecondHits) {
  ASSERT_TRUE(cache_.read_block(0).is_ok());
  EXPECT_EQ(cache_.stats().misses, 1u);
  EXPECT_EQ(cache_.stats().hits, 0u);
  ASSERT_TRUE(cache_.read_block(0).is_ok());
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache_.stats().hit_rate(), 0.5);
}

TEST_F(BlockCacheTest, WriteThroughUpdatesDeviceAndCache) {
  const auto data = payload(64, 7);
  ASSERT_TRUE(cache_.write_block(3, data).is_ok());
  // The device has the data...
  EXPECT_EQ(device_.read_block(3).value(), data);
  // ...and the subsequent cache read is a hit.
  ASSERT_TRUE(cache_.read_block(3).is_ok());
  EXPECT_EQ(cache_.stats().hits, 1u);
  EXPECT_EQ(cache_.stats().misses, 0u);
}

TEST_F(BlockCacheTest, LruEvictionOrder) {
  for (storage::BlockId b = 0; b < 4; ++b) {
    ASSERT_TRUE(cache_.read_block(b).is_ok());
  }
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_TRUE(cache_.read_block(0).is_ok());
  ASSERT_TRUE(cache_.read_block(4).is_ok());  // evicts 1
  EXPECT_EQ(cache_.stats().evictions, 1u);
  ASSERT_TRUE(cache_.read_block(0).is_ok());  // still cached
  EXPECT_EQ(cache_.stats().hits, 2u);
  ASSERT_TRUE(cache_.read_block(1).is_ok());  // miss: was evicted
  EXPECT_EQ(cache_.stats().misses, 6u);
}

TEST_F(BlockCacheTest, CapacityNeverExceeded) {
  for (storage::BlockId b = 0; b < 16; ++b) {
    ASSERT_TRUE(cache_.read_block(b).is_ok());
    EXPECT_LE(cache_.cached_blocks(), 4u);
  }
}

TEST_F(BlockCacheTest, InvalidateSingleAndAll) {
  ASSERT_TRUE(cache_.read_block(0).is_ok());
  ASSERT_TRUE(cache_.read_block(1).is_ok());
  cache_.invalidate(0);
  EXPECT_EQ(cache_.cached_blocks(), 1u);
  cache_.invalidate();
  EXPECT_EQ(cache_.cached_blocks(), 0u);
  // Reading again misses.
  ASSERT_TRUE(cache_.read_block(1).is_ok());
  EXPECT_EQ(cache_.stats().misses, 3u);
}

TEST_F(BlockCacheTest, ErrorsPassThroughUncached) {
  EXPECT_EQ(cache_.read_block(99).status().code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(cache_.write_block(99, payload(64, 1)).code(),
            reldev::ErrorCode::kInvalidArgument);
  EXPECT_EQ(cache_.cached_blocks(), 0u);
}

TEST_F(BlockCacheTest, ReadAheadIsOffByDefault) {
  EXPECT_EQ(cache_.read_ahead(), 0u);
  for (storage::BlockId b = 0; b < 4; ++b) {
    ASSERT_TRUE(cache_.read_block(b).is_ok());
  }
  EXPECT_EQ(cache_.stats().misses, 4u);
  EXPECT_EQ(cache_.stats().read_ahead_blocks, 0u);
}

TEST_F(BlockCacheTest, SequentialRunTriggersReadAhead) {
  cache_.set_read_ahead(2);
  // Block 0: first access, no run yet — plain scalar miss.
  ASSERT_TRUE(cache_.read_block(0).is_ok());
  EXPECT_EQ(cache_.stats().read_ahead_blocks, 0u);
  // Block 1 continues the run: the miss prefetches blocks 2..3 too.
  ASSERT_EQ(cache_.read_block(1).value(), device_.read_block(1).value());
  EXPECT_EQ(cache_.stats().read_ahead_blocks, 2u);
  ASSERT_TRUE(cache_.read_block(2).is_ok());
  ASSERT_TRUE(cache_.read_block(3).is_ok());
  EXPECT_EQ(cache_.stats().hits, 2u);     // 2 and 3 were prefetched
  EXPECT_EQ(cache_.stats().misses, 2u);   // only 0 and 1 missed
}

TEST_F(BlockCacheTest, RandomAccessNeverPrefetches) {
  cache_.set_read_ahead(3);
  ASSERT_TRUE(cache_.read_block(0).is_ok());
  ASSERT_TRUE(cache_.read_block(5).is_ok());
  ASSERT_TRUE(cache_.read_block(10).is_ok());
  EXPECT_EQ(cache_.stats().read_ahead_blocks, 0u);
  EXPECT_EQ(cache_.stats().misses, 3u);
}

TEST_F(BlockCacheTest, ReadAheadClampedAtDeviceEnd) {
  cache_.set_read_ahead(3);
  ASSERT_TRUE(cache_.read_block(14).is_ok());
  ASSERT_TRUE(cache_.read_block(15).is_ok());  // run of 2 at the last block
  // Nothing beyond block 15 exists; no out-of-range fetch, no crash.
  EXPECT_EQ(cache_.stats().read_ahead_blocks, 0u);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST(BlockCacheReadAheadTest, ReadAheadCutsQuorumRounds) {
  // Sequential scan over a replicated device: with read-ahead each prefetch
  // window costs one vectored quorum round instead of one per block.
  core::ReplicaGroup group(core::SchemeKind::kVoting,
                           core::GroupConfig::majority(3, 16, 64));
  core::ReplicaDevice device(group.replica(0));

  BlockCache scalar_cache(device, 16);
  for (storage::BlockId b = 0; b < 16; ++b) {
    ASSERT_TRUE(scalar_cache.read_block(b).is_ok());
  }
  const auto scalar_traffic = group.meter().total();

  group.meter().reset();
  BlockCache ahead_cache(device, 16);
  ahead_cache.set_read_ahead(7);
  for (storage::BlockId b = 0; b < 16; ++b) {
    ASSERT_TRUE(ahead_cache.read_block(b).is_ok());
  }
  EXPECT_LT(group.meter().total(), scalar_traffic);
  EXPECT_GT(ahead_cache.stats().read_ahead_blocks, 0u);
}

TEST(BlockCacheReplicatedTest, CacheHidesReplicaReadTraffic) {
  // On a voting device every uncached read costs a quorum round; the
  // buffer cache absorbs repeat reads — the Figure 1 stack working as
  // intended.
  core::ReplicaGroup group(core::SchemeKind::kVoting,
                           core::GroupConfig::majority(5, 16, 64));
  core::ReplicaDevice device(group.replica(0));
  BlockCache cache(device, 8);
  ASSERT_TRUE(cache.read_block(0).is_ok());
  const auto traffic_after_first = group.meter().total();
  EXPECT_GT(traffic_after_first, 0u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.read_block(0).is_ok());
  }
  EXPECT_EQ(group.meter().total(), traffic_after_first);  // all hits
}

TEST(BlockCacheReplicatedTest, FailedReplicatedWriteLeavesCacheClean) {
  core::ReplicaGroup group(core::SchemeKind::kVoting,
                           core::GroupConfig::majority(3, 16, 64));
  core::ReplicaDevice device(group.replica(0));
  BlockCache cache(device, 8);
  ASSERT_TRUE(cache.write_block(0, payload(64, 1)).is_ok());
  // Lose the quorum; the write must fail and the cache must keep v1.
  group.crash_site(1);
  group.crash_site(2);
  EXPECT_EQ(cache.write_block(0, payload(64, 2)).code(),
            reldev::ErrorCode::kUnavailable);
  EXPECT_EQ(cache.read_block(0).value(), payload(64, 1));
}

TEST(BlockCacheMiniFsTest, MiniFsRunsOnCachedReplicatedDevice) {
  // The full stack: MiniFS -> cache -> replicated device.
  core::ReplicaGroup group(core::SchemeKind::kAvailableCopy,
                           core::GroupConfig::majority(3, 128, 512));
  core::ReplicaDevice device(group.replica(0));
  BlockCache cache(device, 32);
  auto fs = MiniFs::format(cache);
  ASSERT_TRUE(fs.is_ok());
  std::vector<std::byte> contents(700, std::byte{0x42});
  ASSERT_TRUE(fs.value().write_file("cached", contents).is_ok());
  EXPECT_EQ(fs.value().read_file("cached").value(), contents);
  EXPECT_GT(cache.stats().hit_rate(), 0.0);
}

}  // namespace
}  // namespace reldev::fs
