#include "reldev/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reldev::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdIsNoOp) {
  Simulator sim;
  sim.cancel(9999);  // must not throw
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtDeadlineIsIncluded) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.schedule_after(1.0, step);
  };
  sim.schedule_at(0.0, step);
  sim.run_all();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, SchedulingInPastIsContractViolation) {
  Simulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), reldev::ContractViolation);
  EXPECT_THROW(sim.schedule_after(-0.5, [] {}), reldev::ContractViolation);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, CancelledEventsDontBlockRunUntil) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace reldev::sim
