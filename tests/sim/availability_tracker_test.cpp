#include "reldev/sim/availability_tracker.hpp"

#include <gtest/gtest.h>

#include "reldev/util/assert.hpp"

namespace reldev::sim {
namespace {

TEST(AvailabilityTrackerTest, AlwaysUpIsOne) {
  AvailabilityTracker tracker(0.0, 100.0, 10);
  tracker.record(0.0, true);
  tracker.finish(100.0);
  EXPECT_DOUBLE_EQ(tracker.availability(), 1.0);
}

TEST(AvailabilityTrackerTest, AlwaysDownIsZero) {
  AvailabilityTracker tracker(0.0, 100.0, 10);
  tracker.record(0.0, false);
  tracker.finish(100.0);
  EXPECT_DOUBLE_EQ(tracker.availability(), 0.0);
}

TEST(AvailabilityTrackerTest, HalfUpHalfDown) {
  AvailabilityTracker tracker(0.0, 100.0, 10);
  tracker.record(0.0, true);
  tracker.record(50.0, false);
  tracker.finish(100.0);
  EXPECT_DOUBLE_EQ(tracker.availability(), 0.5);
}

TEST(AvailabilityTrackerTest, WarmupIsDiscarded) {
  AvailabilityTracker tracker(10.0, 100.0, 10);
  tracker.record(0.0, false);  // down only during warm-up
  tracker.record(10.0, true);
  tracker.finish(110.0);
  EXPECT_DOUBLE_EQ(tracker.availability(), 1.0);
}

TEST(AvailabilityTrackerTest, ConfidenceTightensWithUniformity) {
  AvailabilityTracker steady(0.0, 100.0, 10);
  steady.record(0.0, true);
  steady.finish(100.0);
  EXPECT_DOUBLE_EQ(steady.half_width(), 0.0);

  AvailabilityTracker alternating(0.0, 100.0, 10);
  // Up in even batches, down in odd: batch means alternate 1, 0.
  bool up = true;
  for (double t = 0.0; t < 100.0; t += 10.0) {
    alternating.record(t, up);
    up = !up;
  }
  alternating.finish(100.0);
  EXPECT_GT(alternating.half_width(), 0.1);
}

TEST(AvailabilityTrackerTest, SignalBeyondHorizonIgnored) {
  AvailabilityTracker tracker(0.0, 50.0, 5);
  tracker.record(0.0, true);
  tracker.record(200.0, false);  // after the horizon: no effect on average
  tracker.finish(250.0);
  EXPECT_DOUBLE_EQ(tracker.availability(), 1.0);
}

TEST(AvailabilityTrackerTest, FinishTwiceIsContractViolation) {
  AvailabilityTracker tracker(0.0, 10.0, 2);
  tracker.record(0.0, true);
  tracker.finish(10.0);
  EXPECT_THROW(tracker.finish(11.0), reldev::ContractViolation);
}

TEST(AvailabilityTrackerTest, QueryBeforeFinishIsContractViolation) {
  AvailabilityTracker tracker(0.0, 10.0, 2);
  tracker.record(0.0, true);
  EXPECT_THROW((void)tracker.availability(), reldev::ContractViolation);
}

TEST(AvailabilityTrackerTest, InvalidConstructionRejected) {
  EXPECT_THROW(AvailabilityTracker(-1.0, 10.0, 2), reldev::ContractViolation);
  EXPECT_THROW(AvailabilityTracker(0.0, 0.0, 2), reldev::ContractViolation);
  EXPECT_THROW(AvailabilityTracker(0.0, 10.0, 1), reldev::ContractViolation);
}

}  // namespace
}  // namespace reldev::sim
