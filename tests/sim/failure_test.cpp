#include "reldev/sim/failure.hpp"

#include <gtest/gtest.h>

namespace reldev::sim {
namespace {

class CountingListener : public FailureListener {
 public:
  void on_site_failed(std::size_t site, double now) override {
    ++failures;
    last_failed = site;
    last_time = now;
  }
  void on_site_repaired(std::size_t site, double now) override {
    ++repairs;
    last_repaired = site;
    last_time = now;
  }
  int failures = 0;
  int repairs = 0;
  std::size_t last_failed = SIZE_MAX;
  std::size_t last_repaired = SIZE_MAX;
  double last_time = -1.0;
};

TEST(FailureProcessTest, AllSitesStartUp) {
  Simulator sim;
  FailureProcess process(sim, Rng(1), uniform_rates(4, 0.1), nullptr);
  EXPECT_EQ(process.up_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(process.is_up(i));
}

TEST(FailureProcessTest, FailuresAndRepairsAlternate) {
  Simulator sim;
  CountingListener listener;
  FailureProcess process(sim, Rng(2), uniform_rates(1, 1.0), &listener);
  process.start();
  sim.run_until(100.0);
  // With lambda = mu = 1 over 100 time units we expect roughly 50 cycles.
  EXPECT_GT(listener.failures, 10);
  // Counts can differ by at most one (the site is either up or down now).
  EXPECT_NEAR(listener.failures, listener.repairs, 1);
  EXPECT_EQ(process.is_up(0), listener.failures == listener.repairs);
}

TEST(FailureProcessTest, UpCountConsistentWithEvents) {
  Simulator sim;
  CountingListener listener;
  FailureProcess process(sim, Rng(3), uniform_rates(5, 0.5), &listener);
  process.start();
  sim.run_until(200.0);
  std::size_t up = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (process.is_up(i)) ++up;
  }
  EXPECT_EQ(up, process.up_count());
}

TEST(FailureProcessTest, ZeroFailureRateNeverFails) {
  Simulator sim;
  CountingListener listener;
  std::vector<FailureRates> rates{{0.0, 1.0}};
  FailureProcess process(sim, Rng(4), rates, &listener);
  process.start();
  sim.run_until(1000.0);
  EXPECT_EQ(listener.failures, 0);
  EXPECT_TRUE(process.is_up(0));
}

TEST(FailureProcessTest, LongRunFractionMatchesTheory) {
  // A single site with rho = lambda/mu should be up 1/(1+rho) of the time.
  Simulator sim;
  const double rho = 0.25;

  class UptimeListener : public FailureListener {
   public:
    void on_site_failed(std::size_t, double now) override {
      up_time += now - since;
      since = now;
    }
    void on_site_repaired(std::size_t, double now) override { since = now; }
    double up_time = 0.0;
    double since = 0.0;
  } listener;

  FailureProcess process(sim, Rng(5), uniform_rates(1, rho), &listener);
  process.start();
  const double horizon = 200'000.0;
  sim.run_until(horizon);
  double up_time = listener.up_time;
  if (process.is_up(0)) up_time += horizon - listener.since;
  EXPECT_NEAR(up_time / horizon, 1.0 / (1.0 + rho), 0.01);
}

TEST(FailureProcessTest, DoubleStartIsContractViolation) {
  Simulator sim;
  FailureProcess process(sim, Rng(6), uniform_rates(2, 0.1), nullptr);
  process.start();
  EXPECT_THROW(process.start(), reldev::ContractViolation);
}

TEST(FailureProcessTest, InvalidRatesRejected) {
  Simulator sim;
  std::vector<FailureRates> bad{{0.1, 0.0}};
  EXPECT_THROW(FailureProcess(sim, Rng(7), bad, nullptr),
               reldev::ContractViolation);
  EXPECT_THROW(FailureProcess(sim, Rng(7), {}, nullptr),
               reldev::ContractViolation);
}

TEST(UniformRatesTest, BuildsExpectedVector) {
  const auto rates = uniform_rates(3, 0.07);
  ASSERT_EQ(rates.size(), 3u);
  for (const auto& r : rates) {
    EXPECT_DOUBLE_EQ(r.failure_rate, 0.07);
    EXPECT_DOUBLE_EQ(r.repair_rate, 1.0);
  }
}

}  // namespace
}  // namespace reldev::sim
