#include "reldev/sim/arrivals.hpp"

#include <gtest/gtest.h>

namespace reldev::sim {
namespace {

TEST(ArrivalProcessTest, RateMatchesExpectation) {
  Simulator sim;
  int count = 0;
  ArrivalProcess arrivals(sim, Rng(1), 5.0, [&](double) { ++count; });
  arrivals.start();
  sim.run_until(10'000.0);
  arrivals.stop();
  // Expect ~50000 arrivals; Poisson stddev ~224.
  EXPECT_NEAR(count, 50'000, 1'500);
  EXPECT_EQ(arrivals.arrivals(), static_cast<std::uint64_t>(count));
}

TEST(ArrivalProcessTest, HandlerSeesIncreasingTimes) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  ArrivalProcess arrivals(sim, Rng(2), 1.0, [&](double now) {
    if (now < last) monotone = false;
    last = now;
  });
  arrivals.start();
  sim.run_until(100.0);
  EXPECT_TRUE(monotone);
}

TEST(ArrivalProcessTest, StopCancelsFutureArrivals) {
  Simulator sim;
  int count = 0;
  ArrivalProcess arrivals(sim, Rng(3), 10.0, [&](double) { ++count; });
  arrivals.start();
  sim.run_until(10.0);
  arrivals.stop();
  const int at_stop = count;
  sim.run_until(100.0);
  EXPECT_EQ(count, at_stop);
}

TEST(ArrivalProcessTest, StopBeforeStartIsSafe) {
  Simulator sim;
  ArrivalProcess arrivals(sim, Rng(4), 1.0, [](double) {});
  arrivals.stop();  // no-op
  EXPECT_EQ(arrivals.arrivals(), 0u);
}

TEST(ArrivalProcessTest, DestructorCancelsCleanly) {
  Simulator sim;
  {
    ArrivalProcess arrivals(sim, Rng(5), 100.0, [](double) {});
    arrivals.start();
  }
  // The pending event was cancelled; running must not crash or fire it.
  sim.run_until(10.0);
}

TEST(ArrivalProcessTest, InvalidConstructionRejected) {
  Simulator sim;
  EXPECT_THROW(ArrivalProcess(sim, Rng(6), 0.0, [](double) {}),
               reldev::ContractViolation);
}

}  // namespace
}  // namespace reldev::sim
