file(REMOVE_RECURSE
  "CMakeFiles/failure_scenarios.dir/failure_scenarios.cpp.o"
  "CMakeFiles/failure_scenarios.dir/failure_scenarios.cpp.o.d"
  "failure_scenarios"
  "failure_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
