# Empty dependencies file for failure_scenarios.
# This may be replaced when dependencies are built.
