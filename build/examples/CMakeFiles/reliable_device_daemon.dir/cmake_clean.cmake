file(REMOVE_RECURSE
  "CMakeFiles/reliable_device_daemon.dir/reliable_device_daemon.cpp.o"
  "CMakeFiles/reliable_device_daemon.dir/reliable_device_daemon.cpp.o.d"
  "reliable_device_daemon"
  "reliable_device_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_device_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
