# Empty dependencies file for reliable_device_daemon.
# This may be replaced when dependencies are built.
