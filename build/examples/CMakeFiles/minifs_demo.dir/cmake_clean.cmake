file(REMOVE_RECURSE
  "CMakeFiles/minifs_demo.dir/minifs_demo.cpp.o"
  "CMakeFiles/minifs_demo.dir/minifs_demo.cpp.o.d"
  "minifs_demo"
  "minifs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minifs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
