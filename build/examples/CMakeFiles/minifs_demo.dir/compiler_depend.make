# Empty compiler generated dependencies file for minifs_demo.
# This may be replaced when dependencies are built.
