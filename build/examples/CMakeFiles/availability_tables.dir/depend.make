# Empty dependencies file for availability_tables.
# This may be replaced when dependencies are built.
