file(REMOVE_RECURSE
  "CMakeFiles/availability_tables.dir/availability_tables.cpp.o"
  "CMakeFiles/availability_tables.dir/availability_tables.cpp.o.d"
  "availability_tables"
  "availability_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
