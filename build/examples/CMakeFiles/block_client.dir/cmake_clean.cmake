file(REMOVE_RECURSE
  "CMakeFiles/block_client.dir/block_client.cpp.o"
  "CMakeFiles/block_client.dir/block_client.cpp.o.d"
  "block_client"
  "block_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
