# Empty compiler generated dependencies file for block_client.
# This may be replaced when dependencies are built.
