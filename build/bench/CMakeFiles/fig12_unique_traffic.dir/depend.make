# Empty dependencies file for fig12_unique_traffic.
# This may be replaced when dependencies are built.
