file(REMOVE_RECURSE
  "CMakeFiles/fig12_unique_traffic.dir/fig12_unique_traffic.cpp.o"
  "CMakeFiles/fig12_unique_traffic.dir/fig12_unique_traffic.cpp.o.d"
  "fig12_unique_traffic"
  "fig12_unique_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_unique_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
