# Empty compiler generated dependencies file for thm41_dominance.
# This may be replaced when dependencies are built.
