file(REMOVE_RECURSE
  "CMakeFiles/thm41_dominance.dir/thm41_dominance.cpp.o"
  "CMakeFiles/thm41_dominance.dir/thm41_dominance.cpp.o.d"
  "thm41_dominance"
  "thm41_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm41_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
