file(REMOVE_RECURSE
  "CMakeFiles/ablation_repair_cv.dir/ablation_repair_cv.cpp.o"
  "CMakeFiles/ablation_repair_cv.dir/ablation_repair_cv.cpp.o.d"
  "ablation_repair_cv"
  "ablation_repair_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repair_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
