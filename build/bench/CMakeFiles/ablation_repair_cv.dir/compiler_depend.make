# Empty compiler generated dependencies file for ablation_repair_cv.
# This may be replaced when dependencies are built.
