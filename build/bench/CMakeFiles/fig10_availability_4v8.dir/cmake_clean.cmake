file(REMOVE_RECURSE
  "CMakeFiles/fig10_availability_4v8.dir/fig10_availability_4v8.cpp.o"
  "CMakeFiles/fig10_availability_4v8.dir/fig10_availability_4v8.cpp.o.d"
  "fig10_availability_4v8"
  "fig10_availability_4v8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_availability_4v8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
