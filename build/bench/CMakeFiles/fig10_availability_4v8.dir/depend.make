# Empty dependencies file for fig10_availability_4v8.
# This may be replaced when dependencies are built.
