# Empty compiler generated dependencies file for recovery_behaviour.
# This may be replaced when dependencies are built.
