file(REMOVE_RECURSE
  "CMakeFiles/recovery_behaviour.dir/recovery_behaviour.cpp.o"
  "CMakeFiles/recovery_behaviour.dir/recovery_behaviour.cpp.o.d"
  "recovery_behaviour"
  "recovery_behaviour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_behaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
