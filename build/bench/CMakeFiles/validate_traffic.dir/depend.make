# Empty dependencies file for validate_traffic.
# This may be replaced when dependencies are built.
