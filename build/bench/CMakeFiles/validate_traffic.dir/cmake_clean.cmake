file(REMOVE_RECURSE
  "CMakeFiles/validate_traffic.dir/validate_traffic.cpp.o"
  "CMakeFiles/validate_traffic.dir/validate_traffic.cpp.o.d"
  "validate_traffic"
  "validate_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
