# Empty dependencies file for validate_availability.
# This may be replaced when dependencies are built.
