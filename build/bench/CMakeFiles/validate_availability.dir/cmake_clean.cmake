file(REMOVE_RECURSE
  "CMakeFiles/validate_availability.dir/validate_availability.cpp.o"
  "CMakeFiles/validate_availability.dir/validate_availability.cpp.o.d"
  "validate_availability"
  "validate_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
