file(REMOVE_RECURSE
  "CMakeFiles/reliability_mttf.dir/reliability_mttf.cpp.o"
  "CMakeFiles/reliability_mttf.dir/reliability_mttf.cpp.o.d"
  "reliability_mttf"
  "reliability_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
