# Empty compiler generated dependencies file for reliability_mttf.
# This may be replaced when dependencies are built.
