# Empty dependencies file for micro_protocols.
# This may be replaced when dependencies are built.
