file(REMOVE_RECURSE
  "CMakeFiles/fig09_availability_3v6.dir/fig09_availability_3v6.cpp.o"
  "CMakeFiles/fig09_availability_3v6.dir/fig09_availability_3v6.cpp.o.d"
  "fig09_availability_3v6"
  "fig09_availability_3v6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_availability_3v6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
