# Empty compiler generated dependencies file for fig09_availability_3v6.
# This may be replaced when dependencies are built.
