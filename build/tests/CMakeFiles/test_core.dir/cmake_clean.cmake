file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/available_copy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/available_copy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/closure_test.cpp.o"
  "CMakeFiles/test_core.dir/core/closure_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/driver_stub_test.cpp.o"
  "CMakeFiles/test_core.dir/core/driver_stub_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/group_test.cpp.o"
  "CMakeFiles/test_core.dir/core/group_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/naive_test.cpp.o"
  "CMakeFiles/test_core.dir/core/naive_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/replica_edge_test.cpp.o"
  "CMakeFiles/test_core.dir/core/replica_edge_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scenario_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scenario_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/types_test.cpp.o"
  "CMakeFiles/test_core.dir/core/types_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/voting_test.cpp.o"
  "CMakeFiles/test_core.dir/core/voting_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
