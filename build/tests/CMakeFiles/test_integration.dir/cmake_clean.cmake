file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/experiment_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/experiment_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/persistence_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/persistence_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/safety_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/safety_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/sim_vs_analytic_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/sim_vs_analytic_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/tcp_group_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/tcp_group_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
