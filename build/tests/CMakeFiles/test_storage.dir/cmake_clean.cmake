file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/file_block_store_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/file_block_store_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/mem_block_store_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/mem_block_store_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/site_metadata_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/site_metadata_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/version_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/version_test.cpp.o.d"
  "test_storage"
  "test_storage.pdb"
  "test_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
