
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/availability_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/availability_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/availability_test.cpp.o.d"
  "/root/repo/tests/analysis/binomial_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/binomial_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/binomial_test.cpp.o.d"
  "/root/repo/tests/analysis/linalg_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/linalg_test.cpp.o.d"
  "/root/repo/tests/analysis/markov_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/markov_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/markov_test.cpp.o.d"
  "/root/repo/tests/analysis/quorum_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/quorum_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/quorum_test.cpp.o.d"
  "/root/repo/tests/analysis/reliability_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/reliability_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/reliability_test.cpp.o.d"
  "/root/repo/tests/analysis/traffic_model_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/traffic_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/traffic_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/reldev_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reldev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reldev_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reldev_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/reldev_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reldev_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/reldev_fs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
