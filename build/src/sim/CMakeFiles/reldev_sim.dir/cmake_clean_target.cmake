file(REMOVE_RECURSE
  "libreldev_sim.a"
)
