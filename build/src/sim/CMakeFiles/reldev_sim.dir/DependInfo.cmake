
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arrivals.cpp" "src/sim/CMakeFiles/reldev_sim.dir/arrivals.cpp.o" "gcc" "src/sim/CMakeFiles/reldev_sim.dir/arrivals.cpp.o.d"
  "/root/repo/src/sim/availability_tracker.cpp" "src/sim/CMakeFiles/reldev_sim.dir/availability_tracker.cpp.o" "gcc" "src/sim/CMakeFiles/reldev_sim.dir/availability_tracker.cpp.o.d"
  "/root/repo/src/sim/failure.cpp" "src/sim/CMakeFiles/reldev_sim.dir/failure.cpp.o" "gcc" "src/sim/CMakeFiles/reldev_sim.dir/failure.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/reldev_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/reldev_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/reldev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
