file(REMOVE_RECURSE
  "CMakeFiles/reldev_sim.dir/arrivals.cpp.o"
  "CMakeFiles/reldev_sim.dir/arrivals.cpp.o.d"
  "CMakeFiles/reldev_sim.dir/availability_tracker.cpp.o"
  "CMakeFiles/reldev_sim.dir/availability_tracker.cpp.o.d"
  "CMakeFiles/reldev_sim.dir/failure.cpp.o"
  "CMakeFiles/reldev_sim.dir/failure.cpp.o.d"
  "CMakeFiles/reldev_sim.dir/simulator.cpp.o"
  "CMakeFiles/reldev_sim.dir/simulator.cpp.o.d"
  "libreldev_sim.a"
  "libreldev_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
