# Empty compiler generated dependencies file for reldev_sim.
# This may be replaced when dependencies are built.
