file(REMOVE_RECURSE
  "libreldev_fs.a"
)
