# Empty compiler generated dependencies file for reldev_fs.
# This may be replaced when dependencies are built.
