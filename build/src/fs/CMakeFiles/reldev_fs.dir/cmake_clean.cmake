file(REMOVE_RECURSE
  "CMakeFiles/reldev_fs.dir/block_cache.cpp.o"
  "CMakeFiles/reldev_fs.dir/block_cache.cpp.o.d"
  "CMakeFiles/reldev_fs.dir/minifs.cpp.o"
  "CMakeFiles/reldev_fs.dir/minifs.cpp.o.d"
  "libreldev_fs.a"
  "libreldev_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
