
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/available_copy_replica.cpp" "src/core/CMakeFiles/reldev_core.dir/available_copy_replica.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/available_copy_replica.cpp.o.d"
  "/root/repo/src/core/closure.cpp" "src/core/CMakeFiles/reldev_core.dir/closure.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/closure.cpp.o.d"
  "/root/repo/src/core/driver_stub.cpp" "src/core/CMakeFiles/reldev_core.dir/driver_stub.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/driver_stub.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/reldev_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/group.cpp" "src/core/CMakeFiles/reldev_core.dir/group.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/group.cpp.o.d"
  "/root/repo/src/core/naive_replica.cpp" "src/core/CMakeFiles/reldev_core.dir/naive_replica.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/naive_replica.cpp.o.d"
  "/root/repo/src/core/replica.cpp" "src/core/CMakeFiles/reldev_core.dir/replica.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/replica.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/reldev_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/voting_replica.cpp" "src/core/CMakeFiles/reldev_core.dir/voting_replica.cpp.o" "gcc" "src/core/CMakeFiles/reldev_core.dir/voting_replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/reldev_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reldev_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reldev_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reldev_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
