file(REMOVE_RECURSE
  "libreldev_core.a"
)
