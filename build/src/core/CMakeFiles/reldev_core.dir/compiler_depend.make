# Empty compiler generated dependencies file for reldev_core.
# This may be replaced when dependencies are built.
