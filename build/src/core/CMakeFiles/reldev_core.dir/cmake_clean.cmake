file(REMOVE_RECURSE
  "CMakeFiles/reldev_core.dir/available_copy_replica.cpp.o"
  "CMakeFiles/reldev_core.dir/available_copy_replica.cpp.o.d"
  "CMakeFiles/reldev_core.dir/closure.cpp.o"
  "CMakeFiles/reldev_core.dir/closure.cpp.o.d"
  "CMakeFiles/reldev_core.dir/driver_stub.cpp.o"
  "CMakeFiles/reldev_core.dir/driver_stub.cpp.o.d"
  "CMakeFiles/reldev_core.dir/experiment.cpp.o"
  "CMakeFiles/reldev_core.dir/experiment.cpp.o.d"
  "CMakeFiles/reldev_core.dir/group.cpp.o"
  "CMakeFiles/reldev_core.dir/group.cpp.o.d"
  "CMakeFiles/reldev_core.dir/naive_replica.cpp.o"
  "CMakeFiles/reldev_core.dir/naive_replica.cpp.o.d"
  "CMakeFiles/reldev_core.dir/replica.cpp.o"
  "CMakeFiles/reldev_core.dir/replica.cpp.o.d"
  "CMakeFiles/reldev_core.dir/scenario.cpp.o"
  "CMakeFiles/reldev_core.dir/scenario.cpp.o.d"
  "CMakeFiles/reldev_core.dir/voting_replica.cpp.o"
  "CMakeFiles/reldev_core.dir/voting_replica.cpp.o.d"
  "libreldev_core.a"
  "libreldev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
