# Empty compiler generated dependencies file for reldev_net.
# This may be replaced when dependencies are built.
