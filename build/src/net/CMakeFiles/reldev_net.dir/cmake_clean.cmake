file(REMOVE_RECURSE
  "CMakeFiles/reldev_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/reldev_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/reldev_net.dir/message.cpp.o"
  "CMakeFiles/reldev_net.dir/message.cpp.o.d"
  "CMakeFiles/reldev_net.dir/tcp/framing.cpp.o"
  "CMakeFiles/reldev_net.dir/tcp/framing.cpp.o.d"
  "CMakeFiles/reldev_net.dir/tcp/socket.cpp.o"
  "CMakeFiles/reldev_net.dir/tcp/socket.cpp.o.d"
  "CMakeFiles/reldev_net.dir/tcp/tcp_client.cpp.o"
  "CMakeFiles/reldev_net.dir/tcp/tcp_client.cpp.o.d"
  "CMakeFiles/reldev_net.dir/tcp/tcp_server.cpp.o"
  "CMakeFiles/reldev_net.dir/tcp/tcp_server.cpp.o.d"
  "CMakeFiles/reldev_net.dir/traffic.cpp.o"
  "CMakeFiles/reldev_net.dir/traffic.cpp.o.d"
  "libreldev_net.a"
  "libreldev_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
