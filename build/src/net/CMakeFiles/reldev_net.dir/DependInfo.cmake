
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/inproc_transport.cpp" "src/net/CMakeFiles/reldev_net.dir/inproc_transport.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/inproc_transport.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/reldev_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/message.cpp.o.d"
  "/root/repo/src/net/tcp/framing.cpp" "src/net/CMakeFiles/reldev_net.dir/tcp/framing.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/tcp/framing.cpp.o.d"
  "/root/repo/src/net/tcp/socket.cpp" "src/net/CMakeFiles/reldev_net.dir/tcp/socket.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/tcp/socket.cpp.o.d"
  "/root/repo/src/net/tcp/tcp_client.cpp" "src/net/CMakeFiles/reldev_net.dir/tcp/tcp_client.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/tcp/tcp_client.cpp.o.d"
  "/root/repo/src/net/tcp/tcp_server.cpp" "src/net/CMakeFiles/reldev_net.dir/tcp/tcp_server.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/tcp/tcp_server.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/reldev_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/reldev_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/reldev_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reldev_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
