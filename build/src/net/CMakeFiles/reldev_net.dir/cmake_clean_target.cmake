file(REMOVE_RECURSE
  "libreldev_net.a"
)
