file(REMOVE_RECURSE
  "libreldev_analysis.a"
)
