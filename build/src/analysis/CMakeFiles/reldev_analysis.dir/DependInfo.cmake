
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/availability.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/availability.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/availability.cpp.o.d"
  "/root/repo/src/analysis/binomial.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/binomial.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/binomial.cpp.o.d"
  "/root/repo/src/analysis/linalg.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/linalg.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/linalg.cpp.o.d"
  "/root/repo/src/analysis/markov.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/markov.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/markov.cpp.o.d"
  "/root/repo/src/analysis/quorum.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/quorum.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/quorum.cpp.o.d"
  "/root/repo/src/analysis/reliability.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/reliability.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/reliability.cpp.o.d"
  "/root/repo/src/analysis/traffic.cpp" "src/analysis/CMakeFiles/reldev_analysis.dir/traffic.cpp.o" "gcc" "src/analysis/CMakeFiles/reldev_analysis.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/reldev_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reldev_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reldev_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
