# Empty compiler generated dependencies file for reldev_analysis.
# This may be replaced when dependencies are built.
