file(REMOVE_RECURSE
  "CMakeFiles/reldev_analysis.dir/availability.cpp.o"
  "CMakeFiles/reldev_analysis.dir/availability.cpp.o.d"
  "CMakeFiles/reldev_analysis.dir/binomial.cpp.o"
  "CMakeFiles/reldev_analysis.dir/binomial.cpp.o.d"
  "CMakeFiles/reldev_analysis.dir/linalg.cpp.o"
  "CMakeFiles/reldev_analysis.dir/linalg.cpp.o.d"
  "CMakeFiles/reldev_analysis.dir/markov.cpp.o"
  "CMakeFiles/reldev_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/reldev_analysis.dir/quorum.cpp.o"
  "CMakeFiles/reldev_analysis.dir/quorum.cpp.o.d"
  "CMakeFiles/reldev_analysis.dir/reliability.cpp.o"
  "CMakeFiles/reldev_analysis.dir/reliability.cpp.o.d"
  "CMakeFiles/reldev_analysis.dir/traffic.cpp.o"
  "CMakeFiles/reldev_analysis.dir/traffic.cpp.o.d"
  "libreldev_analysis.a"
  "libreldev_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
