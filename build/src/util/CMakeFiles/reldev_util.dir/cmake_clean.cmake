file(REMOVE_RECURSE
  "CMakeFiles/reldev_util.dir/crc32.cpp.o"
  "CMakeFiles/reldev_util.dir/crc32.cpp.o.d"
  "CMakeFiles/reldev_util.dir/flags.cpp.o"
  "CMakeFiles/reldev_util.dir/flags.cpp.o.d"
  "CMakeFiles/reldev_util.dir/logging.cpp.o"
  "CMakeFiles/reldev_util.dir/logging.cpp.o.d"
  "CMakeFiles/reldev_util.dir/result.cpp.o"
  "CMakeFiles/reldev_util.dir/result.cpp.o.d"
  "CMakeFiles/reldev_util.dir/rng.cpp.o"
  "CMakeFiles/reldev_util.dir/rng.cpp.o.d"
  "CMakeFiles/reldev_util.dir/serial.cpp.o"
  "CMakeFiles/reldev_util.dir/serial.cpp.o.d"
  "CMakeFiles/reldev_util.dir/stats.cpp.o"
  "CMakeFiles/reldev_util.dir/stats.cpp.o.d"
  "CMakeFiles/reldev_util.dir/table.cpp.o"
  "CMakeFiles/reldev_util.dir/table.cpp.o.d"
  "libreldev_util.a"
  "libreldev_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
