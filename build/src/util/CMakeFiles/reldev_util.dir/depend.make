# Empty dependencies file for reldev_util.
# This may be replaced when dependencies are built.
