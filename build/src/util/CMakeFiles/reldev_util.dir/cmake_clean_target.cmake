file(REMOVE_RECURSE
  "libreldev_util.a"
)
