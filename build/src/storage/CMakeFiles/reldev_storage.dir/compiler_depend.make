# Empty compiler generated dependencies file for reldev_storage.
# This may be replaced when dependencies are built.
