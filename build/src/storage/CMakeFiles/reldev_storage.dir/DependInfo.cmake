
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_store.cpp" "src/storage/CMakeFiles/reldev_storage.dir/block_store.cpp.o" "gcc" "src/storage/CMakeFiles/reldev_storage.dir/block_store.cpp.o.d"
  "/root/repo/src/storage/file_block_store.cpp" "src/storage/CMakeFiles/reldev_storage.dir/file_block_store.cpp.o" "gcc" "src/storage/CMakeFiles/reldev_storage.dir/file_block_store.cpp.o.d"
  "/root/repo/src/storage/mem_block_store.cpp" "src/storage/CMakeFiles/reldev_storage.dir/mem_block_store.cpp.o" "gcc" "src/storage/CMakeFiles/reldev_storage.dir/mem_block_store.cpp.o.d"
  "/root/repo/src/storage/site_metadata.cpp" "src/storage/CMakeFiles/reldev_storage.dir/site_metadata.cpp.o" "gcc" "src/storage/CMakeFiles/reldev_storage.dir/site_metadata.cpp.o.d"
  "/root/repo/src/storage/version.cpp" "src/storage/CMakeFiles/reldev_storage.dir/version.cpp.o" "gcc" "src/storage/CMakeFiles/reldev_storage.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/reldev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
