file(REMOVE_RECURSE
  "CMakeFiles/reldev_storage.dir/block_store.cpp.o"
  "CMakeFiles/reldev_storage.dir/block_store.cpp.o.d"
  "CMakeFiles/reldev_storage.dir/file_block_store.cpp.o"
  "CMakeFiles/reldev_storage.dir/file_block_store.cpp.o.d"
  "CMakeFiles/reldev_storage.dir/mem_block_store.cpp.o"
  "CMakeFiles/reldev_storage.dir/mem_block_store.cpp.o.d"
  "CMakeFiles/reldev_storage.dir/site_metadata.cpp.o"
  "CMakeFiles/reldev_storage.dir/site_metadata.cpp.o.d"
  "CMakeFiles/reldev_storage.dir/version.cpp.o"
  "CMakeFiles/reldev_storage.dir/version.cpp.o.d"
  "libreldev_storage.a"
  "libreldev_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reldev_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
