file(REMOVE_RECURSE
  "libreldev_storage.a"
)
