// Project-specific clang-tidy checks for the reldev tree, packaged as an
// out-of-tree plugin (loaded with `clang-tidy -load=libreldev_tidy_module.so`;
// tools/lint.sh does this automatically when the module is built).
//
//   reldev-no-raw-std-mutex      declarations of std::mutex / std::lock_guard
//                                / std::unique_lock / std::condition_variable
//                                (and friends) — the library's annotated
//                                primitives (reldev::Mutex, MutexLock,
//                                CondVar; thread_annotations.hpp) are
//                                mandatory so both the static thread-safety
//                                analysis and the runtime lockdep checker
//                                see every lock.
//   reldev-no-blocking-under-lock
//                                calls to blocking syscalls (pread, pwrite,
//                                fsync, send, recv, ...), sleeps, or FanOut
//                                fan-outs lexically inside a scope where a
//                                reldev::MutexLock is live — the lexical
//                                (compile-time) half of lockdep's
//                                check_blocking(). A lockdep::AllowBlocking
//                                declared before the call suppresses it.
//   reldev-result-discard        a reldev::Status / reldev::Result<T> return
//                                value discarded, either as a bare statement
//                                or silenced with a (void) / static_cast<void>
//                                cast; the sanctioned spelling is
//                                .ignore_error().
//
// The implementation deliberately uses only the stable ClangTidyCheck /
// ASTMatchers surface so it builds against the distro clang-tidy headers
// (LLVM 14 through 18, /usr/lib/llvm-*/include/clang-tidy).
#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace clang::tidy::reldev {

using namespace clang::ast_matchers;  // NOLINT

// ---------------------------------------------------------------------------
// reldev-no-raw-std-mutex
// ---------------------------------------------------------------------------

class NoRawStdMutexCheck : public ClangTidyCheck {
 public:
  NoRawStdMutexCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(MatchFinder *Finder) override {
    const auto BannedStdSync = cxxRecordDecl(hasAnyName(
        "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
        "::std::recursive_timed_mutex", "::std::shared_mutex",
        "::std::shared_timed_mutex", "::std::lock_guard",
        "::std::unique_lock", "::std::scoped_lock", "::std::shared_lock",
        "::std::condition_variable", "::std::condition_variable_any"));
    const auto Banned = qualType(hasUnqualifiedDesugaredType(
        recordType(hasDeclaration(BannedStdSync))));
    Finder->addMatcher(
        declaratorDecl(hasType(qualType(
                           anyOf(Banned, references(Banned), pointsTo(Banned)))))
            .bind("decl"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Decl = Result.Nodes.getNodeAs<DeclaratorDecl>("decl");
    if (Decl == nullptr || Decl->getLocation().isInvalid()) return;
    diag(Decl->getLocation(),
         "raw std synchronization type %0; use reldev::Mutex / "
         "reldev::MutexLock / reldev::CondVar (thread_annotations.hpp) so "
         "the thread-safety analysis and lockdep see this lock")
        << Decl->getType().getAsString();
  }
};

// ---------------------------------------------------------------------------
// reldev-no-blocking-under-lock
// ---------------------------------------------------------------------------

class NoBlockingUnderLockCheck : public ClangTidyCheck {
 public:
  NoBlockingUnderLockCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(MatchFinder *Finder) override {
    // Blocking libc / POSIX entry points and the std sleep helpers. The
    // runtime list lives in fd_io.hpp / socket.cpp (check_blocking call
    // sites); keep the two in sync.
    const auto BlockingFn = functionDecl(hasAnyName(
        "::pread", "::pwrite", "::preadv", "::pwritev", "::read", "::write",
        "::fsync", "::fdatasync", "::send", "::recv", "::sendmsg",
        "::recvmsg", "::accept", "::connect", "::poll", "::ppoll",
        "::select", "::sleep", "::usleep", "::nanosleep",
        "::std::this_thread::sleep_for", "::std::this_thread::sleep_until"));
    Finder->addMatcher(
        callExpr(callee(BlockingFn)).bind("call"), this);
    // Fan-out submission blocks until the round completes.
    Finder->addMatcher(
        cxxMemberCallExpr(
            on(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                cxxRecordDecl(hasName("::reldev::net::FanOut"))))))))
            .bind("call"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
    if (Call == nullptr || Call->getBeginLoc().isInvalid()) return;
    ASTContext &Ctx = *Result.Context;
    // Walk outward through the enclosing compound statements. In each one,
    // only the statements *before* the one containing this call matter: a
    // MutexLock declared there is still held at the call site.
    const Stmt *Child = Call;
    DynTypedNode Node = DynTypedNode::create(*Call);
    for (;;) {
      const auto Parents = Ctx.getParents(Node);
      if (Parents.empty()) return;
      const DynTypedNode Parent = Parents[0];
      if (const auto *Block = Parent.get<CompoundStmt>()) {
        for (const Stmt *Sibling : Block->body()) {
          if (Sibling == Child) break;
          const auto *Decls = dyn_cast<DeclStmt>(Sibling);
          if (Decls == nullptr) continue;
          for (const Decl *D : Decls->decls()) {
            const auto *Var = dyn_cast<VarDecl>(D);
            if (Var == nullptr) continue;
            if (isRecordNamed(Var->getType(),
                              "reldev::lockdep::AllowBlocking")) {
              return;  // explicitly sanctioned blocking region
            }
            if (isRecordNamed(Var->getType(), "reldev::MutexLock")) {
              diag(Call->getBeginLoc(),
                   "blocking call while reldev::MutexLock %0 (declared at "
                   "line %1) is held; move the I/O outside the critical "
                   "section (DESIGN.md §15)")
                  << Var->getName()
                  << static_cast<unsigned>(
                         Ctx.getSourceManager().getSpellingLineNumber(
                             Var->getLocation()));
              return;
            }
          }
        }
      }
      // A lock held by a *caller* is the runtime checker's job; stop at
      // the enclosing function or lambda.
      if (Parent.get<FunctionDecl>() != nullptr ||
          Parent.get<LambdaExpr>() != nullptr) {
        return;
      }
      if (const Stmt *ParentStmt = Parent.get<Stmt>()) Child = ParentStmt;
      Node = Parent;
    }
  }

 private:
  static bool isRecordNamed(QualType Type, StringRef Qualified) {
    const auto *Record = Type.getCanonicalType()->getAsCXXRecordDecl();
    if (Record == nullptr) return false;
    return Record->getQualifiedNameAsString() == Qualified;
  }
};

// ---------------------------------------------------------------------------
// reldev-result-discard
// ---------------------------------------------------------------------------

class ResultDiscardCheck : public ClangTidyCheck {
 public:
  ResultDiscardCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(MatchFinder *Finder) override {
    const auto ResultType = hasUnqualifiedDesugaredType(
        recordType(hasDeclaration(cxxRecordDecl(
            hasAnyName("::reldev::Status", "::reldev::Result")))));
    const auto ResultCall = callExpr(hasType(ResultType)).bind("call");
    // Bare statement: the full-expression (possibly wrapped in cleanups)
    // sits directly in a compound statement.
    Finder->addMatcher(
        compoundStmt(forEach(expr(anyOf(
            ResultCall, exprWithCleanups(has(ignoringImplicit(ResultCall))))))),
        this);
    // Silenced with a cast to void — `(void)call()` or
    // `static_cast<void>(call())`.
    Finder->addMatcher(
        explicitCastExpr(hasDestinationType(voidType()),
                         has(ignoringImplicit(ResultCall)))
            .bind("cast"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
    if (Call == nullptr || Call->getBeginLoc().isInvalid()) return;
    const bool Cast = Result.Nodes.getNodeAs<ExplicitCastExpr>("cast") != nullptr;
    diag(Call->getBeginLoc(),
         Cast ? "Status/Result silenced with a cast to void; handle the "
                "error or spell the discard .ignore_error()"
              : "Status/Result discarded; handle the error or spell the "
                "discard .ignore_error()");
  }
};

// ---------------------------------------------------------------------------
// Module registration
// ---------------------------------------------------------------------------

class ReldevModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NoRawStdMutexCheck>("reldev-no-raw-std-mutex");
    Factories.registerCheck<NoBlockingUnderLockCheck>(
        "reldev-no-blocking-under-lock");
    Factories.registerCheck<ResultDiscardCheck>("reldev-result-discard");
  }
};

}  // namespace clang::tidy::reldev

namespace clang::tidy {

// NOLINTNEXTLINE(cert-err58-cpp) -- standard clang-tidy registry idiom.
static ClangTidyModuleRegistry::Add<reldev::ReldevModule> X(
    "reldev-module", "Project-specific checks for the reldev tree.");

// Anchor so -load keeps the module object alive.
volatile int ReldevModuleAnchorSource = 0;  // NOLINT

}  // namespace clang::tidy
