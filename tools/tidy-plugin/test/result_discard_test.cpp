// Positive + negative cases for reldev-result-discard: a reldev::Status or
// reldev::Result<T> return value dropped on the floor — bare, or silenced
// with a cast to void. `// expect-warning` marks the lines that must fire.
namespace reldev {
class Status {
 public:
  bool is_ok() const { return true; }
  void ignore_error() const {}
};
template <typename T>
class Result {
 public:
  explicit operator bool() const { return true; }
  void ignore_error() const {}
};
}  // namespace reldev

reldev::Status do_send();
reldev::Result<int> do_read();
int plain_int();

// ---- positive: discarded error channels -----------------------------------

void discards() {
  do_send();                                // expect-warning
  do_read();                                // expect-warning
  (void)do_send();                          // expect-warning
  (void)do_read();                          // expect-warning
  static_cast<void>(do_send());             // expect-warning
}

// ---- negative: handled, consumed, or sanctioned ----------------------------

reldev::Status handled() {
  if (!do_send().is_ok()) {
    return do_send();
  }
  auto result = do_read();
  if (result) {
    do_send().ignore_error();
  }
  do_read().ignore_error();
  plain_int();          // not a Status/Result: none of our business
  (void)plain_int();
  return do_send();
}
