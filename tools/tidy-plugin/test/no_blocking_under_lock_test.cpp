// Positive + negative cases for reldev-no-blocking-under-lock: blocking
// syscalls / sleeps / FanOut fan-outs lexically after a live
// reldev::MutexLock in an enclosing scope. `// expect-warning` marks the
// lines that must fire; all others must stay clean.
#include <chrono>
#include <cstddef>
#include <thread>

using ssize_t_ = long;
extern "C" {
ssize_t_ pread(int, void*, unsigned long, long);
ssize_t_ pwrite(int, const void*, unsigned long, long);
int fsync(int);
ssize_t_ send(int, const void*, unsigned long, int);
ssize_t_ recv(int, void*, unsigned long, int);
}

namespace reldev {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex&) {}
};
namespace lockdep {
class AllowBlocking {
 public:
  explicit AllowBlocking(const char*) {}
};
}  // namespace lockdep
namespace net {
class FanOut {
 public:
  void submit_round() {}
};
}  // namespace net
}  // namespace reldev

reldev::Mutex g_mutex;
char g_buffer[16];

// ---- positive: blocking while the lock is live ----------------------------

void io_under_lock(int fd) {
  const reldev::MutexLock lock(g_mutex);
  pread(fd, g_buffer, sizeof(g_buffer), 0);                // expect-warning
  pwrite(fd, g_buffer, sizeof(g_buffer), 0);               // expect-warning
  fsync(fd);                                               // expect-warning
}

void socket_under_lock(int fd) {
  const reldev::MutexLock lock(g_mutex);
  send(fd, g_buffer, sizeof(g_buffer), 0);                 // expect-warning
  recv(fd, g_buffer, sizeof(g_buffer), 0);                 // expect-warning
}

void sleep_under_lock() {
  const reldev::MutexLock lock(g_mutex);
  std::this_thread::sleep_for(std::chrono::seconds(1));    // expect-warning
}

void fanout_under_lock(reldev::net::FanOut& fanout) {
  const reldev::MutexLock lock(g_mutex);
  fanout.submit_round();                                   // expect-warning
}

void lock_in_outer_scope(int fd) {
  const reldev::MutexLock lock(g_mutex);
  if (fd > 0) {
    fsync(fd);                                             // expect-warning
  }
}

// ---- negative: blocking outside the critical section ----------------------

void io_after_unlock(int fd) {
  {
    const reldev::MutexLock lock(g_mutex);
  }
  fsync(fd);
}

void io_before_lock(int fd) {
  fsync(fd);
  const reldev::MutexLock lock(g_mutex);
}

void io_without_lock(int fd) {
  pread(fd, g_buffer, sizeof(g_buffer), 0);
  std::this_thread::sleep_for(std::chrono::seconds(1));
}

void sanctioned_blocking(int fd) {
  const reldev::MutexLock lock(g_mutex);
  const reldev::lockdep::AllowBlocking allow("test: deliberate");
  fsync(fd);
}
