// Positive + negative cases for reldev-no-raw-std-mutex. Lines that must
// produce a warning end with an `// expect-warning` marker; every other
// line must stay clean (the runner checks both directions). The file is
// self-contained — stub declarations instead of repo headers — so the
// check is exercised purely on qualified-name matching.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace reldev {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex&) {}
};
class CondVar {};
}  // namespace reldev

// ---- positive: raw std synchronization declarations -----------------------

std::mutex g_raw_mutex;                          // expect-warning
std::recursive_mutex g_recursive;                // expect-warning
std::shared_mutex g_shared;                      // expect-warning
std::condition_variable g_cv;                    // expect-warning

struct Server {
  std::mutex mutex;                              // expect-warning
  std::condition_variable_any cv;                // expect-warning
};

void guards() {
  std::mutex local;                              // expect-warning
  std::lock_guard<std::mutex> guard(local);      // expect-warning
  std::unique_lock<std::mutex> unique(local);    // expect-warning
}

void parameter(std::mutex& ref) { (void)ref; }   // expect-warning

// ---- negative: the annotated primitives are the sanctioned spelling -------

reldev::Mutex g_good_mutex;
reldev::CondVar g_good_cv;

struct GoodServer {
  reldev::Mutex mutex;
};

void good_guard() {
  reldev::Mutex local;
  reldev::MutexLock lock(local);
}
