#!/usr/bin/env bash
# Lit-style runner for the reldev-* clang-tidy checks. For every
# <check>_test.cpp here it runs clang-tidy with only that check enabled
# (plugin loaded) and compares the exact set of warning lines against the
# `// expect-warning` markers in the file — so each file is positive AND
# negative coverage: marked lines must fire, unmarked lines must not.
#
# Usage: run_tests.sh [--plugin PATH]
#
# Exit codes: 0 all green, 1 mismatch, 77 skipped (no clang-tidy or no
# plugin — ctest treats 77 as SKIP via SKIP_RETURN_CODE).
set -uo pipefail

here="$(cd "$(dirname "$0")" && pwd)"
plugin=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --plugin) plugin="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  echo "run_tests.sh: clang-tidy not installed; SKIP" >&2
  exit 77
fi

if [[ -z "$plugin" ]]; then
  for candidate in "$here/../build/libreldev_tidy_module.so" \
                   "$here/../libreldev_tidy_module.so"; do
    if [[ -f "$candidate" ]]; then
      plugin="$candidate"
      break
    fi
  done
fi
if [[ -z "$plugin" || ! -f "$plugin" ]]; then
  echo "run_tests.sh: plugin not built (cmake -B tools/tidy-plugin/build" \
       "-S tools/tidy-plugin); SKIP" >&2
  exit 77
fi

failures=0
for test_file in "$here"/*_test.cpp; do
  base="$(basename "$test_file" _test.cpp)"
  check="reldev-${base//_/-}"

  expected="$(grep -nE '//[[:space:]]*expect-warning[[:space:]]*$' \
                "$test_file" | cut -d: -f1 | sort -n)"
  actual="$("$tidy" -load="$plugin" --quiet \
              "-checks=-*,$check" "$test_file" -- -std=c++17 2>/dev/null |
            grep -oE "^$test_file:[0-9]+:[0-9]+: warning: .*\[$check\]" |
            cut -d: -f2 | sort -n | uniq)"

  if [[ -z "$actual" && -n "$expected" ]]; then
    # Distinguish "check found nothing" from "plugin failed to load".
    if ! "$tidy" -load="$plugin" --list-checks "-checks=-*,$check" \
         2>/dev/null | grep -q "$check"; then
      echo "run_tests.sh: $check not registered by $plugin under $tidy;" \
           "SKIP (header/binary version mismatch?)" >&2
      exit 77
    fi
  fi

  if [[ "$expected" == "$actual" ]]; then
    count=0
    [[ -n "$expected" ]] && count="$(wc -l <<<"$expected")"
    echo "PASS $check ($count expected warnings, exact match)"
  else
    echo "FAIL $check" >&2
    echo "  expected warning lines: $(tr '\n' ' ' <<<"$expected")" >&2
    echo "  actual warning lines:   $(tr '\n' ' ' <<<"$actual")" >&2
    failures=$((failures + 1))
  fi
done

if [[ $failures -ne 0 ]]; then
  echo "run_tests.sh: $failures check(s) failed" >&2
  exit 1
fi
echo "run_tests.sh: all reldev-* check tests green"
