#!/usr/bin/env bash
# Static-analysis runner: clang-tidy over every translation unit in
# compile_commands.json, using the checks in .clang-tidy (plus the
# project-specific reldev-* checks when the tidy plugin is built).
#
# Usage:
#   tools/lint.sh [--require] [--require-plugin] [--build-dir DIR] [--fix]
#                 [--plugin PATH] [-j N]
#
#   --require        fail (exit 2) when clang-tidy is not installed; without
#                    it the script prints a notice and exits 0 so machines
#                    without clang (the dev container ships only GCC) are
#                    not blocked.
#   --require-plugin fail (exit 2) when the reldev tidy plugin is not
#                    built/loadable. Without it a missing plugin just skips
#                    the reldev-* checks with a notice.
#   --build-dir      build tree holding compile_commands.json (default:
#                    build). CMakeLists.txt exports compile commands.
#   --fix            apply clang-tidy fix-its in place.
#   --plugin PATH    explicit path to libreldev_tidy_module.so (default:
#                    tools/tidy-plugin/build/libreldev_tidy_module.so).
#   -j N             parallel clang-tidy processes (default: nproc).
#
# Coverage: all of src/, tests/, and bench/. tests/ and bench/ carry their
# own .clang-tidy (InheritParentConfig with documented relaxations for
# gtest/benchmark macro patterns).
#
# The CI static-analysis job runs `tools/lint.sh --require --require-plugin`
# plus a clang build with -Wthread-safety -Wthread-safety-beta -Werror;
# together with the runtime lockdep job they are the concurrency gate
# (DESIGN.md §10, §15).
set -euo pipefail

require=0
require_plugin=0
build_dir=build
fix_flag=""
plugin=""
jobs="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --require) require=1 ;;
    --require-plugin) require_plugin=1 ;;
    --build-dir) build_dir="$2"; shift ;;
    --fix) fix_flag="-fix" ;;
    --plugin) plugin="$2"; shift ;;
    -j) jobs="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done

if [[ -z "$tidy" ]]; then
  if [[ "$require" -eq 1 ]]; then
    echo "error: clang-tidy not found and --require given" >&2
    exit 2
  fi
  echo "lint.sh: clang-tidy not installed; skipping (install clang-tidy," \
       "or run the CI static-analysis job)" >&2
  exit 0
fi

# The reldev-* checks live in an out-of-tree plugin
# (tools/tidy-plugin/README.md). When it is built, load it; when not, the
# base checks still run (.clang-tidy lists reldev-* too — clang-tidy
# ignores check globs that match nothing, so the config is shared).
load_flag=()
if [[ -z "$plugin" ]]; then
  plugin="tools/tidy-plugin/build/libreldev_tidy_module.so"
fi
if [[ -f "$plugin" ]] &&
   "$tidy" -load="$plugin" --list-checks -checks='-*,reldev-*' 2>/dev/null |
     grep -q 'reldev-no-raw-std-mutex'; then
  load_flag=("-load=$plugin")
  echo "lint.sh: reldev-* checks loaded from $plugin" >&2
else
  if [[ "$require_plugin" -eq 1 ]]; then
    echo "error: reldev tidy plugin not loadable ($plugin) and" \
         "--require-plugin given; build it with:" >&2
    echo "  cmake -B tools/tidy-plugin/build -S tools/tidy-plugin &&" \
         "cmake --build tools/tidy-plugin/build" >&2
    exit 2
  fi
  echo "lint.sh: reldev tidy plugin not built; running base checks only" >&2
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "lint.sh: $build_dir/compile_commands.json missing; configuring..." >&2
  cmake -B "$build_dir" -S . >/dev/null
fi

# The whole tree follows the same conventions; tests/, bench/ and fuzz/
# carry their own .clang-tidy with the (documented) relaxations.
mapfile -t sources < <(find src tests bench fuzz -name '*.cpp' | sort)

echo "lint.sh: $tidy over ${#sources[@]} files ($jobs-way parallel)" >&2

status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 1 "$tidy" "${load_flag[@]}" -p "$build_dir" --quiet \
    $fix_flag || status=$?

if [[ $status -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported findings (see above)" >&2
  exit 1
fi
echo "lint.sh: clean" >&2
