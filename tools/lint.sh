#!/usr/bin/env bash
# Static-analysis runner: clang-tidy over every translation unit in
# compile_commands.json, using the checks in .clang-tidy.
#
# Usage:
#   tools/lint.sh [--require] [--build-dir DIR] [--fix] [-j N]
#
#   --require    fail (exit 2) when clang-tidy is not installed; without it
#                the script prints a notice and exits 0 so machines without
#                clang (the dev container ships only GCC) are not blocked.
#   --build-dir  build tree holding compile_commands.json (default: build).
#                CMakeLists.txt exports compile commands by default.
#   --fix        apply clang-tidy fix-its in place.
#   -j N         parallel clang-tidy processes (default: nproc).
#
# The CI static-analysis job runs `tools/lint.sh --require` plus a clang
# build with -Wthread-safety -Wthread-safety-beta -Werror; together they
# are the compile-time half of the concurrency story (DESIGN.md §10) —
# TSan remains the runtime half.
set -euo pipefail

require=0
build_dir=build
fix_flag=""
jobs="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --require) require=1 ;;
    --build-dir) build_dir="$2"; shift ;;
    --fix) fix_flag="-fix" ;;
    -j) jobs="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done

if [[ -z "$tidy" ]]; then
  if [[ "$require" -eq 1 ]]; then
    echo "error: clang-tidy not found and --require given" >&2
    exit 2
  fi
  echo "lint.sh: clang-tidy not installed; skipping (install clang-tidy," \
       "or run the CI static-analysis job)" >&2
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "lint.sh: $build_dir/compile_commands.json missing; configuring..." >&2
  cmake -B "$build_dir" -S . >/dev/null
fi

# Lint the library and tool sources; tests and benches follow the same
# conventions but gtest/benchmark macros trip several bugprone checks.
mapfile -t sources < <(find src -name '*.cpp' | sort)

echo "lint.sh: $tidy over ${#sources[@]} files ($jobs-way parallel)" >&2

status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "$jobs" -n 1 "$tidy" -p "$build_dir" --quiet $fix_flag || status=$?

if [[ $status -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported findings (see above)" >&2
  exit 1
fi
echo "lint.sh: clean" >&2
