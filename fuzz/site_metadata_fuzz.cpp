// Fuzz harness for the persistent SiteMetadata blob decoder. These blobs
// are read back from the block store's metadata region after a crash, so
// recovery must survive whatever a torn write left there: reject garbage
// cleanly, and round-trip exactly what it accepts (including the optional
// was-available set and the appended-later scrub cursor, whose absence in
// old blobs is part of the format's compatibility contract).
#include <cstdint>
#include <cstdlib>
#include <span>

#include "reldev/storage/site_metadata.hpp"

using reldev::Result;
using reldev::storage::SiteMetadata;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::byte> blob(
      reinterpret_cast<const std::byte*>(data), size);

  Result<SiteMetadata> decoded = SiteMetadata::decode(blob);
  if (!decoded.is_ok()) return 0;

  // Round trip: accepted blobs must re-encode to a blob that decodes to an
  // equal value, and the re-encoding must be canonical (a fixed point).
  const std::vector<std::byte> wire = decoded.value().encode();
  Result<SiteMetadata> again = SiteMetadata::decode(wire);
  if (!again.is_ok()) std::abort();
  if (!(again.value() == decoded.value())) std::abort();
  if (again.value().encode() != wire) std::abort();
  return 0;
}
