// Fuzz harness for write-ahead-journal recovery. wal_scan_frames() is the
// pure core of WalJournal::open(): it parses the frame region a crashed
// (or malicious, or bit-rotted) journal left behind and must terminate
// with a well-formed committed prefix for *any* byte string. The harness
// checks the invariants recovery depends on:
//   * consumed never exceeds the input (no over-read);
//   * sequences in the accepted prefix are exactly next_sequence - n .. - 1,
//     strictly increasing (replay order is total);
//   * a kBlockWrite record's payload is exactly one block;
//   * a clean full scan (consumed == size, or only zeros after the prefix)
//     reports no torn tail, and vice versa.
#include <cstdint>
#include <cstdlib>
#include <span>

#include "reldev/storage/wal_journal.hpp"

using reldev::storage::WalFrameScan;
using reldev::storage::WalRecord;
using reldev::storage::WalRecordType;
using reldev::storage::wal_scan_frames;

namespace {

// Exercise more than one geometry: the first input byte picks the block
// size the journal claims to be formatted for.
constexpr std::size_t kBlockSizes[] = {64, 512, 4096};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::size_t block_size = kBlockSizes[0];
  if (size > 0) {
    block_size = kBlockSizes[data[0] % std::size(kBlockSizes)];
    ++data;
    --size;
  }
  const std::span<const std::byte> tail(
      reinterpret_cast<const std::byte*>(data), size);

  const WalFrameScan scan = wal_scan_frames(tail, block_size);

  if (scan.consumed > size) std::abort();
  if (scan.next_sequence < 1) std::abort();
  if (scan.next_sequence - 1 < scan.records.size()) std::abort();

  std::uint64_t prev_sequence = 0;
  for (const WalRecord& record : scan.records) {
    if (record.sequence <= prev_sequence) std::abort();
    prev_sequence = record.sequence;
    switch (record.type) {
      case WalRecordType::kBlockWrite:
        if (record.payload.size() != block_size) std::abort();
        break;
      case WalRecordType::kMetadataPut:
      case WalRecordType::kDemote:
        break;
      default:
        std::abort();  // the scan must never surface an unknown type
    }
  }
  if (!scan.records.empty() &&
      scan.records.back().sequence + 1 != scan.next_sequence) {
    std::abort();
  }

  // torn_tail must mean exactly "a nonzero byte follows the prefix".
  bool nonzero_after = false;
  for (std::size_t i = scan.consumed; i < size; ++i) {
    if (tail[i] != std::byte{0}) {
      nonzero_after = true;
      break;
    }
  }
  if (scan.torn_tail != nonzero_after) std::abort();
  return 0;
}
