// File-driven driver for the fuzz harnesses on toolchains without
// libFuzzer (the dev container ships GCC only). Each argument is a corpus
// file or a directory of corpus files; every file is read whole and fed to
// LLVMFuzzerTestOneInput exactly as libFuzzer would feed it. Exit 0 means
// every input was processed without crashing — which is the entire
// contract the harnesses assert.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Deterministic order so a crash reproduces identically.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (int rc = run_file(file); rc != 0) return rc;
        ++ran;
      }
    } else {
      if (int rc = run_file(arg); rc != 0) return rc;
      ++ran;
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "fuzz: no corpus files found\n");
    return 2;
  }
  std::printf("fuzz: %zu inputs, no crashes\n", ran);
  return 0;
}
