// Fuzz harness for the wire-message parser (net/message.hpp). The decoder
// consumes bytes straight off a TCP socket, so it must reject arbitrary
// garbage gracefully: never crash, never read out of bounds, and — when it
// does accept an input — produce a message whose re-encoding decodes back
// to an equal-shaped message (the round-trip invariant the transports rely
// on for identical in-process and TCP bits).
#include <cstdint>
#include <cstdlib>
#include <span>

#include "reldev/net/message.hpp"

using reldev::Result;
using reldev::net::Message;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::byte> raw(
      reinterpret_cast<const std::byte*>(data), size);

  Result<Message> decoded = Message::decode(raw);
  if (!decoded.is_ok()) return 0;  // rejected cleanly — fine

  // Round trip: what decoded must re-encode to something that decodes to
  // the same payload alternative and sender.
  const std::vector<std::byte> wire = decoded.value().encode();
  Result<Message> again = Message::decode(wire);
  if (!again.is_ok()) std::abort();
  if (again.value().from != decoded.value().from) std::abort();
  if (again.value().payload.index() != decoded.value().payload.index()) {
    std::abort();
  }
  // And re-encoding must be a fixed point (canonical encoding).
  if (again.value().encode() != wire) std::abort();
  return 0;
}
