// Seed-corpus generator: writes well-formed encodings (via the real
// encoders) plus a few deliberately truncated / bit-flipped variants into
// fuzz/corpus/<harness>/. Run after a format change and commit the output:
//   ./build/fuzz/fuzz_make_seeds fuzz/corpus
// Well-formed seeds put the fuzzer deep inside the parsers from the first
// mutation; the broken variants pin the reject paths into the corpus too.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "reldev/net/message.hpp"
#include "reldev/storage/site_metadata.hpp"
#include "reldev/storage/wal_journal.hpp"
#include "reldev/util/serial.hpp"

namespace fs = std::filesystem;
using namespace reldev;
using namespace reldev::net;
using namespace reldev::storage;

namespace {

void write_seed(const fs::path& dir, const std::string& name,
                std::span<const std::byte> bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_seeds: cannot write %s\n",
                 (dir / name).c_str());
    std::exit(1);
  }
}

// A truncated and a bit-flipped copy of a well-formed seed exercise the
// reject paths from day one.
void write_with_variants(const fs::path& dir, const std::string& name,
                         std::vector<std::byte> bytes) {
  write_seed(dir, name, bytes);
  if (bytes.size() > 3) {
    write_seed(dir, name + "-truncated",
               std::span(bytes).first(bytes.size() / 2));
    std::vector<std::byte> flipped = bytes;
    flipped[flipped.size() / 3] ^= std::byte{0x5a};
    write_seed(dir, name + "-flipped", flipped);
  }
}

BlockData pattern_block(std::size_t size, std::uint8_t salt) {
  BlockData data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((i * 7 + salt) & 0xff);
  }
  return data;
}

void seed_message_decode(const fs::path& dir) {
  const BlockData block = pattern_block(64, 1);
  const SiteSet sites{0, 2, 5};
  std::size_t n = 0;
  auto emit = [&](const char* name, Payload payload) {
    Message msg{.from = static_cast<SiteId>(n++), .payload = std::move(payload)};
    write_with_variants(dir, name, msg.encode());
  };
  emit("vote-request", VoteRequest{AccessKind::kWrite, 7});
  emit("vote-reply", VoteReply{.version = 3, .weight_millivotes = 1500});
  emit("block-fetch-reply", BlockFetchReply{.version = 9, .data = block});
  emit("block-update", BlockUpdate{.block = 4, .version = 2, .data = block});
  emit("write-all-request", WriteAllRequest{.block = 1,
                                            .version = 11,
                                            .data = block,
                                            .was_available = sites});
  emit("state-info", StateInfo{.state = SiteState::kComatose,
                               .version_total = 12345,
                               .was_available = sites});
  emit("client-write-request", ClientWriteRequest{.block = 8, .data = block});
  emit("device-info-reply",
       DeviceInfoReply{.block_count = 128, .block_size = 64});
  emit("error-reply",
       ErrorReply{.error_code = 2, .message = "no quorum for block 8"});
  emit("range-vote-reply",
       RangeVoteReply{.weight_millivotes = 1000, .versions = {1, 2, 3, 4}});
  emit("batch-write-request",
       BatchWriteRequest{
           .updates = {BlockUpdate{.block = 0, .version = 5, .data = block},
                       BlockUpdate{.block = 1,
                                   .version = 6,
                                   .data = pattern_block(64, 2)}},
           .was_available = sites});
  emit("digest-reply", DigestReply{.first = 16,
                                   .versions = {7, 0, 9},
                                   .digests = {0xdeadbeef, 0, 0x1234}});
}

void seed_site_metadata(const fs::path& dir) {
  SiteMetadata naive{
      .site = 3, .clean_shutdown = true, .was_available = {}, .scrub_cursor = {}};
  write_with_variants(dir, "naive-clean", naive.encode());

  SiteMetadata crashed{.site = 1, .clean_shutdown = false,
                       .was_available = SiteSet{0, 1, 4}, .scrub_cursor = {}};
  write_with_variants(dir, "ac-crashed", crashed.encode());

  SiteMetadata scrubbed{.site = 0, .clean_shutdown = true,
                        .was_available = SiteSet{0},
                        .scrub_cursor = 4096};
  write_with_variants(dir, "ac-scrub-cursor", scrubbed.encode());
}

void seed_wal_replay(const fs::path& dir) {
  // The harness spends input byte 0 selecting the geometry: 0 -> 64-byte
  // blocks, which is what these frames are encoded for.
  constexpr std::size_t kBlockSize = 64;
  const std::byte geometry{0};
  const BlockData block = pattern_block(kBlockSize, 3);

  auto with_geometry = [&](std::span<const std::byte> frames) {
    std::vector<std::byte> out;
    out.reserve(frames.size() + 1);
    out.push_back(geometry);
    out.insert(out.end(), frames.begin(), frames.end());
    return out;
  };

  BufferWriter batch;
  wal_encode_block_write(batch, 1, 5, 2, block);
  wal_encode_metadata_put(
      batch, 2,
      SiteMetadata{
          .site = 5, .clean_shutdown = false, .was_available = {}, .scrub_cursor = {}}
          .encode());
  wal_encode_demote(batch, 3, 5);
  const std::vector<std::byte> frames(batch.bytes().begin(),
                                      batch.bytes().end());
  write_with_variants(dir, "three-records", with_geometry(frames));

  // Clean end of log: valid frames followed by zeroed preallocation.
  std::vector<std::byte> padded = frames;
  padded.resize(padded.size() + 96, std::byte{0});
  write_seed(dir, "zero-padded", with_geometry(padded));

  // Torn tail: a crash mid-append left half of the last frame.
  BufferWriter torn_batch;
  wal_encode_block_write(torn_batch, 1, 0, 1, block);
  wal_encode_block_write(torn_batch, 2, 1, 1, block);
  auto torn_span = torn_batch.bytes();
  write_seed(dir, "torn-tail",
             with_geometry(torn_span.first(torn_span.size() - 40)));

  write_seed(dir, "empty", with_geometry({}));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  struct {
    const char* name;
    void (*fill)(const fs::path&);
  } harnesses[] = {{"message_decode", seed_message_decode},
                   {"site_metadata", seed_site_metadata},
                   {"wal_replay", seed_wal_replay}};
  for (const auto& harness : harnesses) {
    const fs::path dir = root / harness.name;
    fs::create_directories(dir);
    harness.fill(dir);
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) ++count;
    }
    std::printf("make_seeds: %s -> %zu files\n", dir.c_str(), count);
  }
  return 0;
}
