// VAL-T: §5's per-operation traffic formulas vs transmissions counted from
// the running protocol engines, in both network modes. Small, explainable
// deviations are expected and annotated: the measured voting read includes
// the rare stale-refresh fetch (the paper's "+1 if the local version is
// not up to date"), and measured recovery includes retries of sites that
// had to stay comatose.
#include <cmath>
#include <iostream>

#include "reldev/analysis/traffic.hpp"
#include "reldev/core/experiment.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;
using analysis::Scheme;

namespace {

Scheme to_analysis(core::SchemeKind scheme) {
  switch (scheme) {
    case core::SchemeKind::kVoting:
      return Scheme::kVoting;
    case core::SchemeKind::kAvailableCopy:
      return Scheme::kAvailableCopy;
    case core::SchemeKind::kNaiveAvailableCopy:
      return Scheme::kNaiveAvailableCopy;
  }
  return Scheme::kVoting;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_double("rho", 0.05, "failure rate / repair rate");
  flags.add_double("horizon", 3'000, "simulated time per point");
  flags.add_bool("csv", false, "emit CSV");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("validate_traffic");
    return 0;
  }
  const double rho = flags.get_double("rho");

  TextTable table({"scheme", "mode", "n", "write (model)", "write (sim)",
                   "read (model)", "read (sim)", "recovery (model)",
                   "recovery (sim)"});
  table.set_title("VAL-T: Section 5 formulas vs measured transmissions, rho=" +
                  TextTable::fmt(rho, 2));

  bool writes_agree = true;
  for (const auto mode :
       {net::AddressingMode::kMulticast, net::AddressingMode::kUnique}) {
    for (const auto scheme :
         {core::SchemeKind::kVoting, core::SchemeKind::kAvailableCopy,
          core::SchemeKind::kNaiveAvailableCopy}) {
      for (const std::size_t n : {3u, 5u, 7u}) {
        const auto model =
            analysis::operation_costs(to_analysis(scheme), mode, n, rho);
        core::TrafficOptions options;
        options.scheme = scheme;
        options.mode = mode;
        options.sites = n;
        options.rho = rho;
        options.horizon = flags.get_double("horizon");
        options.reads_per_write = 2.0;
        options.seed = 140'000 + n;
        const auto sim = core::run_traffic_experiment(options);
        writes_agree =
            writes_agree && std::abs(sim.per_write - model.write) < 0.35;
        table.add_row(
            {core::scheme_kind_name(scheme),
             mode == net::AddressingMode::kMulticast ? "multicast" : "unique",
             std::to_string(n), TextTable::fmt(model.write, 3),
             TextTable::fmt(sim.per_write, 3), TextTable::fmt(model.read, 3),
             TextTable::fmt(sim.per_read, 3),
             TextTable::fmt(model.recovery, 3),
             TextTable::fmt(sim.per_recovery, 3)});
      }
    }
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nwrite costs " << (writes_agree ? "MATCH" : "DIVERGE")
              << " the Section 5 formulas (within sampling noise).\n"
                 "Known model/engine deltas: voting reads pay +2 on the rare "
                 "stale-local path\n(the paper books +1); available-copy "
                 "recovery includes comatose-retry inquiries\nand the "
                 "was-available notification that Figure 5 sends after "
                 "repair.\n";
  }
  return writes_agree ? 0 : 1;
}
