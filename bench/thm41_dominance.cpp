// Theorem 4.1 and the §4 identities, verified numerically over a grid:
//   A_A(n) > A_V(2n-1) = A_V(2n)          for all rho <= 1   (Theorem 4.1)
//   A_NA(2) = A_V(3)                                          (§4.3)
//   A_A(n) > 1 - n rho^n/(1+rho)^n                            (inequality 5)
#include <cmath>
#include <iostream>

#include "reldev/analysis/availability.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

int main() {
  TextTable table({"n", "rho", "A_A(n)", "A_V(2n-1)", "A_V(2n)", "margin",
                   "bound(5)"});
  table.set_title(
      "Theorem 4.1: n available copies beat 2n-1 (and 2n) voting copies for "
      "rho <= 1");

  bool theorem_holds = true;
  bool identity_holds = true;
  bool bound_holds = true;

  for (std::size_t n = 2; n <= 8; ++n) {
    for (const double rho : {0.05, 0.2, 0.5, 1.0}) {
      const double ac = analysis::available_copy_availability(n, rho);
      const double v_odd = analysis::voting_availability(2 * n - 1, rho);
      const double v_even = analysis::voting_availability(2 * n, rho);
      const double bound = analysis::available_copy_lower_bound(n, rho);
      theorem_holds = theorem_holds && ac > v_odd && ac > v_even;
      identity_holds = identity_holds && std::abs(v_odd - v_even) < 1e-12;
      bound_holds = bound_holds && ac > bound - 1e-12;
      table.add_row({std::to_string(n), TextTable::fmt(rho, 2),
                     TextTable::fmt(ac, 8), TextTable::fmt(v_odd, 8),
                     TextTable::fmt(v_even, 8), TextTable::fmt(ac - v_odd, 8),
                     TextTable::fmt(bound, 8)});
    }
  }
  table.print(std::cout);

  std::cout << "\nA_A(n) > A_V(2n-1) everywhere:      "
            << (theorem_holds ? "HOLDS" : "VIOLATED") << '\n';
  std::cout << "A_V(2k) = A_V(2k-1) identity:       "
            << (identity_holds ? "HOLDS" : "VIOLATED") << '\n';
  std::cout << "lower bound (inequality 5):         "
            << (bound_holds ? "HOLDS" : "VIOLATED") << '\n';

  // §4.3's closing note.
  double max_gap = 0.0;
  for (double rho = 0.01; rho <= 1.0; rho += 0.01) {
    max_gap = std::max(
        max_gap,
        std::abs(analysis::naive_available_copy_availability(2, rho) -
                 analysis::voting_availability(3, rho)));
  }
  std::cout << "A_NA(2) = A_V(3) (max |gap| over rho grid): " << max_gap
            << (max_gap < 1e-12 ? "  HOLDS" : "  VIOLATED") << '\n';
  return theorem_holds && identity_holds && bound_holds ? 0 : 1;
}
