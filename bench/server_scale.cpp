// SCALE: concurrent-connection scaling of the two server execution modes.
// A non-blocking load generator (its own EventLoop shards, so 4k client
// connections don't need 4k threads) drives closed-loop StateInquiry
// round trips over C concurrent connections against a reactor server and
// the thread-per-connection baseline, reporting ops/sec and p50/p99
// latency per rung. This is the tentpole claim of the reactor rewrite:
// throughput must hold as C grows past the point where a thread per
// socket stops being a sane resource model.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "reldev/net/tcp/event_loop.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/serial.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

/// Replies StateInfo immediately — the server-side cost under test is
/// framing + dispatch, not handler work.
class InquiryHandler : public net::MessageHandler {
 public:
  net::Message handle(const net::Message&) override {
    return net::Message{0, net::StateInfo{net::SiteState::kAvailable, 1, {}}};
  }
  void handle_oneway(const net::Message&) override {}
};

/// The serialized request frame every connection replays.
std::vector<std::byte> build_request_frame() {
  const std::vector<std::byte> payload =
      net::Message{0, net::StateInquiry{}}.encode();
  const auto prefix = net::tcp::encode_frame_prefix(payload.size());
  BufferWriter writer(net::tcp::kFramePrefixSize + payload.size() +
                      net::tcp::kFrameTrailerSize);
  writer.put_raw(prefix);
  writer.put_raw(payload);
  writer.put_u32(net::tcp::frame_crc(prefix, payload));
  return {writer.bytes().begin(), writer.bytes().end()};
}

struct Summary {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
};

/// Closed-loop load generator: C connections spread over a few event-loop
/// shards, each running write-request → read-reply → repeat. Latencies are
/// recorded only while `recording_` is set, so warmup rounds (connection
/// establishment, server-side buffer pools filling) stay out of the
/// percentiles.
class LoadGen {
 public:
  LoadGen(std::uint16_t port, std::size_t connections, std::size_t shard_count)
      : port_(port), connections_(connections), frame_(build_request_frame()) {
    for (std::size_t i = 0; i < shard_count; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->loop = net::tcp::EventLoop::create().value();
      shards_.push_back(std::move(shard));
    }
  }

  [[nodiscard]] Status connect_all() {
    for (std::size_t i = 0; i < connections_; ++i) {
      auto socket = net::tcp::Socket::connect("127.0.0.1", port_, 5000ms);
      if (!socket.is_ok()) return socket.status();
      if (auto status = socket.value().set_nonblocking(true); !status.is_ok()) {
        return status;
      }
      auto conn = std::make_unique<Conn>();
      conn->socket = std::move(socket.value());
      shards_[i % shards_.size()]->conns.push_back(std::move(conn));
    }
    return Status::ok();
  }

  void start() {
    for (auto& shard : shards_) {
      shard->thread = std::thread([this, raw = shard.get()] {
        // Arm every connection from the loop thread, then run.
        raw->loop->post([this, raw] {
          for (auto& conn : raw->conns) start_op(*raw, *conn);
        });
        raw->loop->run();
      });
    }
  }

  void set_recording(bool on) { recording_.store(on); }

  /// Stop issuing new requests, close every connection, join the loops, and
  /// aggregate the samples taken over `measured_seconds`.
  [[nodiscard]] Summary finish(double measured_seconds) {
    stop_.store(true);
    for (auto& shard : shards_) {
      shard->loop->post([this, raw = shard.get()] {
        for (auto& conn : raw->conns) close_conn(*raw, *conn);
        raw->loop->stop();
      });
    }
    for (auto& shard : shards_) shard->thread.join();

    Summary summary;
    std::vector<double> latencies;
    for (auto& shard : shards_) {
      summary.errors += shard->errors;
      for (auto& conn : shard->conns) {
        latencies.insert(latencies.end(), conn->latencies.begin(),
                         conn->latencies.end());
      }
    }
    summary.ops = latencies.size();
    summary.ops_per_sec =
        measured_seconds > 0 ? static_cast<double>(summary.ops) / measured_seconds : 0;
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      const auto at = [&](double q) {
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(latencies.size() - 1));
        return latencies[idx];
      };
      summary.p50_us = at(0.50);
      summary.p99_us = at(0.99);
    }
    return summary;
  }

 private:
  struct Conn {
    net::tcp::Socket socket;
    std::size_t write_off = 0;
    std::vector<std::byte> got;           // reply bytes accumulated so far
    std::array<std::byte, 4096> scratch;  // readv landing zone
    Clock::time_point op_start;
    std::vector<double> latencies;  // µs, recorded while recording_ is set
    bool closed = false;
  };
  struct Shard {
    std::unique_ptr<net::tcp::EventLoop> loop;
    std::thread thread;
    std::vector<std::unique_ptr<Conn>> conns;  // loop-thread-only after start
    std::uint64_t errors = 0;
  };

  void start_op(Shard& shard, Conn& conn) {
    if (conn.closed) return;
    if (stop_.load(std::memory_order_relaxed)) {
      close_conn(shard, conn);
      return;
    }
    conn.op_start = Clock::now();
    conn.write_off = 0;
    conn.got.clear();
    arm_write(shard, conn);
  }

  void arm_write(Shard& shard, Conn& conn) {
    const iovec iov{
        const_cast<std::byte*>(frame_.data()) + conn.write_off,
        frame_.size() - conn.write_off,
    };
    shard.loop->async_writev(conn.socket.fd(), std::span<const iovec>(&iov, 1),
                             [this, &shard, &conn](Result<std::size_t> n) {
                               if (!n.is_ok()) {
                                 fail(shard, conn);
                                 return;
                               }
                               conn.write_off += n.value();
                               if (conn.write_off < frame_.size()) {
                                 arm_write(shard, conn);
                               } else {
                                 arm_read(shard, conn);
                               }
                             });
  }

  void arm_read(Shard& shard, Conn& conn) {
    const iovec iov{conn.scratch.data(), conn.scratch.size()};
    shard.loop->async_readv(conn.socket.fd(), std::span<const iovec>(&iov, 1),
                            [this, &shard, &conn](Result<std::size_t> n) {
                              if (!n.is_ok() || n.value() == 0) {
                                fail(shard, conn);
                                return;
                              }
                              conn.got.insert(conn.got.end(),
                                              conn.scratch.begin(),
                                              conn.scratch.begin() +
                                                  static_cast<std::ptrdiff_t>(
                                                      n.value()));
                              on_bytes(shard, conn);
                            });
  }

  void on_bytes(Shard& shard, Conn& conn) {
    if (conn.got.size() < net::tcp::kFramePrefixSize) {
      arm_read(shard, conn);
      return;
    }
    const auto length = net::tcp::parse_frame_prefix(
        std::span<const std::byte>(conn.got.data(),
                                   net::tcp::kFramePrefixSize));
    if (!length.is_ok()) {
      fail(shard, conn);
      return;
    }
    const std::size_t total = net::tcp::kFramePrefixSize + length.value() +
                              net::tcp::kFrameTrailerSize;
    if (conn.got.size() < total) {
      arm_read(shard, conn);
      return;
    }
    if (recording_.load(std::memory_order_relaxed)) {
      conn.latencies.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() -
                                                    conn.op_start)
              .count());
    }
    start_op(shard, conn);
  }

  void fail(Shard& shard, Conn& conn) {
    if (!conn.closed && !stop_.load(std::memory_order_relaxed)) {
      ++shard.errors;
    }
    close_conn(shard, conn);
  }

  void close_conn(Shard& shard, Conn& conn) {
    if (conn.closed) return;
    conn.closed = true;
    shard.loop->cancel(conn.socket.fd());
    conn.socket.close();
  }

  const std::uint16_t port_;
  const std::size_t connections_;
  const std::vector<std::byte> frame_;
  std::atomic<bool> recording_{false};
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A named server configuration under test.
struct ModeConfig {
  const char* name;
  net::tcp::ServerOptions options;
};

/// The configurations every rung measures. The gated reactor config runs
/// handlers inline on the loop shards — the right setting for this
/// bench's CPU-only handler, and the configuration the scaling claim is
/// about — on the portable epoll backend. reactor-uring prefers io_uring
/// (falling back to epoll where the kernel lacks it); measured here it
/// trades some peak throughput for a much flatter p99, worth a row of its
/// own. reactor-pool shows what the default worker-pool hop costs; the
/// thread-per-connection baseline is what the reactor replaced.
const std::array<ModeConfig, 4> kModes{{
    {"reactor",
     {.mode = net::tcp::ServerOptions::Mode::kReactor,
      .inline_handlers = true}},
    {"reactor-uring",
     {.mode = net::tcp::ServerOptions::Mode::kReactor,
      .inline_handlers = true,
      .backend = net::tcp::EventLoop::Backend::kIoUring}},
    {"reactor-pool", {.mode = net::tcp::ServerOptions::Mode::kReactor}},
    {"thread-per-conn",
     {.mode = net::tcp::ServerOptions::Mode::kThreadPerConnection}},
}};

/// One rung: start a server in `mode`, drive `clients` connections for the
/// configured interval, return the aggregated summary.
Result<Summary> run_rung(const ModeConfig& mode, std::size_t clients,
                         std::chrono::milliseconds warmup,
                         std::chrono::milliseconds duration) {
  InquiryHandler handler;
  auto server = net::tcp::TcpServer::start(0, &handler, mode.options);
  if (!server.is_ok()) return server.status();

  // Two generator shards: enough to keep the loopback busy without the
  // generator itself becoming a thread-scaling experiment.
  LoadGen gen(server.value()->port(), clients, 2);
  if (auto status = gen.connect_all(); !status.is_ok()) return status;
  gen.start();
  std::this_thread::sleep_for(warmup);
  gen.set_recording(true);
  std::this_thread::sleep_for(duration);
  gen.set_recording(false);
  Summary summary = gen.finish(
      std::chrono::duration<double>(duration).count());
  server.value()->stop();
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("duration-ms", 2000, "measured interval per rung");
  flags.add_int("warmup-ms", 400, "unrecorded warmup per rung");
  flags.add_int("clients", 0, "run only this rung (0 = the standard ladder)");
  flags.add_bool("smoke", false, "small ladder and short intervals (CI)");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_string("json", "", "write a machine-readable summary to this path");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("server_scale");
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");
  const auto duration =
      std::chrono::milliseconds(smoke ? 600 : flags.get_int("duration-ms"));
  const auto warmup =
      std::chrono::milliseconds(smoke ? 200 : flags.get_int("warmup-ms"));
  std::vector<std::size_t> ladder{16, 256, 1000, 4000};
  if (smoke) ladder = {16, 256};
  if (const auto only = flags.get_int("clients"); only > 0) {
    ladder = {static_cast<std::size_t>(only)};
  }

  TextTable table({"clients", "mode", "ops/sec", "p50 (us)", "p99 (us)",
                   "ops", "errors"});
  table.set_title(
      "SCALE: closed-loop StateInquiry round trips at C concurrent "
      "connections — reactor shards vs a thread per socket");

  struct Row {
    std::size_t clients;
    const char* mode;
    Summary summary;
  };
  std::vector<Row> rows;
  for (const std::size_t clients : ladder) {
    for (const ModeConfig& mode : kModes) {
      auto summary = run_rung(mode, clients, warmup, duration);
      if (!summary.is_ok()) {
        std::cerr << "rung " << clients << "/" << mode.name
                  << " failed: " << summary.status().to_string() << '\n';
        return 1;
      }
      rows.push_back(Row{clients, mode.name, summary.value()});
      const Summary& s = summary.value();
      table.add_row({std::to_string(clients), mode.name,
                     TextTable::fmt(s.ops_per_sec, 0),
                     TextTable::fmt(s.p50_us, 0), TextTable::fmt(s.p99_us, 0),
                     std::to_string(s.ops), std::to_string(s.errors)});
    }
  }

  if (const std::string path = flags.get_string("json"); !path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return 1;
    }
    out << "{\n  \"bench\": \"server_scale\",\n  \"duration_ms\": "
        << duration.count() << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"clients\": " << row.clients << ", \"mode\": \""
          << row.mode << "\", \"ops_per_sec\": "
          << row.summary.ops_per_sec << ", \"p50_us\": " << row.summary.p50_us
          << ", \"p99_us\": " << row.summary.p99_us
          << ", \"ops\": " << row.summary.ops
          << ", \"errors\": " << row.summary.errors << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Acceptance gates. The 16-client rung tolerates scheduler noise (single
  // shared box). The scaling gate runs at the top rung measured: where the
  // thread-per-connection collapse lands depends on cores — on a 1-core
  // host the crossover sits between 1k and 4k clients (at 1k the kernel
  // still schedules a thousand mostly-blocked threads respectably; at 4k
  // it no longer does), so intermediate rungs are reported, not gated.
  const auto find = [&](std::size_t clients,
                        const char* mode) -> const Summary* {
    for (const Row& row : rows) {
      if (row.clients == clients && std::strcmp(row.mode, mode) == 0) {
        return &row.summary;
      }
    }
    return nullptr;
  };
  bool ok = true;
  if (const Summary* reactor = find(16, "reactor")) {
    const Summary* baseline = find(16, "thread-per-conn");
    const bool pass =
        baseline != nullptr &&
        reactor->ops_per_sec >= 0.75 * baseline->ops_per_sec;
    ok = ok && pass;
    std::cout << (pass ? "PASS" : "FAIL")
              << ": reactor holds the 16-client baseline (>= 0.75x)\n";
  }
  const std::size_t top = ladder.back();
  if (top >= 1000) {
    const Summary* reactor = find(top, "reactor");
    const Summary* baseline = find(top, "thread-per-conn");
    const bool pass = reactor != nullptr && baseline != nullptr &&
                      reactor->ops_per_sec >= 2.0 * baseline->ops_per_sec;
    ok = ok && pass;
    std::cout << (pass ? "PASS" : "FAIL") << ": reactor >= 2x "
              << "thread-per-connection at " << top << " clients\n";
  }
  return ok ? 0 : 1;
}
