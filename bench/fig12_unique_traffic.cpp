// Figure 12 of the paper: the same workload-cost comparison as Figure 11
// but in a UNIQUE-ADDRESSING network (every destination is a separate
// transmission, §5.2). The schemes keep their order; the absolute gaps
// widen substantially.
#include <iostream>

#include "reldev/analysis/traffic.hpp"
#include "reldev/core/experiment.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;
using analysis::Scheme;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_double("rho", 0.05, "failure rate / repair rate");
  flags.add_double("horizon", 1'500, "simulated time per measured point");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_bool("no-sim", false, "analytic columns only (fast)");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("fig12_unique_traffic");
    return 0;
  }
  const double rho = flags.get_double("rho");
  const bool simulate = !flags.get_bool("no-sim");
  const auto mode = net::AddressingMode::kUnique;

  TextTable table({"n", "NAC", "AC", "vote x=1", "vote x=2", "vote x=4",
                   "NAC sim", "AC sim", "vote x=2 sim"});
  table.set_title(
      "Figure 12: transmissions per (1 write + x reads), unique addressing, "
      "rho = " +
      TextTable::fmt(rho, 2));

  for (std::size_t n = 2; n <= 8; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    row.push_back(TextTable::fmt(
        analysis::workload_cost(Scheme::kNaiveAvailableCopy, mode, n, rho, 2),
        3));
    row.push_back(TextTable::fmt(
        analysis::workload_cost(Scheme::kAvailableCopy, mode, n, rho, 2), 3));
    for (const double x : {1.0, 2.0, 4.0}) {
      row.push_back(TextTable::fmt(
          analysis::workload_cost(Scheme::kVoting, mode, n, rho, x), 3));
    }
    if (simulate) {
      core::TrafficOptions options;
      options.mode = mode;
      options.sites = n;
      options.rho = rho;
      options.reads_per_write = 2.0;
      options.horizon = flags.get_double("horizon");
      options.seed = 120'000 + n;

      options.scheme = core::SchemeKind::kNaiveAvailableCopy;
      row.push_back(TextTable::fmt(
          core::run_traffic_experiment(options).per_workload_unit, 3));
      options.scheme = core::SchemeKind::kAvailableCopy;
      row.push_back(TextTable::fmt(
          core::run_traffic_experiment(options).per_workload_unit, 3));
      options.scheme = core::SchemeKind::kVoting;
      row.push_back(TextTable::fmt(
          core::run_traffic_experiment(options).per_workload_unit, 3));
    } else {
      row.push_back("-");
      row.push_back("-");
      row.push_back("-");
    }
    table.add_row(std::move(row));
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper shape check: same ordering as Figure 11 with "
                 "larger absolute gaps;\nvoting at x=4 is the steepest "
                 "curve by far.\n";
  }
  return 0;
}
