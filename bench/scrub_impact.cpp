// SCRUB: what the anti-entropy daemon costs and what it buys.
//
// Part A — time-to-heal vs scrub interval (virtual time). Latent damage
// (silent rot or a missed update) lands at a uniformly random point in a
// scrub cycle; the daemon walks the device in paced batches, so the heal
// lands when the cursor next reaches the damaged block. Driving the real
// ScrubDaemon under a virtual clock (one batch = interval / batches_per_
// cycle of virtual time) yields the time-to-heal distribution per
// interval: mean ~ interval/2, worst case ~ one full cycle. The window of
// vulnerability scales linearly with the interval — the knob trades
// detection latency against scrub load.
//
// Part B — foreground overhead (wall time). The same in-process group
// serves foreground writes while scrub batches interleave. Unthrottled
// (a batch whenever the previous one finished) the scrubber steals
// whatever it can; throttled by the byte budget — sized off a calibration
// pass the way a deployment sizes its budget off disk bandwidth — the
// interleaved batches must cost <= 10% foreground throughput. That bound
// is the acceptance gate.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "reldev/core/group.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/rng.hpp"
#include "reldev/util/table.hpp"
#include "reldev/util/token_bucket.hpp"

using namespace reldev;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kSites = 3;
constexpr std::size_t kBlocks = 64;
constexpr std::size_t kBlockSize = 512;
constexpr std::size_t kBatchBlocks = 8;  // 8 batches per cycle

storage::BlockData payload(std::uint8_t tag) {
  return storage::BlockData(kBlockSize, static_cast<std::byte>(tag));
}

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

double mean(const std::vector<double>& samples) {
  double sum = 0;
  for (const double sample : samples) sum += sample;
  return sum / static_cast<double>(std::max<std::size_t>(samples.size(), 1));
}

/// A group with every block written once, so every site holds version >= 1
/// everywhere and digests are comparable.
std::unique_ptr<core::ReplicaGroup> make_group() {
  auto group = std::make_unique<core::ReplicaGroup>(
      core::SchemeKind::kAvailableCopy,
      core::GroupConfig::majority(kSites, kBlocks, kBlockSize));
  core::ScrubOptions options;
  options.batch_blocks = kBatchBlocks;
  group->set_scrub_options(options);
  for (storage::BlockId block = 0; block < kBlocks; ++block) {
    if (!group->write(0, block, payload(0x11)).is_ok()) std::abort();
  }
  return group;
}

/// Part A: inject damage at a random cursor phase, then step the damaged
/// site's daemon counting batches until its copy is whole again. Virtual
/// time per batch = interval / batches_per_cycle (the background loop
/// paces a cycle's batches across the interval).
std::vector<double> time_to_heal_samples(std::size_t trials,
                                         double interval_ms, Rng& rng) {
  auto group = make_group();
  const std::size_t batches_per_cycle = kBlocks / kBatchBlocks;
  const double batch_ms = interval_ms / static_cast<double>(batches_per_cycle);
  std::vector<double> samples;
  samples.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Random phase: damage lands at a uniformly random point in the cycle.
    const auto phase = rng.uniform_u64(0, batches_per_cycle - 1);
    for (std::uint64_t i = 0; i < phase; ++i) {
      if (!group->scrubber(0).step().is_ok()) std::abort();
    }
    const auto block = static_cast<core::BlockId>(
        rng.uniform_u64(0, kBlocks - 1));
    const auto good = group->store(0).read(block);
    if (!good.is_ok()) std::abort();
    // Silent rot at site 0: same version, garbage bytes — invisible to the
    // version mechanism, caught only by the digest exchange.
    if (!group->store(0)
             .write(block, payload(0xBD), good.value().version)
             .is_ok()) {
      std::abort();
    }
    double elapsed_ms = rng.next_double() * batch_ms;  // sub-batch offset
    for (std::size_t batch = 0; batch < 2 * batches_per_cycle; ++batch) {
      if (!group->scrubber(0).step().is_ok()) std::abort();
      elapsed_ms += batch_ms;
      auto copy = group->store(0).read(block);
      if (copy.is_ok() && copy.value().data == good.value().data) break;
    }
    samples.push_back(elapsed_ms);
  }
  return samples;
}

struct ForegroundRow {
  std::string regime;
  double writes_per_sec = 0;
  double overhead_pct = 0;  // vs the no-scrub baseline
  std::uint64_t scrub_batches = 0;
};

/// Part B: `writes` foreground writes through site 0, optionally
/// interleaving scrub batches at site 1. `bytes_per_sec` == 0 means
/// unthrottled (a batch between every write); otherwise the bench's pacing
/// bucket admits a batch only when the byte budget allows, mirroring the
/// daemon's own throttle without sleeping on the foreground thread.
ForegroundRow foreground_run(core::ReplicaGroup& group, std::size_t writes,
                             bool scrub, std::uint64_t bytes_per_sec) {
  TokenBucket pacing(bytes_per_sec, /*burst=*/kBatchBlocks * kBlockSize);
  constexpr std::uint64_t kBatchBytes = kBatchBlocks * kBlockSize;
  std::uint64_t batches = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < writes; ++i) {
    const auto block = static_cast<core::BlockId>(i % kBlocks);
    if (!group.write(0, block, payload(static_cast<std::uint8_t>(i))).is_ok()) {
      std::abort();
    }
    if (!scrub) continue;
    if (bytes_per_sec != 0) {
      // A deployed daemon wakes on a timer, not per foreground op: probe
      // the budget on a stride so the clock reads don't become the tax
      // being measured. Gate on the balance, then charge only for batches
      // actually run — acquire() always grants (debt semantics), so
      // probing with it would drive the bucket negative on every skip.
      if (i % 64 != 0) continue;
      const auto now = Clock::now();
      if (pacing.available(now) < static_cast<double>(kBatchBytes)) {
        continue;  // over budget: the batch waits, the foreground does not
      }
      (void)pacing.acquire(kBatchBytes, now);
    }
    if (group.scrubber(1).step().is_ok()) ++batches;
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  ForegroundRow row;
  row.regime = !scrub              ? "no-scrub"
               : bytes_per_sec == 0 ? "unthrottled"
                                    : "throttled";
  row.writes_per_sec = static_cast<double>(writes) / seconds;
  row.scrub_batches = batches;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("trials", 200, "damage injections per interval (part A)");
  flags.add_int("writes", 20000, "foreground writes per regime (part B)");
  flags.add_bool("smoke", false, "few trials/writes (CI smoke run)");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_string("json", "", "write a machine-readable summary to this path");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("scrub_impact");
    return 0;
  }
  // Thousands of deliberate rot injections would each log a heal warning.
  Logger::instance().set_level(LogLevel::kError);
  const bool smoke = flags.get_bool("smoke");
  const auto trials =
      static_cast<std::size_t>(smoke ? 40 : flags.get_int("trials"));
  const auto writes =
      static_cast<std::size_t>(smoke ? 4000 : flags.get_int("writes"));

  // --- Part A: time-to-heal distribution vs scrub interval -----------------
  Rng rng(20260808);
  const std::vector<double> intervals_ms = {250, 1000, 4000};
  TextTable heal_table({"interval (ms)", "mean tth (ms)", "p50 (ms)",
                        "p95 (ms)", "max (ms)", "mean/interval"});
  heal_table.set_title(
      "SCRUB A: virtual time from silent-rot injection to heal, per scrub "
      "interval — the vulnerability window scales with the interval");
  struct HealRow {
    double interval_ms, mean_ms, p50_ms, p95_ms, max_ms;
  };
  std::vector<HealRow> heal_rows;
  for (const double interval : intervals_ms) {
    auto samples = time_to_heal_samples(trials, interval, rng);
    HealRow row{interval, mean(samples), percentile(samples, 0.50),
                percentile(samples, 0.95),
                *std::max_element(samples.begin(), samples.end())};
    heal_table.add_row({TextTable::fmt(row.interval_ms, 0),
                        TextTable::fmt(row.mean_ms, 1),
                        TextTable::fmt(row.p50_ms, 1),
                        TextTable::fmt(row.p95_ms, 1),
                        TextTable::fmt(row.max_ms, 1),
                        TextTable::fmt(row.mean_ms / row.interval_ms, 2)});
    heal_rows.push_back(row);
  }
  // Every heal lands within ~one cycle of the injection, and the mean
  // window tracks the interval linearly (ratio of means ~ ratio of
  // intervals).
  bool heal_bounded = true;
  for (const auto& row : heal_rows) {
    heal_bounded = heal_bounded && row.max_ms <= 1.25 * row.interval_ms;
  }
  const double scaling =
      heal_rows.back().mean_ms / std::max(heal_rows.front().mean_ms, 1e-9);
  const double interval_ratio = intervals_ms.back() / intervals_ms.front();
  const bool heal_scales =
      scaling > 0.5 * interval_ratio && scaling < 2.0 * interval_ratio;

  // --- Part B: throttled scrub cost on foreground throughput ---------------
  auto group = make_group();
  // The first pass over a fresh group pays cold allocators and page
  // faults; warm up so the baseline measures steady state.
  (void)foreground_run(*group, writes / 4, /*scrub=*/false, 0);
  const ForegroundRow baseline =
      foreground_run(*group, writes, /*scrub=*/false, 0);

  const ForegroundRow unthrottled =
      foreground_run(*group, writes, /*scrub=*/true, 0);

  const auto overhead = [&](const ForegroundRow& row) {
    return 100.0 * (baseline.writes_per_sec / row.writes_per_sec - 1.0);
  };

  // Size the byte budget the way a deployment does: start from the
  // interleaved per-batch cost the unthrottled run exposes, target a 5%
  // duty cycle, then trim the budget against the measured overhead (an
  // interleaved batch runs colder than a back-to-back one, so a one-shot
  // estimate lands high).
  const double batch_seconds = std::max(
      1.0 / unthrottled.writes_per_sec - 1.0 / baseline.writes_per_sec, 1e-9);
  constexpr double kDuty = 0.05;  // target: 5% of the core on scrubbing
  auto budget = static_cast<std::uint64_t>(
      kDuty / batch_seconds * static_cast<double>(kBatchBlocks * kBlockSize));
  ForegroundRow throttled;
  double throttled_overhead = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    throttled = foreground_run(*group, writes, /*scrub=*/true, budget);
    throttled_overhead = overhead(throttled);
    if (throttled_overhead <= 100.0 * kDuty * 1.5) break;
    budget = static_cast<std::uint64_t>(
        static_cast<double>(budget) * (100.0 * kDuty) /
        std::max(throttled_overhead, 1.0));
  }

  std::vector<ForegroundRow> fg_rows = {baseline, unthrottled, throttled};
  fg_rows[1].overhead_pct = overhead(unthrottled);
  fg_rows[2].overhead_pct = throttled_overhead;

  TextTable fg_table(
      {"regime", "writes/s", "overhead vs baseline", "scrub batches"});
  fg_table.set_title(
      "SCRUB B: foreground write throughput with interleaved scrub batches "
      "— the byte-budget throttle keeps the tax under 10%");
  for (const auto& row : fg_rows) {
    fg_table.add_row({row.regime, TextTable::fmt(row.writes_per_sec, 0),
                      row.regime == "no-scrub"
                          ? "-"
                          : TextTable::fmt(row.overhead_pct, 1) + "%",
                      std::to_string(row.scrub_batches)});
  }

  if (const std::string path = flags.get_string("json"); !path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return 1;
    }
    out << "{\n  \"bench\": \"scrub_impact\",\n  \"trials\": " << trials
        << ",\n  \"writes\": " << writes << ",\n  \"time_to_heal\": [\n";
    for (std::size_t i = 0; i < heal_rows.size(); ++i) {
      const auto& row = heal_rows[i];
      out << "    {\"interval_ms\": " << row.interval_ms
          << ", \"mean_ms\": " << row.mean_ms << ", \"p50_ms\": " << row.p50_ms
          << ", \"p95_ms\": " << row.p95_ms << ", \"max_ms\": " << row.max_ms
          << "}" << (i + 1 < heal_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"foreground\": [\n";
    for (std::size_t i = 0; i < fg_rows.size(); ++i) {
      const auto& row = fg_rows[i];
      out << "    {\"regime\": \"" << row.regime
          << "\", \"writes_per_sec\": " << row.writes_per_sec
          << ", \"overhead_pct\": " << row.overhead_pct
          << ", \"scrub_batches\": " << row.scrub_batches << "}"
          << (i + 1 < fg_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  if (flags.get_bool("csv")) {
    heal_table.print_csv(std::cout);
    fg_table.print_csv(std::cout);
  } else {
    heal_table.print(std::cout);
    fg_table.print(std::cout);
  }

  const bool overhead_ok = fg_rows[2].overhead_pct <= 10.0;
  std::cout << (heal_bounded ? "PASS" : "FAIL")
            << ": every heal lands within ~one scrub cycle of the damage\n";
  std::cout << (heal_scales ? "PASS" : "FAIL")
            << ": mean time-to-heal scales linearly with the scrub interval\n";
  std::cout << (overhead_ok ? "PASS" : "FAIL")
            << ": throttled scrubbing costs "
            << TextTable::fmt(fg_rows[2].overhead_pct, 1)
            << "% foreground throughput (bar: <= 10%)\n";
  return heal_bounded && heal_scales && overhead_ok ? 0 : 1;
}
