// BATCH: scalar-loop vs vectored multi-block I/O, end to end through the
// driver stub. A k-block file operation used to cost k sequential round
// trips (stub -> server -> quorum round each); the vectored path costs one
// round trip and ONE quorum round for the whole range. Measured over the
// in-process loopback transport and over real TCP at batch sizes
// {1, 4, 16, 64}; the acceptance bar is >= 4x throughput for 16-block
// vectored reads vs 16 scalar reads on TCP. Traffic is also counted at the
// paper's high-level-transmission granularity: batching must strictly
// reduce it for every multi-block operation.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "reldev/core/driver_stub.hpp"
#include "reldev/core/group.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kBlocks = 128;
constexpr std::size_t kBlockSize = 512;
constexpr std::size_t kSites = 3;

double ns_since(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct Measurement {
  double p50_ns = 0;
  double p95_ns = 0;
  std::uint64_t transmissions = 0;  // per single k-block operation
};

/// One bench row: scalar loop vs vectored form of the same k-block op.
struct RowResult {
  std::string transport;
  std::string op;
  std::size_t batch;
  Measurement scalar;
  Measurement vectored;

  [[nodiscard]] double speedup() const { return scalar.p50_ns / vectored.p50_ns; }
};

template <typename Fn>
Measurement measure(net::TrafficMeter& meter, std::int64_t iters, Fn&& op) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  op();  // warm-up (connection pools, caches) — not measured
  meter.reset();
  op();  // metered once: transmissions per op are deterministic
  const std::uint64_t transmissions = meter.total();
  for (std::int64_t i = 0; i < iters; ++i) {
    const auto start = Clock::now();
    op();
    samples.push_back(ns_since(start));
  }
  return Measurement{percentile(samples, 0.50), percentile(samples, 0.95),
                     transmissions};
}

storage::BlockData pattern(std::size_t bytes, std::uint8_t seed) {
  storage::BlockData data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return data;
}

/// Runs the four {read, write} x {scalar, vectored} measurements for every
/// batch size against one device, appending rows to `rows`.
void bench_device(const std::string& transport_name, core::BlockDevice& device,
                  net::TrafficMeter& meter,
                  const std::vector<std::size_t>& batches, std::int64_t iters,
                  std::vector<RowResult>& rows) {
  for (const std::size_t k : batches) {
    const auto payload = pattern(k * kBlockSize, static_cast<std::uint8_t>(k));

    RowResult read_row{transport_name, "read", k, {}, {}};
    read_row.scalar = measure(meter, iters, [&] {
      for (std::size_t b = 0; b < k; ++b) {
        if (!device.read_block(b).is_ok()) std::abort();
      }
    });
    read_row.vectored = measure(meter, iters, [&] {
      if (!device.read_blocks(0, k).is_ok()) std::abort();
    });
    rows.push_back(read_row);

    RowResult write_row{transport_name, "write", k, {}, {}};
    write_row.scalar = measure(meter, iters, [&] {
      for (std::size_t b = 0; b < k; ++b) {
        if (!device
                 .write_block(b, std::span<const std::byte>(payload).subspan(
                                     b * kBlockSize, kBlockSize))
                 .is_ok()) {
          std::abort();
        }
      }
    });
    write_row.vectored = measure(meter, iters, [&] {
      if (!device.write_blocks(0, payload).is_ok()) std::abort();
    });
    rows.push_back(write_row);
  }
}

/// Three voting replicas behind real TCP servers plus a driver stub client
/// on the same wire — the full Figure 1/2 deployment shape.
struct TcpFixture {
  TcpFixture() : config(core::GroupConfig::majority(kSites, kBlocks, kBlockSize)) {
    transport.set_traffic_meter(&meter);
    for (storage::SiteId site = 0; site < kSites; ++site) {
      stores.push_back(
          std::make_unique<storage::MemBlockStore>(kBlocks, kBlockSize));
      replicas.push_back(std::make_unique<core::VotingReplica>(
          site, config, *stores.back(), transport));
    }
    for (storage::SiteId site = 0; site < kSites; ++site) {
      servers.push_back(
          net::tcp::TcpServer::start(0, replicas[site].get()).value());
      transport.set_endpoint(site, "127.0.0.1", servers.back()->port());
    }
  }

  core::GroupConfig config;
  net::TrafficMeter meter;
  net::tcp::TcpPeerTransport transport;
  std::vector<std::unique_ptr<storage::MemBlockStore>> stores;
  std::vector<std::unique_ptr<core::VotingReplica>> replicas;
  std::vector<std::unique_ptr<net::tcp::TcpServer>> servers;
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("iters", 30, "measured iterations per configuration");
  flags.add_bool("smoke", false, "few iterations (CI smoke run)");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_string("json", "", "write a machine-readable summary to this path");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("batch_throughput");
    return 0;
  }
  const std::int64_t iters = flags.get_bool("smoke") ? 5 : flags.get_int("iters");
  const std::vector<std::size_t> batches{1, 4, 16, 64};
  std::vector<RowResult> rows;

  // Loopback: an in-process voting group driven through the driver stub.
  {
    core::ReplicaGroup group(
        core::SchemeKind::kVoting,
        core::GroupConfig::majority(kSites, kBlocks, kBlockSize));
    core::DriverStub stub(group.transport(), 100, {0, 1, 2}, kBlocks,
                          kBlockSize);
    bench_device("loopback", stub, group.meter(), batches, iters, rows);
  }

  // TCP: the same group shape behind real sockets.
  {
    TcpFixture tcp;
    core::DriverStub stub(tcp.transport, 100, {0, 1, 2}, kBlocks, kBlockSize);
    bench_device("tcp", stub, tcp.meter, batches, iters, rows);
  }

  TextTable table({"transport", "op", "batch", "scalar p50 (us)",
                   "vectored p50 (us)", "speedup", "scalar tx", "vectored tx"});
  table.set_title(
      "BATCH: k-block operation as k scalar round trips vs one vectored "
      "round trip (tx = high-level transmissions per operation)");
  for (const auto& row : rows) {
    table.add_row({row.transport, row.op, std::to_string(row.batch),
                   TextTable::fmt(row.scalar.p50_ns / 1000.0, 1),
                   TextTable::fmt(row.vectored.p50_ns / 1000.0, 1),
                   TextTable::fmt(row.speedup(), 2),
                   std::to_string(row.scalar.transmissions),
                   std::to_string(row.vectored.transmissions)});
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (const std::string path = flags.get_string("json"); !path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return 1;
    }
    out << "{\n  \"bench\": \"batch_throughput\",\n  \"block_size\": "
        << kBlockSize << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      out << "    {\"transport\": \"" << row.transport << "\", \"op\": \""
          << row.op << "\", \"batch\": " << row.batch
          << ", \"scalar_p50_ns\": " << row.scalar.p50_ns
          << ", \"scalar_p95_ns\": " << row.scalar.p95_ns
          << ", \"vectored_p50_ns\": " << row.vectored.p50_ns
          << ", \"vectored_p95_ns\": " << row.vectored.p95_ns
          << ", \"scalar_transmissions\": " << row.scalar.transmissions
          << ", \"vectored_transmissions\": " << row.vectored.transmissions
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  // Acceptance: >= 4x for 16-block vectored reads over TCP, and strictly
  // less counted traffic for every vectored multi-block operation.
  bool speed_ok = false;
  bool traffic_ok = true;
  for (const auto& row : rows) {
    if (row.transport == "tcp" && row.op == "read" && row.batch == 16 &&
        row.speedup() >= 4.0) {
      speed_ok = true;
    }
    if (row.batch > 1 &&
        row.vectored.transmissions >= row.scalar.transmissions) {
      traffic_ok = false;
      std::cerr << "traffic regression: " << row.transport << " " << row.op
                << " batch " << row.batch << " vectored "
                << row.vectored.transmissions << " tx >= scalar "
                << row.scalar.transmissions << " tx\n";
    }
  }
  std::cout << (speed_ok ? "PASS" : "FAIL")
            << ": 16-block vectored read >= 4x scalar loop over TCP\n";
  std::cout << (traffic_ok ? "PASS" : "FAIL")
            << ": vectored ops cost strictly fewer transmissions than scalar "
               "loops\n";
  return speed_ok && traffic_ok ? 0 : 1;
}
