// REC: the §4.4 discussion, measured. After a *total* failure the
// conventional available-copy scheme returns to service as soon as the
// site that failed last recovers; the naive scheme waits for every site.
// This bench measures outage durations following total failures, plus the
// ablation between the eager and piggybacked was-available policies.
#include <iostream>

#include "reldev/core/experiment.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_double("horizon", 150'000, "simulated time per configuration");
  flags.add_bool("csv", false, "emit CSV");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("recovery_behaviour");
    return 0;
  }

  TextTable table({"scheme", "n", "rho", "total failures", "mean outage",
                   "max outage"});
  table.set_title(
      "Recovery after total failure (outage = all-down instant to service "
      "restored; repair rate = 1)");

  for (const std::size_t n : {2u, 3u, 4u}) {
    for (const double rho : {0.4, 0.8}) {
      for (const auto scheme : {core::SchemeKind::kAvailableCopy,
                                core::SchemeKind::kNaiveAvailableCopy,
                                core::SchemeKind::kVoting}) {
        core::RecoveryOptions options;
        options.scheme = scheme;
        options.sites = n;
        options.rho = rho;
        options.horizon = flags.get_double("horizon");
        options.seed = 150'000 + n * 10;
        const auto result = core::run_recovery_experiment(options);
        table.add_row({core::scheme_kind_name(scheme), std::to_string(n),
                       TextTable::fmt(rho, 1),
                       std::to_string(result.total_failures),
                       TextTable::fmt(result.mean_outage, 3),
                       TextTable::fmt(result.max_outage, 3)});
      }
    }
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nPaper shape check (§4.4): for every (n, rho), mean outage "
           "orders as\n  voting (any majority) < available-copy (last-failed "
           "site) < naive (all sites),\nwith the AC/NAC gap growing with "
           "n.\n";
  }
  return 0;
}
