// Reliability companion table: mean time to (service) failure of the
// replication schemes, from absorbing Markov chains. The paper's §1
// promises that replication raises reliability as well as availability;
// this bench quantifies it and shows the available-copy dominance carries
// over: n available copies outlive a 2n-1 voting group.
#include <iostream>

#include "reldev/analysis/reliability.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_bool("csv", false, "emit CSV");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("reliability_mttf");
    return 0;
  }

  TextTable table({"rho", "MTTF AC(2)", "MTTF vote(3)", "MTTF AC(3)",
                   "MTTF vote(5)", "MTTF AC(4)", "MTTF vote(7)"});
  table.set_title(
      "Mean time to failure (units of mean repair time; AC = until total "
      "failure, voting = until quorum loss)");

  bool dominance = true;
  for (const double rho : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    table.add_row({TextTable::fmt(rho, 2),
                   TextTable::fmt(analysis::available_copy_mttf(2, rho), 1),
                   TextTable::fmt(analysis::voting_mttf(3, rho), 1),
                   TextTable::fmt(analysis::available_copy_mttf(3, rho), 1),
                   TextTable::fmt(analysis::voting_mttf(5, rho), 1),
                   TextTable::fmt(analysis::available_copy_mttf(4, rho), 1),
                   TextTable::fmt(analysis::voting_mttf(7, rho), 1)});
    for (const std::size_t n : {2u, 3u, 4u}) {
      dominance = dominance && analysis::available_copy_mttf(n, rho) >
                                   analysis::voting_mttf(2 * n - 1, rho);
    }
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nReliability counterpart of Theorem 4.1 — "
                 "MTTF_AC(n) > MTTF_V(2n-1) everywhere: "
              << (dominance ? "HOLDS" : "VIOLATED") << '\n';
  }
  return dominance ? 0 : 1;
}
