// WAL: per-operation fsync vs write-ahead journal with group commit, on
// real storage. The baseline regime is the v2 FileBlockStore where every
// durable small write costs its own fsync; the journal regime frames the
// write into a commit batch and shares one append + one fsync with every
// writer in flight. Measured as sustained small-write IOPS and per-commit
// latency at 1 and 16 concurrent writers; the acceptance bar is >= 3x
// IOPS for the journal at 16 writers, where group commit amortizes the
// fsync across the whole contending set.
//
// Run it on a real filesystem (--dir defaults to the working directory,
// NOT /tmp, which is commonly tmpfs and would fake the fsync cost).
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "reldev/storage/file_block_store.hpp"
#include "reldev/storage/journaled_block_store.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"
#include "reldev/util/thread_annotations.hpp"

using namespace reldev;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::size_t kBlocks = 256;
constexpr std::size_t kBlockSize = 4096;

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

struct RowResult {
  std::string mode;        // "per-op-fsync" | "journal"
  std::size_t writers = 0;
  std::size_t total_ops = 0;
  double seconds = 0;
  double p50_us = 0;
  double p95_us = 0;
  std::uint64_t fsyncs = 0;  // commit batches (journal) or ops (file)

  [[nodiscard]] double iops() const {
    return static_cast<double>(total_ops) / seconds;
  }
};

std::vector<std::byte> pattern(std::uint8_t seed) {
  std::vector<std::byte> data(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    data[i] = static_cast<std::byte>((seed * 31 + i) & 0xff);
  }
  return data;
}

/// Drive `writers` threads, each performing `ops` durable small writes
/// through `op(writer, i)`; returns wall seconds and per-op latencies.
template <typename Fn>
std::pair<double, std::vector<double>> drive(std::size_t writers,
                                             std::size_t ops, Fn&& op) {
  std::vector<std::vector<double>> latencies(writers);
  std::vector<std::thread> threads;
  threads.reserve(writers);
  const auto begin = Clock::now();
  for (std::size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      latencies[w].reserve(ops);
      for (std::size_t i = 0; i < ops; ++i) {
        const auto start = Clock::now();
        op(w, i);
        latencies[w].push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - start)
                .count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  std::vector<double> merged;
  merged.reserve(writers * ops);
  for (auto& samples : latencies) {
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  return {seconds, std::move(merged)};
}

/// Baseline: every durable write is write + sync on the bare v2 store.
/// FileBlockStore is unsynchronized, so concurrent writers serialize on a
/// mutex — which is exactly the per-op-fsync regime's best case (the
/// device still sees one fsync per operation).
RowResult bench_file(const std::string& path, std::size_t writers,
                     std::size_t ops) {
  auto store = storage::FileBlockStore::create(path, kBlocks, kBlockSize);
  if (!store.is_ok()) {
    std::cerr << "create failed: " << store.status().to_string() << '\n';
    std::exit(1);
  }
  const auto payload = pattern(0x5A);
  Mutex serial("bench.wal-iops.serial");
  auto [seconds, latencies] =
      drive(writers, ops, [&](std::size_t w, std::size_t i) {
        const MutexLock lock(serial);
        const auto block = static_cast<storage::BlockId>(
            (w * 17 + i) % kBlocks);
        if (!store.value()->write(block, payload, i + 1).is_ok()) std::abort();
        if (!store.value()->sync().is_ok()) std::abort();
      });
  RowResult row{"per-op-fsync", writers, writers * ops, seconds,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                writers * ops};
  return row;
}

/// Journal: write + wait_durable(own sequence); concurrent writers share
/// group-commit fsyncs.
RowResult bench_journal(const std::string& path, std::size_t writers,
                        std::size_t ops, std::chrono::microseconds linger,
                        std::chrono::microseconds spin) {
  storage::JournalOptions options;
  options.max_delay = linger;
  options.spin_wait = spin;
  auto store =
      storage::JournaledBlockStore::create(path, kBlocks, kBlockSize, options);
  if (!store.is_ok()) {
    std::cerr << "create failed: " << store.status().to_string() << '\n';
    std::exit(1);
  }
  const auto payload = pattern(0xA5);
  auto [seconds, latencies] =
      drive(writers, ops, [&](std::size_t w, std::size_t i) {
        const auto block = static_cast<storage::BlockId>(
            (w * 17 + i) % kBlocks);
        if (!store.value()->write(block, payload, i + 1).is_ok()) std::abort();
        if (!store.value()
                 ->wait_durable(store.value()->last_sequence())
                 .is_ok()) {
          std::abort();
        }
      });
  RowResult row{"journal", writers, writers * ops, seconds,
                percentile(latencies, 0.50), percentile(latencies, 0.95),
                store.value()->commit_batches()};
  return row;
}

void cleanup(const std::string& path) {
  std::error_code ignored;
  std::filesystem::remove(path, ignored);
  std::filesystem::remove(storage::JournaledBlockStore::journal_path(path),
                          ignored);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("iters", 64, "durable writes per writer per configuration");
  flags.add_int("rounds", 3,
                "timed rounds per configuration; the best round is reported "
                "(rides out virtualized-CPU scheduling noise)");
  flags.add_bool("smoke", false, "few iterations (CI smoke run)");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_string("json", "", "write a machine-readable summary to this path");
  flags.add_string("dir", ".",
                   "directory for the bench stores (use a real filesystem; "
                   "/tmp is often tmpfs and fakes the fsync cost)");
  flags.add_int("linger-us", 100,
                "group-commit leader linger before flushing (microseconds); "
                "lets a commit batch collect the whole contending writer set");
  flags.add_int("spin-us", 1000,
                "commit waiter spin before blocking (microseconds); dedicated "
                "writer threads pick up the leader's publication without a "
                "futex wake per operation");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("wal_iops");
    return 0;
  }
  const auto ops = static_cast<std::size_t>(
      flags.get_bool("smoke") ? 8 : flags.get_int("iters"));
  const std::string dir = flags.get_string("dir");
  const std::string path =
      (std::filesystem::path(dir) / "wal_iops_bench.rdev").string();

  const std::chrono::microseconds linger{flags.get_int("linger-us")};
  const std::chrono::microseconds spin{flags.get_int("spin-us")};
  const auto rounds =
      static_cast<std::size_t>(std::max<std::int64_t>(flags.get_int("rounds"), 1));

  // Virtualized CPUs make any single timed run hostage to host scheduling;
  // run each configuration `rounds` times and keep its best round (the
  // same selection rule for both modes, so the ratio stays honest).
  const auto best_of = [&](auto&& run) {
    RowResult best{};
    for (std::size_t round = 0; round < rounds; ++round) {
      cleanup(path);
      RowResult row = run();
      if (round == 0 || row.iops() > best.iops()) best = row;
    }
    return best;
  };

  std::vector<RowResult> rows;
  for (const std::size_t writers : {std::size_t{1}, std::size_t{16}}) {
    rows.push_back(best_of([&] { return bench_file(path, writers, ops); }));
    // A lone writer gains nothing from lingering (there is nobody to
    // share the fsync with), so the 1-writer journal row runs without it.
    rows.push_back(best_of([&] {
      return bench_journal(
          path, writers, ops,
          writers > 1 ? linger : std::chrono::microseconds{0}, spin);
    }));
  }
  cleanup(path);

  TextTable table({"mode", "writers", "ops", "IOPS", "p50 (us)", "p95 (us)",
                   "fsyncs", "ops/fsync"});
  table.set_title(
      "WAL: durable 4K writes, per-operation fsync vs write-ahead journal "
      "with group commit");
  for (const auto& row : rows) {
    table.add_row(
        {row.mode, std::to_string(row.writers), std::to_string(row.total_ops),
         TextTable::fmt(row.iops(), 0), TextTable::fmt(row.p50_us, 1),
         TextTable::fmt(row.p95_us, 1), std::to_string(row.fsyncs),
         TextTable::fmt(static_cast<double>(row.total_ops) /
                            static_cast<double>(std::max<std::uint64_t>(
                                row.fsyncs, 1)),
                        1)});
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const auto find_row = [&](const std::string& mode, std::size_t writers) {
    for (const auto& row : rows) {
      if (row.mode == mode && row.writers == writers) return row;
    }
    std::cerr << "missing row " << mode << "/" << writers << '\n';
    std::exit(1);
  };
  const RowResult& file16 = find_row("per-op-fsync", 16);
  const RowResult& wal16 = find_row("journal", 16);
  const double speedup = wal16.iops() / file16.iops();

  if (const std::string json = flags.get_string("json"); !json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "cannot write " << json << '\n';
      return 1;
    }
    out << "{\n  \"bench\": \"wal_iops\",\n  \"block_size\": " << kBlockSize
        << ",\n  \"ops_per_writer\": " << ops
        << ",\n  \"speedup_16_writers\": " << speedup << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      out << "    {\"mode\": \"" << row.mode
          << "\", \"writers\": " << row.writers
          << ", \"ops\": " << row.total_ops << ", \"iops\": " << row.iops()
          << ", \"p50_us\": " << row.p50_us << ", \"p95_us\": " << row.p95_us
          << ", \"fsyncs\": " << row.fsyncs << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  // Acceptance: group commit must amortize the fsync across the contending
  // writer set — >= 3x sustained IOPS at 16 writers.
  const bool speed_ok = speedup >= 3.0;
  std::cout << (speed_ok ? "PASS" : "FAIL") << ": journal IOPS at 16 writers ("
            << TextTable::fmt(wal16.iops(), 0) << ") >= 3x per-op fsync ("
            << TextTable::fmt(file16.iops(), 0) << "), speedup "
            << TextTable::fmt(speedup, 2) << "x\n";
  return speed_ok ? 0 : 1;
}
