// MICRO: google-benchmark timings of the device path itself — per-scheme
// read/write latency over the in-process transport, the cost of the
// eager vs piggybacked was-available policy (the §3.2 ablation), version-
// vector operations, block-store backends, and MiniFS operations on local
// vs replicated devices.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "reldev/core/group.hpp"
#include "reldev/core/voting_replica.hpp"
#include "reldev/fs/minifs.hpp"
#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"
#include "reldev/storage/file_block_store.hpp"
#include "reldev/storage/mem_block_store.hpp"

using namespace reldev;

namespace {

constexpr std::size_t kBlocks = 64;
constexpr std::size_t kBlockSize = 512;

core::SchemeKind scheme_of(std::int64_t index) {
  switch (index) {
    case 0:
      return core::SchemeKind::kVoting;
    case 1:
      return core::SchemeKind::kAvailableCopy;
    default:
      return core::SchemeKind::kNaiveAvailableCopy;
  }
}

void BM_DeviceWrite(benchmark::State& state) {
  core::ReplicaGroup group(
      scheme_of(state.range(0)),
      core::GroupConfig::majority(static_cast<std::size_t>(state.range(1)),
                                  kBlocks, kBlockSize));
  const storage::BlockData payload(kBlockSize, std::byte{0x5a});
  storage::BlockId block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.write(0, block, payload));
    block = (block + 1) % kBlocks;
  }
  state.SetLabel(core::scheme_kind_name(group.scheme()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockSize));
}
BENCHMARK(BM_DeviceWrite)
    ->ArgsProduct({{0, 1, 2}, {3, 5, 7}})
    ->ArgNames({"scheme", "sites"});

void BM_DeviceRead(benchmark::State& state) {
  core::ReplicaGroup group(
      scheme_of(state.range(0)),
      core::GroupConfig::majority(static_cast<std::size_t>(state.range(1)),
                                  kBlocks, kBlockSize));
  const storage::BlockData payload(kBlockSize, std::byte{0x5a});
  for (storage::BlockId b = 0; b < kBlocks; ++b) {
    (void)group.write(0, b, payload);
  }
  storage::BlockId block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.read(0, block));
    block = (block + 1) % kBlocks;
  }
  state.SetLabel(core::scheme_kind_name(group.scheme()));
}
BENCHMARK(BM_DeviceRead)
    ->ArgsProduct({{0, 1, 2}, {3, 5, 7}})
    ->ArgNames({"scheme", "sites"});

// Ablation: eager was-available broadcast vs piggybacked (§3.2). The
// steady-state cost difference only appears when membership changes, so
// alternate a crash/recover cycle into the write stream.
void BM_AcWritePolicy(benchmark::State& state) {
  const auto policy = state.range(0) == 0
                          ? core::WasAvailablePolicy::kEagerBroadcast
                          : core::WasAvailablePolicy::kPiggybacked;
  core::ReplicaGroup group(core::SchemeKind::kAvailableCopy,
                           core::GroupConfig::majority(5, kBlocks, kBlockSize),
                           net::AddressingMode::kMulticast, policy);
  const storage::BlockData payload(kBlockSize, std::byte{0x11});
  int i = 0;
  for (auto _ : state) {
    if (i % 64 == 0) group.crash_site(4);
    if (i % 64 == 32) (void)group.recover_site(4);
    benchmark::DoNotOptimize(
        group.write(0, static_cast<storage::BlockId>(i) % kBlocks, payload));
    ++i;
  }
  state.SetLabel(policy == core::WasAvailablePolicy::kEagerBroadcast
                     ? "eager-broadcast"
                     : "piggybacked");
  state.counters["transmissions/op"] = benchmark::Counter(
      static_cast<double>(group.meter().total()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AcWritePolicy)->Arg(0)->Arg(1)->ArgName("policy");

// Lazy (per-block, on access) vs eager (whole device, at repair) recovery:
// the design choice that lets block-level voting skip recovery entirely.
void BM_VotingLazyRepairRead(benchmark::State& state) {
  core::ReplicaGroup group(core::SchemeKind::kVoting,
                           core::GroupConfig::majority(5, kBlocks, kBlockSize));
  const storage::BlockData payload(kBlockSize, std::byte{0x22});
  for (auto _ : state) {
    state.PauseTiming();
    group.crash_site(4);
    for (storage::BlockId b = 0; b < kBlocks; ++b) {
      (void)group.write(0, b, payload);  // site 4 misses everything
    }
    (void)group.recover_site(4);
    state.ResumeTiming();
    // The measured region: first post-repair read of one stale block.
    benchmark::DoNotOptimize(group.read(4, 0));
  }
  state.SetLabel("refresh 1 of 64 stale blocks");
}
BENCHMARK(BM_VotingLazyRepairRead);

void BM_AcFullRecovery(benchmark::State& state) {
  core::ReplicaGroup group(core::SchemeKind::kAvailableCopy,
                           core::GroupConfig::majority(5, kBlocks, kBlockSize));
  const storage::BlockData payload(kBlockSize, std::byte{0x33});
  for (auto _ : state) {
    state.PauseTiming();
    group.crash_site(4);
    for (storage::BlockId b = 0; b < kBlocks; ++b) {
      (void)group.write(0, b, payload);
    }
    state.ResumeTiming();
    // The measured region: repairing all 64 stale blocks at recovery.
    benchmark::DoNotOptimize(group.recover_site(4));
  }
  state.SetLabel("repair 64 of 64 stale blocks");
}
BENCHMARK(BM_AcFullRecovery);

// The device path over real sockets: a voting group of `sites` replicas,
// each behind its own TCP server on loopback, the coordinator's quorum
// rounds fanned out by the FanOut dispatcher. The in-process numbers above
// measure the protocol engines; this measures what a deployment pays —
// and what the parallel fan-out saves (the round costs the slowest peer's
// RTT, not the sum of all of them).
class TcpVotingGroup {
 public:
  explicit TcpVotingGroup(std::size_t sites)
      : config_(core::GroupConfig::majority(sites, kBlocks, kBlockSize)) {
    for (storage::SiteId site = 0; site < sites; ++site) {
      stores_.push_back(
          std::make_unique<storage::MemBlockStore>(kBlocks, kBlockSize));
      replicas_.push_back(std::make_unique<core::VotingReplica>(
          site, config_, *stores_.back(), transport_));
    }
    for (storage::SiteId site = 0; site < sites; ++site) {
      servers_.push_back(
          net::tcp::TcpServer::start(0, replicas_[site].get()).value());
      transport_.set_endpoint(site, "127.0.0.1", servers_.back()->port());
    }
  }

  core::VotingReplica& coordinator() { return *replicas_[0]; }

 private:
  core::GroupConfig config_;
  net::tcp::TcpPeerTransport transport_;
  std::vector<std::unique_ptr<storage::MemBlockStore>> stores_;
  std::vector<std::unique_ptr<core::VotingReplica>> replicas_;
  std::vector<std::unique_ptr<net::tcp::TcpServer>> servers_;
};

void BM_TcpDeviceWrite(benchmark::State& state) {
  TcpVotingGroup group(static_cast<std::size_t>(state.range(0)));
  const storage::BlockData payload(kBlockSize, std::byte{0x77});
  storage::BlockId block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.coordinator().write(block, payload));
    block = (block + 1) % kBlocks;
  }
  state.SetLabel("voting over TCP loopback");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockSize));
}
BENCHMARK(BM_TcpDeviceWrite)->Arg(3)->Arg(5)->Arg(7)->ArgName("sites");

void BM_TcpDeviceRead(benchmark::State& state) {
  TcpVotingGroup group(static_cast<std::size_t>(state.range(0)));
  const storage::BlockData payload(kBlockSize, std::byte{0x77});
  for (storage::BlockId b = 0; b < kBlocks; ++b) {
    (void)group.coordinator().write(b, payload);
  }
  storage::BlockId block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.coordinator().read(block));
    block = (block + 1) % kBlocks;
  }
  state.SetLabel("voting over TCP loopback");
}
BENCHMARK(BM_TcpDeviceRead)->Arg(3)->Arg(5)->Arg(7)->ArgName("sites");

void BM_VersionVectorDiff(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  storage::VersionVector mine(size);
  storage::VersionVector theirs(size);
  for (std::size_t i = 0; i < size; i += 7) theirs.set(i, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mine.stale_against(theirs));
  }
}
BENCHMARK(BM_VersionVectorDiff)->Arg(64)->Arg(1024)->Arg(16384);

void BM_MemStoreWrite(benchmark::State& state) {
  storage::MemBlockStore store(kBlocks, kBlockSize);
  const storage::BlockData payload(kBlockSize, std::byte{0x44});
  storage::BlockId block = 0;
  storage::VersionNumber version = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.write(block, payload, version++));
    block = (block + 1) % kBlocks;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockSize));
}
BENCHMARK(BM_MemStoreWrite);

void BM_FileStoreWrite(benchmark::State& state) {
  const std::string path = "/tmp/reldev_bench_store.rdev";
  auto store = storage::FileBlockStore::create(path, kBlocks, kBlockSize);
  const storage::BlockData payload(kBlockSize, std::byte{0x55});
  storage::BlockId block = 0;
  storage::VersionNumber version = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.value()->write(block, payload, version++));
    block = (block + 1) % kBlocks;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockSize));
  std::remove(path.c_str());
}
BENCHMARK(BM_FileStoreWrite);

void BM_MiniFsWriteFile(benchmark::State& state) {
  const bool replicated = state.range(0) == 1;
  storage::MemBlockStore local_store(512, kBlockSize);
  core::LocalBlockDevice local_device(local_store);
  core::ReplicaGroup group(core::SchemeKind::kNaiveAvailableCopy,
                           core::GroupConfig::majority(3, 512, kBlockSize));
  core::ReplicaDevice replica_device(group.replica(0));
  core::BlockDevice& device =
      replicated ? static_cast<core::BlockDevice&>(replica_device)
                 : static_cast<core::BlockDevice&>(local_device);
  auto fs = fs::MiniFs::format(device).value();
  const std::vector<std::byte> contents(3 * kBlockSize, std::byte{0x66});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.write_file("bench.dat", contents));
  }
  state.SetLabel(replicated ? "replicated-device" : "local-device");
}
BENCHMARK(BM_MiniFsWriteFile)->Arg(0)->Arg(1)->ArgName("replicated");

}  // namespace
