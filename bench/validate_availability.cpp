// VAL-A: three independent routes to every availability number — the
// paper's closed forms, the mechanically-constructed CTMC, and the
// discrete-event simulation of the real protocol engines — must agree.
// Closed-form vs CTMC to ~1e-12; DES within its confidence interval.
#include <cmath>
#include <iostream>

#include "reldev/analysis/availability.hpp"
#include "reldev/analysis/markov.hpp"
#include "reldev/core/experiment.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

namespace {

double analytic_of(core::SchemeKind scheme, std::size_t n, double rho) {
  switch (scheme) {
    case core::SchemeKind::kVoting:
      return analysis::voting_availability(n, rho);
    case core::SchemeKind::kAvailableCopy:
      return analysis::available_copy_availability(n, rho);
    case core::SchemeKind::kNaiveAvailableCopy:
      return analysis::naive_available_copy_availability(n, rho);
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_double("horizon", 80'000, "simulated time per DES point");
  flags.add_bool("csv", false, "emit CSV");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("validate_availability");
    return 0;
  }

  TextTable table({"scheme", "n", "rho", "closed-form", "ctmc", "sim",
                   "sim ci", "|cf-ctmc|", "agree"});
  table.set_title("VAL-A: closed form vs CTMC vs discrete-event simulation");
  bool all_agree = true;

  const std::vector<std::pair<std::size_t, double>> grid{
      {2, 0.1}, {3, 0.1}, {4, 0.2}, {5, 0.3}, {6, 0.2}};
  for (const auto scheme :
       {core::SchemeKind::kVoting, core::SchemeKind::kAvailableCopy,
        core::SchemeKind::kNaiveAvailableCopy}) {
    for (const auto& [n, rho] : grid) {
      const double closed = analytic_of(scheme, n, rho);
      double ctmc = closed;  // voting has no comatose chain; reuse closed
      if (scheme == core::SchemeKind::kAvailableCopy) {
        ctmc = analysis::solve_available_copy_chain(n, rho).availability();
      } else if (scheme == core::SchemeKind::kNaiveAvailableCopy) {
        ctmc =
            analysis::solve_naive_available_copy_chain(n, rho).availability();
      }
      core::AvailabilityOptions options;
      options.scheme = scheme;
      options.sites = n;
      options.rho = rho;
      options.horizon = flags.get_double("horizon");
      options.warmup = options.horizon / 80;
      options.seed = 130'000 + n * 7 + static_cast<std::uint64_t>(rho * 100);
      const auto sim = core::run_availability_experiment(options);

      const double cf_gap = std::abs(closed - ctmc);
      const double tolerance = std::max(0.005, 2.5 * sim.half_width);
      const bool agree =
          cf_gap < 1e-9 && std::abs(sim.availability - closed) < tolerance;
      all_agree = all_agree && agree;
      table.add_row({core::scheme_kind_name(scheme), std::to_string(n),
                     TextTable::fmt(rho, 2), TextTable::fmt(closed, 8),
                     TextTable::fmt(ctmc, 8),
                     TextTable::fmt(sim.availability, 8),
                     "±" + TextTable::fmt(sim.half_width, 5),
                     TextTable::fmt(cf_gap, 12), agree ? "yes" : "NO"});
    }
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << '\n'
              << (all_agree ? "all three routes agree on every point"
                            : "DISAGREEMENT found — see rows marked NO")
              << '\n';
  }
  return all_agree ? 0 : 1;
}
