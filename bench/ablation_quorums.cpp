// Ablation: what if the voting scheme dropped majority quorums? Sweeping
// the admissible (read, write) quorum pairs for a 5-site group shows the
// read/write availability trade-off, culminating in read-one/write-all —
// which is exactly what the available-copy schemes implement, plus failure
// knowledge that lets them keep writing when sites are down. This bench
// quantifies the paper's §6 claim that an available site "is not dependent
// on the existence of any quorum".
#include <iostream>

#include "reldev/analysis/availability.hpp"
#include "reldev/analysis/quorum.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("n", 5, "number of sites");
  flags.add_double("rho", 0.1, "failure/repair ratio");
  flags.add_bool("csv", false, "emit CSV");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("ablation_quorums");
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const double rho = flags.get_double("rho");

  TextTable table({"read q", "write q", "read avail", "write avail",
                   "mixed (71% reads)"});
  table.set_title("Voting quorum sweep, n = " + std::to_string(n) +
                  " equal-weight sites, rho = " + TextTable::fmt(rho, 2) +
                  " (71% reads = the paper's 2.5:1 ratio)");
  const double read_fraction = 2.5 / 3.5;

  for (const auto& [read, write] : analysis::admissible_equal_quorums(n)) {
    const analysis::VotingQuorumSpec spec{
        std::vector<std::uint32_t>(n, 1), read, write};
    const auto availability = analysis::voting_quorum_availability(spec, rho);
    table.add_row({std::to_string(read), std::to_string(write),
                   TextTable::fmt(availability.read, 8),
                   TextTable::fmt(availability.write, 8),
                   TextTable::fmt(availability.mixed(read_fraction), 8)});
  }
  table.print(std::cout);

  const auto best = analysis::optimal_equal_weight_quorums(n, rho,
                                                           read_fraction);
  std::cout << "\noptimal voting quorums for this mix: read=" <<
      best.read_sites << " write=" << best.write_sites
            << " (mixed availability " << TextTable::fmt(best.mixed, 8)
            << ")\n";

  // The punchline: even the best voting configuration cannot match the
  // available-copy schemes, which write to *whatever* is up.
  const std::size_t half = (n + 1) / 2;
  std::cout << "available-copy with " << half
            << " copies:                    "
            << TextTable::fmt(analysis::available_copy_availability(half, rho),
                              8)
            << "\nnaive available copy with " << half
            << " copies:              "
            << TextTable::fmt(
                   analysis::naive_available_copy_availability(half, rho), 8)
            << "\n(read-one/write-all voting still blocks writes whenever "
               "any site is down;\navailable copy does not — that is the "
               "entire availability story of the paper.)\n";
  return 0;
}
