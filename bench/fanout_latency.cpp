// FANOUT: sequential vs parallel quorum fan-out latency over real TCP.
// Each peer's handler sleeps an injected delay d before voting; sequential
// scatter-gather costs ~k*d while the FanOut dispatcher costs ~d, and an
// early-stop read quorum with one straggler returns in ~d instead of the
// straggler's delay. These are the wins the transport must show before the
// protocol engines can be "as fast as the hardware allows" (ROADMAP).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "reldev/net/tcp/tcp_client.hpp"
#include "reldev/net/tcp/tcp_server.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

/// Replies StateInfo after the injected per-peer delay.
class DelayHandler : public net::MessageHandler {
 public:
  explicit DelayHandler(std::chrono::milliseconds delay) : delay_(delay) {}
  net::Message handle(const net::Message&) override {
    std::this_thread::sleep_for(delay_);
    return net::Message{0, net::StateInfo{net::SiteState::kAvailable, 1, {}}};
  }
  void handle_oneway(const net::Message&) override {}

 private:
  std::chrono::milliseconds delay_;
};

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A replica group's peer set behind real TCP servers: `uniform` sites with
/// the base delay, plus optionally one straggler with its own delay.
struct PeerGroup {
  PeerGroup(std::size_t uniform, std::chrono::milliseconds delay,
            std::chrono::milliseconds straggler_delay, bool with_straggler)
      : uniform_handler(delay), straggler_handler(straggler_delay) {
    net::SiteId site = 1;
    for (std::size_t i = 0; i < uniform; ++i, ++site) {
      add_peer(site, &uniform_handler);
    }
    if (with_straggler) add_peer(site, &straggler_handler);
    // Warm the connection pools so measurements cover the round, not the
    // TCP handshakes.
    (void)transport.multicast_call(0, peers, net::Message{0,
                                                          net::StateInquiry{}});
  }

  void add_peer(net::SiteId site, net::MessageHandler* handler) {
    servers.push_back(net::tcp::TcpServer::start(0, handler).value());
    transport.set_endpoint(site, "127.0.0.1", servers.back()->port());
    peers.insert(site);
  }

  DelayHandler uniform_handler;
  DelayHandler straggler_handler;
  std::vector<std::unique_ptr<net::tcp::TcpServer>> servers;
  net::tcp::TcpPeerTransport transport;
  net::SiteSet peers;
};

/// One scatter-gather, peer by peer — the pre-FanOut transport behaviour,
/// kept here as the measured baseline.
double sequential_round(PeerGroup& group, const net::Message& request) {
  const auto start = Clock::now();
  for (const net::SiteId peer : group.peers) {
    (void)group.transport.call(0, peer, request);
  }
  return ms_since(start);
}

double parallel_round(PeerGroup& group, const net::Message& request,
                      const net::EarlyStop& early_stop = {}) {
  const auto start = Clock::now();
  (void)group.transport.multicast_call(0, group.peers, request, early_stop);
  return ms_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_int("delay-ms", 20, "injected per-peer handling delay");
  flags.add_int("straggler-ms", 200, "delay of the one slow peer");
  flags.add_int("rounds", 5, "measured rounds per configuration (best kept)");
  flags.add_bool("smoke", false, "short delays and few rounds (CI smoke run)");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_string("json", "", "write a machine-readable summary to this path");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("fanout_latency");
    return 0;
  }
  // The acceptance thresholds are relative (speedup, beat-the-straggler),
  // so the smoke run can shrink the injected delays without weakening them.
  const bool smoke = flags.get_bool("smoke");
  const auto delay = std::chrono::milliseconds(
      smoke ? std::min<std::int64_t>(flags.get_int("delay-ms"), 10)
            : flags.get_int("delay-ms"));
  const auto straggler_delay = std::chrono::milliseconds(
      smoke ? std::min<std::int64_t>(flags.get_int("straggler-ms"), 100)
            : flags.get_int("straggler-ms"));
  const auto rounds =
      smoke ? std::min<std::int64_t>(flags.get_int("rounds"), 2)
            : flags.get_int("rounds");
  const net::Message request{0, net::StateInquiry{}};

  TextTable table({"sites", "delay (ms)", "sequential (ms)", "parallel (ms)",
                   "speedup", "quorum w/ straggler (ms)",
                   "full gather w/ straggler (ms)"});
  table.set_title(
      "FANOUT: k peers with per-peer delay d — parallel gather is O(d), "
      "sequential O(k*d); an early-stop quorum dodges the straggler");

  struct JsonRow {
    std::size_t sites;
    double sequential_ms;
    double parallel_ms;
    double early_ms;
    double full_ms;
  };
  std::vector<JsonRow> json_rows;

  bool parallel_wins = true;
  bool early_stop_wins = true;
  for (const std::size_t sites : {3u, 5u, 7u}) {
    const std::size_t k = sites - 1;  // the coordinator polls its peers

    // Uniform group: every peer costs d. Sequential vs parallel.
    PeerGroup uniform(k, delay, straggler_delay, /*with_straggler=*/false);
    // Straggler group: k-1 peers cost d, one costs straggler_delay. An
    // early-stop gather needs a majority of `sites` voters (coordinator
    // included): quorum-1 peer replies, reachable without the straggler.
    PeerGroup skewed(k - 1, delay, straggler_delay, /*with_straggler=*/true);
    const std::size_t quorum_replies = sites / 2;
    const net::EarlyStop read_quorum =
        [quorum_replies](const std::vector<net::GatherReply>& so_far) {
          return so_far.size() >= quorum_replies;
        };

    double sequential = 1e9;
    double parallel = 1e9;
    double early = 1e9;
    double full = 1e9;
    for (std::int64_t round = 0; round < rounds; ++round) {
      sequential = std::min(sequential, sequential_round(uniform, request));
      parallel = std::min(parallel, parallel_round(uniform, request));
      early = std::min(early, parallel_round(skewed, request, read_quorum));
      full = std::min(full, parallel_round(skewed, request));
    }
    const double speedup = sequential / parallel;
    // k peers cap the ideal speedup at k; demand most of it, and at least
    // the 2x the acceptance bar sets for 5 sites.
    const double required = std::min(2.0, 0.8 * static_cast<double>(k));
    parallel_wins = parallel_wins && speedup >= required;
    early_stop_wins =
        early_stop_wins && early < static_cast<double>(straggler_delay.count());

    table.add_row({std::to_string(sites), std::to_string(delay.count()),
                   TextTable::fmt(sequential, 1), TextTable::fmt(parallel, 1),
                   TextTable::fmt(speedup, 2), TextTable::fmt(early, 1),
                   TextTable::fmt(full, 1)});
    json_rows.push_back(JsonRow{sites, sequential, parallel, early, full});
  }

  if (const std::string path = flags.get_string("json"); !path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << '\n';
      return 1;
    }
    out << "{\n  \"bench\": \"fanout_latency\",\n  \"delay_ms\": "
        << delay.count() << ",\n  \"straggler_ms\": "
        << straggler_delay.count() << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& row = json_rows[i];
      out << "    {\"op\": \"state-inquiry-round\", \"sites\": " << row.sites
          << ", \"sequential_ms\": " << row.sequential_ms
          << ", \"parallel_ms\": " << row.parallel_ms
          << ", \"early_stop_ms\": " << row.early_ms
          << ", \"full_gather_ms\": " << row.full_ms << "}"
          << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << (parallel_wins ? "PASS" : "FAIL")
            << ": parallel fan-out >= 2x sequential at every group size\n";
  std::cout << (early_stop_wins ? "PASS" : "FAIL")
            << ": early-stop read quorum returns before the straggler\n";
  return parallel_wins && early_stop_wins ? 0 : 1;
}
