// Figure 9 of the paper: availability of a replicated block with THREE
// copies under the available-copy schemes vs SIX copies under majority
// consensus voting, as rho = lambda/mu sweeps 0 -> 0.20.
//
// Three independent routes per point: the paper's closed forms, the
// mechanically-built CTMC of Figures 7/8, and a discrete-event simulation
// of the real protocol engines. The paper's shape: both available-copy
// curves sit far above voting and are indistinguishable from each other
// below rho ~ 0.10.
#include <iostream>

#include "reldev/analysis/availability.hpp"
#include "reldev/analysis/markov.hpp"
#include "reldev/core/experiment.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_double("horizon", 60'000,
                   "simulated time per DES measurement (repair rate = 1)");
  flags.add_bool("csv", false, "emit CSV");
  flags.add_bool("no-sim", false, "analytic columns only (fast)");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("fig09_availability_3v6");
    return 0;
  }
  const bool simulate = !flags.get_bool("no-sim");
  const double horizon = flags.get_double("horizon");

  TextTable table({"rho", "A_V(6)", "A_A(3)", "A_NA(3)", "A_A(3) ctmc",
                   "A_NA(3) ctmc", "A_A(3) sim", "A_NA(3) sim",
                   "A_V(6) sim"});
  table.set_title(
      "Figure 9: availabilities for three available copies vs six voting "
      "copies");

  for (int step = 0; step <= 10; ++step) {
    const double rho = 0.02 * step;
    std::vector<std::string> row;
    row.push_back(TextTable::fmt(rho, 2));
    row.push_back(TextTable::fmt(analysis::voting_availability(6, rho), 6));
    row.push_back(
        TextTable::fmt(analysis::available_copy_availability(3, rho), 6));
    row.push_back(TextTable::fmt(
        analysis::naive_available_copy_availability(3, rho), 6));
    if (rho > 0.0) {
      row.push_back(TextTable::fmt(
          analysis::solve_available_copy_chain(3, rho).availability(), 6));
      row.push_back(TextTable::fmt(
          analysis::solve_naive_available_copy_chain(3, rho).availability(),
          6));
    } else {
      row.push_back("1.000000");
      row.push_back("1.000000");
    }
    if (simulate && rho > 0.0) {
      core::AvailabilityOptions options;
      options.sites = 3;
      options.rho = rho;
      options.horizon = horizon;
      options.warmup = horizon / 50;
      options.seed = 90'000 + static_cast<std::uint64_t>(step);

      options.scheme = core::SchemeKind::kAvailableCopy;
      row.push_back(TextTable::fmt(
          core::run_availability_experiment(options).availability, 6));
      options.scheme = core::SchemeKind::kNaiveAvailableCopy;
      row.push_back(TextTable::fmt(
          core::run_availability_experiment(options).availability, 6));
      options.scheme = core::SchemeKind::kVoting;
      options.sites = 6;
      row.push_back(TextTable::fmt(
          core::run_availability_experiment(options).availability, 6));
    } else {
      row.push_back(simulate ? "1.000000" : "-");
      row.push_back(simulate ? "1.000000" : "-");
      row.push_back(simulate ? "1.000000" : "-");
    }
    table.add_row(std::move(row));
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper shape check: A_A(3) >= A_NA(3) >> A_V(6) for all "
                 "rho in (0, 0.20];\nAC and NAC visually identical below "
                 "rho = 0.10.\n";
  }
  return 0;
}
