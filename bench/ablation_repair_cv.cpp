// Ablation for the closing argument of §4.4: "observed repair time
// distributions are characterized by coefficients of variation less than
// one. Under such conditions, sites will tend to recover in the same order
// as they failed" — so after a total failure, the last site to recover is
// often the last that failed, and the conventional available-copy
// algorithm cannot beat the naive one.
//
// We sweep the repair-time distribution from exponential (CV = 1, the
// Markov model's assumption) through Erlang-4 (CV = 0.5) to Erlang-16
// (CV = 0.25) and measure the mean total-failure outage of both schemes.
// The paper's prediction: the AC/NAC outage ratio approaches 1 as CV
// falls.
#include <cmath>
#include <iostream>

#include "reldev/core/experiment.hpp"
#include "reldev/util/flags.hpp"
#include "reldev/util/table.hpp"

using namespace reldev;

int main(int argc, char** argv) {
  FlagSet flags;
  flags.add_double("horizon", 200'000, "simulated time per configuration");
  flags.add_int("sites", 3, "number of copies");
  flags.add_double("rho", 0.6, "failure/repair ratio (high, so total "
                               "failures are common)");
  flags.add_bool("csv", false, "emit CSV");
  if (auto status = flags.parse(argc, argv); !status.is_ok()) {
    std::cerr << status.to_string() << '\n';
    return 1;
  }
  if (flags.help_requested()) {
    std::cout << flags.usage("ablation_repair_cv");
    return 0;
  }

  TextTable table({"repair CV", "erlang k", "AC outage", "NAC outage",
                   "NAC/AC ratio", "AC totals", "NAC totals"});
  table.set_title(
      "Ablation (§4.4): total-failure outage vs repair-time coefficient of "
      "variation, n = " +
      std::to_string(flags.get_int("sites")) +
      ", rho = " + TextTable::fmt(flags.get_double("rho"), 1));

  double previous_ratio = 1e9;
  bool monotone = true;
  for (const std::size_t shape : {1u, 4u, 16u}) {
    core::RecoveryOptions options;
    options.sites = static_cast<std::size_t>(flags.get_int("sites"));
    options.rho = flags.get_double("rho");
    options.horizon = flags.get_double("horizon");
    options.repair_shape = shape;
    options.seed = 160'000 + shape;

    options.scheme = core::SchemeKind::kAvailableCopy;
    const auto ac = core::run_recovery_experiment(options);
    options.scheme = core::SchemeKind::kNaiveAvailableCopy;
    const auto naive = core::run_recovery_experiment(options);

    const double ratio =
        ac.mean_outage > 0.0 ? naive.mean_outage / ac.mean_outage : 0.0;
    monotone = monotone && ratio <= previous_ratio + 0.05;
    previous_ratio = ratio;
    const double cv = 1.0 / std::sqrt(static_cast<double>(shape));
    table.add_row({TextTable::fmt(cv, 2), std::to_string(shape),
                   TextTable::fmt(ac.mean_outage, 3),
                   TextTable::fmt(naive.mean_outage, 3),
                   TextTable::fmt(ratio, 3),
                   std::to_string(ac.total_failures),
                   std::to_string(naive.total_failures)});
  }
  if (flags.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper shape check: the NAC/AC outage ratio shrinks "
                 "toward 1 as the repair-time\nCV drops below 1 — exactly "
                 "the §4.4 argument for preferring the naive scheme.\n"
              << (monotone ? "Ratio decreases with CV: HOLDS\n"
                           : "Ratio ordering violated!\n");
  }
  return monotone ? 0 : 1;
}
