#include "reldev/analysis/traffic.hpp"

#include <cmath>

#include "reldev/analysis/markov.hpp"
#include "reldev/util/assert.hpp"

namespace reldev::analysis {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kVoting:
      return "voting";
    case Scheme::kAvailableCopy:
      return "available-copy";
    case Scheme::kNaiveAvailableCopy:
      return "naive-available-copy";
  }
  return "unknown";
}

double voting_participation(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(rho >= 0.0);
  const auto dn = static_cast<double>(n);
  if (rho == 0.0) return dn;
  const double numerator = dn * std::pow(1.0 + rho, dn - 1.0);
  const double denominator =
      std::pow(1.0 + rho, dn) - std::pow(rho, dn);
  return numerator / denominator;
}

double available_copy_participation(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 2);
  if (rho == 0.0) return static_cast<double>(n);
  return solve_available_copy_chain(n, rho).participation();
}

double naive_participation(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 2);
  if (rho == 0.0) return static_cast<double>(n);
  return solve_naive_available_copy_chain(n, rho).participation();
}

OperationCosts operation_costs(Scheme scheme, net::AddressingMode mode,
                               std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 2);
  const auto dn = static_cast<double>(n);
  const double uv = voting_participation(n, rho);
  const double ua = available_copy_participation(n, rho);
  const double un = naive_participation(n, rho);

  if (mode == net::AddressingMode::kMulticast) {
    // §5.1. Voting: one quorum query, U_V - 1 replies, one update
    // broadcast -> 1 + U_V per write; reads skip the update -> U_V (lower
    // bound; +1 when the local copy is stale). AC: one write broadcast
    // answered by the other available sites -> U_A. NAC: one broadcast.
    // Reads are local (0) for both AC schemes. Recovery: one inquiry
    // broadcast, replies, plus the version-vector exchange -> U + 2;
    // voting's lazy per-block repair makes recovery free.
    switch (scheme) {
      case Scheme::kVoting:
        return OperationCosts{1.0 + uv, uv, 0.0};
      case Scheme::kAvailableCopy:
        return OperationCosts{ua, 0.0, ua + 2.0};
      case Scheme::kNaiveAvailableCopy:
        return OperationCosts{1.0, 0.0, un + 2.0};
    }
  }
  // §5.2 unique addressing: every destination is a separate transmission.
  switch (scheme) {
    case Scheme::kVoting:
      // write: n-1 quorum queries + (U_V - 1) replies + (U_V - 1) updates;
      // read: n-1 queries + (U_V - 1) replies (one more if stale).
      return OperationCosts{dn + 2.0 * uv - 3.0, dn + uv - 2.0, 0.0};
    case Scheme::kAvailableCopy:
      // write: n-1 pushes + (U_A - 1) acks; recovery: n-1 inquiries +
      // replies + the version-vector exchange -> n + U_A.
      return OperationCosts{dn + ua - 2.0, 0.0, dn + ua};
    case Scheme::kNaiveAvailableCopy:
      return OperationCosts{dn - 1.0, 0.0, dn + un};
  }
  RELDEV_ASSERT(false);
  return OperationCosts{};
}

double workload_cost(Scheme scheme, net::AddressingMode mode, std::size_t n,
                     double rho, double reads_per_write) {
  RELDEV_EXPECTS(reads_per_write >= 0.0);
  const OperationCosts costs = operation_costs(scheme, mode, n, rho);
  return costs.write + reads_per_write * costs.read;
}

}  // namespace reldev::analysis
