#include "reldev/analysis/binomial.hpp"

#include <algorithm>

#include "reldev/util/assert.hpp"

namespace reldev::analysis {

double binomial(std::size_t n, std::size_t k) noexcept {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  // Multiplicative formula keeps intermediates small and exact in double
  // for every n this library evaluates.
  for (std::size_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

std::uint64_t binomial_u64(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    const std::uint64_t numerator = n - k + i;
    // Multiply then divide, using gcd-free exact arithmetic: the running
    // product after dividing by i! is always integral.
    RELDEV_EXPECTS(result <= UINT64_MAX / numerator);
    result = result * numerator / i;
  }
  return result;
}

double factorial(std::size_t n) noexcept {
  double result = 1.0;
  for (std::size_t i = 2; i <= n; ++i) result *= static_cast<double>(i);
  return result;
}

}  // namespace reldev::analysis
