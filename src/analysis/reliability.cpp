#include "reldev/analysis/reliability.hpp"

#include "reldev/analysis/linalg.hpp"
#include "reldev/util/assert.hpp"

namespace reldev::analysis {

double birth_death_mttf(std::size_t n, std::size_t minimum_up, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(minimum_up >= 1 && minimum_up <= n);
  RELDEV_EXPECTS(rho > 0.0);
  const double lambda = rho;
  const double mu = 1.0;

  // Transient states: k = minimum_up .. n sites up. Absorption happens on
  // the failure transition out of k = minimum_up. Mean absorption times t
  // satisfy Q_TT t = -1 (fundamental-matrix identity).
  const std::size_t count = n - minimum_up + 1;
  Matrix q(count, count);
  const auto index = [&](std::size_t k) { return k - minimum_up; };
  for (std::size_t k = minimum_up; k <= n; ++k) {
    const auto i = index(k);
    const double fail = static_cast<double>(k) * lambda;
    const double repair = static_cast<double>(n - k) * mu;
    q.at(i, i) = -(fail + repair);
    if (k > minimum_up) q.at(i, index(k - 1)) = fail;
    if (k < n) q.at(i, index(k + 1)) = repair;
  }
  auto times = solve_linear(q, std::vector<double>(count, -1.0));
  RELDEV_ASSERT(times.is_ok());
  return times.value()[index(n)];  // starting from all-up
}

double voting_mttf(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  // Equal weights with the §4.1 epsilon perturbation: the service dies the
  // moment fewer than floor(n/2)+1 sites are up for odd n. For even n the
  // epsilon makes half the n/2-up states viable; modelling the weighted
  // state space exactly would need per-subset states, so we use the
  // pessimistic site-count threshold n/2+1 for even n and note that
  // A_V(2k) = A_V(2k-1) makes the odd-group number the canonical one.
  const std::size_t quorum_sites = n / 2 + 1;
  return birth_death_mttf(n, quorum_sites, rho);
}

double available_copy_mttf(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  // Dies only when the last copy fails: absorbing below 1 up.
  return birth_death_mttf(n, 1, rho);
}

}  // namespace reldev::analysis
