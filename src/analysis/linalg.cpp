#include "reldev/analysis/linalg.hpp"

#include <cmath>
#include <utility>

#include "reldev/util/assert.hpp"

namespace reldev::analysis {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  RELDEV_EXPECTS(cols_ == other.rows_);
  Matrix result(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        result.at(i, j) += a * other.at(k, j);
      }
    }
  }
  return result;
}

Result<std::vector<double>> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return errors::invalid_argument("solve_linear: shape mismatch");
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a.at(row, col)) > std::abs(a.at(pivot, col))) pivot = row;
    }
    if (std::abs(a.at(pivot, col)) < 1e-300) {
      return errors::conflict("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = col; j < n; ++j) {
        std::swap(a.at(col, j), a.at(pivot, j));
      }
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a.at(row, col) / a.at(col, col);
      if (factor == 0.0) continue;
      a.at(row, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) {
        a.at(row, j) -= factor * a.at(col, j);
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a.at(i, j) * x[j];
    x[i] = sum / a.at(i, i);
  }
  return x;
}

}  // namespace reldev::analysis
