#include "reldev/analysis/quorum.hpp"

#include <map>

#include "reldev/util/assert.hpp"

namespace reldev::analysis {

double threshold_availability(const std::vector<std::uint32_t>& weights,
                              std::uint64_t threshold, double rho) {
  RELDEV_EXPECTS(!weights.empty());
  RELDEV_EXPECTS(rho >= 0.0);
  if (threshold == 0) return 1.0;
  const double up = 1.0 / (1.0 + rho);
  // Distribution of the total up-weight: fold sites in one at a time.
  std::map<std::uint64_t, double> distribution{{0, 1.0}};
  for (const auto weight : weights) {
    std::map<std::uint64_t, double> next;
    for (const auto& [sum, probability] : distribution) {
      next[sum + weight] += probability * up;
      next[sum] += probability * (1.0 - up);
    }
    distribution = std::move(next);
  }
  double reached = 0.0;
  for (const auto& [sum, probability] : distribution) {
    if (sum >= threshold) reached += probability;
  }
  return reached;
}

std::uint64_t VotingQuorumSpec::total_weight() const noexcept {
  std::uint64_t total = 0;
  for (const auto w : weights) total += w;
  return total;
}

bool VotingQuorumSpec::valid() const noexcept {
  if (weights.empty()) return false;
  const std::uint64_t total = total_weight();
  return read_quorum + write_quorum > total && 2 * write_quorum > total &&
         read_quorum >= 1 && read_quorum <= total && write_quorum <= total;
}

QuorumAvailability voting_quorum_availability(const VotingQuorumSpec& spec,
                                              double rho) {
  RELDEV_EXPECTS(spec.valid());
  return QuorumAvailability{
      threshold_availability(spec.weights, spec.read_quorum, rho),
      threshold_availability(spec.weights, spec.write_quorum, rho)};
}

std::vector<std::pair<std::size_t, std::size_t>> admissible_equal_quorums(
    std::size_t n) {
  RELDEV_EXPECTS(n >= 1);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t write = n / 2 + 1; write <= n; ++write) {
    // Minimal read quorum for this write quorum: r + w = n + 1.
    const std::size_t read = n + 1 - write;
    pairs.emplace_back(read, write);
  }
  return pairs;
}

QuorumChoice optimal_equal_weight_quorums(std::size_t n, double rho,
                                          double read_fraction) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(read_fraction >= 0.0 && read_fraction <= 1.0);
  const std::vector<std::uint32_t> weights(n, 1);
  QuorumChoice best{0, 0, {0.0, 0.0}, -1.0};
  for (const auto& [read, write] : admissible_equal_quorums(n)) {
    const QuorumAvailability availability{
        threshold_availability(weights, read, rho),
        threshold_availability(weights, write, rho)};
    const double mixed = availability.mixed(read_fraction);
    if (mixed > best.mixed) {
      best = QuorumChoice{read, write, availability, mixed};
    }
  }
  RELDEV_ENSURES(best.mixed >= 0.0);
  return best;
}

}  // namespace reldev::analysis
