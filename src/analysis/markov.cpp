#include "reldev/analysis/markov.hpp"

#include "reldev/util/assert.hpp"

namespace reldev::analysis {

MarkovChain::MarkovChain(std::size_t states) : states_(states) {
  RELDEV_EXPECTS(states >= 2);
}

void MarkovChain::add_rate(std::size_t from, std::size_t to, double rate) {
  RELDEV_EXPECTS(from < states_);
  RELDEV_EXPECTS(to < states_);
  RELDEV_EXPECTS(from != to);
  RELDEV_EXPECTS(rate > 0.0);
  transitions_.push_back(Transition{from, to, rate});
}

Result<std::vector<double>> MarkovChain::steady_state() const {
  // Build the generator Q (rows sum to zero), then solve pi Q = 0 with the
  // normalization sum(pi) = 1: transpose Q, overwrite one balance equation
  // (they are linearly dependent) with the normalization row.
  Matrix qt(states_, states_);  // Q transposed
  for (const auto& t : transitions_) {
    qt.at(t.to, t.from) += t.rate;    // off-diagonal q[from][to]
    qt.at(t.from, t.from) -= t.rate;  // diagonal q[from][from]
  }
  std::vector<double> rhs(states_, 0.0);
  for (std::size_t col = 0; col < states_; ++col) {
    qt.at(states_ - 1, col) = 1.0;
  }
  rhs[states_ - 1] = 1.0;
  return solve_linear(std::move(qt), std::move(rhs));
}

double ReplicationChain::p_available(std::size_t j) const {
  RELDEV_EXPECTS(j >= 1 && j <= n);
  return pi[j - 1];
}

double ReplicationChain::p_comatose(std::size_t j) const {
  RELDEV_EXPECTS(j < n);
  return pi[n + j];
}

double ReplicationChain::availability() const {
  double sum = 0.0;
  for (std::size_t j = 1; j <= n; ++j) sum += p_available(j);
  return sum;
}

double ReplicationChain::participation() const {
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t j = 1; j <= n; ++j) {
    weighted += static_cast<double>(j) * p_available(j);
    total += p_available(j);
  }
  RELDEV_ENSURES(total > 0.0);
  return weighted / total;
}

namespace {

// Shared indexing: [0, n) hold S_1..S_n, [n, 2n) hold S'_0..S'_(n-1).
std::size_t s(std::size_t j) { return j - 1; }
std::size_t sp(std::size_t n, std::size_t j) { return n + j; }

ReplicationChain finish(std::size_t n, const MarkovChain& chain) {
  auto pi = chain.steady_state();
  RELDEV_ASSERT(pi.is_ok());
  ReplicationChain result;
  result.n = n;
  result.pi = std::move(pi).value();
  return result;
}

}  // namespace

ReplicationChain solve_available_copy_chain(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 2);
  RELDEV_EXPECTS(rho > 0.0);
  const double lambda = rho;  // repair rate mu = 1
  const double mu = 1.0;
  MarkovChain chain(2 * n);
  const auto dn = static_cast<double>(n);

  // Available states S_j: j copies available, n-j failed. A repairing copy
  // finds an available peer and becomes available immediately (§4:
  // repairs bring obsolete copies up to date).
  chain.add_rate(s(n), s(n - 1), dn * lambda);  // S_n -> S_(n-1)
  for (std::size_t j = 1; j <= n - 1; ++j) {
    const auto dj = static_cast<double>(j);
    if (j >= 2) {
      chain.add_rate(s(j), s(j - 1), dj * lambda);
    } else {
      chain.add_rate(s(1), sp(n, 0), lambda);  // total failure
    }
    chain.add_rate(s(j), s(j + 1), (dn - dj) * mu);
  }

  // Comatose states S'_j after a total failure: j copies back but stale;
  // the copy that failed last is still down. Its recovery (rate mu)
  // returns the block to service with j+1 available copies.
  chain.add_rate(sp(n, 0), s(1), mu);
  if (n >= 2) chain.add_rate(sp(n, 0), sp(n, 1), (dn - 1.0) * mu);
  for (std::size_t j = 1; j <= n - 1; ++j) {
    const auto dj = static_cast<double>(j);
    chain.add_rate(sp(n, j), sp(n, j - 1), dj * lambda);
    chain.add_rate(sp(n, j), s(j + 1), mu);  // last-failed copy returns
    if (j <= n - 2) {
      chain.add_rate(sp(n, j), sp(n, j + 1), (dn - dj - 1.0) * mu);
    }
  }
  return finish(n, chain);
}

ReplicationChain solve_naive_available_copy_chain(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 2);
  RELDEV_EXPECTS(rho > 0.0);
  const double lambda = rho;
  const double mu = 1.0;
  MarkovChain chain(2 * n);
  const auto dn = static_cast<double>(n);

  // Available states: identical to the conventional chain.
  chain.add_rate(s(n), s(n - 1), dn * lambda);
  for (std::size_t j = 1; j <= n - 1; ++j) {
    const auto dj = static_cast<double>(j);
    if (j >= 2) {
      chain.add_rate(s(j), s(j - 1), dj * lambda);
    } else {
      chain.add_rate(s(1), sp(n, 0), lambda);
    }
    chain.add_rate(s(j), s(j + 1), (dn - dj) * mu);
  }

  // Comatose states: no failure-order information, so the block cannot
  // return to service until every copy has recovered (§4.3). From S'_j,
  // any of the n-j failed copies may recover; only from S'_(n-1) — all
  // copies back — does the block become available again, with n copies.
  for (std::size_t j = 0; j <= n - 1; ++j) {
    const auto dj = static_cast<double>(j);
    if (j >= 1) chain.add_rate(sp(n, j), sp(n, j - 1), dj * lambda);
    if (j <= n - 2) {
      chain.add_rate(sp(n, j), sp(n, j + 1), (dn - dj) * mu);
    } else {
      chain.add_rate(sp(n, n - 1), s(n), mu);  // the final copy returns
    }
  }
  return finish(n, chain);
}

}  // namespace reldev::analysis
