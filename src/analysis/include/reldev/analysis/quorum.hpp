// Generalized weighted-voting quorum analysis, in the tradition of
// Gifford's weighted voting (the paper's reference [6]). The paper itself
// fixes majority quorums; this module answers the natural follow-up
// questions its framework poses: what do asymmetric read/write quorums
// (e.g. read-one/write-all) buy, and which quorum pair is optimal for a
// given read/write mix? The ablation bench compares these against the
// available-copy schemes.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace reldev::analysis {

/// P(total weight of up sites >= threshold), sites failing independently
/// with availability 1/(1+rho). Exact, by dynamic programming over the
/// weight distribution.
double threshold_availability(const std::vector<std::uint32_t>& weights,
                              std::uint64_t threshold, double rho);

/// A voting configuration: per-site weights plus read/write thresholds.
/// Valid configurations satisfy r + w > total and 2w > total.
struct VotingQuorumSpec {
  std::vector<std::uint32_t> weights;
  std::uint64_t read_quorum;
  std::uint64_t write_quorum;

  [[nodiscard]] std::uint64_t total_weight() const noexcept;
  [[nodiscard]] bool valid() const noexcept;
};

struct QuorumAvailability {
  double read;   // P(a read quorum of up sites exists)
  double write;  // P(a write quorum of up sites exists)

  /// Workload-weighted availability for a mix with `read_fraction` reads.
  [[nodiscard]] double mixed(double read_fraction) const {
    return read_fraction * read + (1.0 - read_fraction) * write;
  }
};

QuorumAvailability voting_quorum_availability(const VotingQuorumSpec& spec,
                                              double rho);

/// The best (read, write) site-count quorum pair for n equal-weight sites
/// under intersection constraints, maximizing the mixed availability.
struct QuorumChoice {
  std::size_t read_sites;
  std::size_t write_sites;
  QuorumAvailability availability;
  double mixed;
};

QuorumChoice optimal_equal_weight_quorums(std::size_t n, double rho,
                                          double read_fraction);

/// All admissible equal-weight (read_sites, write_sites) pairs for n
/// sites: r + w = n + 1 (minimal intersection) and 2w > n.
std::vector<std::pair<std::size_t, std::size_t>> admissible_equal_quorums(
    std::size_t n);

}  // namespace reldev::analysis
