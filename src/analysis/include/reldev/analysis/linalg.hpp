// A small dense matrix and a Gaussian-elimination solver — all the linear
// algebra the Markov-chain steady-state computation needs.
#pragma once

#include <cstddef>
#include <vector>

#include "reldev/util/result.hpp"

namespace reldev::analysis {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  static Matrix identity(std::size_t n);

  /// this * other; dimensions must agree.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// kInvalidArgument on shape mismatch; kConflict when A is singular.
[[nodiscard]] Result<std::vector<double>> solve_linear(Matrix a, std::vector<double> b);

}  // namespace reldev::analysis
