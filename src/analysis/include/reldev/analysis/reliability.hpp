// Reliability analysis: mean time to failure of a replicated block,
// computed from absorbing continuous-time Markov chains. The paper's
// introduction distinguishes *availability* (fraction of time the block is
// accessible, §4) from *reliability* (how long until the first moment data
// is lost or service is interrupted without remedy); this module supplies
// the latter for the same failure model (per-site rate lambda = rho,
// repair rate mu = 1).
//
// Failure definitions:
//  - voting: the first instant no quorum of up sites exists (service
//    interruption; data is never lost because a quorum intersects the
//    past);
//  - available-copy schemes: the first instant ALL copies are down (only a
//    total failure interrupts service — and in a harsher reading, risks
//    the most recent writes if the last disk dies for good). AC and NAC
//    share this MTTF: they differ in how fast they *return*, which is an
//    availability question.
#pragma once

#include <cstddef>

namespace reldev::analysis {

/// Mean time from "all n sites up" until the up-weight first drops below a
/// majority quorum (equal weights; the epsilon tie-break of §4.1 applies
/// for even n). Time unit: 1/mu.
double voting_mttf(std::size_t n, double rho);

/// Mean time from "all n copies up" until all are down simultaneously —
/// the total-failure MTTF shared by both available-copy schemes.
double available_copy_mttf(std::size_t n, double rho);

/// Generic helper: mean absorption time of the birth-death process on the
/// number of up sites (failure rate k*lambda from state k, repair rate
/// (n-k)*mu toward state k+1), absorbing once fewer than `minimum_up`
/// sites remain. Exposed for tests.
double birth_death_mttf(std::size_t n, std::size_t minimum_up, double rho);

}  // namespace reldev::analysis
