// Binomial coefficients for the availability formulas of §4.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reldev::analysis {

/// C(n, k) as a double (exact for the magnitudes used here: n <= ~50).
double binomial(std::size_t n, std::size_t k) noexcept;

/// Exact integer C(n, k); precondition: the result fits in 64 bits
/// (n <= 62 always does).
std::uint64_t binomial_u64(std::size_t n, std::size_t k);

/// n! as a double.
double factorial(std::size_t n) noexcept;

}  // namespace reldev::analysis
