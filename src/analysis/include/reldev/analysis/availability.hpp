// Closed-form availability expressions from §4 of the paper. Everything is
// a function of n (number of copies) and rho = lambda/mu (failure rate over
// repair rate). Cross-checked in the tests against the general CTMC solver
// and the discrete-event simulator.
#pragma once

#include <cstddef>

namespace reldev::analysis {

/// Availability of one site: mu/(lambda+mu) = 1/(1+rho).
double site_availability(double rho);

/// A_V(n), equations (1.a)/(1.b): majority consensus voting with equal
/// weights; even n uses the epsilon-perturbed tie-break, which makes
/// A_V(2k) = A_V(2k-1).
double voting_availability(std::size_t n, double rho);

/// A_A(n) for the available-copy scheme. Uses the paper's closed forms
/// (equations 2-4) for n in {2,3,4} and the Figure-7 CTMC for larger n.
double available_copy_availability(std::size_t n, double rho);

/// The paper's printed closed forms only: n must be 2, 3, or 4.
double available_copy_closed_form(std::size_t n, double rho);

/// Inequality (5): 1 - n rho^n / (1+rho)^n, a lower bound on A_A(n).
double available_copy_lower_bound(std::size_t n, double rho);

/// A_NA(n) via the B(n;rho) formula of §4.3.
double naive_available_copy_availability(std::size_t n, double rho);

/// B(n;rho) itself (exposed for tests). Requires rho > 0.
double naive_b(std::size_t n, double rho);

}  // namespace reldev::analysis
