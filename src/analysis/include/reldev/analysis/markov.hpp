// Continuous-time Markov chains and the state-transition-rate diagrams of
// the paper's Figures 7 (available copy) and 8 (naive available copy),
// constructed mechanically for any number of copies n. Solving for the
// steady state reproduces — and for n > 4 extends — the availability
// expressions the authors derived symbolically with MACSYMA.
#pragma once

#include <cstddef>
#include <vector>

#include "reldev/analysis/linalg.hpp"

namespace reldev::analysis {

/// A CTMC described by its transition rates.
class MarkovChain {
 public:
  explicit MarkovChain(std::size_t states);

  /// Add a transition `from` -> `to` at `rate` (> 0). Self-loops are
  /// meaningless in a CTMC and rejected.
  void add_rate(std::size_t from, std::size_t to, double rate);

  [[nodiscard]] std::size_t states() const noexcept { return states_; }

  /// Steady-state distribution: solves pi Q = 0 with sum(pi) = 1.
  /// Requires the chain to be irreducible (true for all chains built here).
  [[nodiscard]] Result<std::vector<double>> steady_state() const;

 private:
  std::size_t states_;
  struct Transition {
    std::size_t from;
    std::size_t to;
    double rate;
  };
  std::vector<Transition> transitions_;
};

/// State indexing shared by both replication chains, following §4.2:
/// indices [0, n) are the available states S_1..S_n (index j-1 holds S_j,
/// "j copies available"); indices [n, 2n) are the comatose states
/// S'_0..S'_(n-1) reached after a total failure.
struct ReplicationChain {
  std::size_t n = 0;
  std::vector<double> pi;  // steady-state over the 2n states

  /// P(block in S_j), j in [1, n].
  [[nodiscard]] double p_available(std::size_t j) const;
  /// P(block in S'_j), j in [0, n-1].
  [[nodiscard]] double p_comatose(std::size_t j) const;

  /// Sum over the available states — the availability A(n) of §4.
  [[nodiscard]] double availability() const;

  /// Average number of available sites given the block is available:
  /// the participation factor U of §5.
  [[nodiscard]] double participation() const;
};

/// Figure 7: the available-copy chain for n identical copies with
/// failure rate `rho` and repair rate 1 (only the ratio matters).
ReplicationChain solve_available_copy_chain(std::size_t n, double rho);

/// Figure 8: the naive-available-copy chain.
ReplicationChain solve_naive_available_copy_chain(std::size_t n, double rho);

}  // namespace reldev::analysis
