#include "reldev/analysis/availability.hpp"

#include <cmath>

#include "reldev/analysis/binomial.hpp"
#include "reldev/analysis/markov.hpp"
#include "reldev/util/assert.hpp"

namespace reldev::analysis {

double site_availability(double rho) {
  RELDEV_EXPECTS(rho >= 0.0);
  return 1.0 / (1.0 + rho);
}

double voting_availability(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(rho >= 0.0);
  if (rho == 0.0) return 1.0;
  const double denom = std::pow(1.0 + rho, static_cast<double>(n));
  if (n % 2 == 1) {
    // (1.a): available iff at most floor(n/2) copies are down.
    double sum = 0.0;
    for (std::size_t failed = 0; failed <= n / 2; ++failed) {
      sum += binomial(n, failed) * std::pow(rho, static_cast<double>(failed));
    }
    return sum / denom;
  }
  // (1.b): even n with the epsilon tie-break — a draw with exactly n/2
  // copies up wins half the time (the half containing the heavier copy).
  double sum = 0.0;
  for (std::size_t failed = 0; failed < n / 2; ++failed) {
    sum += binomial(n, failed) * std::pow(rho, static_cast<double>(failed));
  }
  sum += 0.5 * binomial(n, n / 2) * std::pow(rho, static_cast<double>(n) / 2.0);
  return sum / denom;
}

double available_copy_closed_form(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 2 && n <= 4);
  RELDEV_EXPECTS(rho >= 0.0);
  const double r = rho;
  const double r2 = r * r;
  const double r3 = r2 * r;
  const double r4 = r3 * r;
  const double r5 = r4 * r;
  const double r6 = r5 * r;
  const double one_plus = 1.0 + r;
  switch (n) {
    case 2:  // equation (2)
      return (1.0 + 3.0 * r + r2) / std::pow(one_plus, 3);
    case 3:  // equation (3)
      return (2.0 + 9.0 * r + 17.0 * r2 + 11.0 * r3 + 2.0 * r4) /
             (std::pow(one_plus, 3) * (2.0 + 3.0 * r + 2.0 * r2));
    case 4:  // equation (4)
      return (6.0 + 37.0 * r + 99.0 * r2 + 152.0 * r3 + 124.0 * r4 +
              47.0 * r5 + 6.0 * r6) /
             (std::pow(one_plus, 4) * (6.0 + 13.0 * r + 11.0 * r2 + 6.0 * r3));
    default:
      break;
  }
  RELDEV_ASSERT(false);
  return 0.0;
}

double available_copy_availability(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(rho >= 0.0);
  if (rho == 0.0) return 1.0;
  if (n == 1) return site_availability(rho);
  if (n <= 4) return available_copy_closed_form(n, rho);
  return solve_available_copy_chain(n, rho).availability();
}

double available_copy_lower_bound(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(rho >= 0.0);
  return 1.0 - static_cast<double>(n) *
                   std::pow(rho, static_cast<double>(n)) /
                   std::pow(1.0 + rho, static_cast<double>(n));
}

double naive_b(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(rho > 0.0);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    for (std::size_t j = 1; j <= k; ++j) {
      const double coefficient = factorial(n - j) * factorial(j - 1) /
                                 (factorial(n - k) * factorial(k));
      sum += coefficient *
             std::pow(rho, static_cast<double>(j) - static_cast<double>(k));
    }
  }
  return sum;
}

double naive_available_copy_availability(std::size_t n, double rho) {
  RELDEV_EXPECTS(n >= 1);
  RELDEV_EXPECTS(rho >= 0.0);
  if (rho == 0.0) return 1.0;
  if (n == 1) return site_availability(rho);
  const double b = naive_b(n, rho);
  const double b_inverse = naive_b(n, 1.0 / rho);
  return b / (b + rho * b_inverse);
}

}  // namespace reldev::analysis
