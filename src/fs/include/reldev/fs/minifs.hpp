// MiniFS: a deliberately ordinary little file system (superblock, free
// bitmap, inode table, flat namespace) that talks to the BlockDevice
// interface and nothing else. It demonstrates the paper's central claim:
// because the reliable device presents the same block interface as a local
// disk, the file system gains replication without a single change — MiniFS
// runs identically on a LocalBlockDevice, a ReplicaDevice, or a DriverStub
// across the network.
//
// Design limits (documented, not accidental): flat namespace, file names
// up to 27 bytes, at most kDirectBlocks blocks per file, no journaling —
// the failure-atomicity story is the reliable device's, not MiniFS's.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "reldev/core/device.hpp"
#include "reldev/util/result.hpp"

namespace reldev::fs {

struct FileInfo {
  std::string name;
  std::uint64_t size = 0;
  std::size_t blocks = 0;
};

class MiniFs {
 public:
  /// Direct block pointers per inode; the maximum file size is
  /// kDirectBlocks * block_size.
  static constexpr std::size_t kDirectBlocks = 16;
  static constexpr std::size_t kMaxNameLength = 27;

  /// Write a fresh file system onto the device (destroys existing data).
  static Result<MiniFs> format(core::BlockDevice& device,
                               std::size_t inode_count = 64);

  /// Mount an existing file system, validating the superblock.
  static Result<MiniFs> mount(core::BlockDevice& device);

  /// Create an empty file. kConflict if the name exists.
  [[nodiscard]] Status create(const std::string& name);

  /// Remove a file and free its blocks. kNotFound if absent.
  [[nodiscard]] Status remove(const std::string& name);

  /// True if the file exists.
  [[nodiscard]] Result<bool> exists(const std::string& name) const;

  /// Full contents of a file.
  [[nodiscard]] Result<std::vector<std::byte>> read_file(const std::string& name) const;

  /// Create-or-replace a file with the given contents.
  [[nodiscard]] Status write_file(const std::string& name,
                    std::span<const std::byte> contents);

  /// All files, sorted by name.
  [[nodiscard]] Result<std::vector<FileInfo>> list() const;

  [[nodiscard]] Result<FileInfo> stat(const std::string& name) const;

  /// Free data blocks remaining.
  [[nodiscard]] Result<std::size_t> free_blocks() const;

  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }
  [[nodiscard]] std::size_t inode_count() const noexcept {
    return inode_count_;
  }
  [[nodiscard]] std::uint64_t max_file_size() const noexcept {
    return kDirectBlocks * block_size_;
  }

 private:
  struct Inode {
    bool used = false;
    std::string name;
    std::uint64_t size = 0;
    std::array<std::uint32_t, kDirectBlocks> blocks{};
  };

  MiniFs(core::BlockDevice& device, std::size_t inode_count,
         std::size_t bitmap_blocks, std::size_t inode_blocks,
         std::size_t data_start);

  [[nodiscard]] std::size_t inodes_per_block() const noexcept;
  [[nodiscard]] Result<Inode> load_inode(std::size_t index) const;
  [[nodiscard]] Status store_inode(std::size_t index, const Inode& inode);
  /// Index of the inode with `name`, or kNotFound.
  [[nodiscard]] Result<std::size_t> find(const std::string& name) const;
  /// Index of a free inode slot, or kUnavailable when the table is full.
  [[nodiscard]] Result<std::size_t> find_free_slot() const;

  [[nodiscard]] Result<std::vector<bool>> load_bitmap() const;
  [[nodiscard]] Status store_bitmap(const std::vector<bool>& bitmap);

  core::BlockDevice* device_;  // non-owning; the device outlives the FS
  std::size_t block_size_;
  std::size_t inode_count_;
  std::size_t bitmap_blocks_;
  std::size_t inode_blocks_;
  std::size_t data_start_;   // first data block
  std::size_t data_blocks_;  // number of data blocks
};

}  // namespace reldev::fs
