// The buffer cache of the paper's UNIX model (Figure 1): the file system
// first consults the cache; only misses reach the device driver — and
// therefore the network, when the device is the replicated reliable
// device. A write-through LRU keeps the cache trivially coherent with the
// single-client device semantics this library provides.
//
// Thread safety: fully internally synchronized — concurrent user processes
// of the paper's Figure 1 share one buffer cache. The cache lock is NEVER
// held across a device operation (a miss fetch can take a whole quorum
// round trip): a miss releases the lock, fetches, then re-locks to insert.
// Two threads missing the same block may therefore both fetch it — a
// wasted read, never a correctness problem.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "reldev/core/device.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::fs {

class BlockCache final : public core::BlockDevice {
 public:
  /// Caches up to `capacity` blocks of `device`. The device must outlive
  /// the cache.
  BlockCache(core::BlockDevice& device, std::size_t capacity);

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return device_->block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return device_->block_size();
  }

  /// Cache hit: served locally with zero device traffic. Miss: fetched
  /// from the device and cached.
  [[nodiscard]] Result<storage::BlockData> read_block(storage::BlockId block) override
      RELDEV_EXCLUDES(mutex_);

  /// Write-through: the device write happens first; the cache is updated
  /// only on success, so a failed replicated write cannot leave a dirty
  /// cache lying about durable state.
  [[nodiscard]] Status write_block(storage::BlockId block,
                     std::span<const std::byte> data) override
      RELDEV_EXCLUDES(mutex_);

  /// Drop all cached blocks (e.g. after remounting a shared device that
  /// another client may have written).
  void invalidate() RELDEV_EXCLUDES(mutex_);
  /// Drop one cached block.
  void invalidate(storage::BlockId block) RELDEV_EXCLUDES(mutex_);

  /// Sequential read-ahead: when a run of consecutive block ids is
  /// detected and a miss occurs, fetch the missed block plus up to
  /// `window` following blocks in ONE vectored device read. 0 (the
  /// default) disables read-ahead, preserving exact per-block miss
  /// accounting for callers that rely on it.
  void set_read_ahead(std::size_t window) RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    read_ahead_ = window;
  }
  [[nodiscard]] std::size_t read_ahead() const RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return read_ahead_;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Blocks brought in by read-ahead beyond the one actually requested
    /// (they are neither hits nor misses until a later access).
    std::uint64_t read_ahead_blocks = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const auto total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  /// Snapshot of the counters (by value: the counters keep moving).
  [[nodiscard]] Stats stats() const RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return stats_;
  }
  [[nodiscard]] std::size_t cached_blocks() const RELDEV_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    return entries_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  void touch_locked(storage::BlockId block) RELDEV_REQUIRES(mutex_);
  void insert_locked(storage::BlockId block, storage::BlockData data)
      RELDEV_REQUIRES(mutex_);

  core::BlockDevice* device_;  // non-owning
  std::size_t capacity_;
  mutable Mutex mutex_{"BlockCache.mutex"};
  // LRU order: front = most recently used.
  std::list<storage::BlockId> order_ RELDEV_GUARDED_BY(mutex_);
  struct Entry {
    storage::BlockData data;
    std::list<storage::BlockId>::iterator position;
  };
  std::unordered_map<storage::BlockId, Entry> entries_
      RELDEV_GUARDED_BY(mutex_);
  Stats stats_ RELDEV_GUARDED_BY(mutex_);
  std::size_t read_ahead_ RELDEV_GUARDED_BY(mutex_) = 0;  // 0 = off
  // Sequential-run detection state.
  storage::BlockId next_expected_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::size_t run_ RELDEV_GUARDED_BY(mutex_) = 0;
  // Bumped by every write-through insert and invalidation. A miss snapshots
  // it before releasing the lock to fetch; if it moved by insert time the
  // fetched bytes may predate a newer write, so they are returned to the
  // caller but NOT cached — the stale-insert race of every drop-the-lock
  // cache, closed conservatively.
  std::uint64_t mutation_gen_ RELDEV_GUARDED_BY(mutex_) = 0;
};

}  // namespace reldev::fs
