// The buffer cache of the paper's UNIX model (Figure 1): the file system
// first consults the cache; only misses reach the device driver — and
// therefore the network, when the device is the replicated reliable
// device. A write-through LRU keeps the cache trivially coherent with the
// single-client device semantics this library provides.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "reldev/core/device.hpp"

namespace reldev::fs {

class BlockCache final : public core::BlockDevice {
 public:
  /// Caches up to `capacity` blocks of `device`. The device must outlive
  /// the cache.
  BlockCache(core::BlockDevice& device, std::size_t capacity);

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return device_->block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return device_->block_size();
  }

  /// Cache hit: served locally with zero device traffic. Miss: fetched
  /// from the device and cached.
  Result<storage::BlockData> read_block(storage::BlockId block) override;

  /// Write-through: the device write happens first; the cache is updated
  /// only on success, so a failed replicated write cannot leave a dirty
  /// cache lying about durable state.
  Status write_block(storage::BlockId block,
                     std::span<const std::byte> data) override;

  /// Drop all cached blocks (e.g. after remounting a shared device that
  /// another client may have written).
  void invalidate();
  /// Drop one cached block.
  void invalidate(storage::BlockId block);

  /// Sequential read-ahead: when a run of consecutive block ids is
  /// detected and a miss occurs, fetch the missed block plus up to
  /// `window` following blocks in ONE vectored device read. 0 (the
  /// default) disables read-ahead, preserving exact per-block miss
  /// accounting for callers that rely on it.
  void set_read_ahead(std::size_t window) noexcept { read_ahead_ = window; }
  [[nodiscard]] std::size_t read_ahead() const noexcept { return read_ahead_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Blocks brought in by read-ahead beyond the one actually requested
    /// (they are neither hits nor misses until a later access).
    std::uint64_t read_ahead_blocks = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      const auto total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cached_blocks() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  void touch(storage::BlockId block);
  void insert(storage::BlockId block, storage::BlockData data);

  core::BlockDevice* device_;  // non-owning
  std::size_t capacity_;
  // LRU order: front = most recently used.
  std::list<storage::BlockId> order_;
  struct Entry {
    storage::BlockData data;
    std::list<storage::BlockId>::iterator position;
  };
  std::unordered_map<storage::BlockId, Entry> entries_;
  Stats stats_;
  std::size_t read_ahead_ = 0;       // prefetch window; 0 = off
  storage::BlockId next_expected_ = 0;  // block that would continue the run
  std::size_t run_ = 0;              // length of the current sequential run
};

}  // namespace reldev::fs
