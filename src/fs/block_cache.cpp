#include "reldev/fs/block_cache.hpp"

#include <algorithm>

#include "reldev/util/assert.hpp"

namespace reldev::fs {

BlockCache::BlockCache(core::BlockDevice& device, std::size_t capacity)
    : device_(&device), capacity_(capacity) {
  RELDEV_EXPECTS(capacity >= 1);
}

void BlockCache::touch_locked(storage::BlockId block) {
  auto it = entries_.find(block);
  RELDEV_ASSERT(it != entries_.end());
  order_.splice(order_.begin(), order_, it->second.position);
}

void BlockCache::insert_locked(storage::BlockId block,
                               storage::BlockData data) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    it->second.data = std::move(data);
    touch_locked(block);
    return;
  }
  if (entries_.size() == capacity_) {
    const storage::BlockId victim = order_.back();
    order_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  order_.push_front(block);
  entries_.emplace(block, Entry{std::move(data), order_.begin()});
}

Result<storage::BlockData> BlockCache::read_block(storage::BlockId block) {
  // Hit test and run tracking under the lock; any device fetch happens
  // after it is released (see the class comment on lock discipline).
  std::size_t fetch = 0;
  std::uint64_t gen = 0;
  {
    const MutexLock lock(mutex_);
    gen = mutation_gen_;
    // Sequential-run detection: any access (hit or miss) at the block that
    // would continue the previous access's run extends it.
    run_ = (run_ > 0 && block == next_expected_) ? run_ + 1 : 1;
    next_expected_ = block + 1;

    auto it = entries_.find(block);
    if (it != entries_.end()) {
      ++stats_.hits;
      touch_locked(block);
      return it->second.data;
    }
    ++stats_.misses;

    // A miss inside a detected sequential run prefetches the next window
    // in one vectored device read — one round trip instead of `window`
    // future misses. Bounded by the device end and the cache capacity
    // (prefetching past capacity would evict blocks of this very run).
    if (read_ahead_ > 0 && run_ >= 2 && block < device_->block_count()) {
      fetch = std::min(
          {read_ahead_ + 1, device_->block_count() - block, capacity_});
    }
  }

  if (fetch > 1) {
    auto batch = device_->read_blocks(block, fetch);
    if (batch) {
      const auto size = static_cast<std::ptrdiff_t>(block_size());
      storage::BlockData first(batch.value().begin(),
                               batch.value().begin() + size);
      const MutexLock lock(mutex_);
      if (mutation_gen_ == gen) {
        for (std::size_t i = 0; i < fetch; ++i) {
          const auto offset = static_cast<std::ptrdiff_t>(i) * size;
          insert_locked(
              block + i,
              storage::BlockData(batch.value().begin() + offset,
                                 batch.value().begin() + offset + size));
        }
        stats_.read_ahead_blocks += fetch - 1;
      }
      return first;
    }
    // Vectored fetch failed (e.g. lost quorum mid-range); fall through to
    // the scalar path so a single-block read can still succeed.
  }

  auto fetched = device_->read_block(block);
  if (!fetched) return fetched.status();
  const MutexLock lock(mutex_);
  if (mutation_gen_ == gen) insert_locked(block, fetched.value());
  return fetched;
}

Status BlockCache::write_block(storage::BlockId block,
                               std::span<const std::byte> data) {
  if (auto status = device_->write_block(block, data); !status.is_ok()) {
    // Leave any cached copy untouched: the device rejected the write, so
    // the durable content is still the old block.
    return status;
  }
  const MutexLock lock(mutex_);
  ++mutation_gen_;
  insert_locked(block, storage::BlockData(data.begin(), data.end()));
  return Status::ok();
}

void BlockCache::invalidate() {
  const MutexLock lock(mutex_);
  ++mutation_gen_;
  entries_.clear();
  order_.clear();
}

void BlockCache::invalidate(storage::BlockId block) {
  const MutexLock lock(mutex_);
  ++mutation_gen_;
  auto it = entries_.find(block);
  if (it == entries_.end()) return;
  order_.erase(it->second.position);
  entries_.erase(it);
}

}  // namespace reldev::fs
