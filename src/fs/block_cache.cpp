#include "reldev/fs/block_cache.hpp"

#include "reldev/util/assert.hpp"

namespace reldev::fs {

BlockCache::BlockCache(core::BlockDevice& device, std::size_t capacity)
    : device_(&device), capacity_(capacity) {
  RELDEV_EXPECTS(capacity >= 1);
}

void BlockCache::touch(storage::BlockId block) {
  auto it = entries_.find(block);
  RELDEV_ASSERT(it != entries_.end());
  order_.splice(order_.begin(), order_, it->second.position);
}

void BlockCache::insert(storage::BlockId block, storage::BlockData data) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    it->second.data = std::move(data);
    touch(block);
    return;
  }
  if (entries_.size() == capacity_) {
    const storage::BlockId victim = order_.back();
    order_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  order_.push_front(block);
  entries_.emplace(block, Entry{std::move(data), order_.begin()});
}

Result<storage::BlockData> BlockCache::read_block(storage::BlockId block) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    ++stats_.hits;
    touch(block);
    return it->second.data;
  }
  ++stats_.misses;
  auto fetched = device_->read_block(block);
  if (!fetched) return fetched.status();
  insert(block, fetched.value());
  return fetched;
}

Status BlockCache::write_block(storage::BlockId block,
                               std::span<const std::byte> data) {
  if (auto status = device_->write_block(block, data); !status.is_ok()) {
    // Leave any cached copy untouched: the device rejected the write, so
    // the durable content is still the old block.
    return status;
  }
  insert(block, storage::BlockData(data.begin(), data.end()));
  return Status::ok();
}

void BlockCache::invalidate() {
  entries_.clear();
  order_.clear();
}

void BlockCache::invalidate(storage::BlockId block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) return;
  order_.erase(it->second.position);
  entries_.erase(it);
}

}  // namespace reldev::fs
