#include "reldev/fs/minifs.hpp"

#include <algorithm>
#include <cstring>

#include "reldev/util/assert.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::fs {

namespace {

constexpr std::uint32_t kSuperMagic = 0x4d464e31;  // "MFN1"
constexpr std::uint32_t kFsVersion = 1;

// On-disk inode record: used(1) + name(1+27) + size(8) + 16 * u32 = 101
// bytes, padded to a fixed slot so inodes never straddle blocks unevenly.
constexpr std::size_t kInodeSlotSize = 112;

struct Superblock {
  std::uint64_t block_count;
  std::uint64_t block_size;
  std::uint64_t inode_count;
  std::uint64_t bitmap_blocks;
  std::uint64_t inode_blocks;
  std::uint64_t data_start;
};

Result<storage::BlockData> read_device_block(core::BlockDevice& device,
                                             std::size_t block) {
  return device.read_block(block);
}

/// Splits an ordered list of block ids into maximal consecutive runs, so a
/// whole-file operation costs one vectored device call per run instead of
/// one scalar call per block.
std::vector<std::pair<storage::BlockId, std::size_t>> consecutive_runs(
    std::span<const std::uint32_t> blocks) {
  std::vector<std::pair<storage::BlockId, std::size_t>> runs;
  for (const std::uint32_t block : blocks) {
    if (!runs.empty() &&
        runs.back().first + runs.back().second == storage::BlockId{block}) {
      ++runs.back().second;
    } else {
      runs.emplace_back(block, 1);
    }
  }
  return runs;
}

}  // namespace

MiniFs::MiniFs(core::BlockDevice& device, std::size_t inode_count,
               std::size_t bitmap_blocks, std::size_t inode_blocks,
               std::size_t data_start)
    : device_(&device),
      block_size_(device.block_size()),
      inode_count_(inode_count),
      bitmap_blocks_(bitmap_blocks),
      inode_blocks_(inode_blocks),
      data_start_(data_start),
      data_blocks_(device.block_count() - data_start) {}

std::size_t MiniFs::inodes_per_block() const noexcept {
  return block_size_ / kInodeSlotSize;
}

Result<MiniFs> MiniFs::format(core::BlockDevice& device,
                              std::size_t inode_count) {
  const std::size_t block_size = device.block_size();
  if (block_size < kInodeSlotSize) {
    return errors::invalid_argument("block size too small for MiniFS");
  }
  if (inode_count == 0) {
    return errors::invalid_argument("need at least one inode");
  }
  const std::size_t per_block = block_size / kInodeSlotSize;
  const std::size_t inode_blocks = (inode_count + per_block - 1) / per_block;

  // The bitmap covers data blocks; size it against the worst case (all
  // remaining blocks are data).
  const std::size_t bits_per_block = block_size * 8;
  std::size_t bitmap_blocks = 1;
  for (;;) {
    const std::size_t data_start = 1 + bitmap_blocks + inode_blocks;
    if (data_start >= device.block_count()) {
      return errors::invalid_argument("device too small for MiniFS layout");
    }
    const std::size_t data_blocks = device.block_count() - data_start;
    if (bitmap_blocks * bits_per_block >= data_blocks) break;
    ++bitmap_blocks;
  }
  const std::size_t data_start = 1 + bitmap_blocks + inode_blocks;

  // Superblock.
  BufferWriter writer(block_size);
  writer.put_u32(kSuperMagic);
  writer.put_u32(kFsVersion);
  writer.put_u64(device.block_count());
  writer.put_u64(block_size);
  writer.put_u64(inode_count);
  writer.put_u64(bitmap_blocks);
  writer.put_u64(inode_blocks);
  writer.put_u64(data_start);
  storage::BlockData super(block_size, std::byte{0});
  std::copy(writer.bytes().begin(), writer.bytes().end(), super.begin());
  if (auto status = device.write_block(0, super); !status.is_ok()) {
    return status;
  }

  // Zeroed bitmap and inode table: one vectored write for the whole
  // metadata region instead of one device round trip per block.
  const storage::BlockData zeros((data_start - 1) * block_size, std::byte{0});
  if (auto status = device.write_blocks(1, zeros); !status.is_ok()) {
    return status;
  }
  return MiniFs(device, inode_count, bitmap_blocks, inode_blocks, data_start);
}

Result<MiniFs> MiniFs::mount(core::BlockDevice& device) {
  auto super = read_device_block(device, 0);
  if (!super) return super.status();
  BufferReader reader(super.value());
  auto magic = reader.get_u32();
  if (!magic) return magic.status();
  if (magic.value() != kSuperMagic) {
    return errors::corruption("not a MiniFS superblock");
  }
  auto version = reader.get_u32();
  if (!version) return version.status();
  if (version.value() != kFsVersion) {
    return errors::corruption("unsupported MiniFS version");
  }
  Superblock sb{};
  sb.block_count = reader.get_u64().value();
  sb.block_size = reader.get_u64().value();
  sb.inode_count = reader.get_u64().value();
  sb.bitmap_blocks = reader.get_u64().value();
  sb.inode_blocks = reader.get_u64().value();
  sb.data_start = reader.get_u64().value();
  if (sb.block_count != device.block_count() ||
      sb.block_size != device.block_size()) {
    return errors::corruption("superblock geometry mismatch");
  }
  if (sb.data_start >= sb.block_count) {
    return errors::corruption("superblock layout out of range");
  }
  return MiniFs(device, sb.inode_count, sb.bitmap_blocks, sb.inode_blocks,
                sb.data_start);
}

Result<MiniFs::Inode> MiniFs::load_inode(std::size_t index) const {
  RELDEV_EXPECTS(index < inode_count_);
  const std::size_t block = 1 + bitmap_blocks_ + index / inodes_per_block();
  const std::size_t offset = (index % inodes_per_block()) * kInodeSlotSize;
  auto raw = device_->read_block(block);
  if (!raw) return raw.status();
  BufferReader reader(std::span<const std::byte>(raw.value())
                          .subspan(offset, kInodeSlotSize));
  Inode inode;
  auto used = reader.get_u8();
  if (!used) return used.status();
  inode.used = used.value() != 0;
  auto name_len = reader.get_u8();
  if (!name_len) return name_len.status();
  if (name_len.value() > kMaxNameLength) {
    return errors::corruption("inode name length out of range");
  }
  auto name_raw = reader.get_raw(kMaxNameLength);
  if (!name_raw) return name_raw.status();
  inode.name.assign(reinterpret_cast<const char*>(name_raw.value().data()),
                    name_len.value());
  auto size = reader.get_u64();
  if (!size) return size.status();
  inode.size = size.value();
  for (auto& block_ptr : inode.blocks) {
    auto ptr = reader.get_u32();
    if (!ptr) return ptr.status();
    block_ptr = ptr.value();
  }
  return inode;
}

Status MiniFs::store_inode(std::size_t index, const Inode& inode) {
  RELDEV_EXPECTS(index < inode_count_);
  RELDEV_EXPECTS(inode.name.size() <= kMaxNameLength);
  const std::size_t block = 1 + bitmap_blocks_ + index / inodes_per_block();
  const std::size_t offset = (index % inodes_per_block()) * kInodeSlotSize;
  auto raw = device_->read_block(block);
  if (!raw) return raw.status();

  BufferWriter writer(kInodeSlotSize);
  writer.put_u8(inode.used ? 1 : 0);
  writer.put_u8(static_cast<std::uint8_t>(inode.name.size()));
  storage::BlockData name_field(kMaxNameLength, std::byte{0});
  std::memcpy(name_field.data(), inode.name.data(), inode.name.size());
  writer.put_raw(name_field);
  writer.put_u64(inode.size);
  for (const auto block_ptr : inode.blocks) writer.put_u32(block_ptr);

  auto& data = raw.value();
  std::copy(writer.bytes().begin(), writer.bytes().end(),
            data.begin() + static_cast<std::ptrdiff_t>(offset));
  return device_->write_block(block, data);
}

Result<std::size_t> MiniFs::find(const std::string& name) const {
  for (std::size_t i = 0; i < inode_count_; ++i) {
    auto inode = load_inode(i);
    if (!inode) return inode.status();
    if (inode.value().used && inode.value().name == name) return i;
  }
  return errors::not_found("no file named '" + name + "'");
}

Result<std::size_t> MiniFs::find_free_slot() const {
  for (std::size_t i = 0; i < inode_count_; ++i) {
    auto inode = load_inode(i);
    if (!inode) return inode.status();
    if (!inode.value().used) return i;
  }
  return errors::unavailable("inode table full");
}

Result<std::vector<bool>> MiniFs::load_bitmap() const {
  std::vector<bool> bitmap(data_blocks_, false);
  for (std::size_t b = 0; b < bitmap_blocks_; ++b) {
    auto raw = device_->read_block(1 + b);
    if (!raw) return raw.status();
    for (std::size_t bit = 0; bit < block_size_ * 8; ++bit) {
      const std::size_t index = b * block_size_ * 8 + bit;
      if (index >= data_blocks_) break;
      const auto byte = std::to_integer<unsigned>(raw.value()[bit / 8]);
      bitmap[index] = ((byte >> (bit % 8)) & 1u) != 0;
    }
  }
  return bitmap;
}

Status MiniFs::store_bitmap(const std::vector<bool>& bitmap) {
  RELDEV_EXPECTS(bitmap.size() == data_blocks_);
  for (std::size_t b = 0; b < bitmap_blocks_; ++b) {
    storage::BlockData raw(block_size_, std::byte{0});
    for (std::size_t bit = 0; bit < block_size_ * 8; ++bit) {
      const std::size_t index = b * block_size_ * 8 + bit;
      if (index >= data_blocks_) break;
      if (bitmap[index]) {
        raw[bit / 8] |= static_cast<std::byte>(1u << (bit % 8));
      }
    }
    if (auto status = device_->write_block(1 + b, raw); !status.is_ok()) {
      return status;
    }
  }
  return Status::ok();
}

Status MiniFs::create(const std::string& name) {
  if (name.empty() || name.size() > kMaxNameLength) {
    return errors::invalid_argument("bad file name");
  }
  if (auto existing = find(name); existing.is_ok()) {
    return errors::conflict("file '" + name + "' already exists");
  }
  auto slot = find_free_slot();
  if (!slot) return slot.status();
  Inode inode;
  inode.used = true;
  inode.name = name;
  inode.size = 0;
  inode.blocks.fill(0);
  return store_inode(slot.value(), inode);
}

Status MiniFs::remove(const std::string& name) {
  auto index = find(name);
  if (!index) return index.status();
  auto inode = load_inode(index.value());
  if (!inode) return inode.status();

  auto bitmap = load_bitmap();
  if (!bitmap) return bitmap.status();
  const std::size_t used_blocks =
      (inode.value().size + block_size_ - 1) / block_size_;
  for (std::size_t i = 0; i < used_blocks; ++i) {
    const std::size_t data_index = inode.value().blocks[i] - data_start_;
    if (data_index < data_blocks_) bitmap.value()[data_index] = false;
  }
  if (auto status = store_bitmap(bitmap.value()); !status.is_ok()) {
    return status;
  }
  Inode cleared;
  cleared.used = false;
  return store_inode(index.value(), cleared);
}

Result<bool> MiniFs::exists(const std::string& name) const {
  auto index = find(name);
  if (index.is_ok()) return true;
  if (index.status().code() == ErrorCode::kNotFound) return false;
  return index.status();
}

Result<std::vector<std::byte>> MiniFs::read_file(
    const std::string& name) const {
  auto index = find(name);
  if (!index) return index.status();
  auto inode = load_inode(index.value());
  if (!inode) return inode.status();

  std::vector<std::byte> contents;
  contents.reserve(inode.value().size);
  const std::size_t used_blocks =
      (inode.value().size + block_size_ - 1) / block_size_;
  // Whole-file read over the vectored path: one device call per maximal
  // consecutive run of the inode's blocks (usually exactly one run, since
  // allocation scans the bitmap in order).
  for (const auto& [first, count] : consecutive_runs(
           std::span<const std::uint32_t>(inode.value().blocks.data(),
                                          used_blocks))) {
    auto run = device_->read_blocks(first, count);
    if (!run) return run.status();
    const std::size_t want = std::min<std::size_t>(
        run.value().size(), inode.value().size - contents.size());
    contents.insert(contents.end(), run.value().begin(),
                    run.value().begin() + static_cast<std::ptrdiff_t>(want));
  }
  return contents;
}

Status MiniFs::write_file(const std::string& name,
                          std::span<const std::byte> contents) {
  if (name.empty() || name.size() > kMaxNameLength) {
    return errors::invalid_argument("bad file name");
  }
  if (contents.size() > max_file_size()) {
    return errors::invalid_argument(
        "file too large (max " + std::to_string(max_file_size()) + " bytes)");
  }
  // Find or create the inode.
  std::size_t index;
  if (auto found = find(name); found.is_ok()) {
    index = found.value();
  } else if (found.status().code() == ErrorCode::kNotFound) {
    auto slot = find_free_slot();
    if (!slot) return slot.status();
    index = slot.value();
  } else {
    return found.status();
  }
  auto previous = load_inode(index);
  if (!previous) return previous.status();

  auto bitmap = load_bitmap();
  if (!bitmap) return bitmap.status();

  // Release the old allocation (if the inode was in use), then allocate.
  if (previous.value().used) {
    const std::size_t old_blocks =
        (previous.value().size + block_size_ - 1) / block_size_;
    for (std::size_t i = 0; i < old_blocks; ++i) {
      const std::size_t data_index = previous.value().blocks[i] - data_start_;
      if (data_index < data_blocks_) bitmap.value()[data_index] = false;
    }
  }
  const std::size_t needed = (contents.size() + block_size_ - 1) / block_size_;
  std::vector<std::uint32_t> allocated;
  for (std::size_t i = 0; i < data_blocks_ && allocated.size() < needed; ++i) {
    if (!bitmap.value()[i]) {
      allocated.push_back(static_cast<std::uint32_t>(data_start_ + i));
      bitmap.value()[i] = true;
    }
  }
  if (allocated.size() < needed) {
    return errors::unavailable("no space left on device");
  }

  // Data blocks first, then metadata — an interrupted write leaves the old
  // file intact in the inode table. The payload (zero-padded to a whole
  // number of blocks) goes out over the vectored path, one device call per
  // maximal consecutive run of the allocation.
  storage::BlockData padded(needed * block_size_, std::byte{0});
  std::copy(contents.begin(), contents.end(), padded.begin());
  std::size_t written = 0;
  for (const auto& [first, count] :
       consecutive_runs(std::span<const std::uint32_t>(allocated))) {
    const auto slice = std::span<const std::byte>(padded).subspan(
        written * block_size_, count * block_size_);
    if (auto status = device_->write_blocks(first, slice); !status.is_ok()) {
      return status;
    }
    written += count;
  }
  if (auto status = store_bitmap(bitmap.value()); !status.is_ok()) {
    return status;
  }
  Inode inode;
  inode.used = true;
  inode.name = name;
  inode.size = contents.size();
  inode.blocks.fill(0);
  std::copy(allocated.begin(), allocated.end(), inode.blocks.begin());
  return store_inode(index, inode);
}

Result<std::vector<FileInfo>> MiniFs::list() const {
  std::vector<FileInfo> files;
  for (std::size_t i = 0; i < inode_count_; ++i) {
    auto inode = load_inode(i);
    if (!inode) return inode.status();
    if (!inode.value().used) continue;
    files.push_back(FileInfo{inode.value().name, inode.value().size,
                             (inode.value().size + block_size_ - 1) /
                                 block_size_});
  }
  std::sort(files.begin(), files.end(),
            [](const FileInfo& a, const FileInfo& b) { return a.name < b.name; });
  return files;
}

Result<FileInfo> MiniFs::stat(const std::string& name) const {
  auto index = find(name);
  if (!index) return index.status();
  auto inode = load_inode(index.value());
  if (!inode) return inode.status();
  return FileInfo{inode.value().name, inode.value().size,
                  (inode.value().size + block_size_ - 1) / block_size_};
}

Result<std::size_t> MiniFs::free_blocks() const {
  auto bitmap = load_bitmap();
  if (!bitmap) return bitmap.status();
  return static_cast<std::size_t>(
      std::count(bitmap.value().begin(), bitmap.value().end(), false));
}

}  // namespace reldev::fs
