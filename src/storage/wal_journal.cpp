#include "reldev/storage/wal_journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <utility>

#include "fd_io.hpp"
#include "reldev/storage/file_block_store.hpp"
#include "reldev/util/assert.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/logging.hpp"

namespace reldev::storage {

namespace {

using detail::ReadOutcome;

// Journal file layout (format v1):
//   [header: kHeaderSize bytes]
//   [frame]* where frame = u32 body-length + u32 CRC-32C(body) + body
//   body = u64 sequence + u8 record-type + type-specific fields
constexpr std::uint32_t kWalMagic = 0x5244574A;  // "RDWJ"
constexpr std::uint32_t kWalFormat = 1;

// Body prefix: sequence (8) + type (1).
constexpr std::size_t kBodyPrefix = 9;

std::vector<std::byte> encode_wal_header(std::uint64_t block_count,
                                         std::uint64_t block_size) {
  BufferWriter writer(WalJournal::kHeaderSize);
  writer.put_u32(kWalMagic);
  writer.put_u32(kWalFormat);
  writer.put_u64(block_count);
  writer.put_u64(block_size);
  writer.put_u32(0);  // reserved; pads the pre-CRC header to 28 bytes
  writer.put_u32(crc32c(writer.bytes()));
  RELDEV_ENSURES(writer.size() == WalJournal::kHeaderSize);
  return std::move(writer).take();
}

Status check_wal_header(std::span<const std::byte> raw,
                        std::uint64_t block_count, std::uint64_t block_size) {
  if (raw.size() != WalJournal::kHeaderSize) {
    return errors::corruption("short journal header");
  }
  const std::uint32_t expected = crc32c(raw.first(WalJournal::kHeaderSize - 4));
  BufferReader reader(raw);
  auto magic = reader.get_u32();
  auto format = reader.get_u32();
  auto count = reader.get_u64();
  auto size = reader.get_u64();
  auto reserved = reader.get_u32();
  auto crc = reader.get_u32();
  if (!magic || !format || !count || !size || !reserved || !crc) {
    return errors::corruption("unreadable journal header");
  }
  if (magic.value() != kWalMagic) {
    return errors::corruption("bad journal magic");
  }
  if (format.value() != kWalFormat) {
    return errors::corruption("unsupported journal format " +
                              std::to_string(format.value()));
  }
  if (crc.value() != expected) {
    return errors::corruption("journal header CRC");
  }
  if (count.value() != block_count || size.value() != block_size) {
    return errors::corruption("journal geometry does not match its store");
  }
  return Status::ok();
}

/// Frame one record body into `batch`.
void put_frame(BufferWriter& batch, const BufferWriter& body) {
  batch.put_u32(static_cast<std::uint32_t>(body.size()));
  batch.put_u32(crc32c(body.bytes()));
  batch.put_raw(body.bytes());
}

/// Decode one frame body; nullopt when malformed (torn tail).
std::optional<WalRecord> decode_body(std::span<const std::byte> body,
                                     std::size_t block_size) {
  BufferReader reader(body);
  auto sequence = reader.get_u64();
  auto type = reader.get_u8();
  if (!sequence || !type || sequence.value() == 0) return std::nullopt;
  WalRecord record;
  record.sequence = sequence.value();
  switch (static_cast<WalRecordType>(type.value())) {
    case WalRecordType::kBlockWrite: {
      record.type = WalRecordType::kBlockWrite;
      auto block = reader.get_u64();
      auto version = reader.get_u64();
      if (!block || !version) return std::nullopt;
      auto payload = reader.get_raw(block_size);
      if (!payload || !reader.exhausted()) return std::nullopt;
      record.block = block.value();
      record.version = version.value();
      record.payload = std::move(payload).value();
      return record;
    }
    case WalRecordType::kMetadataPut: {
      record.type = WalRecordType::kMetadataPut;
      auto blob = reader.get_bytes();
      if (!blob || !reader.exhausted()) return std::nullopt;
      record.payload = std::move(blob).value();
      return record;
    }
    case WalRecordType::kDemote: {
      record.type = WalRecordType::kDemote;
      auto block = reader.get_u64();
      if (!block || !reader.exhausted()) return std::nullopt;
      record.block = block.value();
      return record;
    }
  }
  return std::nullopt;
}

/// Overwrite [offset, offset + length) with zeros in buffered chunks.
/// Zeros are the journal's end-of-log terminator, so this both erases
/// torn garbage and re-establishes preallocation.
Status write_zeros(int fd, std::uint64_t offset, std::uint64_t length) {
  static constexpr std::size_t kChunk = 256u << 10;
  const std::vector<std::byte> zeros(
      static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, length)));
  while (length > 0) {
    const auto step = std::min<std::uint64_t>(zeros.size(), length);
    if (auto status = detail::write_at(fd, offset, zeros.data(),
                                       static_cast<std::size_t>(step));
        !status.is_ok()) {
      return status;
    }
    offset += step;
    length -= step;
  }
  return Status::ok();
}

}  // namespace

void wal_encode_block_write(BufferWriter& batch, std::uint64_t sequence,
                            BlockId block, VersionNumber version,
                            std::span<const std::byte> data) {
  BufferWriter body(kBodyPrefix + 16 + data.size());
  body.put_u64(sequence);
  body.put_u8(static_cast<std::uint8_t>(WalRecordType::kBlockWrite));
  body.put_u64(block);
  body.put_u64(version);
  body.put_raw(data);
  put_frame(batch, body);
}

void wal_encode_metadata_put(BufferWriter& batch, std::uint64_t sequence,
                             std::span<const std::byte> blob) {
  BufferWriter body(kBodyPrefix + 4 + blob.size());
  body.put_u64(sequence);
  body.put_u8(static_cast<std::uint8_t>(WalRecordType::kMetadataPut));
  body.put_bytes(blob);
  put_frame(batch, body);
}

void wal_encode_demote(BufferWriter& batch, std::uint64_t sequence,
                       BlockId block) {
  BufferWriter body(kBodyPrefix + 8);
  body.put_u64(sequence);
  body.put_u8(static_cast<std::uint8_t>(WalRecordType::kDemote));
  body.put_u64(block);
  put_frame(batch, body);
}

WalFrameScan wal_scan_frames(std::span<const std::byte> tail,
                             std::size_t block_size) {
  // No frame body can legitimately exceed a full block write or a full
  // metadata blob; anything larger is tail garbage, not a record.
  const std::size_t max_body =
      kBodyPrefix + 16 + 4 +
      std::max(block_size, FileBlockStore::kMetadataCapacity);
  WalFrameScan scan;
  std::size_t offset = 0;
  std::uint64_t last_sequence = 0;
  while (offset + WalJournal::kFrameHeader <= tail.size()) {
    BufferReader frame(tail.subspan(offset));
    const std::uint32_t length = frame.get_u32().value();
    const std::uint32_t crc = frame.get_u32().value();
    if (length == 0 || length > max_body ||
        offset + WalJournal::kFrameHeader + length > tail.size()) {
      break;
    }
    const auto body = tail.subspan(offset + WalJournal::kFrameHeader, length);
    if (crc32c(body) != crc) break;
    auto record = decode_body(body, block_size);
    if (!record || record->sequence <= last_sequence) break;
    last_sequence = record->sequence;
    scan.records.push_back(std::move(*record));
    offset += WalJournal::kFrameHeader + length;
  }
  scan.next_sequence = last_sequence + 1;
  scan.consumed = offset;
  // Whatever follows the committed prefix is either untouched zeroed
  // preallocation (a clean end of log) or the garbage a crash mid-append
  // left; only the latter counts as a torn tail.
  const auto rest = tail.subspan(offset);
  scan.torn_tail = std::any_of(rest.begin(), rest.end(), [](std::byte b) {
    return b != std::byte{0};
  });
  return scan;
}

WalJournal::WalJournal(std::string path, int fd, std::uint64_t end)
    : path_(std::move(path)), fd_(fd), end_(end) {}

WalJournal::~WalJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalJournal>> WalJournal::create(
    const std::string& path, std::size_t block_count, std::size_t block_size,
    std::size_t preallocate_bytes) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return errors::io_error("cannot create " + path + ": " +
                            detail::errno_text());
  }
  auto journal =
      std::unique_ptr<WalJournal>(new WalJournal(path, fd, kHeaderSize));
  const auto header = encode_wal_header(block_count, block_size);
  if (auto status = detail::write_at(fd, 0, header.data(), header.size());
      !status.is_ok()) {
    return status;
  }
  if (preallocate_bytes > kHeaderSize) {
    if (auto status =
            write_zeros(fd, kHeaderSize, preallocate_bytes - kHeaderSize);
        !status.is_ok()) {
      return status;
    }
  }
  if (auto status = detail::sync_fd(fd); !status.is_ok()) return status;
  if (auto status = detail::sync_parent_dir(path); !status.is_ok()) {
    return status;
  }
  return journal;
}

Result<std::unique_ptr<WalJournal>> WalJournal::open(const std::string& path,
                                                     std::size_t block_count,
                                                     std::size_t block_size,
                                                     ScanResult& out) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return errors::io_error("cannot open " + path + ": " +
                            detail::errno_text());
  }
  auto journal = std::unique_ptr<WalJournal>(new WalJournal(path, fd, 0));

  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    return errors::io_error("cannot stat " + path + ": " +
                            detail::errno_text());
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size < kHeaderSize) {
    return errors::corruption("short journal header");
  }
  std::vector<std::byte> header(kHeaderSize);
  auto got = detail::read_at(fd, 0, header.data(), header.size());
  if (!got) return got.status();
  if (got.value() == ReadOutcome::kShort) {
    return errors::corruption("short journal header");
  }
  if (auto status = check_wal_header(header, block_count, block_size);
      !status.is_ok()) {
    return status;
  }

  // Scan the committed prefix. Frames must parse, CRC-check, and carry
  // strictly increasing sequence numbers; the first violation is the torn
  // tail a crash mid-append left, and everything from there on is cut.
  std::vector<std::byte> tail(file_size - kHeaderSize);
  if (!tail.empty()) {
    auto read = detail::read_at(fd, kHeaderSize, tail.data(), tail.size());
    if (!read) return read.status();
    if (read.value() == ReadOutcome::kShort) {
      return errors::io_error("journal shrank while scanning");
    }
  }
  WalFrameScan scan = wal_scan_frames(tail, block_size);
  out = ScanResult{};
  out.records = std::move(scan.records);
  out.next_sequence = scan.next_sequence;
  out.valid_end = kHeaderSize + scan.consumed;
  out.torn_tail = scan.torn_tail;
  journal->end_ = out.valid_end;

  // A torn tail is neutralized by overwriting with zeros — restoring the
  // end-of-log terminator without surrendering the preallocated region a
  // truncate would discard.
  if (out.torn_tail) {
    RELDEV_WARN("wal") << path << ": zeroing torn tail ("
                       << (file_size - out.valid_end) << " byte(s) past "
                       << out.records.size() << " committed record(s))";
    if (auto status =
            write_zeros(fd, out.valid_end, file_size - out.valid_end);
        !status.is_ok()) {
      return status;
    }
    if (auto status = detail::sync_fd(fd); !status.is_ok()) return status;
  }
  return journal;
}

Status WalJournal::append(std::span<const std::byte> batch) {
  if (auto status = detail::write_at(fd_, end_, batch.data(), batch.size());
      !status.is_ok()) {
    return status;
  }
  end_ += batch.size();
  return Status::ok();
}

Status WalJournal::sync() { return detail::sync_fd(fd_); }

Status WalJournal::reset() {
  // Zero only the used region: everything past end_ is already zero (the
  // preallocation invariant), and the file keeps its high-water size so
  // future appends remain in-place overwrites with cheap fsyncs.
  if (end_ > kHeaderSize) {
    if (auto status = write_zeros(fd_, kHeaderSize, end_ - kHeaderSize);
        !status.is_ok()) {
      return status;
    }
  }
  end_ = kHeaderSize;
  return detail::sync_fd(fd_);
}

Status WalJournal::raw_append(std::span<const std::byte> bytes) {
  return detail::write_at(fd_, end_, bytes.data(), bytes.size());
}

}  // namespace reldev::storage
