#include "reldev/storage/mem_block_store.hpp"

#include "reldev/util/assert.hpp"

namespace reldev::storage {

MemBlockStore::MemBlockStore(std::size_t block_count, std::size_t block_size)
    : block_size_(block_size) {
  RELDEV_EXPECTS(block_count > 0);
  RELDEV_EXPECTS(block_size > 0);
  blocks_.resize(block_count);
  for (auto& block : blocks_) {
    block.data.assign(block_size, std::byte{0});
    block.version = 0;
  }
}

Result<VersionedBlock> MemBlockStore::read(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  return blocks_[block];
}

Status MemBlockStore::write(BlockId block, std::span<const std::byte> data,
                            VersionNumber version) {
  if (auto status = check_write(block, data); !status.is_ok()) return status;
  blocks_[block].data.assign(data.begin(), data.end());
  blocks_[block].version = version;
  return Status::ok();
}

Result<VersionNumber> MemBlockStore::version_of(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  return blocks_[block].version;
}

VersionVector MemBlockStore::version_vector() const {
  std::vector<VersionNumber> versions;
  versions.reserve(blocks_.size());
  for (const auto& block : blocks_) versions.push_back(block.version);
  return VersionVector(std::move(versions));
}

Status MemBlockStore::put_metadata(std::span<const std::byte> blob) {
  metadata_.assign(blob.begin(), blob.end());
  return Status::ok();
}

Result<std::vector<std::byte>> MemBlockStore::get_metadata() const {
  return metadata_;
}

void MemBlockStore::reset() {
  for (auto& block : blocks_) {
    block.data.assign(block_size_, std::byte{0});
    block.version = 0;
  }
  metadata_.clear();
}

}  // namespace reldev::storage
