#include "reldev/storage/version.hpp"

#include <algorithm>

#include "reldev/util/assert.hpp"

namespace reldev::storage {

VersionNumber VersionVector::at(BlockId block) const {
  RELDEV_EXPECTS(block < versions_.size());
  return versions_[block];
}

void VersionVector::set(BlockId block, VersionNumber version) {
  RELDEV_EXPECTS(block < versions_.size());
  versions_[block] = version;
}

VersionNumber VersionVector::bump(BlockId block) {
  RELDEV_EXPECTS(block < versions_.size());
  return ++versions_[block];
}

bool VersionVector::dominates(const VersionVector& other) const {
  RELDEV_EXPECTS(size() == other.size());
  for (std::size_t i = 0; i < versions_.size(); ++i) {
    if (versions_[i] < other.versions_[i]) return false;
  }
  return true;
}

std::vector<BlockId> VersionVector::stale_against(
    const VersionVector& other) const {
  RELDEV_EXPECTS(size() == other.size());
  std::vector<BlockId> stale;
  for (std::size_t i = 0; i < versions_.size(); ++i) {
    if (versions_[i] < other.versions_[i]) stale.push_back(i);
  }
  return stale;
}

void VersionVector::merge_max(const VersionVector& other) {
  RELDEV_EXPECTS(size() == other.size());
  for (std::size_t i = 0; i < versions_.size(); ++i) {
    versions_[i] = std::max(versions_[i], other.versions_[i]);
  }
}

VersionNumber VersionVector::total() const noexcept {
  VersionNumber sum = 0;
  for (const auto v : versions_) sum += v;
  return sum;
}

void VersionVector::encode(BufferWriter& writer) const {
  writer.put_u64_vector(versions_);
}

Result<VersionVector> VersionVector::decode(BufferReader& reader) {
  auto raw = reader.get_u64_vector();
  if (!raw) return raw.status();
  return VersionVector(std::move(raw).value());
}

}  // namespace reldev::storage
