#include "reldev/storage/site_metadata.hpp"

namespace reldev::storage {

namespace {
constexpr std::uint32_t kMagic = 0x534d4431;  // "SMD1"
}

std::vector<std::byte> SiteMetadata::encode() const {
  BufferWriter writer;
  writer.put_u32(kMagic);
  writer.put_u32(site);
  writer.put_bool(clean_shutdown);
  writer.put_bool(was_available.has_value());
  if (was_available.has_value()) {
    std::vector<std::uint64_t> members(was_available->begin(),
                                       was_available->end());
    writer.put_u64_vector(members);
  }
  if (scrub_cursor.has_value()) {
    writer.put_bool(true);
    writer.put_u64(*scrub_cursor);
  }
  return std::move(writer).take();
}

Result<SiteMetadata> SiteMetadata::decode(std::span<const std::byte> blob) {
  BufferReader reader(blob);
  auto magic = reader.get_u32();
  if (!magic) return magic.status();
  if (magic.value() != kMagic) {
    return errors::corruption("bad site-metadata magic");
  }
  SiteMetadata meta;
  auto site = reader.get_u32();
  if (!site) return site.status();
  meta.site = site.value();
  auto clean = reader.get_bool();
  if (!clean) return clean.status();
  meta.clean_shutdown = clean.value();
  auto has_set = reader.get_bool();
  if (!has_set) return has_set.status();
  if (has_set.value()) {
    auto members = reader.get_u64_vector();
    if (!members) return members.status();
    SiteSet set;
    for (const auto member : members.value()) {
      set.insert(static_cast<SiteId>(member));
    }
    meta.was_available = std::move(set);
  }
  if (!reader.exhausted()) {
    auto has_cursor = reader.get_bool();
    if (!has_cursor) return has_cursor.status();
    if (has_cursor.value()) {
      auto cursor = reader.get_u64();
      if (!cursor) return cursor.status();
      meta.scrub_cursor = cursor.value();
    }
  }
  return meta;
}

}  // namespace reldev::storage
