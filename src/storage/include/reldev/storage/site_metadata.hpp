// Persistent per-site metadata for the available-copy algorithms: the
// site's identity, whether its last shutdown was clean, and its
// was-available set W_s (Definition 3.1). The naive scheme persists no
// was-available information — that is precisely its point — so the set is
// optional here.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "reldev/util/result.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

/// Site identifier within a replication group; dense in [0, n).
using SiteId = std::uint32_t;

/// An ordered set of sites (was-available sets, closures, quorums).
using SiteSet = std::set<SiteId>;

struct SiteMetadata {
  SiteId site = 0;
  /// True when the site's store was closed by an orderly shutdown; a crash
  /// leaves it false so recovery knows the data may be stale.
  bool clean_shutdown = false;
  /// W_s — absent under the naive scheme.
  std::optional<SiteSet> was_available;
  /// Next block the anti-entropy scrubber will scan — absent until a
  /// scrubber has run. Appended to the encoding after the original fields,
  /// so blobs written before the scrubber existed still decode (the field
  /// simply stays absent and a fresh cycle starts at block 0).
  std::optional<std::uint64_t> scrub_cursor;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<SiteMetadata> decode(std::span<const std::byte> blob);

  friend bool operator==(const SiteMetadata&, const SiteMetadata&) = default;
};

}  // namespace reldev::storage
