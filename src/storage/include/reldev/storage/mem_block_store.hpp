// In-memory block store: the workhorse for simulations and tests, and the
// baseline device in the micro-benchmarks.
#pragma once

#include <vector>

#include "reldev/storage/block_store.hpp"

namespace reldev::storage {

class MemBlockStore final : public BlockStore {
 public:
  MemBlockStore(std::size_t block_count, std::size_t block_size);

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }

  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override;
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
               VersionNumber version) override;
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override;
  [[nodiscard]] VersionVector version_vector() const override;

  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override;
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override;

  /// Test hook: wipe all data and versions, as if the disk were replaced.
  void reset();

 private:
  std::size_t block_size_;
  std::vector<VersionedBlock> blocks_;
  std::vector<std::byte> metadata_;
};

}  // namespace reldev::storage
