// The block-store interface: an "ordinary block-structured device" (§2)
// extended with the per-block version numbers the consistency algorithms
// need. One implementation is a plain in-memory array; another persists to
// a single file with checksummed blocks and a metadata region.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "reldev/storage/block.hpp"
#include "reldev/storage/version.hpp"
#include "reldev/util/result.hpp"

namespace reldev::storage {

/// Monotonic per-store sequence number stamped on every accepted mutation.
/// 0 means "nothing accepted yet"; sequences never repeat within one open
/// store instance.
using CommitSequence = std::uint64_t;

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  [[nodiscard]] virtual std::size_t block_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;

  /// Read one block's payload and version.
  [[nodiscard]] virtual Result<VersionedBlock> read(BlockId block) const = 0;

  /// Write one block's payload, stamping it with `version`. The payload
  /// must be exactly block_size() bytes.
  [[nodiscard]] virtual Status write(BlockId block, std::span<const std::byte> data,
                       VersionNumber version) = 0;

  /// The version of one block without reading its payload.
  [[nodiscard]] virtual Result<VersionNumber> version_of(BlockId block) const = 0;

  /// Snapshot of all block versions (the vector v of §3.2).
  [[nodiscard]] virtual VersionVector version_vector() const = 0;

  /// Opaque site metadata (state flags, was-available set). Persistent
  /// stores keep this across reopen; the in-memory store keeps it for
  /// interface parity.
  [[nodiscard]] virtual Status put_metadata(std::span<const std::byte> blob) = 0;
  [[nodiscard]] virtual Result<std::vector<std::byte>> get_metadata() const = 0;

  /// Make everything written so far crash-durable. A no-op for volatile
  /// stores; persistent stores fsync. The durability contract across the
  /// library: a write is "committed" once a sync() issued after it
  /// returned OK.
  [[nodiscard]] virtual Status sync() { return Status::ok(); }

  // --- async-friendly commit/wait surface -----------------------------------
  // sync() is "wait for everything"; stores that batch durability (the
  // journaled store's group commit) expose the finer-grained form: read
  // the sequence your mutation got, then wait for exactly that sequence.
  // Defaults make every store trivially conformant: a store without
  // sequence tracking reports 0/0 and wait_durable() degrades to sync().

  /// Sequence of the most recently accepted mutation (0 = none, or the
  /// store does not track sequences).
  [[nodiscard]] virtual CommitSequence last_sequence() const noexcept {
    return 0;
  }
  /// Highest sequence already crash-durable.
  [[nodiscard]] virtual CommitSequence durable_sequence() const noexcept {
    return last_sequence();
  }
  /// Block until every mutation up through `sequence` is crash-durable.
  /// Callers that captured last_sequence() after their write wait for
  /// exactly their own commit instead of draining the whole store.
  [[nodiscard]] virtual Status wait_durable(CommitSequence sequence);

  /// Demote a block to "needs repair": version 0 with zeroed payload.
  /// Used when a local record turns out torn or corrupt — the consistency
  /// engines then treat the block exactly like an out-of-date copy and
  /// lazily refresh it from peers (the paper's per-block repair, extended
  /// to media faults).
  [[nodiscard]] virtual Status demote(BlockId block);

 protected:
  /// Shared argument validation for implementations.
  [[nodiscard]] Status check_write(BlockId block, std::span<const std::byte> data) const;
  [[nodiscard]] Status check_block(BlockId block) const;
};

}  // namespace reldev::storage
