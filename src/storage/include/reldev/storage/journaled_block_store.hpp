// JournaledBlockStore: the write-ahead-journal + group-commit mode of the
// persistent store. It layers a WalJournal (`<store>.wal`) over the v2
// FileBlockStore and turns the per-operation fsync regime into one fsync
// per commit *batch*:
//
//   * write()/put_metadata()/demote() are memory-speed: the mutation is
//     framed into the in-flight commit batch, applied to an in-memory
//     write-back table, and stamped with the next commit sequence number.
//   * sync() (and the finer-grained wait_durable()) is "wait until my
//     sequence is durable": the first waiter becomes the commit leader,
//     appends every framed record in flight in ONE journal append, and
//     issues ONE fsync; concurrent writers that arrived meanwhile ride the
//     same fsync (group commit, cf. slash2's MDS journal). Knobs bound the
//     batch (max_batch_bytes) and let the leader linger to accumulate a
//     fuller batch (max_delay).
//   * a checkpoint folds the write-back table into the main v2 file (fsync
//     the store, THEN truncate the journal), automatically once the
//     journal passes checkpoint_bytes, or explicitly via checkpoint().
//   * open() replays the journal over the freshly scrubbed main file: the
//     committed prefix is re-applied (idempotently — replaying twice
//     equals replaying once), a torn journal tail is truncated exactly
//     like a torn block record is demoted, and the result is checkpointed.
//
// Durability contract: unchanged from FileBlockStore — an operation is
// committed once a sync()/wait_durable() issued after it returned OK. The
// difference is cost (one fsync amortized over every record in flight)
// and that *uncommitted* mutations now live in memory, so a crash loses
// them outright instead of maybe leaving them on disk; the consistency
// engines already treat both outcomes identically (stale copy, lazily
// healed from peers).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "reldev/storage/file_block_store.hpp"
#include "reldev/storage/wal_journal.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::storage {

/// Group-commit and checkpoint knobs.
struct JournalOptions {
  /// A single journal append is split into chunks of at most this many
  /// bytes (the fsync still covers the whole batch).
  std::size_t max_batch_bytes = 1 << 20;
  /// How long the commit leader lingers for more writers to join the
  /// batch before fsyncing. Zero commits immediately (lowest latency);
  /// a few hundred microseconds trades latency for fuller batches.
  std::chrono::microseconds max_delay{0};
  /// How long a commit waiter spin-waits (yielding the CPU each round)
  /// for an in-flight leader's fsync before falling back to a blocking
  /// condvar wait. Zero always blocks. A spin in the order of the commit
  /// latency avoids two futex sleep/wake context switches per operation —
  /// the dominant per-op cost once group commit has amortized the fsync —
  /// at the price of burning CPU in the wait. Dedicated writer threads
  /// (the wal_iops bench, a busy replica) want this; mixed workloads
  /// should keep the blocking default.
  std::chrono::microseconds spin_wait{0};
  /// Fold the journal into the main file once it grows past this size.
  std::size_t checkpoint_bytes = 8u << 20;
  /// Checkpoint right after the opening replay (the normal mode). Tests
  /// turn this off to replay the same journal repeatedly and prove the
  /// replay idempotent.
  bool checkpoint_on_open = true;
};

class JournaledBlockStore final : public BlockStore {
 public:
  /// Where in the journal write path a crash-injection hook can fire.
  enum class JournalEvent : std::uint8_t {
    kBatchAppend,        // about to append a commit batch
    kBatchSync,          // batch fully appended, about to fsync it
    kCheckpointFlush,    // about to fold the write-back table into the store
    kCheckpointTruncate, // store folded + fsynced, about to cut the journal
  };

  /// Crash-injection hook, called at each JournalEvent with no locks held.
  /// Returning true fail-stops the store at that instant: the store
  /// performs the event's realistic torn behaviour (half-appended batch,
  /// half-flushed checkpoint, ...) and the in-flight operation returns an
  /// io error. Installed by CrashPointBlockStore; never used in production.
  using FailpointHook = std::function<bool(JournalEvent)>;

  /// Create `<path>` (the v2 store) plus `<path>.wal`, both fresh and
  /// fully synced before returning.
  static Result<std::unique_ptr<JournaledBlockStore>> create(
      const std::string& path, std::size_t block_count, std::size_t block_size,
      JournalOptions options = {});

  /// Open an existing journaled store: run the full FileBlockStore
  /// recovery (header check, slot election, torn-record scrub), then scan
  /// and replay the journal's committed prefix over it (see file comment).
  /// A missing journal file (a store created before journal mode, or a
  /// checkpointed clean shutdown under old tooling) is treated as empty.
  static Result<std::unique_ptr<JournaledBlockStore>> open(
      const std::string& path, JournalOptions options = {});

  /// `<path>.wal` — where the journal sidecar of a store lives.
  [[nodiscard]] static std::string journal_path(const std::string& path) {
    return path + ".wal";
  }

  ~JournaledBlockStore() override;
  JournaledBlockStore(const JournaledBlockStore&) = delete;
  JournaledBlockStore& operator=(const JournaledBlockStore&) = delete;

  // --- BlockStore -----------------------------------------------------------

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }

  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
                             VersionNumber version) override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] VersionVector version_vector() const override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] Status demote(BlockId block) override RELDEV_EXCLUDES(mutex_);

  /// Group commit: everything accepted so far is durable once this
  /// returns OK (one fsync shared with every concurrent caller).
  [[nodiscard]] Status sync() override RELDEV_EXCLUDES(mutex_);

  // --- commit/wait surface --------------------------------------------------

  [[nodiscard]] CommitSequence last_sequence() const noexcept override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] CommitSequence durable_sequence() const noexcept override
      RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] Status wait_durable(CommitSequence sequence) override
      RELDEV_EXCLUDES(mutex_);

  // --- journal management ---------------------------------------------------

  /// Fold the write-back table into the main v2 file and truncate the
  /// journal. Safe to call any time; concurrent writes keep flowing.
  [[nodiscard]] Status checkpoint() RELDEV_EXCLUDES(mutex_);

  /// Current size of the journal file in bytes (header included).
  [[nodiscard]] std::uint64_t journal_bytes() const RELDEV_EXCLUDES(mutex_);

  /// How many committed records the opening replay applied.
  [[nodiscard]] std::size_t replayed_records() const noexcept {
    return replayed_records_;
  }
  /// Whether the opening scan found (and truncated) a torn journal tail.
  [[nodiscard]] bool replay_truncated_tail() const noexcept {
    return replay_truncated_tail_;
  }
  /// Journal fsyncs issued since open — with group commit this is the
  /// number of commit *batches*, not the number of synced operations.
  [[nodiscard]] std::uint64_t commit_batches() const RELDEV_EXCLUDES(mutex_);
  /// Checkpoints completed since open (automatic and explicit).
  [[nodiscard]] std::uint64_t checkpoints_taken() const
      RELDEV_EXCLUDES(mutex_);

  /// Blocks the opening scrub of the main file demoted (forwarded).
  [[nodiscard]] const std::vector<BlockId>& scrub_demoted() const noexcept {
    return inner_->scrub_demoted();
  }

  [[nodiscard]] const std::string& path() const noexcept {
    return inner_->path();
  }

  /// Install (or clear) the crash-injection hook. Not thread-safe against
  /// in-flight operations; arm before driving traffic.
  void set_failpoint_hook(FailpointHook hook) { hook_ = std::move(hook); }

 private:
  JournaledBlockStore(std::unique_ptr<FileBlockStore> inner,
                      std::unique_ptr<WalJournal> journal,
                      JournalOptions options);

  /// True when the hook is installed and elects to crash at `event`.
  [[nodiscard]] bool hook_fires(JournalEvent event) const {
    return hook_ && hook_(event);
  }

  /// The commit leader's critical section: swap out the pending batch,
  /// append + fsync it with the mutex RELEASED, then publish the new
  /// durable sequence. Returns with the mutex re-held.
  [[nodiscard]] Status commit_locked() RELDEV_REQUIRES(mutex_);

  /// Fold the write-back table into the main store, fsync it, then
  /// truncate the journal. Same unlock-around-I/O discipline.
  [[nodiscard]] Status checkpoint_locked() RELDEV_REQUIRES(mutex_);

  /// Dirty-table lookup across both the live and the being-flushed
  /// generation (reads must see a block mid-checkpoint consistently).
  [[nodiscard]] const VersionedBlock* dirty_lookup_locked(BlockId block) const
      RELDEV_REQUIRES(mutex_);

  const std::size_t block_count_;
  const std::size_t block_size_;
  const JournalOptions options_;
  std::unique_ptr<FileBlockStore> inner_;  // main v2 file; flushed at checkpoint
  // The journal fd is only touched by the current I/O leader (the thread
  // that set io_in_flight_, or a thread holding mutex_ while the flag is
  // clear) — WalJournal itself is single-threaded by that protocol.
  std::unique_ptr<WalJournal> journal_;
  FailpointHook hook_;  // set before traffic; called with mutex_ released
  std::size_t replayed_records_ = 0;
  bool replay_truncated_tail_ = false;

  mutable Mutex mutex_{"JournaledBlockStore.mutex"};
  mutable CondVar cv_;

  // Framed records waiting for the next commit batch, and the write-back
  // state they describe. `flushing_` holds the generation a checkpoint is
  // currently folding into the main file; reads consult both.
  BufferWriter pending_ RELDEV_GUARDED_BY(mutex_);
  std::unordered_map<BlockId, VersionedBlock> dirty_ RELDEV_GUARDED_BY(mutex_);
  std::unordered_map<BlockId, VersionedBlock> flushing_
      RELDEV_GUARDED_BY(mutex_);
  std::vector<VersionNumber> versions_ RELDEV_GUARDED_BY(mutex_);
  std::vector<std::byte> metadata_ RELDEV_GUARDED_BY(mutex_);
  bool metadata_dirty_ RELDEV_GUARDED_BY(mutex_) = false;

  CommitSequence next_sequence_ RELDEV_GUARDED_BY(mutex_) = 0;
  CommitSequence durable_sequence_ RELDEV_GUARDED_BY(mutex_) = 0;
  // One leader at a time owns the journal fd / main-store flush; everyone
  // else waits on cv_. Covers both commits and checkpoints.
  bool io_in_flight_ RELDEV_GUARDED_BY(mutex_) = false;
  // Sticky health: a failed journal append/fsync or checkpoint leaves the
  // on-disk state unknown, so the store fail-stops (like a real device).
  Status health_ RELDEV_GUARDED_BY(mutex_);
  // Shadow of journal_->size(), readable under mutex_ while a leader is
  // mid-I/O (the leader republishes it when it re-locks).
  std::uint64_t journal_size_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::uint64_t commit_batches_ RELDEV_GUARDED_BY(mutex_) = 0;
  std::uint64_t checkpoints_taken_ RELDEV_GUARDED_BY(mutex_) = 0;
};

}  // namespace reldev::storage
