// File-backed block store, on-disk format v2 (crash-consistent).
//
// A single file holds a checksummed header, a DOUBLE-SLOT metadata region,
// and one record per block (version + CRC-32C + payload). The store is
// built for fail-stop crashes mid-write:
//
//   * Durability contract: write()/put_metadata() reach the OS immediately
//     (unbuffered pwrite), but only sync() — a real fsync(2) of the file
//     descriptor — makes them power-failure durable. An operation is
//     "committed" once a sync() issued after it returns OK; create()
//     syncs the fully initialized file (and its parent directory entry)
//     before returning.
//   * Torn metadata can never lose state: put_metadata() writes the slot
//     NOT currently active, stamped with the next sequence number; open()
//     picks the valid (CRC-checked) slot with the highest sequence, so a
//     write torn anywhere in a slot simply yields the previous blob.
//   * Torn blocks are never served: open() scrubs every block record and
//     DEMOTES any record with a short or CRC-mismatched payload to
//     version 0 / zeroed ("needs repair") instead of serving it — the
//     consistency engines then treat it exactly like an out-of-date copy
//     and lazily refresh it from peers. A record whose bytes cannot be
//     read at all (a true I/O error, not truncation) fails open() with
//     the failing block named in the error.
//   * All file offsets are explicit 64-bit values fed to pread/pwrite, so
//     stores larger than 2 GiB address correctly on every platform (no
//     `long`/fseek truncation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "reldev/storage/block_store.hpp"

namespace reldev::storage {

class FileBlockStore final : public BlockStore {
 public:
  /// Create a new store file (truncating any existing one), zero-filled,
  /// all versions 0, fully synced to disk before returning.
  static Result<std::unique_ptr<FileBlockStore>> create(
      const std::string& path, std::size_t block_count, std::size_t block_size);

  /// Open an existing store file: validate the header, elect the live
  /// metadata slot, and scrub every block record (see the header comment).
  static Result<std::unique_ptr<FileBlockStore>> open(const std::string& path);

  ~FileBlockStore() override;
  FileBlockStore(const FileBlockStore&) = delete;
  FileBlockStore& operator=(const FileBlockStore&) = delete;

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }

  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override;
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
               VersionNumber version) override;
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override;
  [[nodiscard]] VersionVector version_vector() const override;

  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override;
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override;

  /// fsync(2) the store file: everything written before this call is
  /// durable across power loss once it returns OK.
  [[nodiscard]] Status sync() override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Blocks the opening scrub demoted to version 0 because their record
  /// was torn or corrupt (empty after create(), or when the file was
  /// clean). Exposed so recovery tooling can report what self-healed.
  [[nodiscard]] const std::vector<BlockId>& scrub_demoted() const noexcept {
    return scrub_demoted_;
  }

  /// Sequence number of the live metadata slot (advances on every
  /// successful put_metadata).
  [[nodiscard]] std::uint64_t metadata_sequence() const noexcept {
    return meta_sequence_;
  }
  /// Index (0 or 1) of the slot holding the live metadata blob.
  [[nodiscard]] unsigned active_metadata_slot() const noexcept {
    return static_cast<unsigned>(meta_sequence_ % 2);
  }

  // --- on-disk layout introspection ---------------------------------------
  // Published so the crash-point injector and the byte-level mutilation
  // tests can tear records exactly where a kernel crash would; not for
  // normal clients.

  /// Maximum metadata blob size each slot can hold.
  static constexpr std::size_t kMetadataCapacity = 4096;
  /// Per-record prefix: u64 version + u32 CRC-32C of the payload.
  static constexpr std::size_t kBlockRecordHeader = 12;
  /// Per-slot prefix: u64 sequence + u32 blob size + u32 CRC-32C of blob.
  static constexpr std::size_t kSlotHeader = 16;
  /// Store header size (magic, format, geometry, CRC).
  static constexpr std::size_t kHeaderSize = 40;

  /// Byte offset of metadata slot 0 or 1.
  [[nodiscard]] static std::uint64_t metadata_slot_offset(unsigned slot) noexcept;
  /// Byte offset of a block's record (version+CRC+payload).
  [[nodiscard]] std::uint64_t block_record_offset(BlockId block) const noexcept;

  /// Raw write bypassing all CRC/versioning discipline — the hook the
  /// crash-point injector uses to leave a realistically torn file. Unsafe
  /// by design; production code must never call it.
  [[nodiscard]] Status raw_write_at(std::uint64_t offset,
                                    std::span<const std::byte> bytes);

 private:
  FileBlockStore(std::string path, int fd, std::size_t block_count,
                 std::size_t block_size);

  /// The opening scrub: rebuild the version cache, demoting torn records.
  [[nodiscard]] Status scrub_records();
  [[nodiscard]] Status load_metadata_slots();

  std::string path_;
  int fd_;  // owned; closed in destructor
  std::size_t block_count_;
  std::size_t block_size_;
  // Version cache: avoids a disk seek for version_of/version_vector; kept
  // coherent because every write goes through this object.
  std::vector<VersionNumber> versions_;
  std::vector<BlockId> scrub_demoted_;
  // Live metadata slot state (slot index = meta_sequence_ % 2).
  std::uint64_t meta_sequence_ = 0;
};

}  // namespace reldev::storage
