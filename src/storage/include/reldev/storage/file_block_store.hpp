// File-backed block store. A single file holds a checksummed header, a
// fixed-capacity metadata region, and one record per block
// (version + CRC-32C + payload). Reopening after a crash recovers all
// committed state; torn blocks surface as kCorruption on read.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "reldev/storage/block_store.hpp"

namespace reldev::storage {

class FileBlockStore final : public BlockStore {
 public:
  /// Create a new store file (truncating any existing one), zero-filled,
  /// all versions 0.
  static Result<std::unique_ptr<FileBlockStore>> create(
      const std::string& path, std::size_t block_count, std::size_t block_size);

  /// Open an existing store file, validating its header.
  static Result<std::unique_ptr<FileBlockStore>> open(const std::string& path);

  ~FileBlockStore() override;
  FileBlockStore(const FileBlockStore&) = delete;
  FileBlockStore& operator=(const FileBlockStore&) = delete;

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }

  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override;
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
               VersionNumber version) override;
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override;
  [[nodiscard]] VersionVector version_vector() const override;

  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override;
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override;

  /// Flush buffered writes to the OS.
  [[nodiscard]] Status sync();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Maximum metadata blob size the fixed region can hold.
  static constexpr std::size_t kMetadataCapacity = 4096;

 private:
  FileBlockStore(std::string path, std::FILE* file, std::size_t block_count,
                 std::size_t block_size);

  [[nodiscard]] long block_offset(BlockId block) const noexcept;
  [[nodiscard]] Status load_versions();

  std::string path_;
  std::FILE* file_;  // owned; closed in destructor
  std::size_t block_count_;
  std::size_t block_size_;
  // Version cache: avoids a disk seek for version_of/version_vector; kept
  // coherent because every write goes through this object.
  std::vector<VersionNumber> versions_;
};

}  // namespace reldev::storage
