// The version vector v of §3.2: one version number per block of the
// device. A recovering site sends its vector to a peer; the peer answers
// with its own vector plus the blocks that are newer (procedure RECOVERY,
// Figure 5). This header supplies the comparison and diff operations that
// flow requires.
#pragma once

#include <cstddef>
#include <vector>

#include "reldev/storage/block.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

class VersionVector {
 public:
  VersionVector() = default;
  explicit VersionVector(std::size_t block_count) : versions_(block_count, 0) {}
  explicit VersionVector(std::vector<VersionNumber> versions)
      : versions_(std::move(versions)) {}

  [[nodiscard]] std::size_t size() const noexcept { return versions_.size(); }
  [[nodiscard]] VersionNumber at(BlockId block) const;
  void set(BlockId block, VersionNumber version);
  /// Increment and return the new version of `block`.
  VersionNumber bump(BlockId block);

  /// True when every entry of this vector is >= the corresponding entry of
  /// `other` (this replica holds data at least as recent everywhere).
  [[nodiscard]] bool dominates(const VersionVector& other) const;

  /// Blocks where `other` is strictly newer than this vector — exactly the
  /// blocks a recovering site must fetch.
  [[nodiscard]] std::vector<BlockId> stale_against(
      const VersionVector& other) const;

  /// Pointwise maximum, in place.
  void merge_max(const VersionVector& other);

  /// Sum of all entries; a convenient total order for "who is most
  /// current" tiebreaks in tests.
  [[nodiscard]] VersionNumber total() const noexcept;

  [[nodiscard]] const std::vector<VersionNumber>& raw() const noexcept {
    return versions_;
  }

  void encode(BufferWriter& writer) const;
  static Result<VersionVector> decode(BufferReader& reader);

  friend bool operator==(const VersionVector&, const VersionVector&) = default;

 private:
  std::vector<VersionNumber> versions_;
};

}  // namespace reldev::storage
