// Block primitives for the reliable device: blocks are the unit of
// replication, recovery, and versioning (§1 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reldev::storage {

/// Index of a block within a device; dense in [0, block_count).
using BlockId = std::uint64_t;

/// Per-block version number, incremented by every successful write (§3.1).
using VersionNumber = std::uint64_t;

/// A block's payload. Always exactly the device's block size.
using BlockData = std::vector<std::byte>;

/// Default device geometry used by examples and tests; stores accept any
/// power-of-two block size at construction.
inline constexpr std::size_t kDefaultBlockSize = 512;

/// A block payload together with its version, as exchanged during reads
/// and repair (the paper's (v, {blocks}) pairs).
struct VersionedBlock {
  BlockData data;
  VersionNumber version = 0;
};

}  // namespace reldev::storage
