// Storage-level primitives of the anti-entropy scrubber: CRC-32C block
// digests, bounded digest scans over a store, and the crash-safe scrub
// cursor persisted in the site-metadata blob. The coordination layer that
// exchanges digests with peers and drives heals lives in src/core
// (scrub_daemon); this file knows only about one local store.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "reldev/storage/block.hpp"
#include "reldev/storage/block_store.hpp"
#include "reldev/util/result.hpp"

namespace reldev::storage {

/// The digest replicas compare during a scrub exchange. CRC-32C of the
/// payload bytes only — the version number travels beside it, so digests
/// are compared exclusively between same-version copies.
[[nodiscard]] std::uint32_t scrub_digest(std::span<const std::byte> payload);

/// One bounded local scan: (version, digest) for each block of a run.
struct DigestScan {
  BlockId first = 0;
  std::vector<VersionNumber> versions;
  std::vector<std::uint32_t> digests;
  /// Blocks whose payload could not be read (latent corruption, torn
  /// record): demoted in place during the scan and reported here so the
  /// caller can schedule a repair.
  std::vector<BlockId> demoted;
};

/// Scan blocks [first, first + count) of `store`. A block that fails to
/// read is demoted — version 0, zeroed payload — and reported as version 0
/// with the zero-block digest, the same stance the serving side of the
/// digest protocol takes: never vouch for damaged bytes. `count` is
/// clamped to the device end; kInvalidArgument if `first` is off the end.
[[nodiscard]] Result<DigestScan> scan_digests(BlockStore& store, BlockId first,
                                              std::size_t count);

/// The persisted scrub cursor, or 0 when no cursor has ever been saved
/// (fresh store, pre-scrubber metadata blob, undecodable blob).
[[nodiscard]] std::uint64_t load_scrub_cursor(const BlockStore& store);

/// Persist the cursor by read-modify-write of the site-metadata blob:
/// the availability fields (site id, clean-shutdown flag, was-available
/// set) pass through untouched. A missing or undecodable blob is replaced
/// by a fresh one carrying only the cursor.
[[nodiscard]] Status save_scrub_cursor(BlockStore& store, std::uint64_t cursor);

}  // namespace reldev::storage
