// The write-ahead journal file behind JournaledBlockStore: an append-only
// sidecar (`<store>.wal`) of CRC-32C-framed, sequence-numbered records.
// Each record is one mutation (block write, metadata put, demote); a group
// commit appends many records in one pwrite and makes them durable with
// one fsync. Recovery scans the file front to back and stops at the first
// frame that fails its CRC, length sanity, or sequence monotonicity check —
// the committed prefix is exactly what replays, and the torn tail is
// truncated, never fatal (the journal twin of the v2 opening scrub).
//
// This class is deliberately single-threaded: JournaledBlockStore's
// group-commit batcher guarantees at most one appender/syncer at a time
// (the commit leader), so the journal itself needs no locks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "reldev/storage/block.hpp"
#include "reldev/storage/version.hpp"
#include "reldev/util/result.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

/// What one journal record does when replayed.
enum class WalRecordType : std::uint8_t {
  kBlockWrite = 1,  // block id + version + full payload
  kMetadataPut = 2, // opaque metadata blob
  kDemote = 3,      // block id (rewritten as version 0, zeroed)
};

/// One decoded journal record.
struct WalRecord {
  std::uint64_t sequence = 0;
  WalRecordType type = WalRecordType::kBlockWrite;
  BlockId block = 0;              // kBlockWrite / kDemote
  VersionNumber version = 0;      // kBlockWrite
  std::vector<std::byte> payload; // kBlockWrite (block data) / kMetadataPut
};

/// Append one encoded record frame to `batch` (the group-commit buffer).
void wal_encode_block_write(BufferWriter& batch, std::uint64_t sequence,
                            BlockId block, VersionNumber version,
                            std::span<const std::byte> data);
void wal_encode_metadata_put(BufferWriter& batch, std::uint64_t sequence,
                             std::span<const std::byte> blob);
void wal_encode_demote(BufferWriter& batch, std::uint64_t sequence,
                       BlockId block);

/// What a pure in-memory scan of a journal's frame region found. The
/// offsets are relative to the start of the scanned span (open() adds the
/// header size to get file offsets).
struct WalFrameScan {
  std::vector<WalRecord> records;  // the valid committed prefix, in order
  std::uint64_t next_sequence = 1; // first sequence a new record may use
  std::size_t consumed = 0;        // bytes of valid frames from the start
  bool torn_tail = false;          // non-zero garbage follows the prefix
};

/// Recovery-scan the frame region (everything after the file header) of a
/// journal image: parse frames front to back, stopping at the first
/// length/CRC/decode/sequence-monotonicity violation. Pure — no I/O, no
/// allocation beyond the decoded records — so it is shared by
/// WalJournal::open() and the wal_replay fuzz harness: whatever bytes a
/// crashed append (or the fuzzer) leaves, the scan must terminate with a
/// well-formed committed prefix and never crash.
[[nodiscard]] WalFrameScan wal_scan_frames(std::span<const std::byte> tail,
                                           std::size_t block_size);

class WalJournal {
 public:
  /// Journal header size (magic, format, geometry, CRC).
  static constexpr std::size_t kHeaderSize = 32;
  /// Per-record frame prefix: u32 body length + u32 CRC-32C of the body.
  static constexpr std::size_t kFrameHeader = 8;

  /// What a recovery scan of the journal found.
  struct ScanResult {
    std::vector<WalRecord> records;  // the valid committed prefix, in order
    std::uint64_t next_sequence = 1; // first sequence a new record may use
    bool torn_tail = false;          // the scan stopped at a bad frame
    std::uint64_t valid_end = 0;     // file offset the valid prefix ends at
  };

  /// Create a fresh, empty journal (truncating any existing file), synced
  /// to disk before returning. `preallocate_bytes` pre-writes that many
  /// bytes of zeros past the header: appends then overwrite the zeroed
  /// region in place, so each group commit's fsync skips the ext4-journal
  /// metadata commit a file-size change would cost. Zeros are a valid
  /// scan terminator (a frame length of 0 ends the committed prefix), so
  /// the preallocation is invisible to recovery.
  static Result<std::unique_ptr<WalJournal>> create(
      const std::string& path, std::size_t block_count, std::size_t block_size,
      std::size_t preallocate_bytes = 0);

  /// Open an existing journal: validate the header against the store
  /// geometry, scan the committed prefix into `out`, and neutralize any
  /// torn tail (overwrite it with zeros — preserving preallocation where
  /// a truncate would discard it) so later appends never interleave with
  /// garbage.
  static Result<std::unique_ptr<WalJournal>> open(const std::string& path,
                                                  std::size_t block_count,
                                                  std::size_t block_size,
                                                  ScanResult& out);

  ~WalJournal();
  WalJournal(const WalJournal&) = delete;
  WalJournal& operator=(const WalJournal&) = delete;

  /// Append a batch of encoded frames at the current end. No fsync: call
  /// sync() to commit. The batch must be whole frames (the encoders above).
  [[nodiscard]] Status append(std::span<const std::byte> batch);

  /// fsync(2) the journal: every append before this call is now durable.
  [[nodiscard]] Status sync();

  /// Checkpoint reset: discard every record (they are folded into the
  /// main store first) by zeroing the used region back to the bare
  /// header, and fsync. The file keeps its high-water size so appends
  /// stay in-place overwrites.
  [[nodiscard]] Status reset();

  /// Logical journal size (header + committed/appended frames); the file
  /// itself may be longer (zeroed preallocation).
  [[nodiscard]] std::uint64_t size() const noexcept { return end_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Crash-injection hook: append only `bytes` (e.g. half a batch) with no
  /// bookkeeping, leaving exactly the torn tail a kernel crash mid-append
  /// would leave. Unsafe by design; the store fail-stops right after.
  [[nodiscard]] Status raw_append(std::span<const std::byte> bytes);

 private:
  WalJournal(std::string path, int fd, std::uint64_t end);

  std::string path_;
  int fd_;  // owned; closed in destructor
  std::uint64_t end_;
};

}  // namespace reldev::storage
