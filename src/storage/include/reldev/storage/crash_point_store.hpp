// Deterministic crash-point injection for persistent stores, in the
// spirit of crash-enumeration testing (CrashMonkey / ALICE): a decorator
// over FileBlockStore that fail-stops the store at an enumerated point —
// before, mid, or after a block-record write, mid-metadata write, or just
// before a sync — leaving the file in exactly the torn state a kernel
// crash at that instant could leave.
//
// A schedule names one (point, nth) pair: the store crashes at the nth
// eligible event of that kind counted from arming. After firing, every
// operation returns kUnavailable (fail-stop) until the harness drops the
// torn file handle (surrender) and reopens through the full recovery path
// (adopt). The decorator caches the device geometry so a replica can keep
// referencing it across kill/restart cycles.
#pragma once

#include <memory>

#include "reldev/storage/file_block_store.hpp"

namespace reldev::storage {

/// Where in the storage write path the simulated crash fires.
enum class CrashPoint : std::uint8_t {
  kNone = 0,
  /// The block write never reaches the file (crash before pwrite).
  kBeforeBlockWrite,
  /// The record header (new version + new CRC) and the first half of the
  /// new payload land; the rest of the record keeps its old bytes — the
  /// classic torn write the opening scrub must demote.
  kMidBlockWrite,
  /// The record lands completely, but the operation still dies before
  /// acknowledging (durable-but-unacked).
  kAfterBlockWrite,
  /// The inactive metadata slot gets its new header and half the blob —
  /// a torn put_metadata the double-slot region must survive.
  kMidMetadataWrite,
  /// sync() dies without fsyncing anything.
  kBeforeSync,
};

/// All injectable points, for harnesses that enumerate exhaustively.
inline constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::kBeforeBlockWrite, CrashPoint::kMidBlockWrite,
    CrashPoint::kAfterBlockWrite, CrashPoint::kMidMetadataWrite,
    CrashPoint::kBeforeSync};

[[nodiscard]] const char* crash_point_name(CrashPoint point) noexcept;

/// Parse a crash-point name ("mid-block-write", ...); kNone on no match.
[[nodiscard]] CrashPoint crash_point_from_name(const std::string& name) noexcept;

/// One armed crash: fire at the nth (0-based) eligible event of `point`,
/// counted from the moment arm() was called.
struct CrashSchedule {
  CrashPoint point = CrashPoint::kNone;
  std::uint64_t nth = 0;
};

class CrashPointBlockStore final : public BlockStore {
 public:
  explicit CrashPointBlockStore(std::unique_ptr<FileBlockStore> inner);

  /// Arm one crash; resets the event counters. Replaces any armed one.
  void arm(CrashSchedule schedule);
  /// Remove the armed crash (does not clear an already-fired one).
  void disarm() noexcept { schedule_ = CrashSchedule{}; }

  /// True once the armed point fired; all operations fail until adopt().
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] CrashPoint fired() const noexcept { return fired_; }

  /// Drop the underlying store the way a dying process would: the handle
  /// closes, nothing extra is flushed, the torn file stays on disk.
  /// Returns the released store (usually discarded).
  std::unique_ptr<FileBlockStore> surrender();

  /// Install a freshly reopened store after a simulated restart; clears
  /// the crashed state and the armed schedule.
  void adopt(std::unique_ptr<FileBlockStore> inner);

  [[nodiscard]] bool has_inner() const noexcept { return inner_ != nullptr; }
  [[nodiscard]] FileBlockStore& inner();

  // --- BlockStore -----------------------------------------------------------

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }
  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override;
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
               VersionNumber version) override;
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override;
  [[nodiscard]] VersionVector version_vector() const override;
  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override;
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override;
  [[nodiscard]] Status sync() override;
  [[nodiscard]] Status demote(BlockId block) override;

 private:
  /// True when the armed point matches and this is its nth event; marks
  /// the store crashed.
  [[nodiscard]] bool fire(CrashPoint point, std::uint64_t& counter);
  [[nodiscard]] Status crashed_error() const;

  std::unique_ptr<FileBlockStore> inner_;
  std::size_t block_count_;
  std::size_t block_size_;
  CrashSchedule schedule_;
  bool crashed_ = false;
  CrashPoint fired_ = CrashPoint::kNone;
  std::uint64_t block_writes_seen_ = 0;
  std::uint64_t metadata_writes_seen_ = 0;
  std::uint64_t syncs_seen_ = 0;
};

}  // namespace reldev::storage
