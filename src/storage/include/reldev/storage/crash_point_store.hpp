// Deterministic crash-point injection for persistent stores, in the
// spirit of crash-enumeration testing (CrashMonkey / ALICE): a decorator
// over FileBlockStore — or, in journal mode, over JournaledBlockStore —
// that fail-stops the store at an enumerated point, leaving the file(s)
// in exactly the torn state a kernel crash at that instant could leave.
//
// File-mode points tear the v2 file directly (half-written block records
// and metadata slots). Journal-mode points hook the write-ahead journal's
// group-commit and checkpoint machinery instead: a batch append torn in
// half, a batch appended but never fsynced, a checkpoint that folded only
// half its blocks, a checkpoint that folded and fsynced but never
// truncated the journal.
//
// A schedule names one (point, nth) pair: the store crashes at the nth
// eligible event of that kind counted from arming. After firing, every
// operation returns kUnavailable (fail-stop) until the harness drops the
// torn file handle (surrender) and reopens through the full recovery path
// (adopt). The decorator caches the device geometry so a replica can keep
// referencing it across kill/restart cycles.
#pragma once

#include <memory>

#include "reldev/storage/file_block_store.hpp"
#include "reldev/storage/journaled_block_store.hpp"

namespace reldev::storage {

/// Where in the storage write path the simulated crash fires.
enum class CrashPoint : std::uint8_t {
  kNone = 0,
  /// The block write never reaches the file (crash before pwrite). In
  /// journal mode: the mutation never enters the commit batch.
  kBeforeBlockWrite,
  /// The record header (new version + new CRC) and the first half of the
  /// new payload land; the rest of the record keeps its old bytes — the
  /// classic torn write the opening scrub must demote. File mode only
  /// (journal-mode block writes tear at the batch append instead).
  kMidBlockWrite,
  /// The record lands completely, but the operation still dies before
  /// acknowledging (durable-but-unacked). In journal mode: the mutation
  /// is framed into the batch, then the writer dies unacknowledged.
  kAfterBlockWrite,
  /// The inactive metadata slot gets its new header and half the blob —
  /// a torn put_metadata the double-slot region must survive. File mode
  /// only (journal-mode metadata puts are journal records).
  kMidMetadataWrite,
  /// sync() dies without fsyncing anything.
  kBeforeSync,
  /// Journal mode: the group-commit append lands only the front half of
  /// the batch — the torn tail recovery must truncate.
  kMidJournalAppend,
  /// Journal mode: the batch is fully appended but the fsync never
  /// happens (crash between append and sync; durable-maybe-unacked).
  kBeforeJournalSync,
  /// Journal mode: the checkpoint folds only half the write-back table
  /// into the main file and dies before the store fsync — the journal is
  /// still authoritative and must replay.
  kMidCheckpoint,
  /// Journal mode: the checkpoint folds and fsyncs the main file but dies
  /// before truncating the journal — replay over already-applied records
  /// must be idempotent.
  kBeforeCheckpointTruncate,
};

/// Points injectable on a plain FileBlockStore, for harnesses that
/// enumerate exhaustively over file-mode groups.
inline constexpr CrashPoint kAllCrashPoints[] = {
    CrashPoint::kBeforeBlockWrite, CrashPoint::kMidBlockWrite,
    CrashPoint::kAfterBlockWrite, CrashPoint::kMidMetadataWrite,
    CrashPoint::kBeforeSync};

/// Points injectable on a JournaledBlockStore (journal-mode groups). The
/// file-mode torn-record points are not in this list: with a journal in
/// front, block and metadata writes tear at the batch/checkpoint instead.
inline constexpr CrashPoint kJournalCrashPoints[] = {
    CrashPoint::kBeforeBlockWrite,     CrashPoint::kAfterBlockWrite,
    CrashPoint::kBeforeSync,           CrashPoint::kMidJournalAppend,
    CrashPoint::kBeforeJournalSync,    CrashPoint::kMidCheckpoint,
    CrashPoint::kBeforeCheckpointTruncate};

[[nodiscard]] const char* crash_point_name(CrashPoint point) noexcept;

/// Parse a crash-point name ("mid-block-write", "mid-journal-append",
/// ...); kNone on no match.
[[nodiscard]] CrashPoint crash_point_from_name(const std::string& name) noexcept;

/// One armed crash: fire at the nth (0-based) eligible event of `point`,
/// counted from the moment arm() was called.
struct CrashSchedule {
  CrashPoint point = CrashPoint::kNone;
  std::uint64_t nth = 0;
};

class CrashPointBlockStore final : public BlockStore {
 public:
  explicit CrashPointBlockStore(std::unique_ptr<FileBlockStore> inner);
  /// Journal mode: wraps the journaled store and hooks its group-commit /
  /// checkpoint fail points.
  explicit CrashPointBlockStore(std::unique_ptr<JournaledBlockStore> inner);

  /// Arm one crash; resets the event counters. Replaces any armed one.
  void arm(CrashSchedule schedule);
  /// Remove the armed crash (does not clear an already-fired one).
  void disarm() noexcept { schedule_ = CrashSchedule{}; }

  /// True once the armed point fired; all operations fail until adopt().
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] CrashPoint fired() const noexcept { return fired_; }

  /// Drop the underlying store the way a dying process would: the handle
  /// closes, nothing extra is flushed (in journal mode the pending batch
  /// and write-back table evaporate with the process), the torn file(s)
  /// stay on disk. Returns the released store (usually discarded).
  std::unique_ptr<FileBlockStore> surrender();
  /// Journal-mode twin of surrender().
  std::unique_ptr<JournaledBlockStore> surrender_journaled();
  /// Mode-agnostic hard drop: discard whichever store is held.
  void drop_inner() noexcept;

  /// Install a freshly reopened store after a simulated restart; clears
  /// the crashed state and the armed schedule.
  void adopt(std::unique_ptr<FileBlockStore> inner);
  void adopt(std::unique_ptr<JournaledBlockStore> inner);

  [[nodiscard]] bool has_inner() const noexcept {
    return file_ != nullptr || wal_ != nullptr;
  }
  /// Whether this injector wraps a journaled store.
  [[nodiscard]] bool journaled() const noexcept { return journal_mode_; }
  [[nodiscard]] FileBlockStore& inner();
  [[nodiscard]] JournaledBlockStore& journaled_inner();

  /// Journal mode: force a checkpoint (its fail points stay armed).
  [[nodiscard]] Status checkpoint();

  // --- BlockStore -----------------------------------------------------------

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }
  [[nodiscard]] Result<VersionedBlock> read(BlockId block) const override;
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data,
               VersionNumber version) override;
  [[nodiscard]] Result<VersionNumber> version_of(BlockId block) const override;
  [[nodiscard]] VersionVector version_vector() const override;
  [[nodiscard]] Status put_metadata(std::span<const std::byte> blob) override;
  [[nodiscard]] Result<std::vector<std::byte>> get_metadata() const override;
  [[nodiscard]] Status sync() override;
  [[nodiscard]] Status demote(BlockId block) override;
  [[nodiscard]] CommitSequence last_sequence() const noexcept override;
  [[nodiscard]] CommitSequence durable_sequence() const noexcept override;
  [[nodiscard]] Status wait_durable(CommitSequence sequence) override;

 private:
  /// True when the armed point matches and this is its nth event; marks
  /// the store crashed.
  [[nodiscard]] bool fire(CrashPoint point, std::uint64_t& counter);
  [[nodiscard]] Status crashed_error() const;
  /// The store actually wrapped (file or journaled), or null after
  /// surrender.
  [[nodiscard]] BlockStore* active() const noexcept;
  /// Wire the journal fail points of wal_ into fire().
  void install_journal_hook();

  std::unique_ptr<FileBlockStore> file_;
  std::unique_ptr<JournaledBlockStore> wal_;
  bool journal_mode_ = false;
  std::size_t block_count_;
  std::size_t block_size_;
  CrashSchedule schedule_;
  bool crashed_ = false;
  CrashPoint fired_ = CrashPoint::kNone;
  std::uint64_t block_writes_seen_ = 0;
  std::uint64_t metadata_writes_seen_ = 0;
  std::uint64_t syncs_seen_ = 0;
  std::uint64_t journal_appends_seen_ = 0;
  std::uint64_t journal_syncs_seen_ = 0;
  std::uint64_t checkpoint_flushes_seen_ = 0;
  std::uint64_t checkpoint_truncates_seen_ = 0;
};

}  // namespace reldev::storage
