#include "reldev/storage/file_block_store.hpp"

#include <cstring>
#include <utility>

#include "reldev/util/assert.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

namespace {

// File layout:
//   [header: 40 bytes] [metadata region: 8 + kMetadataCapacity bytes]
//   [block records: block_count x (8 version + 4 crc + block_size data)]
constexpr std::uint32_t kMagic = 0x52444256;  // "RDBV"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 40;
constexpr std::size_t kBlockRecordHeader = 12;  // u64 version + u32 crc

struct Header {
  std::uint64_t block_count;
  std::uint64_t block_size;
};

std::vector<std::byte> encode_header(const Header& header) {
  BufferWriter writer(kHeaderSize);
  writer.put_u32(kMagic);
  writer.put_u32(kFormatVersion);
  writer.put_u64(header.block_count);
  writer.put_u64(header.block_size);
  writer.put_u64(0);  // reserved
  writer.put_u32(0);  // reserved; pads the pre-CRC header to 36 bytes
  // CRC over everything above.
  writer.put_u32(crc32c(writer.bytes()));
  RELDEV_ENSURES(writer.size() == kHeaderSize);
  return std::move(writer).take();
}

Result<Header> decode_header(std::span<const std::byte> raw) {
  if (raw.size() != kHeaderSize) {
    return errors::corruption("short store header");
  }
  const std::uint32_t expected = crc32c(raw.first(kHeaderSize - 4));
  BufferReader reader(raw);
  auto magic = reader.get_u32();
  auto format = reader.get_u32();
  auto block_count = reader.get_u64();
  auto block_size = reader.get_u64();
  auto reserved = reader.get_u64();
  auto reserved2 = reader.get_u32();
  auto crc = reader.get_u32();
  if (!magic || !format || !block_count || !block_size || !reserved ||
      !reserved2 || !crc) {
    return errors::corruption("unreadable store header");
  }
  if (magic.value() != kMagic) return errors::corruption("bad store magic");
  if (format.value() != kFormatVersion) {
    return errors::corruption("unsupported store format " +
                              std::to_string(format.value()));
  }
  if (crc.value() != expected) return errors::corruption("store header CRC");
  return Header{block_count.value(), block_size.value()};
}

Status write_at(std::FILE* file, long offset, const void* data,
                std::size_t size) {
  if (std::fseek(file, offset, SEEK_SET) != 0) {
    return errors::io_error("seek failed");
  }
  if (std::fwrite(data, 1, size, file) != size) {
    return errors::io_error("write failed");
  }
  return Status::ok();
}

Status read_at(std::FILE* file, long offset, void* data, std::size_t size) {
  if (std::fseek(file, offset, SEEK_SET) != 0) {
    return errors::io_error("seek failed");
  }
  if (std::fread(data, 1, size, file) != size) {
    return errors::io_error("read failed (truncated file?)");
  }
  return Status::ok();
}

constexpr long metadata_offset() { return kHeaderSize; }

long first_block_offset() {
  return static_cast<long>(kHeaderSize + 8 + FileBlockStore::kMetadataCapacity);
}

}  // namespace

FileBlockStore::FileBlockStore(std::string path, std::FILE* file,
                               std::size_t block_count, std::size_t block_size)
    : path_(std::move(path)),
      file_(file),
      block_count_(block_count),
      block_size_(block_size),
      versions_(block_count, 0) {}

FileBlockStore::~FileBlockStore() {
  if (file_ != nullptr) std::fclose(file_);
}

long FileBlockStore::block_offset(BlockId block) const noexcept {
  return first_block_offset() +
         static_cast<long>(block * (kBlockRecordHeader + block_size_));
}

Result<std::unique_ptr<FileBlockStore>> FileBlockStore::create(
    const std::string& path, std::size_t block_count, std::size_t block_size) {
  if (block_count == 0 || block_size == 0) {
    return errors::invalid_argument("block_count and block_size must be > 0");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return errors::io_error("cannot create " + path);
  }
  auto store = std::unique_ptr<FileBlockStore>(
      new FileBlockStore(path, file, block_count, block_size));

  const auto header = encode_header(Header{block_count, block_size});
  if (auto status = write_at(file, 0, header.data(), header.size());
      !status.is_ok()) {
    return status;
  }
  // Empty metadata region.
  if (auto status = store->put_metadata({}); !status.is_ok()) return status;
  // Zero-fill every block with version 0.
  const std::vector<std::byte> zeros(block_size, std::byte{0});
  for (BlockId block = 0; block < block_count; ++block) {
    if (auto status = store->write(block, zeros, 0); !status.is_ok()) {
      return status;
    }
  }
  if (auto status = store->sync(); !status.is_ok()) return status;
  return store;
}

Result<std::unique_ptr<FileBlockStore>> FileBlockStore::open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return errors::io_error("cannot open " + path);
  }
  std::vector<std::byte> raw(kHeaderSize);
  if (auto status = read_at(file, 0, raw.data(), raw.size()); !status.is_ok()) {
    std::fclose(file);
    return status;
  }
  auto header = decode_header(raw);
  if (!header) {
    std::fclose(file);
    return header.status();
  }
  auto store = std::unique_ptr<FileBlockStore>(
      new FileBlockStore(path, file, header.value().block_count,
                         header.value().block_size));
  if (auto status = store->load_versions(); !status.is_ok()) return status;
  return store;
}

Status FileBlockStore::load_versions() {
  std::vector<std::byte> record(kBlockRecordHeader);
  for (BlockId block = 0; block < block_count_; ++block) {
    if (auto status = read_at(file_, block_offset(block), record.data(),
                              record.size());
        !status.is_ok()) {
      return status;
    }
    BufferReader reader(record);
    versions_[block] = reader.get_u64().value();
  }
  return Status::ok();
}

Result<VersionedBlock> FileBlockStore::read(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  std::vector<std::byte> record(kBlockRecordHeader + block_size_);
  if (auto status =
          read_at(file_, block_offset(block), record.data(), record.size());
      !status.is_ok()) {
    return status;
  }
  BufferReader reader(record);
  VersionedBlock result;
  result.version = reader.get_u64().value();
  const std::uint32_t stored_crc = reader.get_u32().value();
  result.data = reader.get_raw(block_size_).value();
  const std::uint32_t computed =
      crc32c(std::span<const std::byte>(result.data));
  if (stored_crc != computed) {
    return errors::corruption("block " + std::to_string(block) +
                              " CRC mismatch");
  }
  return result;
}

Status FileBlockStore::write(BlockId block, std::span<const std::byte> data,
                             VersionNumber version) {
  if (auto status = check_write(block, data); !status.is_ok()) return status;
  BufferWriter writer(kBlockRecordHeader + block_size_);
  writer.put_u64(version);
  writer.put_u32(crc32c(data));
  writer.put_raw(data);
  if (auto status = write_at(file_, block_offset(block), writer.bytes().data(),
                             writer.size());
      !status.is_ok()) {
    return status;
  }
  versions_[block] = version;
  return Status::ok();
}

Result<VersionNumber> FileBlockStore::version_of(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  return versions_[block];
}

VersionVector FileBlockStore::version_vector() const {
  return VersionVector(versions_);
}

Status FileBlockStore::put_metadata(std::span<const std::byte> blob) {
  if (blob.size() > kMetadataCapacity) {
    return errors::invalid_argument("metadata blob exceeds capacity");
  }
  BufferWriter writer(8 + kMetadataCapacity);
  writer.put_u32(static_cast<std::uint32_t>(blob.size()));
  writer.put_u32(crc32c(blob));
  writer.put_raw(blob);
  // Pad the region so the file geometry never changes.
  const std::vector<std::byte> pad(kMetadataCapacity - blob.size(),
                                   std::byte{0});
  writer.put_raw(pad);
  return write_at(file_, metadata_offset(), writer.bytes().data(),
                  writer.size());
}

Result<std::vector<std::byte>> FileBlockStore::get_metadata() const {
  std::vector<std::byte> region(8 + kMetadataCapacity);
  if (auto status =
          read_at(file_, metadata_offset(), region.data(), region.size());
      !status.is_ok()) {
    return status;
  }
  BufferReader reader(region);
  const std::uint32_t size = reader.get_u32().value();
  const std::uint32_t stored_crc = reader.get_u32().value();
  if (size > kMetadataCapacity) {
    return errors::corruption("metadata length field out of range");
  }
  auto blob = reader.get_raw(size).value();
  if (crc32c(std::span<const std::byte>(blob)) != stored_crc) {
    return errors::corruption("metadata CRC mismatch");
  }
  return blob;
}

Status FileBlockStore::sync() {
  if (std::fflush(file_) != 0) return errors::io_error("fflush failed");
  return Status::ok();
}

}  // namespace reldev::storage
