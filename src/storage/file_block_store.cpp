#include "reldev/storage/file_block_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>

#include "fd_io.hpp"
#include "reldev/util/assert.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

namespace {

// File layout (format v2):
//   [header: kHeaderSize bytes]
//   [metadata slot 0: kSlotHeader + kMetadataCapacity bytes]
//   [metadata slot 1: kSlotHeader + kMetadataCapacity bytes]
//   [block records: block_count x (u64 version + u32 crc + block_size data)]
constexpr std::uint32_t kMagic = 0x52444256;  // "RDBV"
constexpr std::uint32_t kFormatVersion = 2;

struct Header {
  std::uint64_t block_count;
  std::uint64_t block_size;
};

std::vector<std::byte> encode_header(const Header& header) {
  BufferWriter writer(FileBlockStore::kHeaderSize);
  writer.put_u32(kMagic);
  writer.put_u32(kFormatVersion);
  writer.put_u64(header.block_count);
  writer.put_u64(header.block_size);
  writer.put_u64(0);  // reserved
  writer.put_u32(0);  // reserved; pads the pre-CRC header to 36 bytes
  // CRC over everything above.
  writer.put_u32(crc32c(writer.bytes()));
  RELDEV_ENSURES(writer.size() == FileBlockStore::kHeaderSize);
  return std::move(writer).take();
}

Result<Header> decode_header(std::span<const std::byte> raw) {
  if (raw.size() != FileBlockStore::kHeaderSize) {
    return errors::corruption("short store header");
  }
  const std::uint32_t expected =
      crc32c(raw.first(FileBlockStore::kHeaderSize - 4));
  BufferReader reader(raw);
  auto magic = reader.get_u32();
  auto format = reader.get_u32();
  auto block_count = reader.get_u64();
  auto block_size = reader.get_u64();
  auto reserved = reader.get_u64();
  auto reserved2 = reader.get_u32();
  auto crc = reader.get_u32();
  if (!magic || !format || !block_count || !block_size || !reserved ||
      !reserved2 || !crc) {
    return errors::corruption("unreadable store header");
  }
  if (magic.value() != kMagic) return errors::corruption("bad store magic");
  if (format.value() != kFormatVersion) {
    return errors::corruption("unsupported store format " +
                              std::to_string(format.value()) + " (want " +
                              std::to_string(kFormatVersion) + ")");
  }
  if (crc.value() != expected) return errors::corruption("store header CRC");
  return Header{block_count.value(), block_size.value()};
}

std::string errno_text() { return std::strerror(errno); }

/// Full-coverage pwrite loop; explicit 64-bit offsets (off_t, not long).
Status write_at(int fd, std::uint64_t offset, const void* data,
                std::size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::pwrite(fd, bytes + done, size - done,
                                 static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errors::io_error("write failed: " + errno_text());
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

/// Full-coverage pread loop. Distinguishes a short read (end of file —
/// the signature of a truncated/torn record) from a true I/O error.
enum class ReadOutcome { kOk, kShort };
Result<ReadOutcome> read_at(int fd, std::uint64_t offset, void* data,
                            std::size_t size) {
  auto* bytes = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::pread(fd, bytes + done, size - done,
                                static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errors::io_error("read failed: " + errno_text());
    }
    if (n == 0) return ReadOutcome::kShort;  // end of file
    done += static_cast<std::size_t>(n);
  }
  return ReadOutcome::kOk;
}

std::uint64_t first_block_offset() {
  return FileBlockStore::metadata_slot_offset(1) +
         FileBlockStore::kSlotHeader + FileBlockStore::kMetadataCapacity;
}

std::vector<std::byte> encode_slot(std::uint64_t sequence,
                                   std::span<const std::byte> blob) {
  BufferWriter writer(FileBlockStore::kSlotHeader +
                      FileBlockStore::kMetadataCapacity);
  writer.put_u64(sequence);
  writer.put_u32(static_cast<std::uint32_t>(blob.size()));
  writer.put_u32(crc32c(blob));
  writer.put_raw(blob);
  const std::vector<std::byte> pad(
      FileBlockStore::kMetadataCapacity - blob.size(), std::byte{0});
  writer.put_raw(pad);
  return std::move(writer).take();
}

struct SlotContents {
  std::uint64_t sequence = 0;
  std::vector<std::byte> blob;
};

/// Decode one metadata slot; nullopt when the slot is torn or garbage.
std::optional<SlotContents> decode_slot(std::span<const std::byte> raw) {
  BufferReader reader(raw);
  auto sequence = reader.get_u64();
  auto size = reader.get_u32();
  auto crc = reader.get_u32();
  if (!sequence || !size || !crc) return std::nullopt;
  if (size.value() > FileBlockStore::kMetadataCapacity) return std::nullopt;
  auto blob = reader.get_raw(size.value());
  if (!blob) return std::nullopt;
  if (crc32c(std::span<const std::byte>(blob.value())) != crc.value()) {
    return std::nullopt;
  }
  return SlotContents{sequence.value(), std::move(blob).value()};
}

/// Read and elect the live metadata slot: the CRC-valid slot with the
/// highest sequence (ties go to the slot the sequence designates).
Result<SlotContents> elect_slot(int fd) {
  std::optional<SlotContents> slots[2];
  for (unsigned i = 0; i < 2; ++i) {
    std::vector<std::byte> raw(FileBlockStore::kSlotHeader +
                               FileBlockStore::kMetadataCapacity);
    auto outcome = read_at(fd, FileBlockStore::metadata_slot_offset(i),
                           raw.data(), raw.size());
    if (!outcome) return outcome.status();
    if (outcome.value() == ReadOutcome::kShort) continue;  // truncated: torn
    slots[i] = decode_slot(raw);
  }
  if (!slots[0] && !slots[1]) {
    return errors::corruption("both metadata slots torn or corrupt");
  }
  if (slots[0] && slots[1]) {
    if (slots[0]->sequence == slots[1]->sequence) {
      return std::move(*slots[slots[0]->sequence % 2]);
    }
    return std::move(
        *slots[slots[0]->sequence > slots[1]->sequence ? 0 : 1]);
  }
  return std::move(*slots[slots[0] ? 0 : 1]);
}

}  // namespace

std::uint64_t FileBlockStore::metadata_slot_offset(unsigned slot) noexcept {
  return kHeaderSize +
         static_cast<std::uint64_t>(slot % 2) *
             (kSlotHeader + kMetadataCapacity);
}

std::uint64_t FileBlockStore::block_record_offset(
    BlockId block) const noexcept {
  return first_block_offset() +
         block * static_cast<std::uint64_t>(kBlockRecordHeader + block_size_);
}

FileBlockStore::FileBlockStore(std::string path, int fd,
                               std::size_t block_count, std::size_t block_size)
    : path_(std::move(path)),
      fd_(fd),
      block_count_(block_count),
      block_size_(block_size),
      versions_(block_count, 0) {}

FileBlockStore::~FileBlockStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FileBlockStore>> FileBlockStore::create(
    const std::string& path, std::size_t block_count, std::size_t block_size) {
  if (block_count == 0 || block_size == 0) {
    return errors::invalid_argument("block_count and block_size must be > 0");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return errors::io_error("cannot create " + path + ": " + errno_text());
  }
  auto store = std::unique_ptr<FileBlockStore>(
      new FileBlockStore(path, fd, block_count, block_size));

  const auto header = encode_header(Header{block_count, block_size});
  if (auto status = write_at(fd, 0, header.data(), header.size());
      !status.is_ok()) {
    return status;
  }
  // Both slots start identical at sequence 0 with an empty blob; the first
  // put_metadata then writes sequence 1 into slot 1.
  const auto slot = encode_slot(0, {});
  for (unsigned i = 0; i < 2; ++i) {
    if (auto status =
            write_at(fd, metadata_slot_offset(i), slot.data(), slot.size());
        !status.is_ok()) {
      return status;
    }
  }
  // Zero-fill every block with version 0.
  const std::vector<std::byte> zeros(block_size, std::byte{0});
  for (BlockId block = 0; block < block_count; ++block) {
    if (auto status = store->write(block, zeros, 0); !status.is_ok()) {
      return status;
    }
  }
  // The new store must be durable before anyone relies on it: fsync the
  // file, then the directory entry that names it. A directory fsync the
  // filesystem refuses (EINVAL/ENOTSUP-class) stays best-effort; a real
  // I/O failure surfaces — see sync_parent_dir.
  if (auto status = store->sync(); !status.is_ok()) return status;
  if (auto status = detail::sync_parent_dir(path); !status.is_ok()) {
    return status;
  }
  return store;
}

Result<std::unique_ptr<FileBlockStore>> FileBlockStore::open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return errors::io_error("cannot open " + path + ": " + errno_text());
  }
  std::vector<std::byte> raw(kHeaderSize);
  auto outcome = read_at(fd, 0, raw.data(), raw.size());
  if (!outcome) {
    ::close(fd);
    return outcome.status();
  }
  if (outcome.value() == ReadOutcome::kShort) {
    ::close(fd);
    return errors::corruption("short store header");
  }
  auto header = decode_header(raw);
  if (!header) {
    ::close(fd);
    return header.status();
  }
  auto store = std::unique_ptr<FileBlockStore>(
      new FileBlockStore(path, fd, header.value().block_count,
                         header.value().block_size));
  if (auto status = store->load_metadata_slots(); !status.is_ok()) {
    return status;
  }
  if (auto status = store->scrub_records(); !status.is_ok()) return status;
  return store;
}

Status FileBlockStore::load_metadata_slots() {
  auto slot = elect_slot(fd_);
  if (!slot) return slot.status();
  meta_sequence_ = slot.value().sequence;
  return Status::ok();
}

Status FileBlockStore::scrub_records() {
  std::vector<std::byte> record(kBlockRecordHeader + block_size_);
  for (BlockId block = 0; block < block_count_; ++block) {
    auto outcome = read_at(fd_, block_record_offset(block), record.data(),
                           record.size());
    if (!outcome) {
      // A record whose bytes cannot be read at all is not a torn write —
      // name the block and refuse to open.
      return errors::io_error("block " + std::to_string(block) + ": " +
                              outcome.status().message());
    }
    bool torn = outcome.value() == ReadOutcome::kShort;
    if (!torn) {
      BufferReader reader(record);
      const std::uint64_t version = reader.get_u64().value();
      const std::uint32_t stored_crc = reader.get_u32().value();
      const auto payload =
          std::span<const std::byte>(record).subspan(kBlockRecordHeader);
      if (crc32c(payload) != stored_crc) {
        torn = true;
      } else {
        versions_[block] = version;
      }
    }
    if (torn) {
      // Demote: version 0, zeroed payload, valid CRC. The block now looks
      // out-of-date to every engine and heals lazily from peers.
      const std::vector<std::byte> zeros(block_size_, std::byte{0});
      if (auto status = write(block, zeros, 0); !status.is_ok()) {
        return errors::io_error("block " + std::to_string(block) +
                                ": demotion rewrite failed: " +
                                status.message());
      }
      scrub_demoted_.push_back(block);
    }
  }
  if (!scrub_demoted_.empty()) {
    RELDEV_WARN("file-store")
        << path_ << ": opening scrub demoted " << scrub_demoted_.size()
        << " torn block record(s)";
    if (auto status = sync(); !status.is_ok()) return status;
  }
  return Status::ok();
}

Result<VersionedBlock> FileBlockStore::read(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  std::vector<std::byte> record(kBlockRecordHeader + block_size_);
  auto outcome =
      read_at(fd_, block_record_offset(block), record.data(), record.size());
  if (!outcome) return outcome.status();
  if (outcome.value() == ReadOutcome::kShort) {
    return errors::corruption("block " + std::to_string(block) +
                              " record truncated");
  }
  BufferReader reader(record);
  VersionedBlock result;
  result.version = reader.get_u64().value();
  const std::uint32_t stored_crc = reader.get_u32().value();
  result.data = reader.get_raw(block_size_).value();
  const std::uint32_t computed =
      crc32c(std::span<const std::byte>(result.data));
  if (stored_crc != computed) {
    return errors::corruption("block " + std::to_string(block) +
                              " CRC mismatch");
  }
  return result;
}

Status FileBlockStore::write(BlockId block, std::span<const std::byte> data,
                             VersionNumber version) {
  if (auto status = check_write(block, data); !status.is_ok()) return status;
  BufferWriter writer(kBlockRecordHeader + block_size_);
  writer.put_u64(version);
  writer.put_u32(crc32c(data));
  writer.put_raw(data);
  if (auto status = write_at(fd_, block_record_offset(block),
                             writer.bytes().data(), writer.size());
      !status.is_ok()) {
    return status;
  }
  versions_[block] = version;
  return Status::ok();
}

Result<VersionNumber> FileBlockStore::version_of(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  return versions_[block];
}

VersionVector FileBlockStore::version_vector() const {
  return VersionVector(versions_);
}

Status FileBlockStore::put_metadata(std::span<const std::byte> blob) {
  if (blob.size() > kMetadataCapacity) {
    return errors::invalid_argument("metadata blob exceeds capacity");
  }
  // Write the NOT-currently-active slot with the next sequence number; the
  // live slot is untouched, so a crash tearing this write loses nothing.
  const std::uint64_t next = meta_sequence_ + 1;
  const auto slot = encode_slot(next, blob);
  if (auto status =
          write_at(fd_, metadata_slot_offset(static_cast<unsigned>(next % 2)),
                   slot.data(), slot.size());
      !status.is_ok()) {
    return status;
  }
  meta_sequence_ = next;
  return Status::ok();
}

Result<std::vector<std::byte>> FileBlockStore::get_metadata() const {
  // Re-run the slot election on every call so runtime corruption of the
  // live slot (bit rot, mutilation) falls back to the surviving slot
  // instead of serving garbage.
  auto slot = elect_slot(fd_);
  if (!slot) return slot.status();
  return std::move(slot).value().blob;
}

Status FileBlockStore::sync() {
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return errors::io_error("fsync failed: " + errno_text());
  }
  return Status::ok();
}

Status FileBlockStore::raw_write_at(std::uint64_t offset,
                                    std::span<const std::byte> bytes) {
  return write_at(fd_, offset, bytes.data(), bytes.size());
}

}  // namespace reldev::storage
