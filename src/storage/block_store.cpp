#include "reldev/storage/block_store.hpp"

namespace reldev::storage {

Status BlockStore::check_block(BlockId block) const {
  if (block >= block_count()) {
    return errors::invalid_argument("block " + std::to_string(block) +
                                    " out of range (device has " +
                                    std::to_string(block_count()) + " blocks)");
  }
  return Status::ok();
}

Status BlockStore::wait_durable(CommitSequence sequence) {
  (void)sequence;  // stores without sequence tracking drain everything
  return sync();
}

Status BlockStore::demote(BlockId block) {
  if (auto status = check_block(block); !status.is_ok()) return status;
  const std::vector<std::byte> zeros(block_size(), std::byte{0});
  return write(block, zeros, 0);
}

Status BlockStore::check_write(BlockId block,
                               std::span<const std::byte> data) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  if (data.size() != block_size()) {
    return errors::invalid_argument(
        "payload size " + std::to_string(data.size()) + " != block size " +
        std::to_string(block_size()));
  }
  return Status::ok();
}

}  // namespace reldev::storage
