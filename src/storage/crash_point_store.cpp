#include "reldev/storage/crash_point_store.hpp"

#include <string>
#include <utility>

#include "reldev/util/assert.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

const char* crash_point_name(CrashPoint point) noexcept {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kBeforeBlockWrite:
      return "before-block-write";
    case CrashPoint::kMidBlockWrite:
      return "mid-block-write";
    case CrashPoint::kAfterBlockWrite:
      return "after-block-write";
    case CrashPoint::kMidMetadataWrite:
      return "mid-metadata-write";
    case CrashPoint::kBeforeSync:
      return "before-sync";
    case CrashPoint::kMidJournalAppend:
      return "mid-journal-append";
    case CrashPoint::kBeforeJournalSync:
      return "before-journal-sync";
    case CrashPoint::kMidCheckpoint:
      return "mid-checkpoint";
    case CrashPoint::kBeforeCheckpointTruncate:
      return "before-checkpoint-truncate";
  }
  return "unknown";
}

CrashPoint crash_point_from_name(const std::string& name) noexcept {
  for (const CrashPoint point : kAllCrashPoints) {
    if (name == crash_point_name(point)) return point;
  }
  for (const CrashPoint point : kJournalCrashPoints) {
    if (name == crash_point_name(point)) return point;
  }
  return CrashPoint::kNone;
}

CrashPointBlockStore::CrashPointBlockStore(
    std::unique_ptr<FileBlockStore> inner)
    : file_(std::move(inner)) {
  RELDEV_EXPECTS(file_ != nullptr);
  block_count_ = file_->block_count();
  block_size_ = file_->block_size();
}

CrashPointBlockStore::CrashPointBlockStore(
    std::unique_ptr<JournaledBlockStore> inner)
    : wal_(std::move(inner)), journal_mode_(true) {
  RELDEV_EXPECTS(wal_ != nullptr);
  block_count_ = wal_->block_count();
  block_size_ = wal_->block_size();
  install_journal_hook();
}

void CrashPointBlockStore::install_journal_hook() {
  // The hook runs on the commit leader / checkpoint thread with the store
  // mutex released; the soak harness drives one operation at a time, so
  // the injector's counters need no further synchronisation.
  wal_->set_failpoint_hook([this](JournaledBlockStore::JournalEvent event) {
    switch (event) {
      case JournaledBlockStore::JournalEvent::kBatchAppend:
        return fire(CrashPoint::kMidJournalAppend, journal_appends_seen_);
      case JournaledBlockStore::JournalEvent::kBatchSync:
        return fire(CrashPoint::kBeforeJournalSync, journal_syncs_seen_);
      case JournaledBlockStore::JournalEvent::kCheckpointFlush:
        return fire(CrashPoint::kMidCheckpoint, checkpoint_flushes_seen_);
      case JournaledBlockStore::JournalEvent::kCheckpointTruncate:
        return fire(CrashPoint::kBeforeCheckpointTruncate,
                    checkpoint_truncates_seen_);
    }
    return false;
  });
}

void CrashPointBlockStore::arm(CrashSchedule schedule) {
  schedule_ = schedule;
  block_writes_seen_ = 0;
  metadata_writes_seen_ = 0;
  syncs_seen_ = 0;
  journal_appends_seen_ = 0;
  journal_syncs_seen_ = 0;
  checkpoint_flushes_seen_ = 0;
  checkpoint_truncates_seen_ = 0;
}

std::unique_ptr<FileBlockStore> CrashPointBlockStore::surrender() {
  RELDEV_EXPECTS(!journal_mode_);
  return std::move(file_);
}

std::unique_ptr<JournaledBlockStore> CrashPointBlockStore::surrender_journaled() {
  RELDEV_EXPECTS(journal_mode_);
  if (wal_ != nullptr) wal_->set_failpoint_hook(nullptr);
  return std::move(wal_);
}

void CrashPointBlockStore::drop_inner() noexcept {
  file_.reset();
  // Destroying the journaled store is the "dying process": the pending
  // batch and write-back table evaporate; only journaled bytes survive.
  wal_.reset();
}

void CrashPointBlockStore::adopt(std::unique_ptr<FileBlockStore> inner) {
  RELDEV_EXPECTS(!journal_mode_);
  RELDEV_EXPECTS(inner != nullptr);
  RELDEV_EXPECTS(inner->block_count() == block_count_);
  RELDEV_EXPECTS(inner->block_size() == block_size_);
  file_ = std::move(inner);
  crashed_ = false;
  fired_ = CrashPoint::kNone;
  schedule_ = CrashSchedule{};
}

void CrashPointBlockStore::adopt(std::unique_ptr<JournaledBlockStore> inner) {
  RELDEV_EXPECTS(journal_mode_);
  RELDEV_EXPECTS(inner != nullptr);
  RELDEV_EXPECTS(inner->block_count() == block_count_);
  RELDEV_EXPECTS(inner->block_size() == block_size_);
  wal_ = std::move(inner);
  crashed_ = false;
  fired_ = CrashPoint::kNone;
  schedule_ = CrashSchedule{};
  install_journal_hook();
}

FileBlockStore& CrashPointBlockStore::inner() {
  RELDEV_EXPECTS(file_ != nullptr);
  return *file_;
}

JournaledBlockStore& CrashPointBlockStore::journaled_inner() {
  RELDEV_EXPECTS(wal_ != nullptr);
  return *wal_;
}

BlockStore* CrashPointBlockStore::active() const noexcept {
  if (journal_mode_) return wal_.get();
  return file_.get();
}

Status CrashPointBlockStore::checkpoint() {
  if (crashed_ || wal_ == nullptr) return crashed_error();
  return wal_->checkpoint();
}

bool CrashPointBlockStore::fire(CrashPoint point, std::uint64_t& counter) {
  if (crashed_ || schedule_.point != point) return false;
  const bool hit = counter == schedule_.nth;
  ++counter;
  if (!hit) return false;
  crashed_ = true;
  fired_ = point;
  RELDEV_DEBUG("crash-point")
      << "fired " << crash_point_name(point) << " (event #"
      << schedule_.nth << ")";
  return true;
}

Status CrashPointBlockStore::crashed_error() const {
  return errors::unavailable(std::string("store crashed at ") +
                             crash_point_name(fired_));
}

Result<VersionedBlock> CrashPointBlockStore::read(BlockId block) const {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  return store->read(block);
}

Status CrashPointBlockStore::write(BlockId block,
                                   std::span<const std::byte> data,
                                   VersionNumber version) {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  if (fire(CrashPoint::kBeforeBlockWrite, block_writes_seen_)) {
    // Nothing reached the file (journal mode: nothing entered the batch).
    return errors::io_error("crash injected before block write");
  }
  if (fire(CrashPoint::kMidBlockWrite, block_writes_seen_)) {
    // The torn write: new version + new CRC + the first half of the new
    // payload; the record's tail keeps its previous bytes. The CRC can no
    // longer match, so the opening scrub must demote this record. Only
    // meaningful on the bare file store — journal-mode block writes go
    // through the batch append, which tears at kMidJournalAppend instead.
    RELDEV_EXPECTS(!journal_mode_);
    if (auto status = check_write(block, data); !status.is_ok()) {
      return status;
    }
    BufferWriter torn(FileBlockStore::kBlockRecordHeader + data.size() / 2);
    torn.put_u64(version);
    torn.put_u32(crc32c(data));
    torn.put_raw(data.first(data.size() / 2));
    file_->raw_write_at(file_->block_record_offset(block), torn.bytes())
        .ignore_error();
    return errors::io_error("crash injected mid block write");
  }
  if (fire(CrashPoint::kAfterBlockWrite, block_writes_seen_)) {
    // The mutation lands (journal mode: enters the commit batch) but the
    // writer dies before returning.
    store->write(block, data, version).ignore_error();
    return errors::io_error("crash injected after block write");
  }
  return store->write(block, data, version);
}

Result<VersionNumber> CrashPointBlockStore::version_of(BlockId block) const {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  return store->version_of(block);
}

VersionVector CrashPointBlockStore::version_vector() const {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return VersionVector(block_count_);
  return store->version_vector();
}

Status CrashPointBlockStore::put_metadata(std::span<const std::byte> blob) {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  if (fire(CrashPoint::kMidMetadataWrite, metadata_writes_seen_)) {
    // Tear the slot put_metadata would have targeted: full header (next
    // sequence + size + CRC of the complete blob) but only half the blob,
    // so the slot cannot validate and the election must fall back to the
    // live slot. File mode only — journal-mode metadata puts are journal
    // records and tear with the batch.
    RELDEV_EXPECTS(!journal_mode_);
    if (blob.size() > FileBlockStore::kMetadataCapacity) {
      return errors::invalid_argument("metadata blob exceeds capacity");
    }
    const std::uint64_t next = file_->metadata_sequence() + 1;
    BufferWriter torn(FileBlockStore::kSlotHeader + blob.size() / 2);
    torn.put_u64(next);
    torn.put_u32(static_cast<std::uint32_t>(blob.size()));
    torn.put_u32(crc32c(blob));
    torn.put_raw(blob.first(blob.size() / 2));
    file_->raw_write_at(
        FileBlockStore::metadata_slot_offset(static_cast<unsigned>(next % 2)),
        torn.bytes())
        .ignore_error();
    return errors::io_error("crash injected mid metadata write");
  }
  return store->put_metadata(blob);
}

Result<std::vector<std::byte>> CrashPointBlockStore::get_metadata() const {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  return store->get_metadata();
}

Status CrashPointBlockStore::sync() {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  if (fire(CrashPoint::kBeforeSync, syncs_seen_)) {
    return errors::io_error("crash injected before sync");
  }
  // Journal mode: the forwarded sync may itself fire kMidJournalAppend /
  // kBeforeJournalSync (or the checkpoint points) through the hook.
  return store->sync();
}

Status CrashPointBlockStore::demote(BlockId block) {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  return store->demote(block);
}

CommitSequence CrashPointBlockStore::last_sequence() const noexcept {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return 0;
  return store->last_sequence();
}

CommitSequence CrashPointBlockStore::durable_sequence() const noexcept {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return 0;
  return store->durable_sequence();
}

Status CrashPointBlockStore::wait_durable(CommitSequence sequence) {
  BlockStore* store = active();
  if (crashed_ || store == nullptr) return crashed_error();
  if (fire(CrashPoint::kBeforeSync, syncs_seen_)) {
    return errors::io_error("crash injected before sync");
  }
  return store->wait_durable(sequence);
}

}  // namespace reldev::storage
