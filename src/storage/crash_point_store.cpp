#include "reldev/storage/crash_point_store.hpp"

#include <string>
#include <utility>

#include "reldev/util/assert.hpp"
#include "reldev/util/crc32.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

const char* crash_point_name(CrashPoint point) noexcept {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kBeforeBlockWrite:
      return "before-block-write";
    case CrashPoint::kMidBlockWrite:
      return "mid-block-write";
    case CrashPoint::kAfterBlockWrite:
      return "after-block-write";
    case CrashPoint::kMidMetadataWrite:
      return "mid-metadata-write";
    case CrashPoint::kBeforeSync:
      return "before-sync";
  }
  return "unknown";
}

CrashPoint crash_point_from_name(const std::string& name) noexcept {
  for (const CrashPoint point : kAllCrashPoints) {
    if (name == crash_point_name(point)) return point;
  }
  return CrashPoint::kNone;
}

CrashPointBlockStore::CrashPointBlockStore(
    std::unique_ptr<FileBlockStore> inner)
    : inner_(std::move(inner)) {
  RELDEV_EXPECTS(inner_ != nullptr);
  block_count_ = inner_->block_count();
  block_size_ = inner_->block_size();
}

void CrashPointBlockStore::arm(CrashSchedule schedule) {
  schedule_ = schedule;
  block_writes_seen_ = 0;
  metadata_writes_seen_ = 0;
  syncs_seen_ = 0;
}

std::unique_ptr<FileBlockStore> CrashPointBlockStore::surrender() {
  return std::move(inner_);
}

void CrashPointBlockStore::adopt(std::unique_ptr<FileBlockStore> inner) {
  RELDEV_EXPECTS(inner != nullptr);
  RELDEV_EXPECTS(inner->block_count() == block_count_);
  RELDEV_EXPECTS(inner->block_size() == block_size_);
  inner_ = std::move(inner);
  crashed_ = false;
  fired_ = CrashPoint::kNone;
  schedule_ = CrashSchedule{};
}

FileBlockStore& CrashPointBlockStore::inner() {
  RELDEV_EXPECTS(inner_ != nullptr);
  return *inner_;
}

bool CrashPointBlockStore::fire(CrashPoint point, std::uint64_t& counter) {
  if (crashed_ || schedule_.point != point) return false;
  const bool hit = counter == schedule_.nth;
  ++counter;
  if (!hit) return false;
  crashed_ = true;
  fired_ = point;
  RELDEV_DEBUG("crash-point")
      << "fired " << crash_point_name(point) << " (event #"
      << schedule_.nth << ")";
  return true;
}

Status CrashPointBlockStore::crashed_error() const {
  return errors::unavailable(std::string("store crashed at ") +
                             crash_point_name(fired_));
}

Result<VersionedBlock> CrashPointBlockStore::read(BlockId block) const {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  return inner_->read(block);
}

Status CrashPointBlockStore::write(BlockId block,
                                   std::span<const std::byte> data,
                                   VersionNumber version) {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  if (fire(CrashPoint::kBeforeBlockWrite, block_writes_seen_)) {
    // Nothing reached the file.
    return errors::io_error("crash injected before block write");
  }
  if (fire(CrashPoint::kMidBlockWrite, block_writes_seen_)) {
    // The torn write: new version + new CRC + the first half of the new
    // payload; the record's tail keeps its previous bytes. The CRC can no
    // longer match, so the opening scrub must demote this record.
    if (auto status = check_write(block, data); !status.is_ok()) {
      return status;
    }
    BufferWriter torn(FileBlockStore::kBlockRecordHeader + data.size() / 2);
    torn.put_u64(version);
    torn.put_u32(crc32c(data));
    torn.put_raw(data.first(data.size() / 2));
    (void)inner_->raw_write_at(inner_->block_record_offset(block),
                               torn.bytes());
    return errors::io_error("crash injected mid block write");
  }
  if (fire(CrashPoint::kAfterBlockWrite, block_writes_seen_)) {
    // The record lands completely but the writer dies before returning.
    (void)inner_->write(block, data, version);
    return errors::io_error("crash injected after block write");
  }
  return inner_->write(block, data, version);
}

Result<VersionNumber> CrashPointBlockStore::version_of(BlockId block) const {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  return inner_->version_of(block);
}

VersionVector CrashPointBlockStore::version_vector() const {
  if (crashed_ || inner_ == nullptr) return VersionVector(block_count_);
  return inner_->version_vector();
}

Status CrashPointBlockStore::put_metadata(std::span<const std::byte> blob) {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  if (fire(CrashPoint::kMidMetadataWrite, metadata_writes_seen_)) {
    // Tear the slot put_metadata would have targeted: full header (next
    // sequence + size + CRC of the complete blob) but only half the blob,
    // so the slot cannot validate and the election must fall back to the
    // live slot.
    if (blob.size() > FileBlockStore::kMetadataCapacity) {
      return errors::invalid_argument("metadata blob exceeds capacity");
    }
    const std::uint64_t next = inner_->metadata_sequence() + 1;
    BufferWriter torn(FileBlockStore::kSlotHeader + blob.size() / 2);
    torn.put_u64(next);
    torn.put_u32(static_cast<std::uint32_t>(blob.size()));
    torn.put_u32(crc32c(blob));
    torn.put_raw(blob.first(blob.size() / 2));
    (void)inner_->raw_write_at(
        FileBlockStore::metadata_slot_offset(static_cast<unsigned>(next % 2)),
        torn.bytes());
    return errors::io_error("crash injected mid metadata write");
  }
  return inner_->put_metadata(blob);
}

Result<std::vector<std::byte>> CrashPointBlockStore::get_metadata() const {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  return inner_->get_metadata();
}

Status CrashPointBlockStore::sync() {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  if (fire(CrashPoint::kBeforeSync, syncs_seen_)) {
    return errors::io_error("crash injected before sync");
  }
  return inner_->sync();
}

Status CrashPointBlockStore::demote(BlockId block) {
  if (crashed_ || inner_ == nullptr) return crashed_error();
  return inner_->demote(block);
}

}  // namespace reldev::storage
