// Private helpers for raw file-descriptor I/O shared by the persistent
// stores (FileBlockStore, WalJournal): full-coverage pread/pwrite loops
// with EINTR retry and explicit 64-bit offsets. Not installed; include via
// relative path from src/storage only.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "reldev/util/lockdep.hpp"
#include "reldev/util/result.hpp"

namespace reldev::storage::detail {

inline std::string errno_text() { return std::strerror(errno); }

// Every helper here blocks on disk I/O, so each one is a lockdep
// blocking-under-lock checkpoint: calling it with any reldev::Mutex held
// violates the library's lock discipline (DESIGN.md §15) and is reported
// in RELDEV_LOCKDEP builds.

/// Full-coverage pwrite loop; explicit 64-bit offsets (off_t, not long).
inline Status write_at(int fd, std::uint64_t offset, const void* data,
                       std::size_t size) {
  lockdep::check_blocking("pwrite");
  const auto* bytes = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::pwrite(fd, bytes + done, size - done,
                                 static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errors::io_error("write failed: " + errno_text());
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

/// Full-coverage pread loop. Distinguishes a short read (end of file —
/// the signature of a truncated/torn record) from a true I/O error.
enum class ReadOutcome { kOk, kShort };
inline Result<ReadOutcome> read_at(int fd, std::uint64_t offset, void* data,
                                   std::size_t size) {
  lockdep::check_blocking("pread");
  auto* bytes = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::pread(fd, bytes + done, size - done,
                                static_cast<::off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return errors::io_error("read failed: " + errno_text());
    }
    if (n == 0) return ReadOutcome::kShort;  // end of file
    done += static_cast<std::size_t>(n);
  }
  return ReadOutcome::kOk;
}

/// fsync(2) with EINTR retry.
inline Status sync_fd(int fd) {
  lockdep::check_blocking("fsync");
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return errors::io_error("fsync failed: " + errno_text());
  }
  return Status::ok();
}

/// fsync the directory that names `path`, making a freshly created file's
/// directory entry durable. A filesystem that cannot fsync a directory
/// (EINVAL/ENOTSUP/EBADF on exotic mounts, EROFS, EACCES on the open) is
/// tolerated — the entry is as durable as that filesystem allows — but a
/// real I/O failure (EIO and friends) surfaces: silently losing the entry
/// would break the create-then-rely durability contract.
inline Status sync_parent_dir(const std::string& path) {
  lockdep::check_blocking("fsync(dir)");
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  int dir_fd = -1;
  do {
    dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (dir_fd < 0 && errno == EINTR);
  if (dir_fd < 0) {
    if (errno == EACCES || errno == EROFS) return Status::ok();
    return errors::io_error("cannot open directory " + dir + " for fsync: " +
                            errno_text());
  }
  Status status = Status::ok();
  while (::fsync(dir_fd) != 0) {
    if (errno == EINTR) continue;
    if (errno == EINVAL || errno == ENOTSUP || errno == EROFS ||
        errno == EBADF) {
      break;  // this filesystem refuses directory fsync; best effort
    }
    status = errors::io_error("directory fsync of " + dir + " failed: " +
                              errno_text());
    break;
  }
  ::close(dir_fd);
  return status;
}

}  // namespace reldev::storage::detail
