#include "reldev/storage/journaled_block_store.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "reldev/util/assert.hpp"
#include "reldev/util/logging.hpp"
#include "reldev/util/serial.hpp"

namespace reldev::storage {

JournaledBlockStore::JournaledBlockStore(std::unique_ptr<FileBlockStore> inner,
                                         std::unique_ptr<WalJournal> journal,
                                         JournalOptions options)
    : block_count_(inner->block_count()),
      block_size_(inner->block_size()),
      options_(options),
      inner_(std::move(inner)),
      journal_(std::move(journal)),
      versions_(block_count_, 0) {
  journal_size_ = journal_->size();
}

JournaledBlockStore::~JournaledBlockStore() = default;

namespace {

/// How much zeroed journal to pre-write at creation: the auto-checkpoint
/// threshold (the journal folds before outgrowing it), capped so an
/// outsized checkpoint_bytes cannot turn creation into a gigabyte write.
/// Appends past the preallocation still work — they just grow the file.
std::size_t journal_preallocation(const JournalOptions& options) {
  return std::min<std::size_t>(options.checkpoint_bytes, 16u << 20);
}

}  // namespace

Result<std::unique_ptr<JournaledBlockStore>> JournaledBlockStore::create(
    const std::string& path, std::size_t block_count, std::size_t block_size,
    JournalOptions options) {
  auto inner = FileBlockStore::create(path, block_count, block_size);
  if (!inner) return inner.status();
  auto journal = WalJournal::create(journal_path(path), block_count, block_size,
                                    journal_preallocation(options));
  if (!journal) return journal.status();
  auto store = std::unique_ptr<JournaledBlockStore>(new JournaledBlockStore(
      std::move(inner).value(), std::move(journal).value(), options));
  auto metadata = store->inner_->get_metadata();
  if (!metadata) return metadata.status();
  store->metadata_ = std::move(metadata).value();
  return store;
}

Result<std::unique_ptr<JournaledBlockStore>> JournaledBlockStore::open(
    const std::string& path, JournalOptions options) {
  // Full v2 recovery of the main file first: header check, metadata slot
  // election, torn-record scrub. Whatever the scrub demoted may be
  // resurrected below when the journal holds the committed bytes.
  auto inner = FileBlockStore::open(path);
  if (!inner) return inner.status();
  const std::size_t block_count = inner.value()->block_count();
  const std::size_t block_size = inner.value()->block_size();

  const std::string wal_path = journal_path(path);
  WalJournal::ScanResult scan;
  Result<std::unique_ptr<WalJournal>> journal = errors::internal("unset");
  if (std::filesystem::exists(wal_path)) {
    journal = WalJournal::open(wal_path, block_count, block_size, scan);
  } else {
    // A store that predates journal mode: start an empty journal.
    RELDEV_WARN("wal") << path << ": no journal sidecar; starting empty";
    journal = WalJournal::create(wal_path, block_count, block_size,
                                 journal_preallocation(options));
  }
  if (!journal) return journal.status();

  auto store = std::unique_ptr<JournaledBlockStore>(new JournaledBlockStore(
      std::move(inner).value(), std::move(journal).value(), options));

  // Replay the committed prefix, in sequence order, over the scrubbed main
  // file. Replay is idempotent: every record carries its full payload, so
  // applying the same prefix twice lands on the same bytes and versions.
  for (const WalRecord& record : scan.records) {
    switch (record.type) {
      case WalRecordType::kBlockWrite:
        if (record.block >= block_count) {
          return errors::corruption("journal names block " +
                                    std::to_string(record.block) +
                                    " out of range");
        }
        if (auto status = store->inner_->write(record.block, record.payload,
                                               record.version);
            !status.is_ok()) {
          return status;
        }
        break;
      case WalRecordType::kMetadataPut:
        if (auto status = store->inner_->put_metadata(record.payload);
            !status.is_ok()) {
          return status;
        }
        break;
      case WalRecordType::kDemote:
        if (record.block >= block_count) {
          return errors::corruption("journal demotes block " +
                                    std::to_string(record.block) +
                                    " out of range");
        }
        if (auto status = store->inner_->demote(record.block);
            !status.is_ok()) {
          return status;
        }
        break;
    }
  }
  if (!scan.records.empty()) {
    RELDEV_INFO("wal") << path << ": replayed " << scan.records.size()
                       << " committed journal record(s)"
                       << (scan.torn_tail ? " (torn tail truncated)" : "");
  }
  store->replayed_records_ = scan.records.size();
  store->replay_truncated_tail_ = scan.torn_tail;
  store->next_sequence_ = scan.next_sequence - 1;
  store->durable_sequence_ = store->next_sequence_;

  // Fold the replay into the main file so the journal can shrink: fsync
  // the store FIRST, then cut the journal. Tests disable this to replay
  // the same journal repeatedly (idempotence proof).
  if (options.checkpoint_on_open &&
      store->journal_->size() > WalJournal::kHeaderSize) {
    if (auto status = store->inner_->sync(); !status.is_ok()) return status;
    if (auto status = store->journal_->reset(); !status.is_ok()) {
      return status;
    }
    ++store->checkpoints_taken_;
  }
  store->journal_size_ = store->journal_->size();

  store->versions_ = store->inner_->version_vector().raw();
  auto metadata = store->inner_->get_metadata();
  if (!metadata) return metadata.status();
  store->metadata_ = std::move(metadata).value();
  return store;
}

const VersionedBlock* JournaledBlockStore::dirty_lookup_locked(
    BlockId block) const {
  if (auto it = dirty_.find(block); it != dirty_.end()) return &it->second;
  if (auto it = flushing_.find(block); it != flushing_.end()) {
    return &it->second;
  }
  return nullptr;
}

Result<VersionedBlock> JournaledBlockStore::read(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  {
    MutexLock lock(mutex_);
    if (const VersionedBlock* hit = dirty_lookup_locked(block)) return *hit;
  }
  // Not dirty at lookup time: serve from the main file. A checkpoint may
  // race this pread, so re-check the write-back table afterwards — if the
  // block shows up there, that copy is authoritative (and the pread may
  // have caught the record mid-rewrite).
  auto stored = inner_->read(block);
  {
    MutexLock lock(mutex_);
    if (const VersionedBlock* hit = dirty_lookup_locked(block)) return *hit;
  }
  return stored;
}

Status JournaledBlockStore::write(BlockId block, std::span<const std::byte> data,
                                  VersionNumber version) {
  if (auto status = check_write(block, data); !status.is_ok()) return status;
  MutexLock lock(mutex_);
  if (!health_.is_ok()) return health_;
  const CommitSequence sequence = ++next_sequence_;
  wal_encode_block_write(pending_, sequence, block, version, data);
  dirty_[block] = VersionedBlock{
      std::vector<std::byte>(data.begin(), data.end()), version};
  versions_[block] = version;
  return Status::ok();
}

Result<VersionNumber> JournaledBlockStore::version_of(BlockId block) const {
  if (auto status = check_block(block); !status.is_ok()) return status;
  MutexLock lock(mutex_);
  return versions_[block];
}

VersionVector JournaledBlockStore::version_vector() const {
  MutexLock lock(mutex_);
  return VersionVector(versions_);
}

Status JournaledBlockStore::put_metadata(std::span<const std::byte> blob) {
  if (blob.size() > FileBlockStore::kMetadataCapacity) {
    return errors::invalid_argument("metadata blob exceeds capacity");
  }
  MutexLock lock(mutex_);
  if (!health_.is_ok()) return health_;
  const CommitSequence sequence = ++next_sequence_;
  wal_encode_metadata_put(pending_, sequence, blob);
  metadata_.assign(blob.begin(), blob.end());
  metadata_dirty_ = true;
  return Status::ok();
}

Result<std::vector<std::byte>> JournaledBlockStore::get_metadata() const {
  MutexLock lock(mutex_);
  return metadata_;
}

Status JournaledBlockStore::demote(BlockId block) {
  if (auto status = check_block(block); !status.is_ok()) return status;
  MutexLock lock(mutex_);
  if (!health_.is_ok()) return health_;
  const CommitSequence sequence = ++next_sequence_;
  wal_encode_demote(pending_, sequence, block);
  dirty_[block] =
      VersionedBlock{std::vector<std::byte>(block_size_, std::byte{0}), 0};
  versions_[block] = 0;
  return Status::ok();
}

CommitSequence JournaledBlockStore::last_sequence() const noexcept {
  MutexLock lock(mutex_);
  return next_sequence_;
}

CommitSequence JournaledBlockStore::durable_sequence() const noexcept {
  MutexLock lock(mutex_);
  return durable_sequence_;
}

Status JournaledBlockStore::sync() { return wait_durable(last_sequence()); }

Status JournaledBlockStore::wait_durable(CommitSequence sequence) {
  mutex_.lock();
  while (true) {
    if (!health_.is_ok()) {
      const Status status = health_;
      mutex_.unlock();
      return status;
    }
    if (durable_sequence_ >= sequence) break;
    if (io_in_flight_) {
      // Another leader is mid-commit (or mid-checkpoint); its fsync may
      // already cover us. Wait for it to publish and re-check. Spin first
      // if configured: a yield round-robins the core to the other
      // runnable writers and picks the publication up within one lap,
      // where a condvar sleep pays a futex wake (a full context switch)
      // per operation.
      if (options_.spin_wait.count() > 0) {
        const auto spin_deadline =
            std::chrono::steady_clock::now() + options_.spin_wait;
        while (io_in_flight_ && durable_sequence_ < sequence &&
               health_.is_ok() &&
               std::chrono::steady_clock::now() < spin_deadline) {
          mutex_.unlock();
          std::this_thread::yield();
          mutex_.lock();
        }
        if (!io_in_flight_ || durable_sequence_ >= sequence ||
            !health_.is_ok()) {
          continue;  // publication (or failure) observed while spinning
        }
      }
      cv_.wait(mutex_);
      continue;
    }
    if (const Status status = commit_locked(); !status.is_ok()) {
      mutex_.unlock();
      return status;
    }
  }
  // Commit done; opportunistically fold the journal once it has outgrown
  // the checkpoint threshold (only when no other I/O leader is active —
  // if one is, it will run this check itself when it finishes).
  Status status = Status::ok();
  if (!io_in_flight_ && journal_size_ > options_.checkpoint_bytes) {
    status = checkpoint_locked();
  }
  mutex_.unlock();
  return status;
}

Status JournaledBlockStore::commit_locked() {
  io_in_flight_ = true;
  if (options_.max_delay.count() > 0 &&
      pending_.size() < options_.max_batch_bytes) {
    // Group-commit window: linger so concurrent writers can join this
    // batch. Yield the CPU (with the mutex released so writers can
    // enqueue) and flush as soon as the queue stops growing — a quiet
    // round means every runnable writer has already joined, and waiting
    // out the rest of the window would only add latency. Yielding beats a
    // timed sleep here: condvar timeouts carry ~50 µs of timer slack per
    // slice, while a yield hands the core straight to the next runnable
    // writer (the whole point on a small machine). max_delay bounds the
    // total spin.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.max_delay;
    std::size_t joined = pending_.size();
    while (std::chrono::steady_clock::now() < deadline &&
           pending_.size() < options_.max_batch_bytes) {
      mutex_.unlock();
      std::this_thread::yield();
      mutex_.lock();
      if (pending_.size() == joined) break;
      joined = pending_.size();
    }
  }
  std::vector<std::byte> batch = std::move(pending_).take();
  pending_ = BufferWriter();
  const CommitSequence target = next_sequence_;
  mutex_.unlock();

  Status status = Status::ok();
  if (hook_fires(JournalEvent::kBatchAppend)) {
    // The torn tail: the kernel got only the front half of the batch onto
    // disk before the crash. Recovery must replay the records before this
    // batch and truncate the fragment.
    journal_
        ->raw_append(std::span<const std::byte>(batch).first(batch.size() / 2))
        .ignore_error();
    status = errors::io_error("crash injected mid journal append");
  } else {
    for (std::size_t offset = 0; offset < batch.size() && status.is_ok();
         offset += options_.max_batch_bytes) {
      const std::size_t chunk =
          std::min(options_.max_batch_bytes, batch.size() - offset);
      status = journal_->append(
          std::span<const std::byte>(batch).subspan(offset, chunk));
    }
    if (status.is_ok()) {
      if (hook_fires(JournalEvent::kBatchSync)) {
        // Fully appended, never fsynced: the batch may or may not survive
        // the crash; recovery treats whatever validates as committed.
        status = errors::io_error("crash injected before journal sync");
      } else {
        status = journal_->sync();
      }
    }
  }

  mutex_.lock();
  io_in_flight_ = false;
  journal_size_ = journal_->size();
  if (status.is_ok()) {
    durable_sequence_ = std::max(durable_sequence_, target);
    ++commit_batches_;
  } else {
    health_ = status;
  }
  cv_.notify_all();
  return status;
}

Status JournaledBlockStore::checkpoint() {
  mutex_.lock();
  const Status status = checkpoint_locked();
  mutex_.unlock();
  return status;
}

Status JournaledBlockStore::checkpoint_locked() {
  while (io_in_flight_ && health_.is_ok()) cv_.wait(mutex_);
  if (!health_.is_ok()) return health_;
  if (dirty_.empty() && !metadata_dirty_ &&
      journal_size_ <= WalJournal::kHeaderSize) {
    return Status::ok();  // nothing to fold
  }
  io_in_flight_ = true;
  // Move the live dirty generation to the flushing slot (reads keep
  // consulting it) and snapshot it for the unlocked I/O below. New writes
  // re-dirty on top while we flush.
  for (auto& [block, value] : dirty_) {
    flushing_[block] = std::move(value);
  }
  dirty_.clear();
  std::vector<std::pair<BlockId, VersionedBlock>> to_flush(flushing_.begin(),
                                                           flushing_.end());
  std::optional<std::vector<std::byte>> metadata_to_flush;
  if (metadata_dirty_) {
    metadata_to_flush = metadata_;
    metadata_dirty_ = false;
  }
  mutex_.unlock();

  Status status = Status::ok();
  const bool flush_crash = hook_fires(JournalEvent::kCheckpointFlush);
  // A crashed flush folds only half the blocks and never reaches the
  // store fsync or the journal truncate — the journal stays authoritative.
  const std::size_t fold_limit =
      flush_crash ? to_flush.size() / 2 : to_flush.size();
  for (std::size_t i = 0; i < fold_limit && status.is_ok(); ++i) {
    status = inner_->write(to_flush[i].first, to_flush[i].second.data,
                           to_flush[i].second.version);
  }
  if (status.is_ok() && !flush_crash) {
    if (metadata_to_flush) {
      status = inner_->put_metadata(*metadata_to_flush);
    }
    if (status.is_ok()) status = inner_->sync();
  }
  if (flush_crash) {
    status = errors::io_error("crash injected mid checkpoint");
  }
  if (status.is_ok()) {
    if (hook_fires(JournalEvent::kCheckpointTruncate)) {
      // Main file folded AND fsynced, journal left untruncated: replay
      // must be idempotent over records the store already holds.
      status = errors::io_error("crash injected before checkpoint truncate");
    } else {
      status = journal_->reset();
    }
  }

  mutex_.lock();
  io_in_flight_ = false;
  journal_size_ = journal_->size();
  if (status.is_ok()) {
    flushing_.clear();
    ++checkpoints_taken_;
  } else {
    health_ = status;  // fail-stop; flushing_ stays readable for post-mortems
  }
  cv_.notify_all();
  return status;
}

std::uint64_t JournaledBlockStore::journal_bytes() const {
  MutexLock lock(mutex_);
  return journal_size_;
}

std::uint64_t JournaledBlockStore::commit_batches() const {
  MutexLock lock(mutex_);
  return commit_batches_;
}

std::uint64_t JournaledBlockStore::checkpoints_taken() const {
  MutexLock lock(mutex_);
  return checkpoints_taken_;
}

}  // namespace reldev::storage
