#include "reldev/storage/scrubber.hpp"

#include <algorithm>

#include "reldev/storage/site_metadata.hpp"
#include "reldev/util/crc32.hpp"

namespace reldev::storage {

std::uint32_t scrub_digest(std::span<const std::byte> payload) {
  return crc32c(payload);
}

Result<DigestScan> scan_digests(BlockStore& store, BlockId first,
                                std::size_t count) {
  const std::size_t blocks = store.block_count();
  if (first > blocks) {
    return errors::invalid_argument("digest scan starts past device end");
  }
  const std::size_t end = std::min<std::size_t>(blocks, first + count);
  DigestScan scan;
  scan.first = first;
  scan.versions.reserve(end - first);
  scan.digests.reserve(end - first);
  const std::vector<std::byte> zero(store.block_size(), std::byte{0});
  const std::uint32_t zero_digest = scrub_digest(zero);
  for (BlockId block = first; block < end; ++block) {
    auto copy = store.read(block);
    if (copy.is_ok()) {
      scan.versions.push_back(copy.value().version);
      scan.digests.push_back(scrub_digest(copy.value().data));
      continue;
    }
    // Unreadable payload: demote so the engines treat it as an
    // out-of-date copy, and report the demoted identity.
    if (auto status = store.demote(block); !status.is_ok()) return status;
    scan.versions.push_back(0);
    scan.digests.push_back(zero_digest);
    scan.demoted.push_back(block);
  }
  return scan;
}

std::uint64_t load_scrub_cursor(const BlockStore& store) {
  auto blob = store.get_metadata();
  if (!blob || blob.value().empty()) return 0;
  auto meta = SiteMetadata::decode(blob.value());
  if (!meta) return 0;
  return meta.value().scrub_cursor.value_or(0);
}

Status save_scrub_cursor(BlockStore& store, std::uint64_t cursor) {
  SiteMetadata meta;
  if (auto blob = store.get_metadata(); blob && !blob.value().empty()) {
    if (auto decoded = SiteMetadata::decode(blob.value()); decoded) {
      meta = std::move(decoded).value();
    }
  }
  meta.scrub_cursor = cursor;
  return store.put_metadata(meta.encode());
}

}  // namespace reldev::storage
