#include "reldev/sim/availability_tracker.hpp"

#include <algorithm>

#include "reldev/util/assert.hpp"

namespace reldev::sim {

AvailabilityTracker::AvailabilityTracker(double warmup, double horizon,
                                         std::size_t batches)
    : warmup_(warmup),
      batch_length_(horizon / static_cast<double>(batches)),
      batch_limit_(batches) {
  RELDEV_EXPECTS(warmup >= 0.0);
  RELDEV_EXPECTS(horizon > 0.0);
  RELDEV_EXPECTS(batches >= 2);
}

void AvailabilityTracker::advance_to(double now) {
  RELDEV_EXPECTS(now >= last_time_);
  if (!have_state_) {
    last_time_ = now;
    return;
  }
  double cursor = last_time_;
  while (cursor < now) {
    // Position of the cursor relative to the measurement phase.
    if (cursor < warmup_) {
      const double hop = std::min(now, warmup_);
      cursor = hop;
      continue;
    }
    if (current_batch_ >= batch_limit_) break;  // horizon exhausted
    const double batch_end =
        warmup_ + batch_length_ * static_cast<double>(current_batch_ + 1);
    const double hop = std::min(now, batch_end);
    const double span = hop - cursor;
    if (state_) {
      batch_up_time_ += span;
      total_up_ += span;
    }
    total_observed_ += span;
    cursor = hop;
    if (cursor == batch_end) {
      batch_means_.add_batch(batch_up_time_ / batch_length_);
      batch_up_time_ = 0.0;
      ++current_batch_;
    }
  }
  last_time_ = now;
}

void AvailabilityTracker::record(double now, bool available) {
  RELDEV_EXPECTS(!finished_);
  advance_to(now);
  have_state_ = true;
  state_ = available;
}

void AvailabilityTracker::finish(double end_time) {
  RELDEV_EXPECTS(!finished_);
  RELDEV_EXPECTS(have_state_);
  advance_to(end_time);
  finished_ = true;
}

double AvailabilityTracker::availability() const {
  RELDEV_EXPECTS(finished_);
  RELDEV_EXPECTS(total_observed_ > 0.0);
  return total_up_ / total_observed_;
}

double AvailabilityTracker::half_width() const {
  RELDEV_EXPECTS(finished_);
  return batch_means_.half_width();
}

}  // namespace reldev::sim
