#include "reldev/sim/failure.hpp"

#include <utility>

namespace reldev::sim {

FailureProcess::FailureProcess(Simulator& simulator, Rng rng,
                               std::vector<FailureRates> rates,
                               FailureListener* listener)
    : simulator_(simulator),
      rng_(rng),
      rates_(std::move(rates)),
      listener_(listener),
      up_(rates_.size(), true),
      up_count_(rates_.size()) {
  RELDEV_EXPECTS(!rates_.empty());
  for (const auto& r : rates_) {
    RELDEV_EXPECTS(r.failure_rate >= 0.0);
    RELDEV_EXPECTS(r.repair_rate > 0.0);
    RELDEV_EXPECTS(r.repair_shape >= 1);
  }
}

void FailureProcess::start() {
  RELDEV_EXPECTS(!started_);
  started_ = true;
  for (std::size_t site = 0; site < rates_.size(); ++site) {
    schedule_failure(site);
  }
}

bool FailureProcess::is_up(std::size_t site) const {
  RELDEV_EXPECTS(site < up_.size());
  return up_[site];
}

void FailureProcess::schedule_failure(std::size_t site) {
  if (rates_[site].failure_rate == 0.0) return;  // perfectly reliable site
  const double delay = rng_.exponential(rates_[site].failure_rate);
  simulator_.schedule_after(delay, [this, site] {
    RELDEV_ASSERT(up_[site]);
    up_[site] = false;
    --up_count_;
    if (listener_ != nullptr) {
      listener_->on_site_failed(site, simulator_.now());
    }
    schedule_repair(site);
  });
}

void FailureProcess::schedule_repair(std::size_t site) {
  // Erlang-k repair: sum of k exponential stages, each with rate k * mu,
  // keeps the mean at 1/mu while reducing the CV to 1/sqrt(k).
  const std::size_t shape = rates_[site].repair_shape;
  const double stage_rate =
      rates_[site].repair_rate * static_cast<double>(shape);
  double delay = 0.0;
  for (std::size_t stage = 0; stage < shape; ++stage) {
    delay += rng_.exponential(stage_rate);
  }
  simulator_.schedule_after(delay, [this, site] {
    RELDEV_ASSERT(!up_[site]);
    up_[site] = true;
    ++up_count_;
    if (listener_ != nullptr) {
      listener_->on_site_repaired(site, simulator_.now());
    }
    schedule_failure(site);
  });
}

std::vector<FailureRates> uniform_rates(std::size_t n, double rho,
                                        std::size_t repair_shape) {
  RELDEV_EXPECTS(n > 0);
  RELDEV_EXPECTS(rho >= 0.0);
  RELDEV_EXPECTS(repair_shape >= 1);
  return std::vector<FailureRates>(n, FailureRates{rho, 1.0, repair_shape});
}

}  // namespace reldev::sim
