#include "reldev/sim/simulator.hpp"

#include <limits>
#include <utility>

namespace reldev::sim {

EventId Simulator::schedule_at(double when, Callback callback) {
  RELDEV_EXPECTS(when >= now_);
  RELDEV_EXPECTS(callback != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  live_.emplace(id, std::move(callback));
  return id;
}

EventId Simulator::schedule_after(double delay, Callback callback) {
  RELDEV_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(callback));
}

void Simulator::cancel(EventId id) { live_.erase(id); }

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    auto it = live_.find(entry.id);
    if (it == live_.end()) continue;  // cancelled; skip lazily
    Callback callback = std::move(it->second);
    live_.erase(it);
    RELDEV_ASSERT(entry.time >= now_);
    now_ = entry.time;
    ++executed_;
    callback();
    return true;
  }
  return false;
}

void Simulator::run_until(double deadline) {
  RELDEV_EXPECTS(deadline >= now_);
  while (!queue_.empty()) {
    // Skip cancelled entries so queue_.top() reflects a live event.
    if (live_.find(queue_.top().id) == live_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > deadline) break;
    step();
  }
  now_ = deadline;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace reldev::sim
