// Poisson arrival process for workload generation (read/write requests in
// the traffic experiments of §5). Reschedules itself until stopped.
#pragma once

#include <functional>

#include "reldev/sim/simulator.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::sim {

class ArrivalProcess {
 public:
  using Handler = std::function<void(double now)>;

  /// `rate` arrivals per unit time; each arrival invokes `handler`.
  ArrivalProcess(Simulator& simulator, Rng rng, double rate, Handler handler);
  ~ArrivalProcess();
  ArrivalProcess(const ArrivalProcess&) = delete;
  ArrivalProcess& operator=(const ArrivalProcess&) = delete;

  /// Schedule the first arrival. Call once.
  void start();
  /// Cancel any pending arrival; no handler runs after this returns.
  void stop();

  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }

 private:
  void schedule_next();

  Simulator& simulator_;
  Rng rng_;
  double rate_;
  Handler handler_;
  EventId pending_ = 0;
  std::uint64_t arrivals_ = 0;
  bool running_ = false;
};

}  // namespace reldev::sim
