// A deterministic discrete-event simulator. Events are callbacks scheduled
// at simulated instants; ties break in schedule order so runs are exactly
// reproducible. The availability and traffic experiments of §§4-5 run on
// top of this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "reldev/util/assert.hpp"

namespace reldev::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `callback` at absolute time `when` (>= now()).
  EventId schedule_at(double when, Callback callback);

  /// Schedule `callback` `delay` (>= 0) time units from now.
  EventId schedule_after(double delay, Callback callback);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op so races between an event firing and its cancellation are benign.
  void cancel(EventId id);

  /// Run the single earliest event. Returns false if none are pending.
  bool step();

  /// Run events with time <= `deadline`, then advance the clock to exactly
  /// `deadline` (so time-weighted measurements can close their windows).
  void run_until(double deadline);

  /// Run until no events remain.
  void run_all();

  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

 private:
  struct Entry {
    double time;
    EventId id;  // also the tiebreaker: lower id fires first at equal time
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<EventId, Callback> live_;  // lazy deletion on cancel
};

}  // namespace reldev::sim
