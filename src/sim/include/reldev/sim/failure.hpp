// Per-site failure/repair processes matching §4's stochastic model: each
// site alternates between up and down with exponentially distributed
// lifetimes (failure rate lambda) and repair times (repair rate mu),
// independently of the other sites. Repairs proceed in parallel.
#pragma once

#include <cstddef>
#include <vector>

#include "reldev/sim/simulator.hpp"
#include "reldev/util/rng.hpp"

namespace reldev::sim {

/// Receives site up/down transitions as they happen in simulated time.
class FailureListener {
 public:
  virtual ~FailureListener() = default;
  virtual void on_site_failed(std::size_t site, double now) = 0;
  virtual void on_site_repaired(std::size_t site, double now) = 0;
};

/// Rates for one site. rho = failure_rate / repair_rate is the paper's ρ.
///
/// `repair_shape` selects an Erlang-k repair-time distribution with the
/// same mean 1/mu but coefficient of variation 1/sqrt(k). The paper's §4.4
/// observes that real repair times have CV < 1, which makes sites tend to
/// recover in the order they failed — eroding the conventional available-
/// copy algorithm's advantage over the naive one. k = 1 is the exponential
/// distribution the Markov analysis assumes.
struct FailureRates {
  double failure_rate;           // lambda: failures per unit uptime
  double repair_rate;            // mu: repairs per unit downtime (mean 1/mu)
  std::size_t repair_shape = 1;  // Erlang stages k; CV = 1/sqrt(k)
};

/// Drives n sites. All sites start up at time 0 when start() is called;
/// a failure_rate of 0 models a perfectly reliable site.
class FailureProcess {
 public:
  FailureProcess(Simulator& simulator, Rng rng, std::vector<FailureRates> rates,
                 FailureListener* listener);

  /// Schedule each site's first failure. Call once, before running.
  void start();

  [[nodiscard]] bool is_up(std::size_t site) const;
  [[nodiscard]] std::size_t up_count() const noexcept { return up_count_; }
  [[nodiscard]] std::size_t site_count() const noexcept { return up_.size(); }

 private:
  void schedule_failure(std::size_t site);
  void schedule_repair(std::size_t site);

  Simulator& simulator_;
  Rng rng_;
  std::vector<FailureRates> rates_;
  FailureListener* listener_;  // not owned; may be nullptr
  std::vector<bool> up_;
  std::size_t up_count_ = 0;
  bool started_ = false;
};

/// Uniform rates helper: n sites, failure rate rho, repair rate 1 (the
/// availability analysis depends only on the ratio rho = lambda/mu).
/// `repair_shape` > 1 gives Erlang repairs with CV = 1/sqrt(shape).
std::vector<FailureRates> uniform_rates(std::size_t n, double rho,
                                        std::size_t repair_shape = 1);

}  // namespace reldev::sim
