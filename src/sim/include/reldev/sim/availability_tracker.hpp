// Measures steady-state availability in a simulation run: a time-weighted
// 0/1 signal with an optional warm-up period discarded, and batch-means
// confidence intervals over the measurement horizon.
#pragma once

#include <cstddef>

#include "reldev/util/stats.hpp"

namespace reldev::sim {

class AvailabilityTracker {
 public:
  /// Observations before `warmup` are discarded; the remaining horizon is
  /// split into `batches` equal batches for the confidence interval.
  AvailabilityTracker(double warmup, double horizon, std::size_t batches);

  /// Report that the system is available (or not) from `now` onward.
  /// Must be called with non-decreasing times; call once at t=0 with the
  /// initial state.
  void record(double now, bool available);

  /// Close the window at `end_time` (>= warmup + horizon start) and compute
  /// results. Call exactly once, after the simulation finishes.
  void finish(double end_time);

  [[nodiscard]] double availability() const;
  /// 95% confidence half-width from batch means.
  [[nodiscard]] double half_width() const;
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  void advance_to(double now);

  double warmup_;
  double batch_length_;
  std::size_t batch_limit_;

  bool have_state_ = false;
  bool state_ = false;
  double last_time_ = 0.0;

  // Accumulation within the current batch.
  std::size_t current_batch_ = 0;
  double batch_up_time_ = 0.0;

  reldev::BatchMeans batch_means_;
  double total_up_ = 0.0;
  double total_observed_ = 0.0;
  bool finished_ = false;
};

}  // namespace reldev::sim
