#include "reldev/sim/arrivals.hpp"

#include <utility>

namespace reldev::sim {

ArrivalProcess::ArrivalProcess(Simulator& simulator, Rng rng, double rate,
                               Handler handler)
    : simulator_(simulator),
      rng_(rng),
      rate_(rate),
      handler_(std::move(handler)) {
  RELDEV_EXPECTS(rate_ > 0.0);
  RELDEV_EXPECTS(handler_ != nullptr);
}

ArrivalProcess::~ArrivalProcess() { stop(); }

void ArrivalProcess::start() {
  RELDEV_EXPECTS(!running_);
  running_ = true;
  schedule_next();
}

void ArrivalProcess::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(pending_);
  pending_ = 0;
}

void ArrivalProcess::schedule_next() {
  const double delay = rng_.exponential(rate_);
  pending_ = simulator_.schedule_after(delay, [this] {
    ++arrivals_;
    handler_(simulator_.now());
    if (running_) schedule_next();
  });
}

}  // namespace reldev::sim
