#include "reldev/core/group.hpp"

#include "reldev/util/logging.hpp"

namespace reldev::core {

const char* scheme_kind_name(SchemeKind kind) noexcept {
  switch (kind) {
    case SchemeKind::kVoting:
      return "voting";
    case SchemeKind::kAvailableCopy:
      return "available-copy";
    case SchemeKind::kNaiveAvailableCopy:
      return "naive-available-copy";
  }
  return "unknown";
}

ReplicaGroup::ReplicaGroup(SchemeKind scheme, GroupConfig config,
                           net::AddressingMode mode, WasAvailablePolicy policy)
    : scheme_(scheme),
      config_(std::move(config)),
      policy_(policy),
      transport_(mode),
      faults_(transport_) {
  config_.validate();
  transport_.set_traffic_meter(&meter_);
  const std::size_t n = config_.site_count();
  stores_.reserve(n);
  replicas_.reserve(n);
  for (SiteId site = 0; site < n; ++site) {
    stores_.push_back(std::make_unique<storage::MemBlockStore>(
        config_.block_count, config_.block_size));
    replicas_.push_back(make_replica(site));
    transport_.bind(site, replicas_.back().get());
    scrubbers_.push_back(make_scrubber(site));
  }
}

ReplicaGroup::ReplicaGroup(SchemeKind scheme, GroupConfig config,
                           PersistentOptions persist, net::AddressingMode mode,
                           WasAvailablePolicy policy)
    : scheme_(scheme),
      config_(std::move(config)),
      policy_(policy),
      transport_(mode),
      faults_(transport_),
      persistent_(true),
      journal_(persist.journal),
      journal_options_(persist.journal_options),
      directory_(std::move(persist.directory)) {
  config_.validate();
  transport_.set_traffic_meter(&meter_);
  const std::size_t n = config_.site_count();
  stores_.reserve(n);
  replicas_.reserve(n);
  for (SiteId site = 0; site < n; ++site) {
    if (journal_) {
      auto wal = storage::JournaledBlockStore::create(
          store_path(site), config_.block_count, config_.block_size,
          journal_options_);
      RELDEV_EXPECTS(wal.is_ok());
      stores_.push_back(std::make_unique<storage::CrashPointBlockStore>(
          std::move(wal).value()));
    } else {
      auto file = storage::FileBlockStore::create(
          store_path(site), config_.block_count, config_.block_size);
      RELDEV_EXPECTS(file.is_ok());
      stores_.push_back(std::make_unique<storage::CrashPointBlockStore>(
          std::move(file).value()));
    }
    replicas_.push_back(make_replica(site));
    transport_.bind(site, replicas_.back().get());
    scrubbers_.push_back(make_scrubber(site));
  }
}

std::unique_ptr<ReplicaBase> ReplicaGroup::make_replica(SiteId site) {
  switch (scheme_) {
    case SchemeKind::kVoting:
      return std::make_unique<VotingReplica>(site, config_, *stores_[site],
                                             faults_);
    case SchemeKind::kAvailableCopy:
      return std::make_unique<AvailableCopyReplica>(site, config_,
                                                    *stores_[site], faults_,
                                                    policy_);
    case SchemeKind::kNaiveAvailableCopy:
      return std::make_unique<NaiveAvailableCopyReplica>(site, config_,
                                                         *stores_[site],
                                                         faults_);
  }
  RELDEV_ASSERT(false);
  return nullptr;
}

std::unique_ptr<ScrubDaemon> ReplicaGroup::make_scrubber(SiteId site) {
  return std::make_unique<ScrubDaemon>(*replicas_[site], scrub_options_);
}

ScrubDaemon& ReplicaGroup::scrubber(SiteId site) {
  RELDEV_EXPECTS(site < scrubbers_.size());
  return *scrubbers_[site];
}

void ReplicaGroup::set_scrub_options(const ScrubOptions& options) {
  scrub_options_ = options;
  for (auto& scrubber : scrubbers_) scrubber->set_options(options);
}

Result<ScrubReport> ReplicaGroup::scrub_site(SiteId site) {
  return scrubber(site).run_cycle();
}

ScrubStats ReplicaGroup::scrub_stats(SiteId site) {
  return scrubber(site).stats();
}

ScrubStats ReplicaGroup::total_scrub_stats() {
  ScrubStats total;
  for (auto& scrubber : scrubbers_) {
    const ScrubStats stats = scrubber->stats();
    total.blocks_scanned += stats.blocks_scanned;
    total.digests_exchanged += stats.digests_exchanged;
    total.stale_healed += stats.stale_healed;
    total.corrupt_healed += stats.corrupt_healed;
    total.cycles_completed += stats.cycles_completed;
    total.throttle_stalls += stats.throttle_stalls;
    total.peer_unreachable_skips += stats.peer_unreachable_skips;
    total.ambiguous_mismatches += stats.ambiguous_mismatches;
    total.heal_failures += stats.heal_failures;
  }
  return total;
}

Result<std::size_t> ReplicaGroup::scrub_until_converged(
    std::size_t max_rounds) {
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    const ScrubStats before = total_scrub_stats();
    std::size_t healed = 0;
    bool any_scrubbed = false;
    for (SiteId site = 0; site < replicas_.size(); ++site) {
      if (replicas_[site]->state() != SiteState::kAvailable) continue;
      auto report = scrubbers_[site]->run_cycle();
      if (!report) continue;  // lost availability mid-cycle; next round
      any_scrubbed = true;
      healed += report.value().stale_healed + report.value().corrupt_healed;
    }
    // Converged means a fully healthy round: nothing healed, no peer
    // skipped under backoff, no exchange left ambiguous, no heal failed.
    // A round that heals nothing because half the exchanges degraded
    // (post-storm backoff, a dead peer) is NOT convergence — keep cycling
    // so backoffs drain and every split gets a full quorum of digests.
    const ScrubStats after = total_scrub_stats();
    const bool degraded =
        after.peer_unreachable_skips != before.peer_unreachable_skips ||
        after.ambiguous_mismatches != before.ambiguous_mismatches ||
        after.heal_failures != before.heal_failures;
    if (any_scrubbed && healed == 0 && !degraded) return round;
  }
  return errors::conflict("scrub did not converge within " +
                          std::to_string(max_rounds) + " round(s)");
}

ReplicaBase& ReplicaGroup::replica(SiteId site) {
  RELDEV_EXPECTS(site < replicas_.size());
  return *replicas_[site];
}

storage::BlockStore& ReplicaGroup::store(SiteId site) {
  RELDEV_EXPECTS(site < stores_.size());
  return *stores_[site];
}

std::string ReplicaGroup::store_path(SiteId site) const {
  RELDEV_EXPECTS(persistent_);
  return directory_ + "/site" + std::to_string(site) + ".rdev";
}

storage::CrashPointBlockStore& ReplicaGroup::crash_points(SiteId site) {
  RELDEV_EXPECTS(persistent_ && site < stores_.size());
  return static_cast<storage::CrashPointBlockStore&>(*stores_[site]);
}

Status ReplicaGroup::sync_site(SiteId site) {
  RELDEV_EXPECTS(site < stores_.size());
  return stores_[site]->sync();
}

Status ReplicaGroup::checkpoint_site(SiteId site) {
  RELDEV_EXPECTS(persistent_ && journal_);
  return crash_points(site).checkpoint();
}

void ReplicaGroup::kill_site(SiteId site) {
  RELDEV_EXPECTS(persistent_);
  replica(site).crash();
  transport_.set_up(site, false);
  auto& injector = crash_points(site);
  // Closing the descriptor without a flush leaves exactly the bytes the
  // (possibly torn) pwrites produced — the on-disk state a dying process
  // leaves behind. In journal mode this also vaporises the in-memory
  // pending batch and write-back table, as a process death would.
  injector.drop_inner();
}

Status ReplicaGroup::restart_site(SiteId site) {
  RELDEV_EXPECTS(persistent_);
  auto& injector = crash_points(site);
  RELDEV_EXPECTS(!injector.has_inner());  // kill_site first
  if (journal_) {
    auto reopened =
        storage::JournaledBlockStore::open(store_path(site), journal_options_);
    if (!reopened) return reopened.status();
    auto& wal = *reopened.value();
    if (wal.replayed_records() > 0 || wal.replay_truncated_tail()) {
      RELDEV_INFO("group") << "site " << site << " journal replay applied "
                           << wal.replayed_records() << " record(s)"
                           << (wal.replay_truncated_tail()
                                   ? " (torn tail truncated)"
                                   : "");
    }
    injector.adopt(std::move(reopened).value());
    replicas_[site] = make_replica(site);
    replicas_[site]->crash();
    transport_.bind(site, replicas_[site].get());
    // A fresh scrub daemon over the reopened store resumes from the
    // persisted cursor — mid-cycle progress survives the kill.
    scrubbers_[site] = make_scrubber(site);
    return recover_site(site);
  }
  auto reopened = storage::FileBlockStore::open(store_path(site));
  if (!reopened) return reopened.status();
  if (!reopened.value()->scrub_demoted().empty()) {
    RELDEV_INFO("group") << "site " << site << " scrub demoted "
                         << reopened.value()->scrub_demoted().size()
                         << " torn block(s) on restart";
  }
  injector.adopt(std::move(reopened).value());
  // A fresh server process over the recovered store: the replica rebuilds
  // its volatile state (e.g. the was-available set) from the store, starts
  // failed, and comes up through the scheme's recovery procedure.
  replicas_[site] = make_replica(site);
  replicas_[site]->crash();
  transport_.bind(site, replicas_[site].get());
  scrubbers_[site] = make_scrubber(site);
  return recover_site(site);
}

void ReplicaGroup::crash_site(SiteId site) {
  replica(site).crash();
  transport_.set_up(site, false);
}

Status ReplicaGroup::recover_site(SiteId site) {
  transport_.set_up(site, true);
  const Status status = replica(site).recover();
  retry_comatose();
  return status;
}

std::size_t ReplicaGroup::retry_comatose() {
  std::size_t recovered = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& replica : replicas_) {
      if (replica->state() != SiteState::kComatose) continue;
      if (!transport_.is_up(replica->id())) continue;
      if (replica->recover().is_ok()) {
        ++recovered;
        progress = true;
      }
    }
  }
  return recovered;
}

bool ReplicaGroup::group_available() const {
  if (scheme_ == SchemeKind::kVoting) {
    std::uint64_t up_weight = 0;
    for (const auto& replica : replicas_) {
      if (transport_.is_up(replica->id())) {
        up_weight += config_.weight_of(replica->id());
      }
    }
    return up_weight >= config_.read_quorum_millivotes &&
           up_weight >= config_.write_quorum_millivotes;
  }
  for (const auto& replica : replicas_) {
    if (transport_.is_up(replica->id()) &&
        replica->state() == SiteState::kAvailable) {
      return true;
    }
  }
  return false;
}

Result<storage::BlockData> ReplicaGroup::read(SiteId via, BlockId block) {
  return replica(via).read(block);
}

Status ReplicaGroup::write(SiteId via, BlockId block,
                           std::span<const std::byte> data) {
  return replica(via).write(block, data);
}

Result<storage::BlockData> ReplicaGroup::read_range(SiteId via, BlockId first,
                                                    std::size_t count) {
  return replica(via).read_range(first, count);
}

Status ReplicaGroup::write_range(SiteId via, BlockId first,
                                 std::span<const std::byte> data) {
  return replica(via).write_range(first, data);
}

std::vector<SiteState> ReplicaGroup::states() const {
  std::vector<SiteState> result;
  result.reserve(replicas_.size());
  for (const auto& replica : replicas_) result.push_back(replica->state());
  return result;
}

std::vector<bool> ReplicaGroup::up() const {
  std::vector<bool> result;
  result.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    result.push_back(transport_.is_up(replica->id()));
  }
  return result;
}

}  // namespace reldev::core
