#include "reldev/core/group.hpp"

namespace reldev::core {

const char* scheme_kind_name(SchemeKind kind) noexcept {
  switch (kind) {
    case SchemeKind::kVoting:
      return "voting";
    case SchemeKind::kAvailableCopy:
      return "available-copy";
    case SchemeKind::kNaiveAvailableCopy:
      return "naive-available-copy";
  }
  return "unknown";
}

ReplicaGroup::ReplicaGroup(SchemeKind scheme, GroupConfig config,
                           net::AddressingMode mode, WasAvailablePolicy policy)
    : scheme_(scheme),
      config_(std::move(config)),
      transport_(mode),
      faults_(transport_) {
  config_.validate();
  transport_.set_traffic_meter(&meter_);
  const std::size_t n = config_.site_count();
  stores_.reserve(n);
  replicas_.reserve(n);
  for (SiteId site = 0; site < n; ++site) {
    stores_.push_back(std::make_unique<storage::MemBlockStore>(
        config_.block_count, config_.block_size));
    switch (scheme_) {
      case SchemeKind::kVoting:
        replicas_.push_back(std::make_unique<VotingReplica>(
            site, config_, *stores_.back(), faults_));
        break;
      case SchemeKind::kAvailableCopy:
        replicas_.push_back(std::make_unique<AvailableCopyReplica>(
            site, config_, *stores_.back(), faults_, policy));
        break;
      case SchemeKind::kNaiveAvailableCopy:
        replicas_.push_back(std::make_unique<NaiveAvailableCopyReplica>(
            site, config_, *stores_.back(), faults_));
        break;
    }
    transport_.bind(site, replicas_.back().get());
  }
}

ReplicaBase& ReplicaGroup::replica(SiteId site) {
  RELDEV_EXPECTS(site < replicas_.size());
  return *replicas_[site];
}

storage::MemBlockStore& ReplicaGroup::store(SiteId site) {
  RELDEV_EXPECTS(site < stores_.size());
  return *stores_[site];
}

void ReplicaGroup::crash_site(SiteId site) {
  replica(site).crash();
  transport_.set_up(site, false);
}

Status ReplicaGroup::recover_site(SiteId site) {
  transport_.set_up(site, true);
  const Status status = replica(site).recover();
  retry_comatose();
  return status;
}

std::size_t ReplicaGroup::retry_comatose() {
  std::size_t recovered = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& replica : replicas_) {
      if (replica->state() != SiteState::kComatose) continue;
      if (!transport_.is_up(replica->id())) continue;
      if (replica->recover().is_ok()) {
        ++recovered;
        progress = true;
      }
    }
  }
  return recovered;
}

bool ReplicaGroup::group_available() const {
  if (scheme_ == SchemeKind::kVoting) {
    std::uint64_t up_weight = 0;
    for (const auto& replica : replicas_) {
      if (transport_.is_up(replica->id())) {
        up_weight += config_.weight_of(replica->id());
      }
    }
    return up_weight >= config_.read_quorum_millivotes &&
           up_weight >= config_.write_quorum_millivotes;
  }
  for (const auto& replica : replicas_) {
    if (transport_.is_up(replica->id()) &&
        replica->state() == SiteState::kAvailable) {
      return true;
    }
  }
  return false;
}

Result<storage::BlockData> ReplicaGroup::read(SiteId via, BlockId block) {
  return replica(via).read(block);
}

Status ReplicaGroup::write(SiteId via, BlockId block,
                           std::span<const std::byte> data) {
  return replica(via).write(block, data);
}

Result<storage::BlockData> ReplicaGroup::read_range(SiteId via, BlockId first,
                                                    std::size_t count) {
  return replica(via).read_range(first, count);
}

Status ReplicaGroup::write_range(SiteId via, BlockId first,
                                 std::span<const std::byte> data) {
  return replica(via).write_range(first, data);
}

std::vector<SiteState> ReplicaGroup::states() const {
  std::vector<SiteState> result;
  result.reserve(replicas_.size());
  for (const auto& replica : replicas_) result.push_back(replica->state());
  return result;
}

std::vector<bool> ReplicaGroup::up() const {
  std::vector<bool> result;
  result.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    result.push_back(transport_.is_up(replica->id()));
  }
  return result;
}

}  // namespace reldev::core
