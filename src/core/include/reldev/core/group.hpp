// ReplicaGroup: an in-process replication group — n replicas of one
// scheme, their block stores, and the transport wiring between them. The
// examples, the tests, and the discrete-event experiments all build groups
// through this class; fail-stop crashes and recoveries are driven through
// it so the replica state and the transport reachability stay in step.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "reldev/core/available_copy_replica.hpp"
#include "reldev/core/naive_replica.hpp"
#include "reldev/core/scrub_daemon.hpp"
#include "reldev/core/voting_replica.hpp"
#include "reldev/net/fault_transport.hpp"
#include "reldev/net/inproc_transport.hpp"
#include "reldev/storage/crash_point_store.hpp"
#include "reldev/storage/mem_block_store.hpp"

namespace reldev::core {

enum class SchemeKind { kVoting, kAvailableCopy, kNaiveAvailableCopy };

const char* scheme_kind_name(SchemeKind kind) noexcept;

/// Back every site with a FileBlockStore (wrapped in a crash-point
/// injector) instead of the in-memory store: one `site<N>.rdev` file per
/// site under `directory`, created fresh by the constructor. With
/// `journal` set, each site instead runs a JournaledBlockStore —
/// write-ahead journal (`site<N>.rdev.wal`) with group commit in front of
/// the same v2 file — under the same injector.
struct PersistentOptions {
  std::string directory;
  bool journal = false;
  storage::JournalOptions journal_options;
};

class ReplicaGroup {
 public:
  ReplicaGroup(SchemeKind scheme, GroupConfig config,
               net::AddressingMode mode = net::AddressingMode::kMulticast,
               WasAvailablePolicy policy = WasAvailablePolicy::kEagerBroadcast);

  /// Persistent variant: file-backed stores with crash-point injection.
  ReplicaGroup(SchemeKind scheme, GroupConfig config,
               PersistentOptions persist,
               net::AddressingMode mode = net::AddressingMode::kMulticast,
               WasAvailablePolicy policy = WasAvailablePolicy::kEagerBroadcast);

  [[nodiscard]] SchemeKind scheme() const noexcept { return scheme_; }
  [[nodiscard]] const GroupConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t size() const noexcept { return replicas_.size(); }

  [[nodiscard]] ReplicaBase& replica(SiteId site);
  [[nodiscard]] storage::BlockStore& store(SiteId site);

  /// Whether this group runs on file-backed stores.
  [[nodiscard]] bool persistent() const noexcept { return persistent_; }
  /// Whether the file-backed stores run in journal (write-ahead) mode.
  [[nodiscard]] bool journaled() const noexcept { return journal_; }
  /// Path of a site's backing file (persistent groups only).
  [[nodiscard]] std::string store_path(SiteId site) const;
  /// The crash-point injector wrapping a site's file store (persistent
  /// groups only) — arm it, then drive writes until it fires.
  [[nodiscard]] storage::CrashPointBlockStore& crash_points(SiteId site);

  /// fsync a site's store: everything acknowledged before this call is
  /// crash-durable under the storage durability contract. In journal mode
  /// this is a group commit (one journal fsync), not a full-file flush.
  [[nodiscard]] Status sync_site(SiteId site);
  /// Journal mode: fold a site's journal into its main file and truncate
  /// it (the checkpoint crash points fire through here when armed).
  [[nodiscard]] Status checkpoint_site(SiteId site);
  [[nodiscard]] net::InProcTransport& transport() noexcept { return transport_; }
  /// The fault-injection layer every replica (and any client pointed at
  /// faults()) actually sends through. With no rules set it is a
  /// transparent pass-through over transport().
  [[nodiscard]] net::FaultInjectingTransport& faults() noexcept {
    return faults_;
  }
  [[nodiscard]] net::TrafficMeter& meter() noexcept { return meter_; }

  /// Fail-stop crash: the replica forgets volatile state and the site
  /// becomes unreachable.
  void crash_site(SiteId site);

  /// Bring the site back up and run its recovery procedure, then give
  /// every other comatose site a chance to finish recovering (a newly
  /// available or newly recovered site can unblock them). Returns the
  /// status of this site's own recovery attempt (kUnavailable = comatose).
  [[nodiscard]] Status recover_site(SiteId site);

  /// Hard-kill a persistent site the way a dying machine would: fail-stop
  /// the replica, cut the transport, and drop the store's file handle with
  /// no flush — whatever torn bytes an armed crash point left stay on disk.
  void kill_site(SiteId site);

  /// Restart a killed persistent site: reopen its file through the full
  /// recovery path (header check, metadata-slot election, block scrub),
  /// rebuild the replica from the recovered state, and run the scheme's
  /// recovery procedure. kUnavailable = alive but comatose (e.g. the
  /// available-copy closure has not fully recovered yet).
  [[nodiscard]] Status restart_site(SiteId site);

  /// One fixpoint pass: call recover() on every comatose, reachable
  /// replica until nothing changes. Returns how many became available.
  std::size_t retry_comatose();

  /// Whether the replicated block device is available under this scheme's
  /// rules: voting — a read and write quorum of up sites exists;
  /// available-copy schemes — at least one replica is `available`.
  [[nodiscard]] bool group_available() const;

  /// Convenience: device operations through a chosen coordinator site.
  [[nodiscard]] Result<storage::BlockData> read(SiteId via, BlockId block);
  [[nodiscard]] Status write(SiteId via, BlockId block, std::span<const std::byte> data);

  /// Vectored convenience: one batched operation through `via`.
  [[nodiscard]] Result<storage::BlockData> read_range(SiteId via, BlockId first,
                                        std::size_t count);
  [[nodiscard]] Status write_range(SiteId via, BlockId first,
                     std::span<const std::byte> data);

  /// Current state of every site (failed sites report kFailed).
  [[nodiscard]] std::vector<SiteState> states() const;

  /// Sites currently reachable (up), regardless of protocol state.
  [[nodiscard]] std::vector<bool> up() const;

  // --- anti-entropy scrubbing ----------------------------------------------
  // One ScrubDaemon per site, rebuilt alongside the replica on restart so
  // the persisted cursor carries across a kill/restart. The group drives
  // them synchronously (the in-process replicas are single-threaded).

  /// A site's scrub daemon (drive it with step()/run_cycle()).
  [[nodiscard]] ScrubDaemon& scrubber(SiteId site);

  /// Apply options to every site's daemon (and future rebuilds).
  void set_scrub_options(const ScrubOptions& options);

  /// One full scrub cycle at `site`.
  [[nodiscard]] Result<ScrubReport> scrub_site(SiteId site);

  /// A site's counters, and the sum over all sites.
  [[nodiscard]] ScrubStats scrub_stats(SiteId site);
  [[nodiscard]] ScrubStats total_scrub_stats();

  /// Convergence driver: run full cycles on every available site until a
  /// fully healthy round — nothing healed, no peer skipped under backoff,
  /// no ambiguous digest split, no heal failure — up to `max_rounds`
  /// rounds. Degraded no-op rounds (post-storm backoff still draining, a
  /// peer still down) keep cycling rather than counting as convergence.
  /// Returns the number of rounds used; kConflict if the group failed to
  /// converge within the bound.
  [[nodiscard]] Result<std::size_t> scrub_until_converged(
      std::size_t max_rounds);

 private:
  /// Build the scheme's replica over stores_[site]; used at construction
  /// and again when restart_site rebuilds a killed site's server process.
  [[nodiscard]] std::unique_ptr<ReplicaBase> make_replica(SiteId site);

  /// Build the scrub daemon for replicas_[site] (after make_replica).
  [[nodiscard]] std::unique_ptr<ScrubDaemon> make_scrubber(SiteId site);

  SchemeKind scheme_;
  GroupConfig config_;
  WasAvailablePolicy policy_;
  net::TrafficMeter meter_;
  net::InProcTransport transport_;
  // Decorates transport_; replicas are wired through it so scripted and
  // randomized faults apply to all inter-replica traffic.
  net::FaultInjectingTransport faults_;
  bool persistent_ = false;
  bool journal_ = false;
  storage::JournalOptions journal_options_;
  std::string directory_;
  std::vector<std::unique_ptr<storage::BlockStore>> stores_;
  std::vector<std::unique_ptr<ReplicaBase>> replicas_;
  ScrubOptions scrub_options_;
  std::vector<std::unique_ptr<ScrubDaemon>> scrubbers_;
};

}  // namespace reldev::core
