// The device-driver stub of Figures 1 and 2: the client half of the
// reliable device. It presents the ordinary BlockDevice interface and
// forwards every block request over the network to a site server, failing
// over to the next configured server when one is unreachable — which is
// how a diskless workstation uses the reliable device (§2).
#pragma once

#include <vector>

#include "reldev/core/device.hpp"
#include "reldev/core/types.hpp"
#include "reldev/net/transport.hpp"

namespace reldev::core {

class DriverStub final : public BlockDevice {
 public:
  /// `client_id` identifies this stub on the transport (distinct from any
  /// server site id). `servers` is tried in order on each operation.
  DriverStub(net::Transport& transport, SiteId client_id,
             std::vector<SiteId> servers, std::size_t block_count,
             std::size_t block_size);

  /// Queries device geometry from the first reachable server.
  static Result<DriverStub> connect(net::Transport& transport,
                                    SiteId client_id,
                                    std::vector<SiteId> servers);

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }

  Result<storage::BlockData> read_block(BlockId block) override;
  Status write_block(BlockId block, std::span<const std::byte> data) override;

  /// Vectored path: one MultiBlockRead/Write RPC for the whole range
  /// instead of one round trip per block.
  Result<storage::BlockData> read_blocks(BlockId first,
                                         std::size_t count) override;
  Status write_blocks(BlockId first, std::span<const std::byte> data) override;

  /// The server that served the last successful request.
  [[nodiscard]] SiteId last_server() const noexcept { return last_server_; }

 private:
  /// Try servers starting at the last successful one (sticky), wrapping
  /// around the list; returns the first conclusive reply. Steady state
  /// therefore costs zero dead-head probes of servers that failed earlier.
  Result<net::Message> call_any(const net::Message& request);

  net::Transport& transport_;
  SiteId client_id_;
  std::vector<SiteId> servers_;
  std::size_t block_count_;
  std::size_t block_size_;
  SiteId last_server_ = 0;
  std::size_t last_index_ = 0;  // index into servers_ of last_server_
};

}  // namespace reldev::core
