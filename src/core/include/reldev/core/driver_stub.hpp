// The device-driver stub of Figures 1 and 2: the client half of the
// reliable device. It presents the ordinary BlockDevice interface and
// forwards every block request over the network to a site server, failing
// over to the next configured server when one is unreachable — which is
// how a diskless workstation uses the reliable device (§2).
//
// Resilience: every operation runs under a RetryPolicy — bounded rounds of
// sticky failover scans with exponential backoff + full jitter between
// rounds, all sharing one per-operation deadline budget. Transport-level
// retry decisions live here, NOT in the TCP channel: the channel is
// at-most-once per call, and the stub retries whole operations (block
// reads and full-block writes are safely replayable — a replayed write
// re-applies the same bytes).
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "reldev/core/device.hpp"
#include "reldev/core/types.hpp"
#include "reldev/net/transport.hpp"
#include "reldev/util/rng.hpp"
#include "reldev/util/thread_annotations.hpp"

namespace reldev::core {

/// When and how the stub retries a failed operation. Backoff between
/// retry rounds is "full jitter": sleep uniform(0, min(max_backoff,
/// initial_backoff * multiplier^(round-1))), drawn from a seeded Rng so a
/// fixed seed replays the same schedule. The op deadline caps the whole
/// operation — every attempt, failover and backoff sleep shares it.
struct RetryPolicy {
  /// Sticky scans over the server list (1 = a single failover pass, the
  /// pre-policy behaviour; each scan tries every server once).
  std::size_t max_rounds = 3;
  std::chrono::milliseconds initial_backoff{2};
  std::chrono::milliseconds max_backoff{50};
  double backoff_multiplier = 2.0;
  /// Budget for the operation across all attempts and failovers.
  std::chrono::milliseconds op_deadline{2000};
  /// Seed for the jitter stream (reproducible chaos runs).
  std::uint64_t jitter_seed = 0x5eedull;

  /// Single pass, no backoff — for callers that do their own retrying.
  static RetryPolicy none() {
    RetryPolicy policy;
    policy.max_rounds = 1;
    policy.initial_backoff = std::chrono::milliseconds{0};
    return policy;
  }
};

/// Whether an error can be cured by retrying elsewhere or later.
/// kUnavailable (no quorum / unreachable / stale socket), kTimeout (lost
/// message or deadline) and kCorruption (a CRC-rejected frame — the
/// retransmission will almost surely survive) are transient; everything
/// else is terminal and retrying would only repeat it.
[[nodiscard]] bool is_retryable(ErrorCode code) noexcept;

class DriverStub final : public BlockDevice {
 public:
  /// `client_id` identifies this stub on the transport (distinct from any
  /// server site id). `servers` is tried in order on each operation.
  DriverStub(net::Transport& transport, SiteId client_id,
             std::vector<SiteId> servers, std::size_t block_count,
             std::size_t block_size, RetryPolicy policy = RetryPolicy{});

  /// Queries device geometry from the first reachable server (one scan, no
  /// retries: connect failures are configuration problems, and callers can
  /// simply call connect again).
  static Result<DriverStub> connect(net::Transport& transport,
                                    SiteId client_id,
                                    std::vector<SiteId> servers,
                                    RetryPolicy policy = RetryPolicy{});

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return block_count_;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return block_size_;
  }

  [[nodiscard]] Result<storage::BlockData> read_block(BlockId block) override;
  [[nodiscard]] Status write_block(BlockId block, std::span<const std::byte> data) override;

  /// Vectored path: one MultiBlockRead/Write RPC for the whole range
  /// instead of one round trip per block.
  [[nodiscard]] Result<storage::BlockData> read_blocks(BlockId first,
                                         std::size_t count) override;
  [[nodiscard]] Status write_blocks(BlockId first, std::span<const std::byte> data) override;

  /// The server that served the last successful request.
  [[nodiscard]] SiteId last_server() const RELDEV_EXCLUDES(state_->mutex) {
    const MutexLock lock(state_->mutex);
    return state_->last_server;
  }

  void set_retry_policy(RetryPolicy policy) RELDEV_EXCLUDES(state_->mutex) {
    const MutexLock lock(state_->mutex);
    state_->policy = policy;
  }
  [[nodiscard]] RetryPolicy retry_policy() const
      RELDEV_EXCLUDES(state_->mutex) {
    const MutexLock lock(state_->mutex);
    return state_->policy;
  }

  /// What happened on the last operation that exhausted every server: the
  /// final per-server error (full code + detail, not the summarized
  /// kUnavailable the operation returns), which server produced it, and
  /// how many attempts were burned. Reset by every operation.
  struct FailureDetail {
    Status last_error;        ///< last per-server error observed
    SiteId last_site = 0;     ///< the server that produced it
    std::size_t attempts = 0; ///< total call attempts across all rounds
    std::size_t rounds = 0;   ///< scans over the server list completed
  };
  /// Snapshot by value: with concurrent callers the detail belongs to
  /// whichever operation finished last.
  [[nodiscard]] FailureDetail last_failure() const
      RELDEV_EXCLUDES(state_->mutex) {
    const MutexLock lock(state_->mutex);
    return state_->failure;
  }

 private:
  /// Run one request under the retry policy: rounds of sticky failover
  /// scans with jittered backoff between rounds, stopping early on success,
  /// on a terminal error, or when the op deadline is exhausted. On
  /// exhaustion returns a structured kUnavailable naming the attempt count
  /// and the last per-server error (also kept in last_failure()).
  ///
  /// Thread safety: safe for concurrent callers. The mutex guards only the
  /// retry bookkeeping — transport calls and backoff sleeps run unlocked,
  /// so concurrent operations proceed in parallel.
  [[nodiscard]] Result<net::Message> call_any(const net::Message& request)
      RELDEV_EXCLUDES(state_->mutex);

  // Mutable retry bookkeeping, boxed so the stub stays movable (a Mutex is
  // not) — DriverStub travels through Result<DriverStub> in connect().
  struct RetryState {
    mutable Mutex mutex{"DriverStub.RetryState.mutex"};
    RetryPolicy policy RELDEV_GUARDED_BY(mutex);
    Rng jitter RELDEV_GUARDED_BY(mutex);
    FailureDetail failure RELDEV_GUARDED_BY(mutex);
    SiteId last_server RELDEV_GUARDED_BY(mutex) = 0;
    // Index into servers_ of last_server (the sticky-scan start).
    std::size_t last_index RELDEV_GUARDED_BY(mutex) = 0;

    RetryState(RetryPolicy p, std::uint64_t seed) : policy(p), jitter(seed) {}
  };

  net::Transport& transport_;
  SiteId client_id_;
  std::vector<SiteId> servers_;  // immutable after construction
  std::size_t block_count_;
  std::size_t block_size_;
  std::unique_ptr<RetryState> state_;
};

}  // namespace reldev::core
