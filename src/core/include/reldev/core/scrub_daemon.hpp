// The anti-entropy scrub daemon: one per site, continuously walking the
// local version metadata in bounded batches, comparing CRC-32C digest
// vectors with peers (DigestRequest/DigestReply), and healing stale or
// latently corrupt blocks off the hot path through the engines' existing
// repair machinery. The paper's schemes repair a block only when it is
// accessed or when a site recovers; the scrubber closes the gap for cold
// blocks, restoring the redundancy the vote assignments assume.
//
// Robustness model:
//   * throttling — token buckets for bytes/s (local scan reads + healed
//     payloads) and ops/s (peer RPCs). The buckets always grant and report
//     debt; the background loop sleeps the debt off, synchronous callers
//     (tests, scenario verbs) only account it. Scrubbing never starves
//     foreground traffic.
//   * pacing — a jittered pause between full cycles so a fleet of sites
//     does not scrub in lockstep.
//   * degradation — an unreachable peer is skipped with exponential
//     backoff (in cycles); a dead site never blocks the batch.
//   * crash safety — the cursor is persisted through the store's metadata
//     blob after every batch, so a restarted site resumes mid-cycle.
//   * foreground safety — every heal re-checks the local version; a copy
//     that advanced past what the digest exchange observed is left alone.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "reldev/core/replica.hpp"
#include "reldev/util/rng.hpp"
#include "reldev/util/thread_annotations.hpp"
#include "reldev/util/token_bucket.hpp"

namespace reldev::core {

struct ScrubOptions {
  /// Blocks examined per batch (the granularity of throttling and cursor
  /// persistence).
  std::size_t batch_blocks = 64;
  /// Byte budget: local scan reads plus healed payload bytes. 0 = none.
  std::uint64_t bytes_per_sec = 0;
  /// RPC budget: digest rounds plus heal fetches. 0 = none.
  std::uint64_t ops_per_sec = 0;
  /// Pause between full cycles in background mode.
  std::chrono::milliseconds cycle_interval{1000};
  /// Fraction of cycle_interval jittered onto each pause (+/-).
  double interval_jitter = 0.2;
  /// Cycles an unreachable peer is skipped before the first retry; doubles
  /// per consecutive failure up to the max.
  int peer_backoff_cycles = 1;
  int peer_backoff_max_cycles = 8;
  /// Seed of the pacing jitter (deterministic per site).
  std::uint64_t jitter_seed = 1;
};

/// Observability counters, mirroring the transport pool's hit/miss pattern:
/// a plain snapshot struct read through ReplicaGroup or the daemon.
struct ScrubStats {
  std::uint64_t blocks_scanned = 0;
  std::uint64_t digests_exchanged = 0;  // digest replies processed
  std::uint64_t stale_healed = 0;
  std::uint64_t corrupt_healed = 0;
  std::uint64_t cycles_completed = 0;
  std::uint64_t throttle_stalls = 0;
  std::uint64_t peer_unreachable_skips = 0;
  /// Same-version digest splits with no majority (e.g. one peer reachable
  /// and it disagrees): left alone until more replicas can vote.
  std::uint64_t ambiguous_mismatches = 0;
  /// Heal attempts that failed (peer died mid-heal); retried next cycle.
  std::uint64_t heal_failures = 0;
};

/// One line for logs / the daemon's status output.
[[nodiscard]] std::string format_scrub_stats(const ScrubStats& stats);

/// What one batch (or one aggregated cycle) did.
struct ScrubReport {
  std::size_t scanned = 0;
  std::size_t stale_healed = 0;
  std::size_t corrupt_healed = 0;
  bool cycle_completed = false;
};

class ScrubDaemon {
 public:
  /// Attaches to a replica. The daemon reads the persisted cursor from the
  /// replica's store, so a restart resumes where the dead process stopped.
  explicit ScrubDaemon(ReplicaBase& replica, ScrubOptions options = {});
  ~ScrubDaemon();

  ScrubDaemon(const ScrubDaemon&) = delete;
  ScrubDaemon& operator=(const ScrubDaemon&) = delete;

  // --- synchronous driving (tests, scenario verbs) -------------------------
  // The replica is not internally synchronized: synchronous calls are
  // rejected while the background thread is running.

  /// Scrub one batch at the cursor: scan, exchange digests, heal, advance
  /// and persist the cursor. kUnavailable while the replica is not
  /// available (the cursor does not move). Throttle debt is accounted but
  /// not slept off.
  [[nodiscard]] Result<ScrubReport> step() RELDEV_EXCLUDES(mutex_);

  /// Batches until the cursor wraps: one full pass over the device.
  [[nodiscard]] Result<ScrubReport> run_cycle() RELDEV_EXCLUDES(mutex_);

  // --- background mode (the site daemon) -----------------------------------

  void start() RELDEV_EXCLUDES(mutex_);
  void stop() RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] bool running() const RELDEV_EXCLUDES(mutex_);

  // --- observability and knobs ---------------------------------------------

  [[nodiscard]] ScrubStats stats() const RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] ScrubOptions options() const RELDEV_EXCLUDES(mutex_);
  void set_options(const ScrubOptions& options) RELDEV_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t cursor() const RELDEV_EXCLUDES(mutex_);

  /// Called (outside the daemon's lock) for every block a heal rewrote —
  /// the BlockCache invalidation hook.
  void set_heal_listener(std::function<void(BlockId)> listener)
      RELDEV_EXCLUDES(mutex_);

  // --- test hooks ----------------------------------------------------------

  /// Replace the throttle clock (deterministic budget tests).
  void set_clock(std::function<TokenBucket::Clock::time_point()> clock)
      RELDEV_EXCLUDES(mutex_);
  /// Called after the digest exchange, before any heal — the window a
  /// foreground write can race into (the never-demote-newer tests).
  void set_preheal_hook(std::function<void()> hook) RELDEV_EXCLUDES(mutex_);

 private:
  [[nodiscard]] Result<ScrubReport> do_step() RELDEV_EXCLUDES(mutex_);
  void worker_loop() RELDEV_EXCLUDES(mutex_);
  /// Account `tokens` against a bucket; returns the debt delay and counts
  /// a stall when it is non-zero.
  std::chrono::nanoseconds charge(TokenBucket& bucket, std::uint64_t tokens)
      RELDEV_REQUIRES(mutex_);

  ReplicaBase& replica_;

  mutable Mutex mutex_{"ScrubDaemon.mutex"};
  ScrubOptions options_ RELDEV_GUARDED_BY(mutex_);
  ScrubStats stats_ RELDEV_GUARDED_BY(mutex_);
  std::uint64_t cursor_ RELDEV_GUARDED_BY(mutex_);
  TokenBucket bytes_bucket_ RELDEV_GUARDED_BY(mutex_);
  TokenBucket ops_bucket_ RELDEV_GUARDED_BY(mutex_);
  /// Cycles left before an unreachable peer is probed again.
  std::map<SiteId, int> peer_backoff_ RELDEV_GUARDED_BY(mutex_);
  /// Consecutive failures per peer (drives the exponential backoff).
  std::map<SiteId, int> peer_failures_ RELDEV_GUARDED_BY(mutex_);
  /// Debt accumulated by the last step; the background loop sleeps it off.
  std::chrono::nanoseconds pending_delay_ RELDEV_GUARDED_BY(mutex_){0};
  Rng jitter_ RELDEV_GUARDED_BY(mutex_){1};
  std::function<void(BlockId)> heal_listener_ RELDEV_GUARDED_BY(mutex_);
  std::function<TokenBucket::Clock::time_point()> clock_
      RELDEV_GUARDED_BY(mutex_);
  std::function<void()> preheal_hook_ RELDEV_GUARDED_BY(mutex_);
  bool running_ RELDEV_GUARDED_BY(mutex_) = false;
  bool stop_requested_ RELDEV_GUARDED_BY(mutex_) = false;
  CondVar wake_;
  std::thread worker_;  // joined by stop(); touched only in start()/stop()
};

}  // namespace reldev::core
