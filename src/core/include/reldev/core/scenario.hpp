// A small line-oriented scenario language for driving a replica group
// through scripted failure schedules and asserting the outcomes — the
// executable form of the worked examples in §§3–4 of the paper. Used by
// the failure-scenario tests and the `scenario_runner` example, and handy
// for reproducing bug reports: a failing schedule is a paste-able script.
//
//   # total failure, recovery in worst order (AC)
//   sites 3
//   scheme available-copy
//   crash 2
//   write 0 0 v1
//   crash 1
//   write 0 0 v2
//   crash 0
//   comeback 2            # transport up, recovery attempt allowed to wait
//   expect-state 2 comatose
//   recover 0             # last-failed site must succeed
//   retry
//   expect-state 1 available
//   read 1 0 v2
//
// Commands:
//   sites <n>                 group size (default 3); must precede actions
//   blocks <n>                device blocks (default 8)
//   scheme <name>             voting | available-copy | naive-available-copy
//   store <mem|file>          backing store; `file` runs every site on a
//                             crash-consistent FileBlockStore in a private
//                             temp directory (removed when the run ends)
//   crash <site>              fail-stop a site
//   recover <site>            bring a site back; recovery MUST succeed
//   comeback <site>           bring a site back; may stay comatose
//   retry                     run the comatose-recovery fixpoint
//   write <via> <block> <text>        must succeed
//   fail-write <via> <block> <text>   must be refused
//   read <via> <block> <text>         must succeed and match
//   fail-read <via> <block>           must be refused
//   partition <site> <group>  put a site in a partition group
//   heal                      clear all partitions AND all fault rules
//   expect-state <site> <failed|comatose|available>
//   expect-available <true|false>     the group-level availability rule
//
// Crash-consistency commands (require `store file`):
//   sync-site <site>          fsync the site's store; must succeed
//   arm-crash <site> <point> <nth>  fail-stop the site's store at the nth
//                             (0-based) event of <point>: before-block-write |
//                             mid-block-write | after-block-write |
//                             mid-metadata-write | before-sync
//   crash-site <site>         hard-kill: fail-stop the replica AND drop the
//                             store's file handle with no flush (torn bytes
//                             from a fired crash point stay on disk)
//   restart-site <site>       reopen the file through full recovery (header
//                             check, metadata-slot election, block scrub),
//                             rebuild the replica, and run the scheme's
//                             recovery; may stay comatose (like comeback)
//
// Fault-injection commands (driven by the group's FaultInjectingTransport;
// reproducible under `fault-seed`):
//   fault-seed <n>            seed the fault schedule (config; default 1)
//   drop-rate <from> <to> <p>     P(message lost) on the directed link
//   delay-ms <from> <to> <ms>     added latency on the directed link
//   dup-rate <from> <to> <p>      P(message delivered twice)
//   corrupt-rate <from> <to> <p>  P(frame garbled; CRC-rejected as such)
//   block-link <from> <to>        one-way partition of the directed link
//
// Anti-entropy scrub commands (synchronous; the group drives each site's
// ScrubDaemon directly):
//   scrub-interval <ms>       cycle pacing for every site's daemon
//   scrub-throttle <bytes> <ops>  token-bucket budgets (0 = unlimited);
//                             debt is accounted, not slept off
//   scrub-site <site>         one full scrub cycle at the site; must succeed
//   scrub-wait <k>            scrub every available site until a whole round
//                             heals nothing, within k rounds; must converge
#pragma once

#include <string>
#include <vector>

#include "reldev/core/group.hpp"

namespace reldev::core {

/// One parsed scenario step (exposed so tools can inspect scripts).
struct ScenarioStep {
  std::size_t line = 0;  // 1-based source line, for error messages
  std::string command;
  std::vector<std::string> args;
};

/// A parsed scenario: configuration plus the action steps.
struct Scenario {
  SchemeKind scheme = SchemeKind::kAvailableCopy;
  std::size_t sites = 3;
  std::size_t blocks = 8;
  std::size_t block_size = 64;
  /// Seed of the fault-injection schedule (drop/dup/corrupt draws).
  std::uint64_t fault_seed = 1;
  /// `store file`: back every site with a crash-consistent FileBlockStore
  /// (in a temp directory private to the run) behind a crash-point
  /// injector, enabling the crash-consistency commands.
  bool file_store = false;
  /// `store journal`: like `store file` but through the write-ahead
  /// journal with group commit; enables the journal crash points and the
  /// checkpoint-site command.
  bool journal = false;
  std::vector<ScenarioStep> steps;

  /// Parse from script text. kInvalidArgument with a line reference on any
  /// syntax error.
  static Result<Scenario> parse(const std::string& text);
};

/// Result of running a scenario.
struct ScenarioOutcome {
  std::size_t steps_executed = 0;
  /// Human-readable transcript, one line per executed step.
  std::vector<std::string> transcript;
};

/// Execute a scenario against a fresh ReplicaGroup. Stops at the first
/// violated expectation, returning kConflict with the line number and what
/// differed; infrastructure errors propagate as their own codes.
[[nodiscard]] Result<ScenarioOutcome> run_scenario(const Scenario& scenario);

}  // namespace reldev::core
