// The block-device interface of §2: what the file system sees. A reliable
// (replicated) device and a plain local disk implement the same interface,
// which is the paper's headline property — everything above the device
// needs no modification to gain replication.
#pragma once

#include <span>

#include "reldev/storage/block_store.hpp"
#include "reldev/util/result.hpp"

namespace reldev::core {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  [[nodiscard]] virtual std::size_t block_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;

  /// kUnavailable when the device cannot serve (no quorum / no available
  /// copy); the file system treats that like any transient device error.
  [[nodiscard]] virtual Result<storage::BlockData> read_block(storage::BlockId block) = 0;
  [[nodiscard]] virtual Status write_block(storage::BlockId block,
                             std::span<const std::byte> data) = 0;

  /// Vectored read of blocks [first, first + count): one flat buffer of
  /// count * block_size bytes. The default loops over read_block, so every
  /// existing device keeps working; replicated devices override it with a
  /// single batched round trip.
  [[nodiscard]] virtual Result<storage::BlockData> read_blocks(storage::BlockId first,
                                                 std::size_t count) {
    if (auto status = check_range(first, count); !status.is_ok()) {
      return status;
    }
    storage::BlockData out;
    out.reserve(count * block_size());
    for (std::size_t i = 0; i < count; ++i) {
      auto block = read_block(first + i);
      if (!block) return block.status();
      out.insert(out.end(), block.value().begin(), block.value().end());
    }
    return out;
  }

  /// Vectored write of data.size() / block_size consecutive blocks starting
  /// at `first`. `data` must be a non-empty multiple of block_size.
  [[nodiscard]] virtual Status write_blocks(storage::BlockId first,
                              std::span<const std::byte> data) {
    if (data.empty() || data.size() % block_size() != 0) {
      return errors::invalid_argument(
          "vectored write payload must be a non-empty multiple of the block "
          "size");
    }
    const std::size_t count = data.size() / block_size();
    if (auto status = check_range(first, count); !status.is_ok()) {
      return status;
    }
    for (std::size_t i = 0; i < count; ++i) {
      auto status =
          write_block(first + i, data.subspan(i * block_size(), block_size()));
      if (!status.is_ok()) return status;
    }
    return Status::ok();
  }

 protected:
  /// Shared validation for the vectored operations.
  [[nodiscard]] Status check_range(storage::BlockId first,
                                   std::size_t count) const {
    if (count == 0) {
      return errors::invalid_argument("vectored operation on empty range");
    }
    if (first >= block_count() || count > block_count() - first) {
      return errors::invalid_argument("block range out of bounds");
    }
    return Status::ok();
  }
};

/// An ordinary single-disk device: a BlockStore with no replication. The
/// baseline every scheme is compared against.
class LocalBlockDevice final : public BlockDevice {
 public:
  explicit LocalBlockDevice(storage::BlockStore& store) : store_(store) {}

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return store_.block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return store_.block_size();
  }

  [[nodiscard]] Result<storage::BlockData> read_block(storage::BlockId block) override {
    auto result = store_.read(block);
    if (!result) return result.status();
    return std::move(result).value().data;
  }

  [[nodiscard]] Status write_block(storage::BlockId block,
                     std::span<const std::byte> data) override {
    auto current = store_.version_of(block);
    if (!current) return current.status();
    return store_.write(block, data, current.value() + 1);
  }

 private:
  storage::BlockStore& store_;
};

}  // namespace reldev::core
