// The block-device interface of §2: what the file system sees. A reliable
// (replicated) device and a plain local disk implement the same interface,
// which is the paper's headline property — everything above the device
// needs no modification to gain replication.
#pragma once

#include <span>

#include "reldev/storage/block_store.hpp"
#include "reldev/util/result.hpp"

namespace reldev::core {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  [[nodiscard]] virtual std::size_t block_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;

  /// kUnavailable when the device cannot serve (no quorum / no available
  /// copy); the file system treats that like any transient device error.
  virtual Result<storage::BlockData> read_block(storage::BlockId block) = 0;
  virtual Status write_block(storage::BlockId block,
                             std::span<const std::byte> data) = 0;
};

/// An ordinary single-disk device: a BlockStore with no replication. The
/// baseline every scheme is compared against.
class LocalBlockDevice final : public BlockDevice {
 public:
  explicit LocalBlockDevice(storage::BlockStore& store) : store_(store) {}

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return store_.block_count();
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return store_.block_size();
  }

  Result<storage::BlockData> read_block(storage::BlockId block) override {
    auto result = store_.read(block);
    if (!result) return result.status();
    return std::move(result).value().data;
  }

  Status write_block(storage::BlockId block,
                     std::span<const std::byte> data) override {
    auto current = store_.version_of(block);
    if (!current) return current.status();
    return store_.write(block, data, current.value() + 1);
  }

 private:
  storage::BlockStore& store_;
};

}  // namespace reldev::core
