// The naive available-copy scheme (§3.3, Figure 6): available copy with
// W_s fixed to the full site set. No failure information is maintained, so
// a write is a single unacknowledged push — the cheapest write of the
// three schemes — but after a total failure the block stays out of service
// until every site has recovered.
#pragma once

#include "reldev/core/replica.hpp"

namespace reldev::core {

class NaiveAvailableCopyReplica final : public ReplicaBase {
 public:
  NaiveAvailableCopyReplica(SiteId self, GroupConfig config,
                            storage::BlockStore& store,
                            net::Transport& transport);

  [[nodiscard]] const char* scheme_name() const noexcept override {
    return "naive-available-copy";
  }

  [[nodiscard]] Result<storage::BlockData> read(BlockId block) override;

  /// One unacknowledged push to all peers (a single transmission on a
  /// multicast network — the scheme's whole advantage).
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data) override;

  /// Batched naive write: the whole range in ONE unacknowledged grouped
  /// push. Reads stay local, so the inherited read_range loop already
  /// costs no traffic.
  [[nodiscard]] Status write_range(BlockId first, std::span<const std::byte> data) override;

  /// Figure 6: repair from any available site, or — after a total failure —
  /// wait for all sites and take the highest version.
  [[nodiscard]] Status recover() override;

  void crash() override;

 protected:
  net::Message handle_peer(const net::Message& request) override;
  void handle_peer_oneway(const net::Message& message) override;

 private:
  [[nodiscard]] Status repair_from(SiteId source);
};

}  // namespace reldev::core
