// The available-copy scheme adapted to block-level replication (§3.2,
// Figure 5). Writes go to all available copies; reads are purely local.
// Each site maintains a was-available set W_s — the sites that received
// its most recent write plus the sites that have repaired from it —
// persisted with the store so it survives crashes. After a total failure
// the site may return to service once the closure C*(W_s) has recovered,
// taking the highest version among the closure's members.
#pragma once

#include "reldev/core/closure.hpp"
#include "reldev/core/replica.hpp"

namespace reldev::core {

/// How writers propagate their was-available sets (§3.2 discusses both).
enum class WasAvailablePolicy {
  /// Each write carries the writer's *current* W; recipients adopt it.
  /// Their knowledge lags one write behind — cheap, still safe (a lagging
  /// W is a superset, which can only enlarge the closure and delay
  /// recovery, never corrupt it).
  kPiggybacked,
  /// After gathering acknowledgements the writer pushes the exact ack set
  /// to the recipients — the "atomic broadcast" the paper posits. One
  /// extra transmission per write; failure-order knowledge is exact, which
  /// matches the Figure-7 availability model.
  kEagerBroadcast,
};

class AvailableCopyReplica final : public ReplicaBase {
 public:
  AvailableCopyReplica(SiteId self, GroupConfig config,
                       storage::BlockStore& store, net::Transport& transport,
                       WasAvailablePolicy policy =
                           WasAvailablePolicy::kEagerBroadcast);

  [[nodiscard]] const char* scheme_name() const noexcept override {
    return "available-copy";
  }

  /// Local read; kUnavailable unless this site is `available`.
  [[nodiscard]] Result<storage::BlockData> read(BlockId block) override;

  /// Write-all: push to every peer, gather acknowledgements from the
  /// available ones, and set W to exactly the set that received the write.
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data) override;

  /// Batched write-all: the whole range rides in ONE grouped push (one
  /// high-level transmission instead of one per block); the ack set becomes
  /// W exactly as in the scalar path. Reads stay local, so the inherited
  /// read_range loop is already zero-traffic.
  [[nodiscard]] Status write_range(BlockId first, std::span<const std::byte> data) override;

  /// Figure 5. Becomes comatose, inquires group state, then either repairs
  /// from an available site, or — after a total failure — waits until
  /// C*(W_s) has recovered and repairs from its highest-version member.
  /// kUnavailable while the wait condition is unmet (call again later).
  [[nodiscard]] Status recover() override;

  void crash() override;

  /// The current was-available set (exposed for tests and experiments).
  [[nodiscard]] const SiteSet& was_available() const noexcept { return was_available_; }

 protected:
  net::Message handle_peer(const net::Message& request) override;
  void handle_peer_oneway(const net::Message& message) override;

  [[nodiscard]] WasAvailablePolicy policy() const noexcept { return policy_; }

 private:
  void persist_metadata();
  void load_metadata();
  [[nodiscard]] Status repair_from(SiteId source);

  WasAvailablePolicy policy_;
  SiteSet was_available_;
};

}  // namespace reldev::core
