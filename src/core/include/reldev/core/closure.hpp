// The closure C*(W_s) of a was-available set (Definition 3.2). After a
// total failure, the sites that could have failed last — and therefore
// could hold the most recent data — are found by chasing was-available
// sets transitively: any site that repaired from a member after the
// member's last write appears in some member's W, so the fixed point
// contains every candidate. Recovery may proceed once every member of the
// closure has recovered (Figure 5's first select arm).
#pragma once

#include <map>
#include <optional>

#include "reldev/storage/site_metadata.hpp"

namespace reldev::core {

using storage::SiteId;
using storage::SiteSet;

/// Was-available sets learned so far, keyed by site. Sites still down have
/// no entry.
using WasAvailableMap = std::map<SiteId, SiteSet>;

/// Transitive closure of `seed` under the known was-available sets:
/// C0 = seed, C(k+1) = Ck union W_t for every t in Ck with a known W.
/// Monotone and idempotent; members without a known W stay in the result
/// (their sets may still grow it once they recover).
SiteSet closure(const SiteSet& seed, const WasAvailableMap& known);

/// True when every member of closure(seed, known) has a known set — i.e.
/// every site that could have failed last has recovered far enough to
/// report, so the maximum version among them is guaranteed current.
bool closure_recovered(const SiteSet& seed, const WasAvailableMap& known);

}  // namespace reldev::core
