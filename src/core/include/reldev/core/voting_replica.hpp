// Majority consensus voting at the block level (§3.1, Figures 3 and 4).
// Reads and writes collect votes — (version, weight) pairs — from every
// reachable site; a quorum by weight admits the operation. Out-of-date
// blocks are repaired lazily: a read refreshes only the block it touches,
// a write overwrites stale copies in the quorum as a side effect, and a
// recovering site does nothing at all at repair time — the property that
// lets block-level voting dispense with recovery traffic entirely (§5).
#pragma once

#include "reldev/core/replica.hpp"

namespace reldev::core {

class VotingReplica final : public ReplicaBase {
 public:
  VotingReplica(SiteId self, GroupConfig config, storage::BlockStore& store,
                net::Transport& transport);

  [[nodiscard]] const char* scheme_name() const noexcept override {
    return "voting";
  }

  /// Figure 3. Collects votes; with a read quorum, refreshes the local
  /// copy if stale (one fetch from the highest-version site) and serves
  /// the read locally.
  [[nodiscard]] Result<storage::BlockData> read(BlockId block) override;

  /// Figure 4. Collects votes; with a write quorum, bumps the maximum
  /// version and pushes the block to every site in the quorum.
  [[nodiscard]] Status write(BlockId block, std::span<const std::byte> data) override;

  /// Batched Figure 3: ONE vote round covering the whole range (the reply
  /// carries a version vector), one grouped fetch per stale source site,
  /// then the range is served locally.
  [[nodiscard]] Result<storage::BlockData> read_range(BlockId first,
                                        std::size_t count) override;

  /// Batched Figure 4: one vote round for the range, local writes at
  /// per-block max+1, then one grouped push to the quorum. The quorum is
  /// checked before any local mutation, so a failed batch leaves nothing
  /// behind (atomic-none); the push is a single message per site, so a
  /// recipient applies the whole batch or none of it.
  [[nodiscard]] Status write_range(BlockId first, std::span<const std::byte> data) override;

  /// Voting sites are always immediately available after repair: stale
  /// blocks are caught by version numbers at access time.
  [[nodiscard]] Status recover() override;
  void crash() override;

  /// Scrub heal through the vote round: demote, then a plain read
  /// refreshes the block from the best voter.
  [[nodiscard]] Status scrub_heal_corrupt(BlockId block) override;

 protected:
  net::Message handle_peer(const net::Message& request) override;
  void handle_peer_oneway(const net::Message& message) override;

 private:
  struct Votes {
    std::uint64_t weight_millivotes = 0;   // including self
    storage::VersionNumber max_version = 0;
    SiteId max_site = 0;                   // a site holding max_version
    std::vector<net::GatherReply> replies; // the raw peer votes
  };
  Votes collect_votes(net::AccessKind access, BlockId block);

  struct RangeVotes {
    std::uint64_t weight_millivotes = 0;            // including self
    std::vector<storage::VersionNumber> max_versions;  // per block in range
    std::vector<SiteId> max_sites;                  // site holding each max
    std::vector<net::GatherReply> replies;          // the raw peer votes
  };
  RangeVotes collect_range_votes(net::AccessKind access, BlockId first,
                                 std::size_t count);

  /// Fetch one block from `source` and install it locally at the fetched
  /// version. Shared by the stale-refresh and corrupt-heal paths of read().
  [[nodiscard]] Status fetch_from(SiteId source, BlockId block);
};

}  // namespace reldev::core
