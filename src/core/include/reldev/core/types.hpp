// Replication-group configuration: geometry, per-site voting weights, and
// quorum thresholds. Weights are fixed-point "millivotes" so the paper's
// epsilon tie-break for even group sizes (§4.1) is representable exactly:
// one site carries 1001 millivotes, the rest 1000, and a tie of k-vs-k
// copies resolves toward the half holding the heavier copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "reldev/storage/block.hpp"
#include "reldev/storage/site_metadata.hpp"
#include "reldev/util/assert.hpp"

namespace reldev::core {

using storage::BlockId;
using storage::SiteId;
using storage::SiteSet;

struct GroupConfig {
  std::size_t block_count = 0;
  std::size_t block_size = storage::kDefaultBlockSize;
  /// One weight per site; site i's identity is its index.
  std::vector<std::uint32_t> weights_millivotes;
  /// Minimum weight sums (inclusive) a read / write quorum must reach.
  /// Correctness requires read + write > total and 2 * write > total.
  std::uint64_t read_quorum_millivotes = 0;
  std::uint64_t write_quorum_millivotes = 0;

  [[nodiscard]] std::size_t site_count() const noexcept {
    return weights_millivotes.size();
  }

  [[nodiscard]] std::uint64_t total_weight() const noexcept {
    std::uint64_t total = 0;
    for (const auto w : weights_millivotes) total += w;
    return total;
  }

  [[nodiscard]] std::uint32_t weight_of(SiteId site) const {
    RELDEV_EXPECTS(site < weights_millivotes.size());
    return weights_millivotes[site];
  }

  /// The full site set {0, ..., n-1}.
  [[nodiscard]] SiteSet all_sites() const {
    SiteSet sites;
    for (SiteId s = 0; s < weights_millivotes.size(); ++s) sites.insert(s);
    return sites;
  }

  /// Throws ContractViolation if the quorum invariants do not hold.
  void validate() const {
    RELDEV_EXPECTS(block_count > 0);
    RELDEV_EXPECTS(block_size > 0);
    RELDEV_EXPECTS(!weights_millivotes.empty());
    const std::uint64_t total = total_weight();
    RELDEV_EXPECTS(read_quorum_millivotes + write_quorum_millivotes > total);
    RELDEV_EXPECTS(2 * write_quorum_millivotes > total);
    RELDEV_EXPECTS(read_quorum_millivotes <= total);
    RELDEV_EXPECTS(write_quorum_millivotes <= total);
  }

  /// n equally weighted sites with majority read/write quorums. For even n
  /// site 0 gets the +1 millivote perturbation of §4.1, which makes
  /// A_V(2k) = A_V(2k-1).
  static GroupConfig majority(std::size_t n, std::size_t block_count,
                              std::size_t block_size =
                                  storage::kDefaultBlockSize) {
    RELDEV_EXPECTS(n >= 1);
    GroupConfig config;
    config.block_count = block_count;
    config.block_size = block_size;
    config.weights_millivotes.assign(n, 1000);
    if (n % 2 == 0) config.weights_millivotes[0] = 1001;
    const std::uint64_t total = config.total_weight();
    config.read_quorum_millivotes = total / 2 + 1;
    config.write_quorum_millivotes = total / 2 + 1;
    config.validate();
    return config;
  }
};

}  // namespace reldev::core
