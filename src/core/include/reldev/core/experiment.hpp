// Discrete-event experiment harnesses: drive real replica groups through
// the stochastic failure/repair model of §4 and the workload model of §5,
// measuring availability and per-operation traffic. These are the
// "measured" series the benchmark binaries print next to the paper's
// analytical results.
#pragma once

#include <cstdint>

#include "reldev/core/group.hpp"
#include "reldev/net/traffic.hpp"

namespace reldev::core {

// --- availability (Figures 9 and 10) ---------------------------------------

struct AvailabilityOptions {
  SchemeKind scheme = SchemeKind::kAvailableCopy;
  std::size_t sites = 3;
  double rho = 0.05;        // failure rate / repair rate
  double horizon = 50'000;  // measured simulated time (repair rate = 1)
  double warmup = 1'000;    // discarded initial transient
  std::size_t batches = 25; // batch-means confidence interval
  std::uint64_t seed = 1;
  /// Issue a one-block refresh write after every membership change so the
  /// available-copy was-available sets track the live set — the continuous
  /// failure-order knowledge §4.2's Markov model assumes. Ignored by the
  /// other schemes (it costs them nothing and changes nothing).
  bool refresh_writes = true;
};

struct AvailabilityResult {
  double availability = 0.0;
  double half_width = 0.0;  // 95% CI from batch means
  std::uint64_t failures = 0;
  std::uint64_t repairs = 0;
  std::uint64_t total_failures = 0;  // times all sites were down at once
};

AvailabilityResult run_availability_experiment(const AvailabilityOptions& options);

// --- traffic (Figures 11 and 12) --------------------------------------------

struct TrafficOptions {
  SchemeKind scheme = SchemeKind::kNaiveAvailableCopy;
  net::AddressingMode mode = net::AddressingMode::kMulticast;
  std::size_t sites = 5;
  double rho = 0.05;
  double write_rate = 10.0;   // writes per unit time (repair rate = 1)
  double reads_per_write = 2; // read:write ratio (the figures' x)
  double horizon = 2'000;
  std::uint64_t seed = 1;
  WasAvailablePolicy policy = WasAvailablePolicy::kPiggybacked;
};

struct TrafficResult {
  // Mean high-level transmissions per *successful* operation.
  double per_write = 0.0;
  double per_read = 0.0;
  double per_recovery = 0.0;  // total recovery traffic / repair events
  double per_workload_unit = 0.0;  // write traffic + x * read traffic
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t failed_writes = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t repairs = 0;
};

TrafficResult run_traffic_experiment(const TrafficOptions& options);

// --- recovery behaviour (§4.4 discussion) -----------------------------------

struct RecoveryOptions {
  SchemeKind scheme = SchemeKind::kAvailableCopy;
  std::size_t sites = 4;
  double rho = 0.2;          // high failure rate: total failures do happen
  double horizon = 200'000;
  std::uint64_t seed = 1;
  /// Erlang repair shape k (CV = 1/sqrt(k)). §4.4: with CV < 1 sites tend
  /// to recover in failure order and the conventional algorithm loses its
  /// edge over the naive one.
  std::size_t repair_shape = 1;
};

struct RecoveryResult {
  std::uint64_t total_failures = 0;
  /// Mean simulated time from the instant all sites are down to the
  /// instant the block is available again.
  double mean_outage = 0.0;
  double max_outage = 0.0;
};

/// Measures outage durations after total failures — where AC's closure
/// tracking beats NAC's wait-for-everyone.
RecoveryResult run_recovery_experiment(const RecoveryOptions& options);

}  // namespace reldev::core
