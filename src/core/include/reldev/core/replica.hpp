// ReplicaBase: one site's server process. Holds the site's block store,
// answers peer protocol messages, and exposes the coordinator-side device
// operations (read/write/recover) that each consistency scheme implements.
// The same object serves the in-process transport, the simulator, and TCP.
#pragma once

#include <span>

#include "reldev/core/device.hpp"
#include "reldev/core/types.hpp"
#include "reldev/net/message.hpp"
#include "reldev/net/transport.hpp"
#include "reldev/storage/block_store.hpp"

namespace reldev::core {

using net::SiteState;

class ReplicaBase : public net::MessageHandler {
 public:
  ReplicaBase(SiteId self, GroupConfig config, storage::BlockStore& store,
              net::Transport& transport);
  ~ReplicaBase() override = default;

  [[nodiscard]] SiteId id() const noexcept { return self_; }
  [[nodiscard]] SiteState state() const noexcept { return state_; }
  [[nodiscard]] const GroupConfig& config() const noexcept { return config_; }
  [[nodiscard]] storage::BlockStore& store() noexcept { return store_; }
  /// The peer transport (the scrub daemon drives its digest exchange and
  /// heal fetches over the same links the foreground protocol uses).
  [[nodiscard]] net::Transport& transport() noexcept { return transport_; }

  /// Name of the scheme this replica runs ("voting", ...), for logs.
  [[nodiscard]] virtual const char* scheme_name() const noexcept = 0;

  // --- coordinator-side device operations --------------------------------

  /// Read one block with the scheme's consistency rules.
  [[nodiscard]] virtual Result<storage::BlockData> read(BlockId block) = 0;

  /// Write one block (full block) with the scheme's consistency rules.
  [[nodiscard]] virtual Status write(BlockId block, std::span<const std::byte> data) = 0;

  /// Vectored read of blocks [first, first + count) as one flat buffer.
  /// The base implementation loops over read(); schemes override it to run
  /// one quorum round for the whole range.
  [[nodiscard]] virtual Result<storage::BlockData> read_range(BlockId first,
                                                std::size_t count);

  /// Vectored write of data.size() / block_size consecutive blocks starting
  /// at `first`. The base implementation loops over write(); schemes
  /// override it to push the whole batch in one round.
  [[nodiscard]] virtual Status write_range(BlockId first, std::span<const std::byte> data);

  // --- lifecycle -----------------------------------------------------------

  /// Fail-stop crash: volatile state is lost; persistent state (the block
  /// store and its metadata) survives. The caller is responsible for also
  /// marking the site unreachable on the transport.
  virtual void crash();

  /// Run the scheme's recovery procedure. Returns kOk when the replica
  /// reached `available`; kUnavailable when it must stay comatose and try
  /// again later (e.g. the closure has not fully recovered). The caller
  /// must have made the site reachable again before calling.
  [[nodiscard]] virtual Status recover() = 0;

  // --- anti-entropy scrub support ------------------------------------------
  // Heal entry points the background scrubber uses once a digest exchange
  // has identified a block as stale or corrupt. Both are safe against
  // concurrent foreground progress: a local copy that advanced past what
  // the scrubber observed is never demoted or overwritten.

  /// Refresh stale local copies of `blocks` from `source` with one batch
  /// fetch, applying only updates strictly newer than the local version.
  /// Returns the blocks actually replaced.
  [[nodiscard]] virtual Result<std::vector<BlockId>> scrub_heal_stale(
      const std::vector<BlockId>& blocks, SiteId source);

  /// Heal one latently corrupt local block off the read/write path. The
  /// base demotes and runs the repair round (the available-copy family's
  /// machinery); voting overrides to heal through its vote round.
  [[nodiscard]] virtual Status scrub_heal_corrupt(BlockId block);

  // --- MessageHandler ------------------------------------------------------

  net::Message handle(const net::Message& request) final;
  void handle_oneway(const net::Message& message) final;

 protected:
  /// Scheme-specific request dispatch for peer messages the base does not
  /// understand; return an ErrorReply for unexpected types.
  virtual net::Message handle_peer(const net::Message& request) = 0;
  virtual void handle_peer_oneway(const net::Message& message) = 0;

  /// Every peer except this site.
  [[nodiscard]] SiteSet peers() const;

  void set_state(SiteState state) noexcept { state_ = state; }

  /// Current version vector of the local store.
  [[nodiscard]] storage::VersionVector local_versions() const {
    return store_.version_vector();
  }

  /// Build a RepairReply for a peer whose vector is `theirs`: my vector
  /// plus every block where mine is newer.
  [[nodiscard]] net::RepairReply build_repair_reply(
      const storage::VersionVector& theirs) const;

  /// Apply a RepairReply: replace every block the source knew newer.
  [[nodiscard]] Status apply_repair(const net::RepairReply& reply);

  /// Media-fault repair: demote a locally corrupt block to "needs repair"
  /// and refill it from peers with one RepairRequest round, applying every
  /// answer. kOk once at least one peer replied (the block then holds the
  /// newest version any reachable peer had); kCorruption when the damaged
  /// copy is the only one reachable. The available-copy family uses this
  /// directly; voting heals through its vote round instead.
  [[nodiscard]] Status heal_corrupt_block(BlockId block);

  /// Validation shared by the range operations: count > 0 and the whole
  /// range inside the device.
  [[nodiscard]] Status check_range(BlockId first, std::size_t count) const;

  SiteId self_;
  GroupConfig config_;
  storage::BlockStore& store_;
  net::Transport& transport_;
  SiteState state_ = SiteState::kAvailable;
};

/// Adapts a replica to the BlockDevice interface so the file system can
/// mount a replicated device exactly like a local disk.
class ReplicaDevice final : public BlockDevice {
 public:
  explicit ReplicaDevice(ReplicaBase& replica) : replica_(replica) {}

  [[nodiscard]] std::size_t block_count() const noexcept override {
    return replica_.config().block_count;
  }
  [[nodiscard]] std::size_t block_size() const noexcept override {
    return replica_.config().block_size;
  }
  [[nodiscard]] Result<storage::BlockData> read_block(BlockId block) override {
    return replica_.read(block);
  }
  [[nodiscard]] Status write_block(BlockId block, std::span<const std::byte> data) override {
    return replica_.write(block, data);
  }
  [[nodiscard]] Result<storage::BlockData> read_blocks(BlockId first,
                                         std::size_t count) override {
    return replica_.read_range(first, count);
  }
  [[nodiscard]] Status write_blocks(BlockId first, std::span<const std::byte> data) override {
    return replica_.write_range(first, data);
  }

 private:
  ReplicaBase& replica_;
};

}  // namespace reldev::core
