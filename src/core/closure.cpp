#include "reldev/core/closure.hpp"

#include <deque>

namespace reldev::core {

SiteSet closure(const SiteSet& seed, const WasAvailableMap& known) {
  SiteSet result = seed;
  std::deque<SiteId> frontier(seed.begin(), seed.end());
  while (!frontier.empty()) {
    const SiteId site = frontier.front();
    frontier.pop_front();
    const auto it = known.find(site);
    if (it == known.end()) continue;  // not recovered yet; nothing to chase
    for (const SiteId member : it->second) {
      if (result.insert(member).second) frontier.push_back(member);
    }
  }
  return result;
}

bool closure_recovered(const SiteSet& seed, const WasAvailableMap& known) {
  const SiteSet full = closure(seed, known);
  for (const SiteId member : full) {
    if (known.find(member) == known.end()) return false;
  }
  return true;
}

}  // namespace reldev::core
