#include "reldev/core/naive_replica.hpp"

#include "reldev/util/logging.hpp"

namespace reldev::core {

NaiveAvailableCopyReplica::NaiveAvailableCopyReplica(
    SiteId self, GroupConfig config, storage::BlockStore& store,
    net::Transport& transport)
    : ReplicaBase(self, std::move(config), store, transport) {}

Result<storage::BlockData> NaiveAvailableCopyReplica::read(BlockId block) {
  if (state_ != SiteState::kAvailable) {
    return errors::unavailable(std::string("site is ") +
                               net::site_state_name(state_));
  }
  auto stored = store_.read(block);
  if (!stored && stored.status().code() == ErrorCode::kCorruption) {
    // Same media-fault handling as the tracked scheme: demote the torn
    // record and refill it from any peer.
    if (auto status = heal_corrupt_block(block); !status.is_ok()) {
      return status;
    }
    stored = store_.read(block);
  }
  if (!stored) return stored.status();
  return std::move(stored).value().data;
}

Status NaiveAvailableCopyReplica::write(BlockId block,
                                        std::span<const std::byte> data) {
  if (state_ != SiteState::kAvailable) {
    return errors::unavailable(std::string("site is ") +
                               net::site_state_name(state_));
  }
  if (data.size() != config_.block_size) {
    return errors::invalid_argument("payload size != block size");
  }
  auto current = store_.version_of(block);
  if (!current) return current.status();
  const storage::VersionNumber next = current.value() + 1;
  if (auto status = store_.write(block, data, next); !status.is_ok()) {
    return status;
  }
  // The naive write: one unacknowledged push to everybody. Reliable
  // delivery between live sites is assumed (§5.1); no was-available
  // bookkeeping exists to update.
  net::WriteAllRequest push{block, next,
                            storage::BlockData(data.begin(), data.end()),
                            SiteSet{}};
  return transport_.multicast(self_, peers(),
                              net::Message{self_, std::move(push)});
}

Status NaiveAvailableCopyReplica::write_range(BlockId first,
                                              std::span<const std::byte> data) {
  if (state_ != SiteState::kAvailable) {
    return errors::unavailable(std::string("site is ") +
                               net::site_state_name(state_));
  }
  if (data.empty() || data.size() % config_.block_size != 0) {
    return errors::invalid_argument(
        "vectored write payload must be a non-empty multiple of the block "
        "size");
  }
  const std::size_t count = data.size() / config_.block_size;
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  net::BatchWriteRequest push;
  push.updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto current = store_.version_of(first + i);
    if (!current) return current.status();
    const storage::VersionNumber next = current.value() + 1;
    const auto slice = data.subspan(i * config_.block_size, config_.block_size);
    if (auto status = store_.write(first + i, slice, next); !status.is_ok()) {
      return status;
    }
    push.updates.push_back(net::BlockUpdate{
        first + i, next, storage::BlockData(slice.begin(), slice.end())});
  }
  // One unacknowledged grouped push — still a single high-level
  // transmission on a multicast network, now covering the whole range.
  return transport_.multicast(self_, peers(),
                              net::Message{self_, std::move(push)});
}

Status NaiveAvailableCopyReplica::repair_from(SiteId source) {
  // Two passes: the naive write commits locally before the push, so a
  // coordinator crash can leave this site durably AHEAD of the group on a
  // write nobody acknowledged. The copy held by the running group is
  // authoritative — demote such blocks and pull the current record on the
  // second round.
  for (int pass = 0; pass < 2; ++pass) {
    auto reply = transport_.call(self_, source,
                                 net::Message{self_, net::RepairRequest{
                                                         local_versions()}});
    if (!reply) return reply.status();
    if (!reply.value().holds<net::RepairReply>()) {
      return errors::protocol("unexpected reply to repair request");
    }
    const auto& repair = reply.value().as<net::RepairReply>();
    if (auto status = apply_repair(repair); !status.is_ok()) return status;
    const auto ahead = repair.versions.stale_against(local_versions());
    if (ahead.empty()) return Status::ok();
    for (const BlockId block : ahead) {
      RELDEV_WARN("naive-ac")
          << "site " << self_ << " discards unpushed write of block " << block
          << " (never acknowledged); adopting the group's copy";
      if (auto status = store_.demote(block); !status.is_ok()) return status;
    }
  }
  return Status::ok();
}

Status NaiveAvailableCopyReplica::recover() {
  // Figure 6: identical to Figure 5 with W_s fixed to the full site set —
  // so after a total failure *every* site must recover before anyone can
  // tell who holds the most recent version.
  set_state(SiteState::kComatose);

  const auto replies = transport_.multicast_call(
      self_, peers(), net::Message{self_, net::StateInquiry{}});

  for (const auto& [site, reply] : replies) {
    if (!reply.holds<net::StateInfo>()) continue;
    if (reply.as<net::StateInfo>().state != SiteState::kAvailable) continue;
    if (auto status = repair_from(site); !status.is_ok()) return status;
    set_state(SiteState::kAvailable);
    return Status::ok();
  }

  // Nobody is available: wait for the whole group.
  std::size_t recovered = 1;  // self
  SiteId best = self_;
  std::uint64_t best_total = local_versions().total();
  for (const auto& [site, reply] : replies) {
    if (!reply.holds<net::StateInfo>()) continue;
    ++recovered;
    const auto& info = reply.as<net::StateInfo>();
    if (info.version_total > best_total) {
      best_total = info.version_total;
      best = site;
    }
  }
  if (recovered < config_.site_count()) {
    RELDEV_DEBUG("naive-ac") << "site " << self_
                             << " stays comatose: " << recovered << " of "
                             << config_.site_count() << " sites recovered";
    return errors::unavailable("waiting for all sites to recover");
  }
  if (best != self_) {
    if (auto status = repair_from(best); !status.is_ok()) return status;
  }
  set_state(SiteState::kAvailable);
  return Status::ok();
}

void NaiveAvailableCopyReplica::crash() { ReplicaBase::crash(); }

net::Message NaiveAvailableCopyReplica::handle_peer(
    const net::Message& request) {
  if (request.holds<net::StateInquiry>()) {
    return net::Message{
        self_, net::StateInfo{state_, local_versions().total(), SiteSet{}}};
  }
  if (request.holds<net::RepairRequest>()) {
    return net::Message{
        self_, build_repair_reply(request.as<net::RepairRequest>().versions)};
  }
  if (request.holds<net::WriteAllRequest>() ||
      request.holds<net::BatchWriteRequest>()) {
    // The naive push is normally one-way; answering the call form keeps
    // the engine usable over request/reply-only transports such as TCP.
    handle_peer_oneway(request);
    return net::Message{self_, net::WriteAllAck{}};
  }
  return net::make_error(
      self_,
      errors::protocol(std::string("unexpected request ") + request.name()));
}

void NaiveAvailableCopyReplica::handle_peer_oneway(
    const net::Message& message) {
  if (message.holds<net::WriteAllRequest>()) {
    if (state_ != SiteState::kAvailable) return;  // comatose copies wait
    const auto& push = message.as<net::WriteAllRequest>();
    auto current = store_.version_of(push.block);
    if (!current) return;
    if (push.version > current.value()) {
      store_.write(push.block, push.data, push.version).ignore_error();
    }
    return;
  }
  if (message.holds<net::BatchWriteRequest>()) {
    if (state_ != SiteState::kAvailable) return;  // comatose copies wait
    for (const auto& update : message.as<net::BatchWriteRequest>().updates) {
      auto current = store_.version_of(update.block);
      if (!current) continue;
      if (update.version > current.value()) {
        store_.write(update.block, update.data, update.version).ignore_error();
      }
    }
    return;
  }
  RELDEV_WARN("naive-ac") << "ignoring one-way " << message.name();
}

}  // namespace reldev::core
