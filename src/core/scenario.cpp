#include "reldev/core/scenario.hpp"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>

#include <unistd.h>

namespace reldev::core {

namespace {

Status syntax_error(std::size_t line, const std::string& what) {
  return errors::invalid_argument("line " + std::to_string(line) + ": " +
                                  what);
}

Status expectation_failed(std::size_t line, const std::string& what) {
  return errors::conflict("line " + std::to_string(line) + ": " + what);
}

Result<std::uint64_t> parse_number(std::size_t line, const std::string& text,
                                   const char* what) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    return syntax_error(line, std::string("bad ") + what + " '" + text + "'");
  }
}

storage::BlockData text_payload(const std::string& text,
                                std::size_t block_size) {
  storage::BlockData data(block_size, std::byte{0});
  std::memcpy(data.data(), text.data(), std::min(text.size(), block_size));
  return data;
}

std::string payload_text(const storage::BlockData& data) {
  std::string text(reinterpret_cast<const char*>(data.data()), data.size());
  const auto nul = text.find('\0');
  return nul == std::string::npos ? text : text.substr(0, nul);
}

Result<double> parse_probability(std::size_t line, const std::string& text,
                                 const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    if (value < 0.0 || value > 1.0) {
      return syntax_error(line,
                         std::string(what) + " must be in [0, 1]: " + text);
    }
    return value;
  } catch (const std::exception&) {
    return syntax_error(line, std::string("bad ") + what + " '" + text + "'");
  }
}

/// Commands that take a configuration value before any action runs.
bool is_config_command(const std::string& command) {
  return command == "sites" || command == "blocks" || command == "scheme" ||
         command == "fault-seed" || command == "store";
}

const std::vector<std::pair<std::string, std::size_t>> kArity{
    {"crash", 1},       {"recover", 1},   {"comeback", 1},
    {"retry", 0},       {"write", 3},     {"fail-write", 3},
    {"read", 3},        {"fail-read", 2}, {"partition", 2},
    {"heal", 0},        {"expect-state", 2}, {"expect-available", 1},
    {"write-range", 4}, {"fail-write-range", 4}, {"read-range", 4},
    {"drop-rate", 3},   {"delay-ms", 3},  {"dup-rate", 3},
    {"corrupt-rate", 3}, {"block-link", 2},
    {"sync-site", 1},   {"arm-crash", 3}, {"crash-site", 1},
    {"restart-site", 1}, {"checkpoint-site", 1},
    {"scrub-interval", 1}, {"scrub-throttle", 2}, {"scrub-site", 1},
    {"scrub-wait", 1},
};

/// Commands that only make sense over file-backed stores.
bool needs_file_store(const std::string& command) {
  return command == "arm-crash" || command == "crash-site" ||
         command == "restart-site" || command == "checkpoint-site";
}

/// A private temp directory for one file-backed scenario run, removed on
/// destruction (best effort).
class ScratchDirectory {
 public:
  ScratchDirectory() {
    static std::atomic<std::uint64_t> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("reldev_scenario_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }
  ~ScratchDirectory() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  ScratchDirectory(const ScratchDirectory&) = delete;
  ScratchDirectory& operator=(const ScratchDirectory&) = delete;

  [[nodiscard]] std::string string() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace

Result<Scenario> Scenario::parse(const std::string& text) {
  Scenario scenario;
  std::istringstream input(text);
  std::string raw_line;
  std::size_t line = 0;
  bool actions_started = false;

  while (std::getline(input, raw_line)) {
    ++line;
    // Strip comments and surrounding whitespace.
    const auto hash = raw_line.find('#');
    std::string body =
        hash == std::string::npos ? raw_line : raw_line.substr(0, hash);
    std::istringstream tokens(body);
    std::vector<std::string> words;
    for (std::string word; tokens >> word;) words.push_back(word);
    if (words.empty()) continue;

    const std::string command = words[0];
    std::vector<std::string> args(words.begin() + 1, words.end());

    if (is_config_command(command)) {
      if (actions_started) {
        return syntax_error(line, command + " must precede all actions");
      }
      if (args.size() != 1) {
        return syntax_error(line, command + " takes one argument");
      }
      if (command == "sites") {
        auto n = parse_number(line, args[0], "site count");
        if (!n) return n.status();
        if (n.value() < 1 || n.value() > 16) {
          return syntax_error(line, "sites must be 1..16");
        }
        scenario.sites = n.value();
      } else if (command == "blocks") {
        auto n = parse_number(line, args[0], "block count");
        if (!n) return n.status();
        if (n.value() < 1 || n.value() > 4096) {
          return syntax_error(line, "blocks must be 1..4096");
        }
        scenario.blocks = n.value();
      } else if (command == "fault-seed") {
        auto n = parse_number(line, args[0], "fault seed");
        if (!n) return n.status();
        scenario.fault_seed = n.value();
      } else if (command == "store") {
        if (args[0] == "mem") {
          scenario.file_store = false;
          scenario.journal = false;
        } else if (args[0] == "file") {
          scenario.file_store = true;
          scenario.journal = false;
        } else if (args[0] == "journal") {
          scenario.file_store = true;
          scenario.journal = true;
        } else {
          return syntax_error(line, "store takes mem, file, or journal");
        }
      } else {  // scheme
        if (args[0] == "voting") {
          scenario.scheme = SchemeKind::kVoting;
        } else if (args[0] == "available-copy") {
          scenario.scheme = SchemeKind::kAvailableCopy;
        } else if (args[0] == "naive-available-copy") {
          scenario.scheme = SchemeKind::kNaiveAvailableCopy;
        } else {
          return syntax_error(line, "unknown scheme '" + args[0] + "'");
        }
      }
      continue;
    }

    bool known = false;
    for (const auto& [name, arity] : kArity) {
      if (command != name) continue;
      known = true;
      if (args.size() != arity) {
        return syntax_error(line, command + " takes " +
                                      std::to_string(arity) + " argument(s)");
      }
      break;
    }
    if (!known) return syntax_error(line, "unknown command '" + command + "'");
    if (needs_file_store(command) && !scenario.file_store) {
      return syntax_error(line, command + " requires `store file`");
    }
    if (command == "checkpoint-site" && !scenario.journal) {
      return syntax_error(line, command + " requires `store journal`");
    }
    actions_started = true;
    scenario.steps.push_back(ScenarioStep{line, command, std::move(args)});
  }
  return scenario;
}

Result<ScenarioOutcome> run_scenario(const Scenario& scenario) {
  const GroupConfig config = GroupConfig::majority(
      scenario.sites, scenario.blocks, scenario.block_size);
  std::optional<ScratchDirectory> scratch;
  std::optional<ReplicaGroup> built;
  if (scenario.file_store) {
    scratch.emplace();
    PersistentOptions persist;
    persist.directory = scratch->string();
    persist.journal = scenario.journal;
    built.emplace(scenario.scheme, config, std::move(persist));
  } else {
    built.emplace(scenario.scheme, config);
  }
  ReplicaGroup& group = *built;
  group.faults().reseed(scenario.fault_seed);
  ScenarioOutcome outcome;
  // Scrub knobs accumulate across scrub-interval / scrub-throttle steps.
  ScrubOptions scrub_options;

  const auto site_of = [&](std::size_t line,
                           const std::string& text) -> Result<SiteId> {
    auto value = parse_number(line, text, "site id");
    if (!value) return value.status();
    if (value.value() >= scenario.sites) {
      return syntax_error(line, "site " + text + " out of range");
    }
    return static_cast<SiteId>(value.value());
  };
  const auto block_of = [&](std::size_t line,
                            const std::string& text) -> Result<BlockId> {
    auto value = parse_number(line, text, "block id");
    if (!value) return value.status();
    if (value.value() >= scenario.blocks) {
      return syntax_error(line, "block " + text + " out of range");
    }
    return value.value();
  };
  const auto note = [&](const ScenarioStep& step, const std::string& text) {
    outcome.transcript.push_back("line " + std::to_string(step.line) + ": " +
                                 step.command + " -> " + text);
  };

  for (const auto& step : scenario.steps) {
    ++outcome.steps_executed;
    const std::size_t line = step.line;

    if (step.command == "crash") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      group.crash_site(site.value());
      note(step, "site " + step.args[0] + " failed");
    } else if (step.command == "recover" || step.command == "comeback") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      group.transport().set_up(site.value(), true);
      const Status status = group.replica(site.value()).recover();
      group.retry_comatose();
      if (step.command == "recover" && !status.is_ok()) {
        return expectation_failed(
            line, "recovery of site " + step.args[0] +
                      " was expected to succeed: " + status.to_string());
      }
      note(step, status.to_string());
    } else if (step.command == "retry") {
      const std::size_t recovered = group.retry_comatose();
      note(step, std::to_string(recovered) + " site(s) became available");
    } else if (step.command == "write" || step.command == "fail-write") {
      auto via = site_of(line, step.args[0]);
      if (!via) return via.status();
      auto block = block_of(line, step.args[1]);
      if (!block) return block.status();
      const Status status =
          group.write(via.value(), block.value(),
                      text_payload(step.args[2], scenario.block_size));
      const bool want_success = step.command == "write";
      if (status.is_ok() != want_success) {
        return expectation_failed(
            line, std::string("write was expected to ") +
                      (want_success ? "succeed" : "fail") + " but " +
                      (status.is_ok() ? "succeeded" : status.to_string()));
      }
      note(step, status.to_string());
    } else if (step.command == "read" || step.command == "fail-read") {
      auto via = site_of(line, step.args[0]);
      if (!via) return via.status();
      auto block = block_of(line, step.args[1]);
      if (!block) return block.status();
      auto data = group.read(via.value(), block.value());
      if (step.command == "fail-read") {
        if (data.is_ok()) {
          return expectation_failed(line, "read was expected to fail");
        }
        note(step, data.status().to_string());
      } else {
        if (!data.is_ok()) {
          return expectation_failed(
              line, "read was expected to succeed: " +
                        data.status().to_string());
        }
        const std::string got = payload_text(data.value());
        if (got != step.args[2]) {
          return expectation_failed(line, "read returned '" + got +
                                              "', expected '" + step.args[2] +
                                              "'");
        }
        note(step, "'" + got + "'");
      }
    } else if (step.command == "write-range" ||
               step.command == "fail-write-range") {
      auto via = site_of(line, step.args[0]);
      if (!via) return via.status();
      auto first = block_of(line, step.args[1]);
      if (!first) return first.status();
      auto count = parse_number(line, step.args[2], "block count");
      if (!count) return count.status();
      if (count.value() == 0 ||
          count.value() > scenario.blocks - first.value()) {
        return syntax_error(line, "range out of bounds");
      }
      // The payload repeats the text in every block of the range.
      const storage::BlockData one =
          text_payload(step.args[3], scenario.block_size);
      storage::BlockData payload;
      payload.reserve(count.value() * scenario.block_size);
      for (std::uint64_t i = 0; i < count.value(); ++i) {
        payload.insert(payload.end(), one.begin(), one.end());
      }
      const Status status =
          group.write_range(via.value(), first.value(), payload);
      const bool want_success = step.command == "write-range";
      if (status.is_ok() != want_success) {
        return expectation_failed(
            line, std::string("write-range was expected to ") +
                      (want_success ? "succeed" : "fail") + " but " +
                      (status.is_ok() ? "succeeded" : status.to_string()));
      }
      note(step, status.to_string());
    } else if (step.command == "read-range") {
      auto via = site_of(line, step.args[0]);
      if (!via) return via.status();
      auto first = block_of(line, step.args[1]);
      if (!first) return first.status();
      auto count = parse_number(line, step.args[2], "block count");
      if (!count) return count.status();
      if (count.value() == 0 ||
          count.value() > scenario.blocks - first.value()) {
        return syntax_error(line, "range out of bounds");
      }
      auto data = group.read_range(via.value(), first.value(), count.value());
      if (!data.is_ok()) {
        return expectation_failed(line, "read-range was expected to succeed: " +
                                            data.status().to_string());
      }
      for (std::uint64_t i = 0; i < count.value(); ++i) {
        const storage::BlockData one(
            data.value().begin() +
                static_cast<std::ptrdiff_t>(i * scenario.block_size),
            data.value().begin() +
                static_cast<std::ptrdiff_t>((i + 1) * scenario.block_size));
        const std::string got = payload_text(one);
        if (got != step.args[3]) {
          return expectation_failed(
              line, "read-range block " +
                        std::to_string(first.value() + i) + " returned '" +
                        got + "', expected '" + step.args[3] + "'");
        }
      }
      note(step, "'" + step.args[3] + "' x " + step.args[2]);
    } else if (step.command == "partition") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      auto part = parse_number(line, step.args[1], "partition group");
      if (!part) return part.status();
      group.transport().set_partition_group(site.value(),
                                            static_cast<int>(part.value()));
      note(step, "site " + step.args[0] + " in partition " + step.args[1]);
    } else if (step.command == "heal") {
      group.transport().clear_partitions();
      group.faults().heal();
      note(step, "partitions and fault rules cleared");
    } else if (step.command == "drop-rate" || step.command == "dup-rate" ||
               step.command == "corrupt-rate" ||
               step.command == "delay-ms") {
      auto from = site_of(line, step.args[0]);
      if (!from) return from.status();
      auto to = site_of(line, step.args[1]);
      if (!to) return to.status();
      net::FaultRule rule =
          group.faults().link_rule(from.value(), to.value());
      if (step.command == "delay-ms") {
        auto ms = parse_number(line, step.args[2], "delay");
        if (!ms) return ms.status();
        rule.delay = std::chrono::milliseconds(ms.value());
      } else {
        auto p = parse_probability(line, step.args[2], "probability");
        if (!p) return p.status();
        if (step.command == "drop-rate") {
          rule.drop = p.value();
        } else if (step.command == "dup-rate") {
          rule.duplicate = p.value();
        } else {
          rule.corrupt = p.value();
        }
      }
      group.faults().set_link_rule(from.value(), to.value(), rule);
      note(step, "link " + step.args[0] + "->" + step.args[1] + " " +
                     step.command + " " + step.args[2]);
    } else if (step.command == "block-link") {
      auto from = site_of(line, step.args[0]);
      if (!from) return from.status();
      auto to = site_of(line, step.args[1]);
      if (!to) return to.status();
      group.faults().block_link(from.value(), to.value());
      note(step, "link " + step.args[0] + "->" + step.args[1] + " blocked");
    } else if (step.command == "sync-site") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      const Status status = group.sync_site(site.value());
      if (!status.is_ok()) {
        // An armed crash point firing during the sync is the expected way
        // to tear a commit; anything else is a real failure.
        if (!scenario.file_store ||
            !group.crash_points(site.value()).crashed()) {
          return expectation_failed(line,
                                    "sync of site " + step.args[0] +
                                        " failed: " + status.to_string());
        }
        note(step, "armed crash fired during sync");
      } else {
        note(step, "site " + step.args[0] + " synced");
      }
    } else if (step.command == "arm-crash") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      const storage::CrashPoint point =
          storage::crash_point_from_name(step.args[1]);
      if (point == storage::CrashPoint::kNone) {
        return syntax_error(line, "unknown crash point '" + step.args[1] + "'");
      }
      const auto in = [point](auto& list) {
        for (const storage::CrashPoint p : list) {
          if (p == point) return true;
        }
        return false;
      };
      if (scenario.journal ? !in(storage::kJournalCrashPoints)
                           : !in(storage::kAllCrashPoints)) {
        return syntax_error(line, "crash point '" + step.args[1] +
                                      "' not available with this store mode");
      }
      auto nth = parse_number(line, step.args[2], "event index");
      if (!nth) return nth.status();
      group.crash_points(site.value())
          .arm(storage::CrashSchedule{point, nth.value()});
      note(step, "site " + step.args[0] + " armed at " + step.args[1] +
                     " #" + step.args[2]);
    } else if (step.command == "checkpoint-site") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      const Status status = group.checkpoint_site(site.value());
      if (!status.is_ok()) {
        // An armed checkpoint crash point firing here is the expected way
        // to tear a checkpoint; anything else is a real failure.
        if (!group.crash_points(site.value()).crashed()) {
          return expectation_failed(line,
                                    "checkpoint of site " + step.args[0] +
                                        " failed: " + status.to_string());
        }
        note(step, "armed crash fired during checkpoint");
      } else {
        note(step, "site " + step.args[0] + " checkpointed");
      }
    } else if (step.command == "crash-site") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      group.kill_site(site.value());
      note(step, "site " + step.args[0] + " killed (store handle dropped)");
    } else if (step.command == "restart-site") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      const Status status = group.restart_site(site.value());
      if (!status.is_ok() && status.code() != ErrorCode::kUnavailable) {
        return expectation_failed(line, "restart of site " + step.args[0] +
                                            " failed: " + status.to_string());
      }
      note(step, status.to_string());
    } else if (step.command == "scrub-interval") {
      auto ms = parse_number(line, step.args[0], "interval");
      if (!ms) return ms.status();
      scrub_options.cycle_interval = std::chrono::milliseconds(ms.value());
      group.set_scrub_options(scrub_options);
      note(step, "cycle interval " + step.args[0] + "ms");
    } else if (step.command == "scrub-throttle") {
      auto bytes = parse_number(line, step.args[0], "byte budget");
      if (!bytes) return bytes.status();
      auto ops = parse_number(line, step.args[1], "op budget");
      if (!ops) return ops.status();
      scrub_options.bytes_per_sec = bytes.value();
      scrub_options.ops_per_sec = ops.value();
      group.set_scrub_options(scrub_options);
      note(step, step.args[0] + " bytes/s, " + step.args[1] + " ops/s");
    } else if (step.command == "scrub-site") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      auto report = group.scrub_site(site.value());
      if (!report) {
        return expectation_failed(line, "scrub of site " + step.args[0] +
                                            " failed: " +
                                            report.status().to_string());
      }
      note(step, "scanned " + std::to_string(report.value().scanned) +
                     ", healed " +
                     std::to_string(report.value().stale_healed +
                                    report.value().corrupt_healed));
    } else if (step.command == "scrub-wait") {
      auto rounds = parse_number(line, step.args[0], "round bound");
      if (!rounds) return rounds.status();
      if (rounds.value() == 0) {
        return syntax_error(line, "scrub-wait needs at least one round");
      }
      auto used = group.scrub_until_converged(rounds.value());
      if (!used) {
        return expectation_failed(line, used.status().to_string());
      }
      note(step, "converged in " + std::to_string(used.value()) +
                     " round(s)");
    } else if (step.command == "expect-state") {
      auto site = site_of(line, step.args[0]);
      if (!site) return site.status();
      const char* actual =
          net::site_state_name(group.replica(site.value()).state());
      if (step.args[1] != actual) {
        return expectation_failed(line, "site " + step.args[0] + " is " +
                                            actual + ", expected " +
                                            step.args[1]);
      }
      note(step, actual);
    } else if (step.command == "expect-available") {
      const bool want = step.args[0] == "true";
      if (!want && step.args[0] != "false") {
        return syntax_error(line, "expect-available takes true or false");
      }
      const bool actual = group.group_available();
      if (actual != want) {
        return expectation_failed(
            line, std::string("group availability is ") +
                      (actual ? "true" : "false") + ", expected " +
                      step.args[0]);
      }
      note(step, actual ? "true" : "false");
    } else {
      return syntax_error(line, "unhandled command '" + step.command + "'");
    }
  }
  return outcome;
}

}  // namespace reldev::core
