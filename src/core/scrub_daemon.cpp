#include "reldev/core/scrub_daemon.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "reldev/storage/scrubber.hpp"
#include "reldev/util/logging.hpp"

namespace reldev::core {

std::string format_scrub_stats(const ScrubStats& stats) {
  std::ostringstream out;
  out << "scanned=" << stats.blocks_scanned
      << " digests=" << stats.digests_exchanged
      << " stale-healed=" << stats.stale_healed
      << " corrupt-healed=" << stats.corrupt_healed
      << " cycles=" << stats.cycles_completed
      << " throttle-stalls=" << stats.throttle_stalls
      << " peer-skips=" << stats.peer_unreachable_skips
      << " ambiguous=" << stats.ambiguous_mismatches
      << " heal-failures=" << stats.heal_failures;
  return out.str();
}

ScrubDaemon::ScrubDaemon(ReplicaBase& replica, ScrubOptions options)
    : replica_(replica) {
  MutexLock lock(mutex_);
  options_ = options;
  bytes_bucket_ = TokenBucket(options.bytes_per_sec, options.bytes_per_sec);
  ops_bucket_ = TokenBucket(options.ops_per_sec, options.ops_per_sec);
  jitter_ = Rng(options.jitter_seed ^ (0x5c20bb3dull + replica.id()));
  cursor_ = storage::load_scrub_cursor(replica.store());
  if (cursor_ >= replica.config().block_count) cursor_ = 0;
}

ScrubDaemon::~ScrubDaemon() { stop(); }

Result<ScrubReport> ScrubDaemon::step() {
  {
    MutexLock lock(mutex_);
    if (running_) {
      return errors::conflict(
          "background scrub thread is running; stop it before driving "
          "synchronously");
    }
  }
  return do_step();
}

Result<ScrubReport> ScrubDaemon::run_cycle() {
  ScrubReport total;
  // batch_blocks >= 1, so a cycle is at most block_count steps.
  const std::size_t max_steps = replica_.config().block_count + 1;
  for (std::size_t i = 0; i < max_steps; ++i) {
    auto report = step();
    if (!report) return report.status();
    total.scanned += report.value().scanned;
    total.stale_healed += report.value().stale_healed;
    total.corrupt_healed += report.value().corrupt_healed;
    if (report.value().cycle_completed) {
      total.cycle_completed = true;
      return total;
    }
  }
  return errors::internal("scrub cycle failed to wrap the device");
}

std::chrono::nanoseconds ScrubDaemon::charge(TokenBucket& bucket,
                                             std::uint64_t tokens) {
  if (bucket.unlimited() || tokens == 0) {
    return std::chrono::nanoseconds::zero();
  }
  const auto now = clock_ ? clock_() : TokenBucket::Clock::now();
  const auto delay = bucket.acquire(tokens, now);
  if (delay.count() > 0) ++stats_.throttle_stalls;
  return delay;
}

Result<ScrubReport> ScrubDaemon::do_step() {
  if (replica_.state() != SiteState::kAvailable) {
    return errors::unavailable("replica is not available; scrub deferred");
  }
  const std::size_t block_count = replica_.config().block_count;
  const std::size_t block_size = replica_.config().block_size;
  const SiteId self = replica_.id();
  if (block_count == 0) return ScrubReport{0, 0, 0, true};

  // Snapshot the batch plan under the lock; no lock is held across store,
  // replica, or transport calls.
  std::uint64_t first = 0;
  std::size_t batch = 0;
  SiteSet targets;
  std::chrono::nanoseconds delay{0};
  std::function<void()> preheal;
  std::function<void(BlockId)> listener;
  {
    MutexLock lock(mutex_);
    if (cursor_ >= block_count) cursor_ = 0;
    first = cursor_;
    batch = std::min(std::max<std::size_t>(options_.batch_blocks, 1),
                     block_count - first);
    // Local scan reads are the scrub's disk bandwidth; charge them first.
    delay = std::max(delay, charge(bytes_bucket_, batch * block_size));
    delay = std::max(delay, charge(ops_bucket_, 1));
    for (SiteId site = 0; site < replica_.config().site_count(); ++site) {
      if (site == self) continue;
      const auto it = peer_backoff_.find(site);
      if (it != peer_backoff_.end() && it->second > 0) {
        ++stats_.peer_unreachable_skips;
        continue;
      }
      targets.insert(site);
    }
    preheal = preheal_hook_;
    listener = heal_listener_;
  }

  auto scan = storage::scan_digests(replica_.store(), first, batch);
  if (!scan) return scan.status();
  const std::size_t scanned = scan.value().versions.size();

  // Digest exchange: one batched request to every peer not in backoff.
  std::vector<net::GatherReply> replies;
  if (!targets.empty() && scanned > 0) {
    replies = replica_.transport().multicast_call(
        self, targets,
        net::Message{self,
                     net::DigestRequest{
                         first, static_cast<std::uint32_t>(scanned)}});
  }
  struct PeerDigest {
    SiteId site;
    storage::VersionNumber version;
    std::uint32_t digest;
  };
  std::vector<std::vector<PeerDigest>> by_block(scanned);
  std::set<SiteId> replied;
  for (const auto& [site, reply] : replies) {
    if (!reply.holds<net::DigestReply>()) continue;
    const auto& digest = reply.as<net::DigestReply>();
    if (digest.first != first || digest.versions.size() != scanned ||
        digest.digests.size() != scanned) {
      continue;  // malformed; treat like no reply
    }
    replied.insert(site);
    for (std::size_t i = 0; i < scanned; ++i) {
      by_block[i].push_back(
          PeerDigest{site, digest.versions[i], digest.digests[i]});
    }
  }

  // Classify each block: stale (a peer holds a newer version), corrupt
  // (same version, our digest is in the strict minority), or ambiguous
  // (mismatch with no majority — left for a cycle with more voters; a
  // wrong adoption could destroy the only good copy).
  const std::set<BlockId> demoted(scan.value().demoted.begin(),
                                  scan.value().demoted.end());
  std::map<SiteId, std::vector<BlockId>> fetch_by_site;
  std::vector<std::pair<BlockId, storage::VersionNumber>> corrupt;
  std::size_t ambiguous = 0;
  for (std::size_t i = 0; i < scanned; ++i) {
    const BlockId block = first + i;
    const storage::VersionNumber local_version = scan.value().versions[i];
    const std::uint32_t local_digest = scan.value().digests[i];
    storage::VersionNumber max_version = local_version;
    SiteId max_site = self;
    for (const auto& peer : by_block[i]) {
      if (peer.version > max_version) {
        max_version = peer.version;
        max_site = peer.site;
      }
    }
    if (max_version > local_version) {
      fetch_by_site[max_site].push_back(block);
      continue;
    }
    std::map<std::uint32_t, int> votes;
    votes[local_digest] = 1;
    for (const auto& peer : by_block[i]) {
      if (peer.version == local_version) ++votes[peer.digest];
    }
    if (votes.size() <= 1) continue;  // full agreement
    const int local_votes = votes[local_digest];
    int best_other = 0;
    for (const auto& [digest, count] : votes) {
      if (digest != local_digest) best_other = std::max(best_other, count);
    }
    if (best_other > local_votes) {
      corrupt.emplace_back(block, local_version);
    } else if (best_other == local_votes) {
      ++ambiguous;  // tie — adopting could destroy the only good copy
    }
    // Local strict majority: the damage is at a peer; its own scrub (of
    // the same digest set) classifies it as corrupt and heals it there.
  }

  if (preheal) preheal();

  // Heal off the hot path. A peer failing mid-heal costs this batch
  // nothing but a counter; the blocks stay flagged by the next cycle.
  std::size_t stale_healed = 0;
  std::size_t corrupt_healed = 0;
  std::size_t heal_failures = 0;
  std::vector<BlockId> healed_blocks;
  for (const auto& [source, blocks] : fetch_by_site) {
    {
      MutexLock lock(mutex_);
      delay = std::max(delay, charge(ops_bucket_, 1));
      delay = std::max(
          delay, charge(bytes_bucket_, blocks.size() * block_size));
    }
    auto healed = replica_.scrub_heal_stale(blocks, source);
    if (!healed) {
      ++heal_failures;
      continue;
    }
    for (const BlockId block : healed.value()) {
      healed_blocks.push_back(block);
      if (demoted.contains(block)) {
        ++corrupt_healed;  // latent local corruption found by the scan
      } else {
        ++stale_healed;
      }
    }
  }
  for (const auto& [block, seen_version] : corrupt) {
    // Foreground-safety: a version that moved since the digest exchange
    // means a fresh foreground write — never demote it.
    auto current = replica_.store().version_of(block);
    if (!current || current.value() != seen_version) continue;
    {
      MutexLock lock(mutex_);
      delay = std::max(delay, charge(ops_bucket_, 1));
      delay = std::max(delay, charge(bytes_bucket_, block_size));
    }
    if (auto status = replica_.scrub_heal_corrupt(block); !status.is_ok()) {
      RELDEV_WARN("scrub") << "site " << self << ": corrupt-heal of block "
                           << block << " failed (" << status.to_string()
                           << "); retrying next cycle";
      ++heal_failures;
      continue;
    }
    ++corrupt_healed;
    healed_blocks.push_back(block);
  }
  if (listener) {
    for (const BlockId block : healed_blocks) listener(block);
  }

  const std::uint64_t next =
      (first + scanned >= block_count) ? 0 : first + scanned;
  const bool wrapped = next == 0;
  {
    MutexLock lock(mutex_);
    cursor_ = next;
    stats_.blocks_scanned += scanned;
    stats_.digests_exchanged += replied.size();
    stats_.stale_healed += stale_healed;
    stats_.corrupt_healed += corrupt_healed;
    stats_.ambiguous_mismatches += ambiguous;
    stats_.heal_failures += heal_failures;
    if (wrapped) {
      ++stats_.cycles_completed;
      for (auto& [site, cycles] : peer_backoff_) {
        if (cycles > 0) --cycles;
      }
    }
    for (const SiteId site : targets) {
      if (replied.contains(site)) {
        peer_failures_.erase(site);
        peer_backoff_.erase(site);
      } else {
        const int failures = ++peer_failures_[site];
        const int base = std::max(options_.peer_backoff_cycles, 1);
        const int backoff = base << std::min(failures - 1, 8);
        peer_backoff_[site] =
            std::min(backoff, std::max(options_.peer_backoff_max_cycles, 1));
      }
    }
    pending_delay_ = delay;
  }
  // Persist the cursor so a restarted site resumes mid-cycle. Best-effort:
  // a failed persist costs a partial rescan after the next restart.
  if (auto status = storage::save_scrub_cursor(replica_.store(), next);
      !status.is_ok()) {
    RELDEV_WARN("scrub") << "site " << self << ": persisting scrub cursor "
                         << "failed (" << status.to_string() << ")";
  }
  return ScrubReport{scanned, stale_healed, corrupt_healed, wrapped};
}

void ScrubDaemon::worker_loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_requested_) return;
    }
    auto report = do_step();
    MutexLock lock(mutex_);
    if (stop_requested_) return;
    std::chrono::nanoseconds sleep_for{0};
    if (!report) {
      // Replica comatose/failed or store trouble: retry after a pause.
      sleep_for = options_.cycle_interval;
    } else {
      sleep_for = pending_delay_;  // repay throttle debt
      pending_delay_ = std::chrono::nanoseconds::zero();
      if (report.value().cycle_completed) {
        const auto base = std::chrono::nanoseconds(options_.cycle_interval);
        if (base.count() > 0) {
          const double jitter = std::clamp(options_.interval_jitter, 0.0, 1.0);
          const double factor = 1.0 + jitter * (2.0 * jitter_.next_double() - 1.0);
          sleep_for += std::chrono::nanoseconds(
              static_cast<std::int64_t>(static_cast<double>(base.count()) *
                                        factor));
        }
      }
    }
    if (sleep_for.count() > 0) {
      (void)wake_.wait_for(mutex_, sleep_for);
    }
    if (stop_requested_) return;
  }
}

void ScrubDaemon::start() {
  MutexLock lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void ScrubDaemon::stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  worker_.join();
  MutexLock lock(mutex_);
  running_ = false;
  stop_requested_ = false;
}

bool ScrubDaemon::running() const {
  MutexLock lock(mutex_);
  return running_;
}

ScrubStats ScrubDaemon::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

ScrubOptions ScrubDaemon::options() const {
  MutexLock lock(mutex_);
  return options_;
}

void ScrubDaemon::set_options(const ScrubOptions& options) {
  MutexLock lock(mutex_);
  options_ = options;
  bytes_bucket_ = TokenBucket(options.bytes_per_sec, options.bytes_per_sec);
  ops_bucket_ = TokenBucket(options.ops_per_sec, options.ops_per_sec);
}

std::uint64_t ScrubDaemon::cursor() const {
  MutexLock lock(mutex_);
  return cursor_;
}

void ScrubDaemon::set_heal_listener(std::function<void(BlockId)> listener) {
  MutexLock lock(mutex_);
  heal_listener_ = std::move(listener);
}

void ScrubDaemon::set_clock(
    std::function<TokenBucket::Clock::time_point()> clock) {
  MutexLock lock(mutex_);
  clock_ = std::move(clock);
}

void ScrubDaemon::set_preheal_hook(std::function<void()> hook) {
  MutexLock lock(mutex_);
  preheal_hook_ = std::move(hook);
}

}  // namespace reldev::core
