#include "reldev/core/voting_replica.hpp"

#include <map>

#include "reldev/util/logging.hpp"

namespace reldev::core {

VotingReplica::VotingReplica(SiteId self, GroupConfig config,
                             storage::BlockStore& store,
                             net::Transport& transport)
    : ReplicaBase(self, std::move(config), store, transport) {}

VotingReplica::Votes VotingReplica::collect_votes(net::AccessKind access,
                                                  BlockId block) {
  Votes votes;
  // The local site always votes for itself. A store that died under us
  // mid-operation votes version 0 — the peers' copies then dominate.
  auto local = store_.version_of(block);
  votes.weight_millivotes = config_.weight_of(self_);
  votes.max_version = local ? local.value() : 0;
  votes.max_site = self_;

  const net::Message request{self_, net::VoteRequest{access, block}};
  // Reads stop gathering as soon as the read quorum is assembled: any read
  // quorum intersects every write quorum, so the newest committed version
  // is already among the early replies and stragglers add nothing but
  // latency. Writes keep the full gather — the push that follows repairs
  // every stale voter it reaches, and shrinking that set would change the
  // repair propagation the paper's traffic analysis counts.
  net::EarlyStop early_stop;
  if (access == net::AccessKind::kRead) {
    const std::uint64_t self_weight = votes.weight_millivotes;
    const std::uint64_t quorum = config_.read_quorum_millivotes;
    early_stop = [self_weight,
                  quorum](const std::vector<net::GatherReply>& replies) {
      std::uint64_t weight = self_weight;
      for (const auto& [site, reply] : replies) {
        if (!reply.holds<net::VoteReply>()) continue;
        weight += reply.as<net::VoteReply>().weight_millivotes;
      }
      return weight >= quorum;
    };
  }
  votes.replies = transport_.multicast_call(self_, peers(), request,
                                            early_stop);
  for (const auto& [site, reply] : votes.replies) {
    if (!reply.holds<net::VoteReply>()) continue;
    const auto& vote = reply.as<net::VoteReply>();
    votes.weight_millivotes += vote.weight_millivotes;
    if (vote.version > votes.max_version) {
      votes.max_version = vote.version;
      votes.max_site = site;
    }
  }
  return votes;
}

Result<storage::BlockData> VotingReplica::read(BlockId block) {
  if (state_ == SiteState::kFailed) {
    return errors::unavailable("site is failed");
  }
  if (auto status = store_.version_of(block); !status.is_ok()) {
    return status.status();  // block id out of range
  }
  // Figure 3: collect votes, check the read quorum, refresh the local copy
  // if a peer presented a higher version, then serve locally.
  Votes votes = collect_votes(net::AccessKind::kRead, block);
  if (votes.weight_millivotes < config_.read_quorum_millivotes) {
    return errors::unavailable(
        "no read quorum (" + std::to_string(votes.weight_millivotes) + " of " +
        std::to_string(config_.read_quorum_millivotes) + " millivotes)");
  }
  const auto local = store_.version_of(block);
  if (!local) return local.status();
  if (local.value() < votes.max_version) {
    if (auto status = fetch_from(votes.max_site, block); !status.is_ok()) {
      return status;
    }
  }
  auto stored = store_.read(block);
  if (!stored && stored.status().code() == ErrorCode::kCorruption) {
    // The local record turned out torn or corrupt under its cached version
    // number. Demote it to needs-repair and refresh from the best voter,
    // exactly as if our copy had merely been out of date. If no voter holds
    // a newer copy the block legitimately reads back as version 0 zeros —
    // the media fault destroyed the only copy we could reach.
    RELDEV_WARN("voting") << "site " << self_ << ": block " << block
                          << " corrupt locally; healing from quorum";
    if (auto status = store_.demote(block); !status.is_ok()) return status;
    storage::VersionNumber best = 0;
    SiteId source = self_;
    for (const auto& [site, reply] : votes.replies) {
      if (!reply.holds<net::VoteReply>()) continue;
      const auto& vote = reply.as<net::VoteReply>();
      if (vote.version > best) {
        best = vote.version;
        source = site;
      }
    }
    if (source != self_) {
      if (auto status = fetch_from(source, block); !status.is_ok()) {
        return status;
      }
    }
    stored = store_.read(block);
  }
  if (!stored) return stored.status();
  return std::move(stored).value().data;
}

Status VotingReplica::fetch_from(SiteId source, BlockId block) {
  auto reply = transport_.call(
      self_, source, net::Message{self_, net::BlockFetchRequest{block}});
  if (!reply) return reply.status();
  if (!reply.value().holds<net::BlockFetchReply>()) {
    return errors::protocol("unexpected reply to block fetch");
  }
  const auto& fetched = reply.value().as<net::BlockFetchReply>();
  return store_.write(block, fetched.data, fetched.version);
}

Status VotingReplica::write(BlockId block, std::span<const std::byte> data) {
  if (state_ == SiteState::kFailed) {
    return errors::unavailable("site is failed");
  }
  if (data.size() != config_.block_size) {
    return errors::invalid_argument("payload size != block size");
  }
  if (auto status = store_.version_of(block); !status.is_ok()) {
    return status.status();
  }
  // Figure 4: collect votes, check the write quorum, then push the block
  // with version max+1 to every site in the quorum — repairing any stale
  // operational copy as a side effect.
  Votes votes = collect_votes(net::AccessKind::kWrite, block);
  if (votes.weight_millivotes < config_.write_quorum_millivotes) {
    return errors::unavailable(
        "no write quorum (" + std::to_string(votes.weight_millivotes) +
        " of " + std::to_string(config_.write_quorum_millivotes) +
        " millivotes)");
  }
  const storage::VersionNumber next = votes.max_version + 1;
  if (auto status = store_.write(block, data, next); !status.is_ok()) {
    return status;
  }
  SiteSet quorum;
  for (const auto& [site, reply] : votes.replies) {
    if (reply.holds<net::VoteReply>()) quorum.insert(site);
  }
  net::BlockUpdate update{block, next,
                          storage::BlockData(data.begin(), data.end())};
  return transport_.multicast(self_, quorum,
                              net::Message{self_, std::move(update)});
}

VotingReplica::RangeVotes VotingReplica::collect_range_votes(
    net::AccessKind access, BlockId first, std::size_t count) {
  RangeVotes votes;
  votes.weight_millivotes = config_.weight_of(self_);
  votes.max_versions.resize(count);
  votes.max_sites.assign(count, self_);
  for (std::size_t i = 0; i < count; ++i) {
    // As in the scalar round: a store that died under us votes version 0.
    auto local = store_.version_of(first + i);
    votes.max_versions[i] = local ? local.value() : 0;
  }

  const net::Message request{
      self_, net::RangeVoteRequest{access, first,
                                   static_cast<std::uint32_t>(count)}};
  // Same early-stop policy as the scalar round: reads stop at the read
  // quorum (any read quorum intersects every write quorum, so the newest
  // committed version of every block in the range is already among the
  // early replies); writes gather fully so the grouped push repairs every
  // stale voter.
  net::EarlyStop early_stop;
  if (access == net::AccessKind::kRead) {
    const std::uint64_t self_weight = votes.weight_millivotes;
    const std::uint64_t quorum = config_.read_quorum_millivotes;
    early_stop = [self_weight,
                  quorum](const std::vector<net::GatherReply>& replies) {
      std::uint64_t weight = self_weight;
      for (const auto& [site, reply] : replies) {
        if (!reply.holds<net::RangeVoteReply>()) continue;
        weight += reply.as<net::RangeVoteReply>().weight_millivotes;
      }
      return weight >= quorum;
    };
  }
  votes.replies = transport_.multicast_call(self_, peers(), request,
                                            early_stop);
  for (const auto& [site, reply] : votes.replies) {
    if (!reply.holds<net::RangeVoteReply>()) continue;
    const auto& vote = reply.as<net::RangeVoteReply>();
    if (vote.versions.size() != count) continue;  // malformed; ignore vote
    votes.weight_millivotes += vote.weight_millivotes;
    for (std::size_t i = 0; i < count; ++i) {
      if (vote.versions[i] > votes.max_versions[i]) {
        votes.max_versions[i] = vote.versions[i];
        votes.max_sites[i] = site;
      }
    }
  }
  return votes;
}

Result<storage::BlockData> VotingReplica::read_range(BlockId first,
                                                     std::size_t count) {
  if (state_ == SiteState::kFailed) {
    return errors::unavailable("site is failed");
  }
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  // Batched Figure 3: ONE vote round for the whole range instead of one per
  // block, then one grouped fetch per site that holds newer copies.
  RangeVotes votes = collect_range_votes(net::AccessKind::kRead, first, count);
  if (votes.weight_millivotes < config_.read_quorum_millivotes) {
    return errors::unavailable(
        "no read quorum (" + std::to_string(votes.weight_millivotes) + " of " +
        std::to_string(config_.read_quorum_millivotes) + " millivotes)");
  }
  // Group the stale blocks by the site holding their newest version so the
  // repair costs one round trip per source site, not one per block.
  std::map<SiteId, std::vector<BlockId>> stale_by_site;
  for (std::size_t i = 0; i < count; ++i) {
    const BlockId block = first + i;
    const auto local = store_.version_of(block);
    if (!local) return local.status();
    if (local.value() < votes.max_versions[i]) {
      stale_by_site[votes.max_sites[i]].push_back(block);
    }
  }
  for (auto& [site, blocks] : stale_by_site) {
    auto reply = transport_.call(
        self_, site,
        net::Message{self_, net::BatchFetchRequest{std::move(blocks)}});
    if (!reply) return reply.status();
    if (!reply.value().holds<net::BatchFetchReply>()) {
      return errors::protocol("unexpected reply to batch fetch");
    }
    for (const auto& update : reply.value().as<net::BatchFetchReply>().updates) {
      auto current = store_.version_of(update.block);
      if (!current) return current.status();
      if (update.version <= current.value()) continue;
      if (auto status = store_.write(update.block, update.data, update.version);
          !status.is_ok()) {
        return status;
      }
    }
  }
  storage::BlockData out;
  out.reserve(count * config_.block_size);
  for (std::size_t i = 0; i < count; ++i) {
    auto stored = store_.read(first + i);
    if (!stored && stored.status().code() == ErrorCode::kCorruption) {
      // Rare media-fault path: demote the torn record and re-read the one
      // block through the scalar protocol, which heals from the best voter.
      if (auto status = store_.demote(first + i); !status.is_ok()) {
        return status;
      }
      auto healed = read(first + i);
      if (!healed) return healed.status();
      out.insert(out.end(), healed.value().begin(), healed.value().end());
      continue;
    }
    if (!stored) return stored.status();
    out.insert(out.end(), stored.value().data.begin(),
               stored.value().data.end());
  }
  return out;
}

Status VotingReplica::write_range(BlockId first,
                                  std::span<const std::byte> data) {
  if (state_ == SiteState::kFailed) {
    return errors::unavailable("site is failed");
  }
  if (data.empty() || data.size() % config_.block_size != 0) {
    return errors::invalid_argument(
        "vectored write payload must be a non-empty multiple of the block "
        "size");
  }
  const std::size_t count = data.size() / config_.block_size;
  if (auto status = check_range(first, count); !status.is_ok()) return status;
  // Batched Figure 4: one vote round for the whole range. The quorum is
  // checked BEFORE any local mutation, so losing it fails the batch cleanly
  // with no block written anywhere (atomic-none).
  RangeVotes votes = collect_range_votes(net::AccessKind::kWrite, first, count);
  if (votes.weight_millivotes < config_.write_quorum_millivotes) {
    return errors::unavailable(
        "no write quorum (" + std::to_string(votes.weight_millivotes) +
        " of " + std::to_string(config_.write_quorum_millivotes) +
        " millivotes)");
  }
  net::BatchWriteRequest push;
  push.updates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const storage::VersionNumber next = votes.max_versions[i] + 1;
    const auto slice = data.subspan(i * config_.block_size, config_.block_size);
    if (auto status = store_.write(first + i, slice, next); !status.is_ok()) {
      return status;
    }
    push.updates.push_back(net::BlockUpdate{
        first + i, next, storage::BlockData(slice.begin(), slice.end())});
  }
  SiteSet quorum;
  for (const auto& [site, reply] : votes.replies) {
    if (reply.holds<net::RangeVoteReply>()) quorum.insert(site);
  }
  // One grouped push carries every update; a recipient applies the whole
  // batch in one message, so no reader on any site can observe a torn
  // multi-block write. The push is acknowledged so a site crashing between
  // the vote round and the push is detected: if the surviving acks no
  // longer cover a write quorum, the caller gets kUnavailable and retries.
  auto acks = transport_.multicast_call(
      self_, quorum, net::Message{self_, std::move(push)}, net::EarlyStop{});
  std::uint64_t acked_weight = config_.weight_of(self_);
  for (const auto& [site, reply] : acks) {
    if (reply.holds<net::WriteAllAck>()) {
      acked_weight += config_.weight_of(site);
    }
  }
  if (acked_weight < config_.write_quorum_millivotes) {
    return errors::unavailable(
        "batch push lost write quorum (" + std::to_string(acked_weight) +
        " of " + std::to_string(config_.write_quorum_millivotes) +
        " millivotes acked); retry");
  }
  return Status::ok();
}

Status VotingReplica::scrub_heal_corrupt(BlockId block) {
  // Voting has no repair round; heal through the vote protocol instead:
  // demote the damaged copy so our own vote offers version 0, then a
  // normal read refreshes it from the best voter.
  if (auto status = store_.demote(block); !status.is_ok()) return status;
  auto healed = read(block);
  if (!healed) return healed.status();
  return Status::ok();
}

Status VotingReplica::recover() {
  // Block-level voting needs no recovery work at repair time (§3.1): any
  // stale block is detected by its version number at the next access and
  // refreshed then. This is the scheme's "zero recovery traffic" property.
  set_state(SiteState::kAvailable);
  return Status::ok();
}

void VotingReplica::crash() { ReplicaBase::crash(); }

net::Message VotingReplica::handle_peer(const net::Message& request) {
  if (request.holds<net::VoteRequest>()) {
    const auto& vote = request.as<net::VoteRequest>();
    auto version = store_.version_of(vote.block);
    if (!version) return net::make_error(self_, version.status());
    return net::Message{
        self_, net::VoteReply{version.value(), config_.weight_of(self_)}};
  }
  // BlockFetchRequest and BatchFetchRequest are served scheme-independently
  // by ReplicaBase::handle (the scrubber fetches from any engine).
  if (request.holds<net::RangeVoteRequest>()) {
    const auto& vote = request.as<net::RangeVoteRequest>();
    if (auto status = check_range(vote.first, vote.count); !status.is_ok()) {
      return net::make_error(self_, status);
    }
    net::RangeVoteReply reply;
    reply.weight_millivotes = config_.weight_of(self_);
    reply.versions.reserve(vote.count);
    for (std::uint32_t i = 0; i < vote.count; ++i) {
      auto version = store_.version_of(vote.first + i);
      if (!version) return net::make_error(self_, version.status());
      reply.versions.push_back(version.value());
    }
    return net::Message{self_, std::move(reply)};
  }
  if (request.holds<net::StateInquiry>()) {
    return net::Message{
        self_, net::StateInfo{state_, local_versions().total(), SiteSet{}}};
  }
  if (request.holds<net::BatchWriteRequest>()) {
    // Same reasoning as the scalar BlockUpdate below: answer the call form
    // so request/reply-only transports keep the effective write quorum.
    handle_peer_oneway(request);
    return net::Message{self_, net::WriteAllAck{}};
  }
  if (request.holds<net::BlockUpdate>()) {
    // The post-write block push is normally one-way; answering the call
    // form keeps the engine usable over request/reply-only transports such
    // as TCP. Dropping it there would shrink the effective write quorum to
    // the coordinator alone and break the read-quorum intersection that
    // early-stopped reads rely on.
    handle_peer_oneway(request);
    return net::Message{self_, net::WriteAllAck{}};
  }
  return net::make_error(
      self_, errors::protocol(std::string("unexpected request ") +
                              request.name()));
}

void VotingReplica::handle_peer_oneway(const net::Message& message) {
  if (message.holds<net::BatchWriteRequest>()) {
    // The whole batch arrives in one message and is applied in one handler
    // invocation, so a site holds either all of the batch or none of it.
    for (const auto& update : message.as<net::BatchWriteRequest>().updates) {
      auto current = store_.version_of(update.block);
      if (!current) continue;
      if (update.version > current.value()) {
        store_.write(update.block, update.data, update.version).ignore_error();
      }
    }
    return;
  }
  if (message.holds<net::BlockUpdate>()) {
    const auto& update = message.as<net::BlockUpdate>();
    auto current = store_.version_of(update.block);
    if (!current) return;
    if (update.version > current.value()) {
      store_.write(update.block, update.data, update.version).ignore_error();
    }
    return;
  }
  RELDEV_WARN("voting") << "ignoring one-way " << message.name();
}

}  // namespace reldev::core
