#include "reldev/core/voting_replica.hpp"

#include "reldev/util/logging.hpp"

namespace reldev::core {

VotingReplica::VotingReplica(SiteId self, GroupConfig config,
                             storage::BlockStore& store,
                             net::Transport& transport)
    : ReplicaBase(self, std::move(config), store, transport) {}

VotingReplica::Votes VotingReplica::collect_votes(net::AccessKind access,
                                                  BlockId block) {
  Votes votes;
  // The local site always votes for itself.
  auto local = store_.version_of(block);
  RELDEV_ASSERT(local.is_ok());
  votes.weight_millivotes = config_.weight_of(self_);
  votes.max_version = local.value();
  votes.max_site = self_;

  const net::Message request{self_, net::VoteRequest{access, block}};
  // Reads stop gathering as soon as the read quorum is assembled: any read
  // quorum intersects every write quorum, so the newest committed version
  // is already among the early replies and stragglers add nothing but
  // latency. Writes keep the full gather — the push that follows repairs
  // every stale voter it reaches, and shrinking that set would change the
  // repair propagation the paper's traffic analysis counts.
  net::EarlyStop early_stop;
  if (access == net::AccessKind::kRead) {
    const std::uint64_t self_weight = votes.weight_millivotes;
    const std::uint64_t quorum = config_.read_quorum_millivotes;
    early_stop = [self_weight,
                  quorum](const std::vector<net::GatherReply>& replies) {
      std::uint64_t weight = self_weight;
      for (const auto& [site, reply] : replies) {
        if (!reply.holds<net::VoteReply>()) continue;
        weight += reply.as<net::VoteReply>().weight_millivotes;
      }
      return weight >= quorum;
    };
  }
  votes.replies = transport_.multicast_call(self_, peers(), request,
                                            early_stop);
  for (const auto& [site, reply] : votes.replies) {
    if (!reply.holds<net::VoteReply>()) continue;
    const auto& vote = reply.as<net::VoteReply>();
    votes.weight_millivotes += vote.weight_millivotes;
    if (vote.version > votes.max_version) {
      votes.max_version = vote.version;
      votes.max_site = site;
    }
  }
  return votes;
}

Result<storage::BlockData> VotingReplica::read(BlockId block) {
  if (state_ == SiteState::kFailed) {
    return errors::unavailable("site is failed");
  }
  if (auto status = store_.version_of(block); !status.is_ok()) {
    return status.status();  // block id out of range
  }
  // Figure 3: collect votes, check the read quorum, refresh the local copy
  // if a peer presented a higher version, then serve locally.
  Votes votes = collect_votes(net::AccessKind::kRead, block);
  if (votes.weight_millivotes < config_.read_quorum_millivotes) {
    return errors::unavailable(
        "no read quorum (" + std::to_string(votes.weight_millivotes) + " of " +
        std::to_string(config_.read_quorum_millivotes) + " millivotes)");
  }
  const auto local = store_.version_of(block).value();
  if (local < votes.max_version) {
    auto reply = transport_.call(self_, votes.max_site,
                                 net::Message{self_,
                                              net::BlockFetchRequest{block}});
    if (!reply) return reply.status();
    if (!reply.value().holds<net::BlockFetchReply>()) {
      return errors::protocol("unexpected reply to block fetch");
    }
    const auto& fetched = reply.value().as<net::BlockFetchReply>();
    if (auto status = store_.write(block, fetched.data, fetched.version);
        !status.is_ok()) {
      return status;
    }
  }
  auto stored = store_.read(block);
  if (!stored) return stored.status();
  return std::move(stored).value().data;
}

Status VotingReplica::write(BlockId block, std::span<const std::byte> data) {
  if (state_ == SiteState::kFailed) {
    return errors::unavailable("site is failed");
  }
  if (data.size() != config_.block_size) {
    return errors::invalid_argument("payload size != block size");
  }
  if (auto status = store_.version_of(block); !status.is_ok()) {
    return status.status();
  }
  // Figure 4: collect votes, check the write quorum, then push the block
  // with version max+1 to every site in the quorum — repairing any stale
  // operational copy as a side effect.
  Votes votes = collect_votes(net::AccessKind::kWrite, block);
  if (votes.weight_millivotes < config_.write_quorum_millivotes) {
    return errors::unavailable(
        "no write quorum (" + std::to_string(votes.weight_millivotes) +
        " of " + std::to_string(config_.write_quorum_millivotes) +
        " millivotes)");
  }
  const storage::VersionNumber next = votes.max_version + 1;
  if (auto status = store_.write(block, data, next); !status.is_ok()) {
    return status;
  }
  SiteSet quorum;
  for (const auto& [site, reply] : votes.replies) {
    if (reply.holds<net::VoteReply>()) quorum.insert(site);
  }
  net::BlockUpdate update{block, next,
                          storage::BlockData(data.begin(), data.end())};
  return transport_.multicast(self_, quorum,
                              net::Message{self_, std::move(update)});
}

Status VotingReplica::recover() {
  // Block-level voting needs no recovery work at repair time (§3.1): any
  // stale block is detected by its version number at the next access and
  // refreshed then. This is the scheme's "zero recovery traffic" property.
  set_state(SiteState::kAvailable);
  return Status::ok();
}

void VotingReplica::crash() { ReplicaBase::crash(); }

net::Message VotingReplica::handle_peer(const net::Message& request) {
  if (request.holds<net::VoteRequest>()) {
    const auto& vote = request.as<net::VoteRequest>();
    auto version = store_.version_of(vote.block);
    if (!version) return net::make_error(self_, version.status());
    return net::Message{
        self_, net::VoteReply{version.value(), config_.weight_of(self_)}};
  }
  if (request.holds<net::BlockFetchRequest>()) {
    auto stored = store_.read(request.as<net::BlockFetchRequest>().block);
    if (!stored) return net::make_error(self_, stored.status());
    return net::Message{self_,
                        net::BlockFetchReply{stored.value().version,
                                             std::move(stored).value().data}};
  }
  if (request.holds<net::StateInquiry>()) {
    return net::Message{
        self_, net::StateInfo{state_, local_versions().total(), SiteSet{}}};
  }
  if (request.holds<net::BlockUpdate>()) {
    // The post-write block push is normally one-way; answering the call
    // form keeps the engine usable over request/reply-only transports such
    // as TCP. Dropping it there would shrink the effective write quorum to
    // the coordinator alone and break the read-quorum intersection that
    // early-stopped reads rely on.
    handle_peer_oneway(request);
    return net::Message{self_, net::WriteAllAck{}};
  }
  return net::make_error(
      self_, errors::protocol(std::string("unexpected request ") +
                              request.name()));
}

void VotingReplica::handle_peer_oneway(const net::Message& message) {
  if (message.holds<net::BlockUpdate>()) {
    const auto& update = message.as<net::BlockUpdate>();
    auto current = store_.version_of(update.block);
    if (!current) return;
    if (update.version > current.value()) {
      (void)store_.write(update.block, update.data, update.version);
    }
    return;
  }
  RELDEV_WARN("voting") << "ignoring one-way " << message.name();
}

}  // namespace reldev::core
